//! The sharded, batching query-serving engine.
//!
//! Architecture (see DESIGN.md "Serving architecture"):
//!
//! * **Admission** — a single bounded queue guarded by a mutex + condvar;
//!   [`ServeEngine::submit`] never blocks: a full queue answers
//!   [`ServeError::Overloaded`] immediately, which callers treat as a
//!   back-off signal.
//! * **Batching** — each shard pulls up to `batch_size` queries; an
//!   under-full batch is held open until `linger` elapses from the *oldest*
//!   pending query's arrival, trading a bounded latency tax for
//!   warp-occupancy on the device backend.
//! * **Sharding** — worker threads sharing the `Arc`-owned index. The device
//!   backend uploads one [`SearchIndex`] per shard (device buffers are
//!   thread-local by design).
//! * **Drain** — [`ServeEngine::shutdown`] stops admission, lets shards
//!   finish every queued query, joins them, and returns the merged
//!   [`ServeReport`].

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wknng_core::kernels::beam::{run_search_batch, SearchIndex};
use wknng_core::{augment_reverse, search_lists, KnngError, SearchParams, SearchStats};
use wknng_data::io::{load_knn, load_vectors};
use wknng_data::{Metric, Neighbor, VectorSet};

use crate::config::{Augment, Backend, ServeConfig};
use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::report::ServeReport;

/// A loaded, servable index: vectors plus the finished neighbor lists.
#[derive(Debug, Clone)]
pub struct ServeIndex {
    /// Indexed point coordinates.
    pub vectors: VectorSet,
    /// Neighbor lists, one per point.
    pub lists: Vec<Vec<Neighbor>>,
}

impl ServeIndex {
    /// Wrap an in-memory build.
    pub fn from_parts(vectors: VectorSet, lists: Vec<Vec<Neighbor>>) -> Result<Self, ServeError> {
        if lists.len() != vectors.len() {
            return Err(ServeError::ListCountMismatch {
                lists: lists.len(),
                points: vectors.len(),
            });
        }
        Ok(ServeIndex { vectors, lists })
    }

    /// Load a built `.wkv`/`.wkk` pair from disk.
    pub fn load(
        vec_path: &std::path::Path,
        knn_path: &std::path::Path,
    ) -> Result<Self, ServeError> {
        let vectors = load_vectors(vec_path)?;
        let lists = load_knn(knn_path)?;
        ServeIndex::from_parts(vectors, lists)
    }
}

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Ranked neighbors, ascending `(dist, index)`, length ≤ `k`.
    pub neighbors: Vec<Neighbor>,
    /// Work counters of this query's search.
    pub stats: SearchStats,
    /// End-to-end latency (submission to batch completion).
    pub latency: Duration,
}

/// Handle to one in-flight query.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<QueryResult>,
}

impl Ticket {
    /// Block until the query is answered. Returns
    /// [`ServeError::Shutdown`] if the engine drained away without
    /// answering (only possible for queries pending in an inert `shards: 0`
    /// engine, or after a persistent launch fault).
    pub fn wait(self) -> Result<QueryResult, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)
    }
}

struct Job {
    query: Vec<f32>,
    at: Instant,
    tx: mpsc::Sender<QueryResult>,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    shut_down: bool,
    submitted: u64,
    rejected: u64,
    max_depth: usize,
}

struct Shared {
    queue: Mutex<QueueState>,
    notify: Condvar,
    vectors: VectorSet,
    lists: Vec<Vec<Neighbor>>,
    params: SearchParams,
    batch_size: usize,
    linger: Duration,
    capacity: usize,
    backend: Backend,
}

#[derive(Default)]
struct ShardStats {
    served: u64,
    batches: u64,
    distance_evals: u64,
    expansions: u64,
    latency: Option<LatencyHistogram>,
    launch_faults: u64,
}

/// The serving engine. Construct with [`ServeEngine::start`], submit with
/// [`ServeEngine::submit`]/[`ServeEngine::query`], finish with
/// [`ServeEngine::shutdown`].
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<ShardStats>>,
    started: Instant,
}

impl ServeEngine {
    /// Validate the configuration against the index, apply the augmentation
    /// policy, and spawn the shard workers.
    pub fn start(index: ServeIndex, cfg: ServeConfig) -> Result<ServeEngine, ServeError> {
        cfg.check()?;
        let params = cfg.params.validated(index.vectors.len())?;
        if matches!(cfg.backend, Backend::Device(_)) && params.metric != Metric::SquaredL2 {
            return Err(ServeError::Search(KnngError::UnsupportedDeviceMetric(params.metric)));
        }
        let lists = match cfg.augment {
            Augment::Off => index.lists,
            Augment::On { max_degree } => augment_reverse(&index.lists, max_degree),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            notify: Condvar::new(),
            vectors: index.vectors,
            lists,
            params,
            batch_size: cfg.batch_size,
            linger: cfg.linger,
            capacity: cfg.queue_capacity,
            backend: cfg.backend,
        });
        let workers = (0..cfg.shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wknng-serve-{i}"))
                    .spawn(move || worker(shared))
                    .expect("spawn shard")
            })
            .collect();
        Ok(ServeEngine { shared, workers, started: Instant::now() })
    }

    /// Dimensionality queries must have.
    pub fn dim(&self) -> usize {
        self.shared.vectors.dim()
    }

    /// Current submission-queue depth (for load shedding / monitoring).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").pending.len()
    }

    /// Submit one query without blocking. A full queue answers
    /// [`ServeError::Overloaded`]; a draining engine answers
    /// [`ServeError::Shutdown`].
    pub fn submit(&self, query: Vec<f32>) -> Result<Ticket, ServeError> {
        if query.len() != self.dim() {
            return Err(ServeError::QueryDimMismatch { got: query.len(), want: self.dim() });
        }
        if let Some(c) = query.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteQuery { coord: c });
        }
        let (tx, rx) = mpsc::channel();
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.shut_down {
            return Err(ServeError::Shutdown);
        }
        if q.pending.len() >= self.shared.capacity {
            q.rejected += 1;
            return Err(ServeError::Overloaded {
                depth: q.pending.len(),
                capacity: self.shared.capacity,
            });
        }
        q.pending.push_back(Job { query, at: Instant::now(), tx });
        q.submitted += 1;
        q.max_depth = q.max_depth.max(q.pending.len());
        drop(q);
        self.shared.notify.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit and wait — the blocking convenience wrapper.
    pub fn query(&self, query: Vec<f32>) -> Result<QueryResult, ServeError> {
        self.submit(query)?.wait()
    }

    /// Stop admission, drain every queued query, join the shards, and
    /// return the merged report.
    pub fn shutdown(mut self) -> ServeReport {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shut_down = true;
        }
        self.shared.notify.notify_all();
        let shards = self.workers.len();
        let mut merged = ShardStats::default();
        let mut latency = LatencyHistogram::new();
        for h in std::mem::take(&mut self.workers) {
            let s = h.join().expect("shard panicked");
            merged.served += s.served;
            merged.batches += s.batches;
            merged.distance_evals += s.distance_evals;
            merged.expansions += s.expansions;
            merged.launch_faults += s.launch_faults;
            if let Some(hist) = s.latency {
                latency.merge(&hist);
            }
        }
        let elapsed = self.started.elapsed();
        let mut q = self.shared.queue.lock().expect("queue lock");
        // Inert engines (shards = 0) may still hold pending jobs; dropping
        // them closes their channels, so waiting tickets observe `Shutdown`.
        q.pending.clear();
        let served = merged.served;
        ServeReport {
            served,
            submitted: q.submitted,
            rejected: q.rejected,
            shards,
            batches: merged.batches,
            mean_batch: if merged.batches > 0 {
                served as f64 / merged.batches as f64
            } else {
                0.0
            },
            max_queue_depth: q.max_depth,
            elapsed,
            throughput_qps: if elapsed.as_secs_f64() > 0.0 {
                served as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency,
            mean_distance_evals: if served > 0 {
                merged.distance_evals as f64 / served as f64
            } else {
                0.0
            },
            mean_expansions: if served > 0 {
                merged.expansions as f64 / served as f64
            } else {
                0.0
            },
            launch_faults: merged.launch_faults,
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // A dropped (not shut down) engine must still unblock its shards.
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shut_down = true;
        }
        self.shared.notify.notify_all();
    }
}

/// Shard main loop: pull a batch (respecting the linger deadline), search
/// it, respond, repeat until drained.
fn worker(shared: Arc<Shared>) -> ShardStats {
    let mut stats = ShardStats { latency: Some(LatencyHistogram::new()), ..Default::default() };
    // The device backend keeps one thread-local index upload per shard.
    let dev_ix = match &shared.backend {
        Backend::Device(_) => Some(SearchIndex::upload(&shared.vectors, &shared.lists)),
        Backend::Native => None,
    };
    loop {
        let (batch, drained) = next_batch(&shared);
        if batch.is_empty() {
            if drained {
                return stats;
            }
            continue;
        }
        serve_batch(&shared, dev_ix.as_ref(), batch, &mut stats);
    }
}

/// Block until a batch is ready: a full `batch_size`, the linger deadline of
/// the oldest pending query, or shutdown (which flushes whatever is left).
/// Returns `(batch, drained)`; `drained` means shutdown with an empty queue.
fn next_batch(shared: &Shared) -> (Vec<Job>, bool) {
    let mut q = shared.queue.lock().expect("queue lock");
    loop {
        if q.shut_down || q.pending.len() >= shared.batch_size {
            break;
        }
        match q.pending.front().map(|j| j.at) {
            None => q = shared.notify.wait(q).expect("queue lock"),
            Some(oldest) => {
                let deadline = oldest + shared.linger;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                q = shared.notify.wait_timeout(q, deadline - now).expect("queue lock").0;
            }
        }
    }
    if q.pending.is_empty() {
        return (Vec::new(), q.shut_down);
    }
    let take = q.pending.len().min(shared.batch_size);
    (q.pending.drain(..take).collect(), false)
}

fn serve_batch(
    shared: &Shared,
    dev_ix: Option<&SearchIndex>,
    batch: Vec<Job>,
    st: &mut ShardStats,
) {
    let results: Vec<(Vec<Neighbor>, SearchStats)> = match (&shared.backend, dev_ix) {
        (Backend::Device(dev), Some(ix)) => {
            let mut flat = Vec::with_capacity(batch.len() * shared.vectors.dim());
            for j in &batch {
                flat.extend_from_slice(&j.query);
            }
            let qs = VectorSet::new(flat, shared.vectors.dim()).expect("validated at submit");
            let mut attempts = 0;
            loop {
                match run_search_batch(dev, ix, &qs, &shared.params) {
                    Ok(b) => break b.results.into_iter().zip(b.stats).collect(),
                    Err(_fault) if attempts < 3 => {
                        attempts += 1;
                        st.launch_faults += 1;
                    }
                    Err(_fault) => {
                        // Persistently faulting launch: drop the batch; the
                        // closed channels surface `Shutdown` to the waiters.
                        st.launch_faults += 1;
                        return;
                    }
                }
            }
        }
        _ => batch
            .iter()
            .map(|j| search_lists(&shared.vectors, &shared.lists, &j.query, &shared.params))
            .collect(),
    };
    st.batches += 1;
    let hist = st.latency.as_mut().expect("worker histogram");
    for (job, (neighbors, qstats)) in batch.into_iter().zip(results) {
        let latency = job.at.elapsed();
        st.served += 1;
        st.distance_evals += qstats.distance_evals as u64;
        st.expansions += qstats.expansions as u64;
        hist.record(latency.as_nanos() as u64);
        // A dropped ticket (caller gave up) is not an engine error.
        let _ = job.tx.send(QueryResult { neighbors, stats: qstats, latency });
    }
}
