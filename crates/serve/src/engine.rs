//! The sharded, batching, supervised query-serving engine.
//!
//! Architecture (see DESIGN.md "Serving architecture" and "Serving
//! resilience"):
//!
//! * **Admission** — a single bounded queue guarded by a mutex + condvar;
//!   [`ServeEngine::submit`] never blocks: a full queue answers
//!   [`ServeError::Overloaded`] immediately, which callers treat as a
//!   back-off signal.
//! * **Batching** — each shard pulls up to `batch_size` queries; an
//!   under-full batch is held open until `linger` elapses from the *oldest*
//!   pending query's arrival, trading a bounded latency tax for
//!   warp-occupancy on the device backend.
//! * **Sharding** — worker threads sharing the `Arc`-owned index. The device
//!   backend uploads one [`SearchIndex`] per shard (device buffers are
//!   thread-local by design).
//! * **Supervision** — every shard runs panic-isolated under
//!   [`crate::supervisor`]; a dead worker's in-flight queries resolve to
//!   [`ServeError::WorkerLost`] (never a hang — the `Job` drop guard
//!   guarantees every admitted query is answered exactly once), and the
//!   shard respawns from the shared index after a capped exponential
//!   backoff.
//! * **Deadlines** — with [`crate::ServeConfig::deadline`] set, queries that
//!   expire while queued are shed before any search work, and a ticket wait
//!   is bounded by deadline + [`DEADLINE_GRACE`] under *any* fault.
//! * **Load shedding** — the [`crate::shed`] controller watches queue
//!   sojourn and, under sustained overload, first walks the
//!   [`SearchParams::degraded`] brownout ladder, then sheds.
//! * **Drain** — [`ServeEngine::shutdown`] stops admission, lets shards
//!   finish every queued query, joins them, and returns the merged
//!   [`ServeReport`].

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use wknng_sync::atomic::{AtomicU64, Ordering};
use wknng_sync::mpsc::{self, RecvTimeoutError};
use wknng_sync::thread::JoinHandle;
use wknng_sync::{channel_labeled, condvar_labeled, mutex_labeled, thread, Arc, Condvar, Mutex};

use wknng_core::kernels::beam::{run_search_batch, SearchIndex};
use wknng_core::{augment_reverse, KnngError, SearchParams, SearchStats, WknngParams};
use wknng_data::io::{load_knn, load_vectors};
use wknng_data::{Metric, Neighbor, VectorSet};
use wknng_simt::{FaultPlan, ServeFault};

use crate::config::{Augment, Backend, ServeConfig};
use crate::durability::{self, DurableSeed, RecoveryInfo};
use crate::epoch::{Epoch, EpochHandle};
use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::mutate::{mutator, MutationJob, MutationOp, MutationTicket, MutatorSeed, MutatorStats};
use crate::report::ServeReport;
use crate::shed::ShedController;
use crate::supervisor::{run_supervised, SupervisorPolicy};

/// Slack granted past a query's deadline before a deadline-bounded wait
/// gives up: covers scheduler jitter and response-channel delivery, so an
/// on-time answer racing the deadline is not spuriously dropped.
pub const DEADLINE_GRACE: Duration = Duration::from_millis(100);

/// A loaded, servable index: vectors plus the finished neighbor lists.
#[derive(Debug, Clone)]
pub struct ServeIndex {
    /// Indexed point coordinates.
    pub vectors: VectorSet,
    /// Neighbor lists, one per point.
    pub lists: Vec<Vec<Neighbor>>,
}

impl ServeIndex {
    /// Wrap an in-memory build.
    pub fn from_parts(vectors: VectorSet, lists: Vec<Vec<Neighbor>>) -> Result<Self, ServeError> {
        if lists.len() != vectors.len() {
            return Err(ServeError::ListCountMismatch {
                lists: lists.len(),
                points: vectors.len(),
            });
        }
        Ok(ServeIndex { vectors, lists })
    }

    /// Load a built `.wkv`/`.wkk` pair from disk.
    pub fn load(
        vec_path: &std::path::Path,
        knn_path: &std::path::Path,
    ) -> Result<Self, ServeError> {
        let vectors = load_vectors(vec_path)?;
        let lists = load_knn(knn_path)?;
        ServeIndex::from_parts(vectors, lists)
    }
}

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Ranked neighbors, ascending `(dist, index)`, length ≤ `k`.
    pub neighbors: Vec<Neighbor>,
    /// Work counters of this query's search.
    pub stats: SearchStats,
    /// End-to-end latency (submission to batch completion).
    pub latency: Duration,
    /// Id of the [`Epoch`] that answered this query — the whole batch the
    /// query rode in was served from this one pinned generation.
    pub epoch: u64,
}

/// What a worker (or the engine) sends back for one query.
pub(crate) type Reply = Result<QueryResult, ServeError>;

/// Handle to one in-flight query.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Reply>,
    /// `submission + ServeConfig::deadline`, when the engine has one.
    pub(crate) deadline: Option<Instant>,
}

impl Ticket {
    /// Block until the query is answered with a result or a typed error:
    /// [`ServeError::Shutdown`] (drained away unanswered),
    /// [`ServeError::WorkerLost`] (the serving worker died),
    /// [`ServeError::Shed`] / [`ServeError::DeadlineExceeded`] (overload).
    /// On an engine with a configured deadline the wait itself is bounded:
    /// it returns no later than deadline + [`DEADLINE_GRACE`], whatever the
    /// workers are doing.
    pub fn wait(self) -> Result<QueryResult, ServeError> {
        match self.deadline {
            // A dropped-without-reply channel means the responding worker
            // unwound so abruptly the drop guard itself was lost; surface
            // the worker's death, not a bogus "shutdown".
            None => self.rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
            Some(d) => {
                let budget = (d + DEADLINE_GRACE).saturating_duration_since(Instant::now());
                self.wait_timeout(budget)
            }
        }
    }

    /// [`Ticket::wait`] bounded by an explicit per-call timeout; a timeout
    /// answers [`ServeError::DeadlineExceeded`]. Never blocks past
    /// `timeout` regardless of worker state.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryResult, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }
}

/// An admitted query. The `Drop` guard is the no-hang invariant: however a
/// job leaves the system — served, shed, drained, or abandoned mid-batch by
/// a panicking worker — its ticket receives exactly one reply. A job
/// dropped without an explicit [`Job::respond`] answers
/// [`ServeError::WorkerLost`].
pub(crate) struct Job {
    pub(crate) query: Vec<f32>,
    pub(crate) at: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) tx: Option<mpsc::Sender<Reply>>,
}

impl Job {
    pub(crate) fn respond(mut self, reply: Reply) {
        if let Some(tx) = self.tx.take() {
            // A dropped ticket (caller gave up) is not an engine error.
            let _ = tx.send(reply);
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Err(ServeError::WorkerLost));
        }
    }
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    shut_down: bool,
    submitted: u64,
    rejected: u64,
    max_depth: usize,
}

/// Serve-side chaos: the shared plan plus the global batch numbering the
/// injection points are addressed by. (The mutator shares the plan too —
/// swap faults are addressed by its own swap-attempt numbering.)
pub(crate) struct Chaos {
    pub(crate) plan: FaultPlan,
    next_batch: AtomicU64,
}

struct Shared {
    queue: Mutex<QueueState>,
    notify: Condvar,
    epochs: Arc<EpochHandle>,
    dim: usize,
    params: SearchParams,
    batch_size: usize,
    linger: Duration,
    capacity: usize,
    backend: Backend,
    deadline: Option<Duration>,
    supervisor: SupervisorPolicy,
    shed: Option<Mutex<ShedController>>,
    chaos: Option<Arc<Chaos>>,
}

#[derive(Default)]
struct ShardStats {
    served: u64,
    batches: u64,
    distance_evals: u64,
    expansions: u64,
    latency: Option<LatencyHistogram>,
    launch_faults: u64,
    shed: u64,
    deadline_expired: u64,
    worker_restarts: u64,
    brownout_batches: u64,
}

/// The serving engine. Construct with [`ServeEngine::start`], submit with
/// [`ServeEngine::submit`]/[`ServeEngine::query`], mutate the index live
/// with [`ServeEngine::insert`]/[`ServeEngine::delete`] (when a
/// [`crate::MutatePolicy`] is configured), finish with
/// [`ServeEngine::shutdown`].
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<ShardStats>>,
    mutator: Option<(mpsc::Sender<MutationJob>, JoinHandle<MutatorStats>)>,
    started: Instant,
    recovery: Option<RecoveryInfo>,
}

impl ServeEngine {
    /// Validate the configuration against the index, apply the augmentation
    /// policy, publish epoch 0, and spawn the shard workers (plus the
    /// mutator thread when mutation is enabled).
    ///
    /// With a [`crate::DurabilityPolicy`] configured, this is the *cold*
    /// start: the data directory is initialized with checkpoint generation
    /// 0 and a fresh WAL, and refuses a directory that already holds
    /// durable state — warm-start that with [`ServeEngine::recover`].
    pub fn start(index: ServeIndex, cfg: ServeConfig) -> Result<ServeEngine, ServeError> {
        cfg.check()?;
        let lists = match cfg.augment {
            Augment::Off => index.lists,
            Augment::On { max_degree } => augment_reverse(&index.lists, max_degree),
        };
        let epoch0 = Epoch::initial(index.vectors, lists);
        let durable = match &cfg.durability {
            None => None,
            Some(policy) => Some(durability::cold_init(policy, &epoch0)?),
        };
        ServeEngine::boot(epoch0, cfg, durable, None)
    }

    /// Warm-start from [`crate::DurabilityPolicy::dir`]: load the newest
    /// valid checkpoint generation (falling back past corrupt ones),
    /// replay the surviving WAL tail through the mutator's own apply path,
    /// publish the recovered index as epoch 0, and start serving. Returns
    /// the engine and what recovery did.
    pub fn recover(cfg: ServeConfig) -> Result<(ServeEngine, RecoveryInfo), ServeError> {
        cfg.check()?;
        let Some(policy) = cfg.durability.clone() else {
            return Err(ServeError::Config("recover requires a durability policy (data dir)"));
        };
        let mutate =
            cfg.mutate.clone().ok_or(ServeError::Config("durability requires a mutate policy"))?;
        let t0 = Instant::now();
        let rec = durability::recover(&policy, &mutate, cfg.params.metric, cfg.params.k)?;
        let durable = DurableSeed {
            wal: rec.wal,
            dir: policy.dir.clone(),
            checkpoint_every: policy.checkpoint_every,
            keep_generations: policy.keep_generations,
            next_generation: rec.generation + 1,
            crash: policy.crash.clone(),
        };
        let mut info = rec.info;
        info.recovery_ms = t0.elapsed().as_millis() as u64;
        let engine = ServeEngine::boot(rec.epoch, cfg, Some(durable), Some(info.clone()))?;
        Ok((engine, info))
    }

    /// Common spawn path behind [`ServeEngine::start`] and
    /// [`ServeEngine::recover`]: validate params against the epoch, publish
    /// it, and bring up workers and (optionally durable) mutator.
    fn boot(
        epoch0: Epoch,
        cfg: ServeConfig,
        durable: Option<DurableSeed>,
        recovery: Option<RecoveryInfo>,
    ) -> Result<ServeEngine, ServeError> {
        let params = cfg.params.validated(epoch0.vectors.len())?;
        if matches!(cfg.backend, Backend::Device(_)) && params.metric != Metric::SquaredL2 {
            return Err(ServeError::Search(KnngError::UnsupportedDeviceMetric(params.metric)));
        }
        // The graph's own k (bounded-list capacity) for the mutator, taken
        // from the widest list actually built; empty indexes fall back to
        // the query k.
        let graph_k =
            epoch0.lists.iter().map(Vec::len).max().filter(|&k| k > 0).unwrap_or(params.k);
        let dim = epoch0.vectors.dim();
        let epochs = Arc::new(EpochHandle::new(epoch0));
        let chaos = cfg
            .chaos
            .filter(|p| p.has_serve_faults() || p.has_swap_faults())
            .map(|plan| Arc::new(Chaos { plan, next_batch: AtomicU64::new(0) }));
        let shared = Arc::new(Shared {
            queue: mutex_labeled("serve-queue", QueueState::default()),
            notify: condvar_labeled("serve-notify"),
            epochs: Arc::clone(&epochs),
            dim,
            params,
            batch_size: cfg.batch_size,
            linger: cfg.linger,
            capacity: cfg.queue_capacity,
            backend: cfg.backend,
            deadline: cfg.deadline,
            supervisor: cfg.supervisor,
            shed: cfg.shed.map(|p| mutex_labeled("shed-controller", ShedController::new(p))),
            chaos: chaos.clone(),
        });
        let mutator_handle = match cfg.mutate {
            None => None,
            Some(policy) => {
                let seed = MutatorSeed {
                    epochs,
                    policy,
                    params: WknngParams {
                        k: graph_k,
                        metric: params.metric,
                        ..WknngParams::default()
                    },
                    chaos,
                    durable,
                };
                let (tx, rx) = channel_labeled("mutator-jobs");
                let handle = thread::Builder::new()
                    .name("wknng-mutator".into())
                    .spawn(move || mutator(seed, rx))
                    .expect("spawn mutator");
                Some((tx, handle))
            }
        };
        let workers = (0..cfg.shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("wknng-serve-{i}"))
                    .spawn(move || worker(shared))
                    .expect("spawn shard")
            })
            .collect();
        Ok(ServeEngine {
            shared,
            workers,
            mutator: mutator_handle,
            started: Instant::now(),
            recovery,
        })
    }

    /// Dimensionality queries must have.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// Id of the currently published [`Epoch`].
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.current_id()
    }

    /// Pin the current epoch (a coherent frozen snapshot of the index).
    pub fn pin_epoch(&self) -> Arc<Epoch> {
        self.shared.epochs.pin()
    }

    /// Look up a still-alive epoch by id — the current one, or an old
    /// generation something still pins.
    pub fn find_epoch(&self, id: u64) -> Option<Arc<Epoch>> {
        self.shared.epochs.find(id)
    }

    /// Ids of every epoch still alive (retired generations are pruned).
    pub fn live_epochs(&self) -> Vec<u64> {
        self.shared.epochs.live_epochs()
    }

    /// Enqueue one mutation batch for the build-aside mutator. Answers
    /// [`ServeError::MutationsDisabled`] on an engine started without a
    /// [`crate::MutatePolicy`]. The returned ticket resolves when the batch
    /// is published as a new epoch (or refused with a typed error); queries
    /// keep flowing on the current epoch the whole time.
    pub fn mutate(&self, op: MutationOp) -> Result<MutationTicket, ServeError> {
        let Some((tx, _)) = &self.mutator else {
            return Err(ServeError::MutationsDisabled);
        };
        let (rtx, rrx) = channel_labeled("mutation-reply");
        tx.send(MutationJob { op, tx: Some(rtx) })
            .map_err(|_| ServeError::MutationFailed("mutator thread lost"))?;
        Ok(MutationTicket { rx: rrx })
    }

    /// Insert a batch of new points ([`ServeEngine::mutate`] convenience).
    pub fn insert(&self, points: VectorSet) -> Result<MutationTicket, ServeError> {
        self.mutate(MutationOp::Insert(points))
    }

    /// Tombstone a batch of point ids ([`ServeEngine::mutate`] convenience).
    pub fn delete(&self, ids: Vec<u32>) -> Result<MutationTicket, ServeError> {
        self.mutate(MutationOp::Delete(ids))
    }

    /// Current submission-queue depth (for load shedding / monitoring).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").pending.len()
    }

    /// Submit one query without blocking. A full queue answers
    /// [`ServeError::Overloaded`]; a draining engine answers
    /// [`ServeError::Shutdown`].
    pub fn submit(&self, query: Vec<f32>) -> Result<Ticket, ServeError> {
        if query.len() != self.dim() {
            return Err(ServeError::QueryDimMismatch { got: query.len(), want: self.dim() });
        }
        if let Some(c) = query.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteQuery { coord: c });
        }
        let (tx, rx) = channel_labeled("query-reply");
        let now = Instant::now();
        let deadline = self.shared.deadline.map(|d| now + d);
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.shut_down {
            return Err(ServeError::Shutdown);
        }
        if q.pending.len() >= self.shared.capacity {
            q.rejected += 1;
            return Err(ServeError::Overloaded {
                depth: q.pending.len(),
                capacity: self.shared.capacity,
            });
        }
        q.pending.push_back(Job { query, at: now, deadline, tx: Some(tx) });
        q.submitted += 1;
        q.max_depth = q.max_depth.max(q.pending.len());
        drop(q);
        self.shared.notify.notify_one();
        Ok(Ticket { rx, deadline })
    }

    /// Submit and wait — the blocking convenience wrapper.
    pub fn query(&self, query: Vec<f32>) -> Result<QueryResult, ServeError> {
        self.submit(query)?.wait()
    }

    /// Stop admission, drain every queued query and mutation, join the
    /// shards and the mutator, and return the merged report.
    pub fn shutdown(mut self) -> ServeReport {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shut_down = true;
        }
        self.shared.notify.notify_all();
        // Dropping the sender lets the mutator drain its queued batches and
        // exit; pending mutation tickets all resolve (published or typed).
        let mstats = self.mutator.take().map(|(tx, handle)| {
            drop(tx);
            handle.join().expect("mutator answers every job before exiting")
        });
        let shards = self.workers.len();
        let mut merged = ShardStats::default();
        let mut latency = LatencyHistogram::new();
        for h in std::mem::take(&mut self.workers) {
            // Workers are panic-isolated by the supervisor; a panicking
            // *join* would mean the supervision layer itself is broken.
            let s = h.join().expect("supervised shard never propagates a panic");
            merged.served += s.served;
            merged.batches += s.batches;
            merged.distance_evals += s.distance_evals;
            merged.expansions += s.expansions;
            merged.launch_faults += s.launch_faults;
            merged.shed += s.shed;
            merged.deadline_expired += s.deadline_expired;
            merged.worker_restarts += s.worker_restarts;
            merged.brownout_batches += s.brownout_batches;
            if let Some(hist) = s.latency {
                latency.merge(&hist);
            }
        }
        let elapsed = self.started.elapsed();
        let mut q = self.shared.queue.lock().expect("queue lock");
        // Inert engines (shards = 0) may still hold pending jobs; answer
        // them with the typed shutdown error (not the drop guard's
        // `WorkerLost` — nothing died, the engine drained away).
        for job in q.pending.drain(..) {
            job.respond(Err(ServeError::Shutdown));
        }
        let served = merged.served;
        ServeReport {
            served,
            submitted: q.submitted,
            rejected: q.rejected,
            shards,
            batches: merged.batches,
            mean_batch: if merged.batches > 0 {
                served as f64 / merged.batches as f64
            } else {
                0.0
            },
            max_queue_depth: q.max_depth,
            elapsed,
            throughput_qps: if elapsed.as_secs_f64() > 0.0 {
                served as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency,
            mean_distance_evals: if served > 0 {
                merged.distance_evals as f64 / served as f64
            } else {
                0.0
            },
            mean_expansions: if served > 0 {
                merged.expansions as f64 / served as f64
            } else {
                0.0
            },
            launch_faults: merged.launch_faults,
            shed: merged.shed,
            deadline_expired: merged.deadline_expired,
            worker_restarts: merged.worker_restarts,
            brownout_batches: merged.brownout_batches,
            epoch: self.shared.epochs.current_id(),
            mutations_applied: mstats.as_ref().map_or(0, |m| m.mutations_applied),
            swaps: mstats.as_ref().map_or(0, |m| m.swaps),
            swap_p99_pause_us: mstats
                .as_ref()
                .and_then(|m| m.pause.percentile(99.0))
                .map_or(0, |ns| ns / 1_000),
            wal_appends: mstats.as_ref().map_or(0, |m| m.wal_appends),
            wal_bytes: mstats.as_ref().map_or(0, |m| m.wal_bytes),
            checkpoints: mstats.as_ref().map_or(0, |m| m.checkpoints),
            recovery_replayed_ops: self.recovery.as_ref().map_or(0, |r| r.replayed_ops),
            recovery_ms: self.recovery.as_ref().map_or(0, |r| r.recovery_ms),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // A dropped (not shut down) engine must still unblock its shards.
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shut_down = true;
        }
        self.shared.notify.notify_all();
    }
}

/// Shard thread body: the serving loop under supervision. A panic anywhere
/// in a pass abandons that pass's in-flight batch (each job's drop guard
/// answers `WorkerLost`), records a restart, backs off, and re-enters — the
/// respawned pass rebuilds all per-thread state (including the device
/// backend's index upload) from the shared `ServeIndex`. A pass that
/// returns cleanly has observed shutdown and drained the queue.
fn worker(shared: Arc<Shared>) -> ShardStats {
    let mut stats = ShardStats { latency: Some(LatencyHistogram::new()), ..Default::default() };
    let policy = shared.supervisor;
    run_supervised(
        &policy,
        &mut stats,
        |stats| worker_pass(&shared, stats),
        |stats, backoff| {
            stats.worker_restarts += 1;
            backoff_sleep(&shared, backoff);
        },
    );
    stats
}

/// Shutdown-aware backoff: sleeps up to `dur`, but wakes early when the
/// engine starts draining so a crashed-then-backing-off shard cannot delay
/// shutdown by a whole backoff window. (The respawned pass then drains the
/// queue and exits cleanly.)
fn backoff_sleep(shared: &Shared, dur: Duration) {
    let deadline = Instant::now() + dur;
    let mut q = shared.queue.lock().expect("queue lock");
    while !q.shut_down {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        q = shared.notify.wait_timeout(q, deadline - now).expect("queue lock").0;
    }
}

/// One supervised serving pass: pull a batch, pin the current epoch,
/// inject any scheduled chaos, triage (deadline shed / overload shed /
/// brownout), search, respond — until drained.
///
/// The epoch pin happens once per batch, *before* any search work: every
/// query in the batch is answered from that one frozen generation, however
/// many publishes land while the batch is in flight. The pin (and therefore
/// the old epoch) is released when the batch completes — or mid-unwind if
/// the worker panics, which is exactly what lets a killed worker's epoch
/// retire.
fn worker_pass(shared: &Shared, stats: &mut ShardStats) {
    // The device backend keeps one thread-local index upload per shard,
    // re-uploaded whenever a new epoch is published (cached by epoch id).
    let mut dev_ix: Option<(u64, SearchIndex)> = None;
    loop {
        let (batch, drained) = next_batch(shared);
        if batch.is_empty() {
            if drained {
                return;
            }
            continue;
        }
        let epoch = shared.epochs.pin();
        let dev = match &shared.backend {
            Backend::Device(_) => {
                if dev_ix.as_ref().is_none_or(|(id, _)| *id != epoch.id) {
                    dev_ix = Some((epoch.id, SearchIndex::upload(&epoch.vectors, &epoch.lists)));
                }
                dev_ix.as_ref().map(|(_, ix)| ix)
            }
            Backend::Native => None,
        };
        let mut poisoned = false;
        if let Some(chaos) = &shared.chaos {
            let idx = chaos.next_batch.fetch_add(1, Ordering::Relaxed);
            match chaos.plan.serve_fault(idx) {
                Some(ServeFault::PanicWorker) => {
                    panic!("chaos: injected worker panic at serve batch {idx}")
                }
                Some(ServeFault::StallBatch(d)) => thread::sleep(d),
                Some(ServeFault::PoisonResults) => poisoned = true,
                None => {}
            }
        }
        let (batch, params) = triage(shared, batch, stats);
        if batch.is_empty() {
            continue;
        }
        if params != shared.params {
            stats.brownout_batches += 1;
        }
        serve_batch(shared, &epoch, dev, batch, &params, poisoned, stats);
    }
}

/// Pre-search policy on a freshly cut batch: feed the shedding controller,
/// shed queries whose deadline already expired (before any search work),
/// shed over-sojourn queries when the controller says so, and pick the
/// batch's effective (possibly browned-out) search parameters.
fn triage(shared: &Shared, batch: Vec<Job>, st: &mut ShardStats) -> (Vec<Job>, SearchParams) {
    let now = Instant::now();
    let mut params = shared.params;
    let mut shed_bound = None;
    if let Some(ctl) = &shared.shed {
        let min_sojourn =
            batch.iter().map(|j| now.saturating_duration_since(j.at)).min().unwrap_or_default();
        let mut ctl = ctl.lock().expect("shed controller lock");
        ctl.observe(min_sojourn, now);
        params = ctl.effective_params(&shared.params);
        shed_bound = ctl.shed_bound();
    }
    let mut kept = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| now >= d) {
            st.deadline_expired += 1;
            job.respond(Err(ServeError::DeadlineExceeded));
            continue;
        }
        if shed_bound.is_some_and(|b| now.saturating_duration_since(job.at) > b) {
            st.shed += 1;
            job.respond(Err(ServeError::Shed));
            continue;
        }
        kept.push(job);
    }
    (kept, params)
}

/// Block until a batch is ready: a full `batch_size`, the linger deadline of
/// the oldest pending query, or shutdown (which flushes whatever is left).
/// Returns `(batch, drained)`; `drained` means shutdown with an empty queue.
fn next_batch(shared: &Shared) -> (Vec<Job>, bool) {
    let mut q = shared.queue.lock().expect("queue lock");
    loop {
        if q.shut_down || q.pending.len() >= shared.batch_size {
            break;
        }
        match q.pending.front().map(|j| j.at) {
            None => q = shared.notify.wait(q).expect("queue lock"),
            Some(oldest) => {
                let deadline = oldest + shared.linger;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                q = shared.notify.wait_timeout(q, deadline - now).expect("queue lock").0;
            }
        }
    }
    if q.pending.is_empty() {
        return (Vec::new(), q.shut_down);
    }
    let take = q.pending.len().min(shared.batch_size);
    (q.pending.drain(..take).collect(), false)
}

fn serve_batch(
    shared: &Shared,
    epoch: &Epoch,
    dev_ix: Option<&SearchIndex>,
    batch: Vec<Job>,
    params: &SearchParams,
    poisoned: bool,
    st: &mut ShardStats,
) {
    let results: Vec<(Vec<Neighbor>, SearchStats)> = match (&shared.backend, dev_ix) {
        (Backend::Device(dev), Some(ix)) => {
            let mut flat = Vec::with_capacity(batch.len() * shared.dim);
            for j in &batch {
                flat.extend_from_slice(&j.query);
            }
            let qs = VectorSet::new(flat, shared.dim).expect("validated at submit");
            let mut attempts = 0;
            loop {
                match run_search_batch(dev, ix, &qs, params) {
                    Ok(b) => break b.results.into_iter().zip(b.stats).collect(),
                    Err(_fault) if attempts < 3 => {
                        attempts += 1;
                        st.launch_faults += 1;
                    }
                    Err(_fault) => {
                        // Persistently faulting launch: drop the batch; the
                        // drop guards answer `WorkerLost` to the waiters.
                        st.launch_faults += 1;
                        return;
                    }
                }
            }
        }
        _ => batch.iter().map(|j| epoch.search(&j.query, params)).collect(),
    };
    st.batches += 1;
    if poisoned {
        // Chaos: the work was done but the results never reach their
        // channels — dropping the jobs answers `WorkerLost`.
        drop(batch);
        return;
    }
    let now = Instant::now();
    let hist = st.latency.as_mut().expect("worker histogram");
    for (job, (neighbors, qstats)) in batch.into_iter().zip(results) {
        let latency = now.saturating_duration_since(job.at);
        st.served += 1;
        st.distance_evals += qstats.distance_evals as u64;
        st.expansions += qstats.expansions as u64;
        if job.deadline.is_some_and(|d| now >= d) {
            // Expired while in flight: the answer is still delivered (the
            // caller may have stopped waiting), counted, but not charged to
            // the latency percentiles an operator alarms on.
            st.deadline_expired += 1;
        } else {
            hist.record(latency.as_nanos() as u64);
        }
        job.respond(Ok(QueryResult { neighbors, stats: qstats, latency, epoch: epoch.id }));
    }
}
