//! Crash-consistent durability: checkpoint generations, WAL-tail replay,
//! warm-start recovery, and the `fsck` deep verifier.
//!
//! Layout of a data directory (see DESIGN.md "Durability & recovery"):
//!
//! ```text
//! <dir>/wal.log            -- the mutation write-ahead log
//! <dir>/ckpt-00000000/     -- checkpoint generation 0 (cold start)
//!     vectors.wkv          -- the epoch's vectors, v2 snapshot format
//!     graph.wkk            -- the epoch's neighbor lists
//!     MANIFEST             -- wal position + tombstone bitmap; written LAST
//! <dir>/ckpt-00000001/     -- generation 1, ...
//! ```
//!
//! A generation is *valid* iff its manifest loads (checksummed) and agrees
//! with its snapshot files. Because the manifest is written last and
//! atomically, a crash anywhere inside a checkpoint leaves the generation
//! invalid and recovery falls back to the previous one — whose WAL tail is
//! still intact, because the log is pruned only *after* the manifest
//! rename completes.
//!
//! Checkpoints store the epoch **uncompacted** (tombstoned rows keep their
//! stale coordinates and empty lists), preserving the id space so replayed
//! `Delete` batches keep meaning the same slots.
//!
//! Recovery = newest valid generation + replay of every WAL record with
//! `seq >= manifest.wal_next_seq` through the same `mutate::apply_op` the
//! live mutator uses — one code path, so a recovered index is bit-identical
//! to replay-from-scratch.

use std::path::{Path, PathBuf};

use wknng_core::{audit_graph, GraphExtender, Knng, WknngParams};
use wknng_data::io::{load_knn, load_vectors, save_knn, save_vectors};
use wknng_data::{
    read_wal, CheckpointManifest, CrashPlan, FsyncPolicy, Metric, Neighbor, VectorSet, WalOp,
    WalWriter,
};

use crate::epoch::Epoch;
use crate::error::ServeError;
use crate::mutate::{apply_op, MutatePolicy, MutationOp};

/// Durability policy of a [`crate::ServeEngine`]: where state lives and how
/// eagerly it is persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityPolicy {
    /// The data directory (created on cold start).
    pub dir: PathBuf,
    /// Fsync-on-commit policy for the WAL.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many published mutation batches; `0` never
    /// checkpoints automatically (the WAL grows until shutdown).
    pub checkpoint_every: u64,
    /// Checkpoint generations to keep (≥ 1). Older generations are removed
    /// after each successful checkpoint.
    pub keep_generations: usize,
    /// Deterministic crash plan, installed on the mutator thread so every
    /// WAL append and checkpoint write consumes injection points.
    pub crash: Option<CrashPlan>,
}

impl DurabilityPolicy {
    /// A policy rooted at `dir` with the defaults: fsync always, checkpoint
    /// every 64 batches, keep 2 generations, no crash injection.
    pub fn at(dir: impl Into<PathBuf>) -> DurabilityPolicy {
        DurabilityPolicy {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 64,
            keep_generations: 2,
            crash: None,
        }
    }

    /// Validate the policy fields.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.keep_generations == 0 {
            return Err(ServeError::Config("keep_generations must be >= 1"));
        }
        Ok(())
    }
}

/// What recovery did, folded into the engine's report and the CLI output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryInfo {
    /// The checkpoint generation recovery restored from.
    pub generation: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_ops: u64,
    /// WAL records skipped because the checkpoint already absorbed them
    /// (a crash between manifest rename and log prune leaves these behind).
    pub skipped_ops: u64,
    /// Torn-tail bytes truncated from the log on open.
    pub torn_bytes: u64,
    /// True when the newest generation was corrupt and recovery fell back
    /// to an older one.
    pub fell_back: bool,
    /// Wall-clock milliseconds from recovery start to the recovered epoch
    /// being ready to publish.
    pub recovery_ms: u64,
}

impl std::fmt::Display for RecoveryInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered generation {}{}: replayed {} ops (skipped {}), torn tail {} bytes, {} ms",
            self.generation,
            if self.fell_back { " (fell back)" } else { "" },
            self.replayed_ops,
            self.skipped_ops,
            self.torn_bytes,
            self.recovery_ms
        )
    }
}

/// Mutator-side durable state, built by cold init or recovery and handed to
/// the mutator thread.
pub(crate) struct DurableSeed {
    pub(crate) wal: WalWriter,
    pub(crate) dir: PathBuf,
    pub(crate) checkpoint_every: u64,
    pub(crate) keep_generations: usize,
    pub(crate) next_generation: u64,
    pub(crate) crash: Option<CrashPlan>,
}

/// The WAL's path inside a data directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn gen_dir(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:08}"))
}

/// Checkpoint generations present under `dir`, ascending (valid or not).
pub fn list_generations(dir: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut gens: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().and_then(|n| n.strip_prefix("ckpt-")?.parse().ok()))
        .collect();
    gens.sort_unstable();
    gens
}

/// Write one checkpoint generation: vectors, lists, then the manifest —
/// each atomically, the manifest last so a crash anywhere leaves the
/// generation invalid rather than half-trusted. Consumes three rename
/// crash indices (vectors, lists, manifest — in that order).
pub(crate) fn write_checkpoint(
    dir: &Path,
    epoch: &Epoch,
    generation: u64,
    wal_next_seq: u64,
) -> Result<(), ServeError> {
    let gdir = gen_dir(dir, generation);
    std::fs::create_dir_all(&gdir).map_err(wknng_data::DataError::from)?;
    save_vectors(&epoch.vectors, &gdir.join("vectors.wkv"))?;
    save_knn(&epoch.lists, &gdir.join("graph.wkk"))?;
    let manifest = CheckpointManifest {
        generation,
        epoch_id: epoch.id,
        wal_next_seq,
        deleted: epoch.deleted.clone(),
    };
    manifest.save(&gdir.join("MANIFEST"))?;
    Ok(())
}

/// Load and cross-validate one generation.
fn load_generation(
    dir: &Path,
    generation: u64,
) -> Result<(CheckpointManifest, VectorSet, Vec<Vec<Neighbor>>), ServeError> {
    let gdir = gen_dir(dir, generation);
    let manifest = CheckpointManifest::load(&gdir.join("MANIFEST"))?;
    let vectors = load_vectors(&gdir.join("vectors.wkv"))?;
    let lists = load_knn(&gdir.join("graph.wkk"))?;
    if manifest.generation != generation {
        return Err(ServeError::Config("checkpoint manifest names a different generation"));
    }
    if lists.len() != vectors.len() || manifest.deleted.len() != vectors.len() {
        return Err(ServeError::ListCountMismatch { lists: lists.len(), points: vectors.len() });
    }
    Ok((manifest, vectors, lists))
}

/// Remove all but the newest `keep` generations.
pub(crate) fn prune_generations(dir: &Path, keep: usize) -> Result<(), ServeError> {
    let gens = list_generations(dir);
    for &g in gens.iter().rev().skip(keep) {
        std::fs::remove_dir_all(gen_dir(dir, g)).map_err(wknng_data::DataError::from)?;
    }
    Ok(())
}

/// Cold-start a data directory: write generation 0 from the initial epoch
/// and create a fresh WAL. Refuses a directory that already holds durable
/// state (warm-start with [`crate::ServeEngine::recover`] instead — cold
/// init must never silently discard a recoverable index).
pub(crate) fn cold_init(
    policy: &DurabilityPolicy,
    epoch0: &Epoch,
) -> Result<DurableSeed, ServeError> {
    std::fs::create_dir_all(&policy.dir).map_err(wknng_data::DataError::from)?;
    if !list_generations(&policy.dir).is_empty() || wal_path(&policy.dir).exists() {
        return Err(ServeError::Config(
            "data dir already holds durable state — warm-start with ServeEngine::recover",
        ));
    }
    write_checkpoint(&policy.dir, epoch0, 0, 0)?;
    let wal = WalWriter::create(&wal_path(&policy.dir), policy.fsync)?;
    Ok(DurableSeed {
        wal,
        dir: policy.dir.clone(),
        checkpoint_every: policy.checkpoint_every,
        keep_generations: policy.keep_generations,
        next_generation: 1,
        crash: policy.crash.clone(),
    })
}

/// Rebuild a [`GraphExtender`] from checkpoint parts, re-marking the
/// manifest's tombstones (the mirror of `mutate::restore`, from disk
/// instead of a published epoch).
fn extender_from(
    vectors: VectorSet,
    lists: Vec<Vec<Neighbor>>,
    deleted: &[bool],
    metric: Metric,
    beam: usize,
    fallback_k: usize,
) -> Result<GraphExtender, ServeError> {
    let graph_k = lists.iter().map(Vec::len).max().filter(|&k| k > 0).unwrap_or(fallback_k);
    let graph =
        Knng { lists, params: WknngParams { k: graph_k, metric, ..WknngParams::default() } };
    let mut ext = GraphExtender::from_parts(vectors, graph, beam)?;
    let tombstones: Vec<u32> =
        deleted.iter().enumerate().filter_map(|(i, &d)| d.then_some(i as u32)).collect();
    if !tombstones.is_empty() {
        ext.delete_batch(&tombstones)?;
    }
    Ok(ext)
}

/// Everything [`recover`] produces: the epoch to publish, the reopened WAL
/// (torn tail repaired, positioned to append), and the recovery counters.
pub(crate) struct Recovered {
    pub(crate) epoch: Epoch,
    pub(crate) wal: WalWriter,
    pub(crate) generation: u64,
    pub(crate) info: RecoveryInfo,
}

/// Warm-start from a data directory: load the newest valid checkpoint
/// (falling back generation by generation past corrupt ones), replay the
/// surviving WAL tail through the live mutator's own `apply_op`, and hand
/// back the recovered epoch. `recovery_ms` is left 0 for the caller to
/// stamp (it owns the clock that includes engine spawn).
pub(crate) fn recover(
    policy: &DurabilityPolicy,
    mutate: &MutatePolicy,
    metric: Metric,
    fallback_k: usize,
) -> Result<Recovered, ServeError> {
    let gens = list_generations(&policy.dir);
    if gens.is_empty() {
        return Err(ServeError::Config("data dir holds no checkpoint generation"));
    }
    let mut loaded = None;
    let mut fell_back = false;
    let mut last_err = ServeError::Config("data dir holds no checkpoint generation");
    for (i, &g) in gens.iter().rev().enumerate() {
        match load_generation(&policy.dir, g) {
            Ok(parts) => {
                fell_back = i > 0;
                loaded = Some((g, parts));
                break;
            }
            Err(e) => last_err = e,
        }
    }
    let Some((generation, (manifest, vectors, lists))) = loaded else {
        return Err(last_err);
    };
    // Open (and physically repair) the WAL before replay; a missing log
    // with a valid checkpoint is unrecoverable ambiguity, not a torn tail.
    let (mut wal, scan) = WalWriter::open(&wal_path(&policy.dir), policy.fsync)?;
    // A fully pruned log carries no numbering of its own: resume from the
    // manifest's position so fresh appends never reuse a covered sequence.
    wal.resume_from(manifest.wal_next_seq);
    let mut ext =
        extender_from(vectors, lists, &manifest.deleted, metric, mutate.beam, fallback_k)?;
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    for rec in &scan.records {
        if rec.seq < manifest.wal_next_seq {
            skipped += 1; // already absorbed by the checkpoint
            continue;
        }
        let op = match &rec.op {
            WalOp::Insert(vs) => MutationOp::Insert(vs.clone()),
            WalOp::Delete(ids) => MutationOp::Delete(ids.clone()),
        };
        apply_op(&mut ext, &op, mutate)?;
        replayed += 1;
    }
    let epoch = Epoch {
        id: 0,
        vectors: ext.vectors().clone(),
        lists: ext.graph().lists,
        deleted: ext.deleted_flags().to_vec(),
        deleted_count: ext.deleted_count(),
    };
    Ok(Recovered {
        epoch,
        wal,
        generation,
        info: RecoveryInfo {
            generation,
            replayed_ops: replayed,
            skipped_ops: skipped,
            torn_bytes: scan.torn_bytes,
            fell_back,
            recovery_ms: 0,
        },
    })
}

/// Checkpoint the just-published epoch from the mutator thread: write the
/// next generation, then prune the WAL prefix it absorbed and any excess
/// old generations. Crash-ordering: the generation is sealed by its
/// manifest rename; the WAL is pruned only after, so a crash between the
/// two merely leaves covered records that replay skips.
pub(crate) fn checkpoint(seed: &mut DurableSeed, epoch: &Epoch) -> Result<(), ServeError> {
    let generation = seed.next_generation;
    let wal_next_seq = seed.wal.next_seq();
    write_checkpoint(&seed.dir, epoch, generation, wal_next_seq)?;
    seed.next_generation += 1;
    seed.wal.prune(wal_next_seq)?;
    prune_generations(&seed.dir, seed.keep_generations)?;
    Ok(())
}

/// What `wknng fsck` found.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every problem found; empty means the directory is consistent.
    pub findings: Vec<String>,
    /// Checkpoint generations present.
    pub generations: Vec<u64>,
    /// The newest generation whose manifest + snapshots verified.
    pub valid_generation: Option<u64>,
    /// Valid records in the WAL.
    pub wal_records: usize,
}

impl FsckReport {
    /// True when no finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fsck: {} generation(s), newest valid {}, {} wal record(s): {}",
            self.generations.len(),
            self.valid_generation.map_or("none".to_string(), |g| g.to_string()),
            self.wal_records,
            if self.is_clean() { "clean" } else { "CORRUPT" }
        )?;
        for finding in &self.findings {
            write!(f, "\n  - {finding}")?;
        }
        Ok(())
    }
}

/// Deep-verify a data directory: every generation's manifest checksum,
/// snapshot integrity, shape agreement, tombstone discipline, and graph
/// slot audit; then the WAL's record checksums, sequence continuity, and
/// its continuity with the newest valid manifest. Never panics, never
/// errors on corruption — everything wrong becomes a finding.
pub fn fsck(dir: &Path) -> FsckReport {
    let mut report = FsckReport::default();
    if !dir.is_dir() {
        report.findings.push(format!("data dir {} does not exist", dir.display()));
        return report;
    }
    report.generations = list_generations(dir);
    if report.generations.is_empty() {
        report.findings.push("no checkpoint generation present".into());
    }
    let mut newest_manifest: Option<CheckpointManifest> = None;
    for &g in report.generations.iter().rev() {
        match load_generation(dir, g) {
            Err(e) => report.findings.push(format!("generation {g}: {e}")),
            Ok((manifest, vectors, lists)) => {
                let mut ok = true;
                let deleted_count = manifest.deleted.iter().filter(|&&d| d).count();
                for (i, list) in lists.iter().enumerate() {
                    if manifest.deleted[i] && !list.is_empty() {
                        report
                            .findings
                            .push(format!("generation {g}: tombstoned slot {i} has edges"));
                        ok = false;
                        break;
                    }
                }
                let graph_k = lists.iter().map(Vec::len).max().unwrap_or(0).max(1);
                let audit = audit_graph(&lists, vectors.len(), graph_k);
                if audit.corruption_count() > 0 {
                    report.findings.push(format!(
                        "generation {g}: graph slot audit found {} corruption(s)",
                        audit.corruption_count()
                    ));
                    ok = false;
                }
                if deleted_count == vectors.len() && !lists.is_empty() {
                    report.findings.push(format!("generation {g}: every slot is tombstoned"));
                    ok = false;
                }
                if ok && newest_manifest.is_none() {
                    report.valid_generation = Some(g);
                    newest_manifest = Some(manifest);
                }
            }
        }
    }
    let wal = wal_path(dir);
    match read_wal(&wal) {
        Err(e) => report.findings.push(format!("wal: {e}")),
        Ok(scan) => {
            report.wal_records = scan.records.len();
            if scan.torn_bytes > 0 {
                report
                    .findings
                    .push(format!("wal: torn tail of {} byte(s) past seq", scan.torn_bytes));
            }
            if let (Some(manifest), Some(first)) = (&newest_manifest, scan.records.first()) {
                if first.seq > manifest.wal_next_seq {
                    report.findings.push(format!(
                        "wal: starts at seq {} but the newest checkpoint only covers \
                         through seq {} — records were lost",
                        first.seq, manifest.wal_next_seq
                    ));
                }
            }
        }
    }
    report
}
