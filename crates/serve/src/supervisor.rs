//! Worker supervision: panic isolation and capped-exponential-backoff
//! respawn.
//!
//! A shard worker is the engine's unit of failure: a panic anywhere in its
//! batch loop (a poisoned index entry, a bug in a kernel, an injected chaos
//! fault) must never take the engine down or strand waiters. Supervision
//! follows the Erlang shape scaled to one process: each worker thread runs
//! its serving loop under [`std::panic::catch_unwind`]; on a panic, the
//! in-flight batch's reply channels resolve to
//! [`crate::ServeError::WorkerLost`] (the `Job` drop guard in the engine),
//! the restart is recorded, and the loop re-enters after a capped
//! exponential backoff — the shard "respawns" from the shared `ServeIndex`
//! with fresh per-thread state (the device backend re-uploads its index
//! replica). The backoff prevents a deterministic crash loop from burning a
//! core, the cap keeps recovery latency bounded, and a graceful drain during
//! backoff still happens: the respawned pass observes the shutdown flag and
//! drains the queue before returning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::error::ServeError;

/// Respawn policy of the shard supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Backoff before the first respawn.
    pub backoff_initial: Duration,
    /// Backoff ceiling; doubling stops here.
    pub backoff_cap: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            backoff_initial: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl SupervisorPolicy {
    /// Validate the policy fields.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.backoff_cap < self.backoff_initial {
            return Err(ServeError::Config("supervisor backoff_cap must be >= backoff_initial"));
        }
        Ok(())
    }

    /// The backoff that follows `current`: doubled, capped.
    pub fn next_backoff(&self, current: Duration) -> Duration {
        current.saturating_mul(2).min(self.backoff_cap)
    }
}

/// Run `pass` until it returns without panicking. Each caught panic calls
/// `after_panic(state, backoff)` — which records the restart and sleeps (in
/// the engine, a shutdown-aware condvar sleep) — then doubles the backoff up
/// to the cap and re-enters `pass`. `state` is threaded through both
/// closures so the caller's statistics survive the unwind.
pub(crate) fn run_supervised<T>(
    policy: &SupervisorPolicy,
    state: &mut T,
    mut pass: impl FnMut(&mut T),
    mut after_panic: impl FnMut(&mut T, Duration),
) {
    let mut backoff = policy.backoff_initial;
    loop {
        // Model checker only: an aborting exploration tears workers down by
        // panicking out of scheduling points — that teardown must not be
        // mistaken for a worker crash and respawned, so re-raise it here,
        // outside the catch. Compiles to nothing in normal builds.
        wknng_sync::abort_checkpoint();
        // The &mut borrows are plain counters and queues guarded elsewhere;
        // a torn partial update cannot outlive the pass that made it.
        if catch_unwind(AssertUnwindSafe(|| pass(state))).is_ok() {
            return;
        }
        after_panic(state, backoff);
        backoff = policy.next_backoff(backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid_and_caps() {
        let p = SupervisorPolicy::default();
        assert!(p.check().is_ok());
        let mut b = p.backoff_initial;
        for _ in 0..20 {
            b = p.next_backoff(b);
        }
        assert_eq!(b, p.backoff_cap);
        let bad = SupervisorPolicy {
            backoff_initial: Duration::from_secs(1),
            backoff_cap: Duration::from_millis(1),
        };
        assert!(matches!(bad.check(), Err(ServeError::Config(_))));
    }

    #[test]
    fn panicking_passes_are_restarted_with_doubling_backoff() {
        let policy = SupervisorPolicy {
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        };
        // (passes started, restarts observed, backoffs seen)
        let mut state = (0u32, 0u32, Vec::<Duration>::new());
        run_supervised(
            &policy,
            &mut state,
            |s| {
                s.0 += 1;
                if s.0 <= 5 {
                    panic!("injected: pass {} dies", s.0);
                }
            },
            |s, backoff| {
                s.1 += 1;
                s.2.push(backoff);
            },
        );
        assert_eq!(state.0, 6, "five panics then one clean pass");
        assert_eq!(state.1, 5);
        let ms: Vec<u64> = state.2.iter().map(|d| d.as_millis() as u64).collect();
        assert_eq!(ms, vec![1, 2, 4, 4, 4], "doubling, then capped");
    }

    #[test]
    fn state_mutations_before_a_panic_survive_the_unwind() {
        let policy = SupervisorPolicy::default();
        let mut state = 0u64;
        run_supervised(
            &policy,
            &mut state,
            |s| {
                *s += 10;
                if *s < 30 {
                    panic!("injected");
                }
            },
            |_, _| {},
        );
        assert_eq!(state, 30);
    }
}
