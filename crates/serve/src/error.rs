//! Typed errors of the serving engine.

use std::fmt;

use wknng_core::KnngError;
use wknng_data::DataError;

/// Errors surfaced by [`crate::ServeEngine`] and the index loader.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is full; the caller must back off and
    /// retry (admission control — the engine never blocks a submitter).
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The engine is shutting down (or was shut down before this query was
    /// answered); no further queries are admitted.
    Shutdown,
    /// The worker serving this query died (panicked) or abandoned it (a
    /// poisoned result channel, a persistently faulting device launch)
    /// before answering. The supervisor respawns the shard; the caller may
    /// retry immediately.
    WorkerLost,
    /// The query's deadline expired before an answer was produced — either
    /// shed from the queue by a worker, or reported by a deadline-bounded
    /// [`crate::Ticket`] wait.
    DeadlineExceeded,
    /// The adaptive overload controller shed this query at dequeue: its
    /// queue sojourn exceeded the shedding bound during sustained overload
    /// (see [`crate::ShedPolicy`]). No search work was spent on it; the
    /// caller should back off and may retry.
    Shed,
    /// A submitted query's dimensionality does not match the index.
    QueryDimMismatch {
        /// Length of the submitted query vector.
        got: usize,
        /// Dimensionality the index serves.
        want: usize,
    },
    /// A submitted query contains a NaN or infinite coordinate.
    NonFiniteQuery {
        /// Index of the first offending coordinate.
        coord: usize,
    },
    /// An in-memory index was assembled from a neighbor-list set whose
    /// length differs from the vector count.
    ListCountMismatch {
        /// Number of neighbor lists supplied.
        lists: usize,
        /// Number of indexed points.
        points: usize,
    },
    /// A mutation was submitted to an engine started without a
    /// [`crate::MutatePolicy`].
    MutationsDisabled,
    /// A mutation batch was refused or abandoned: the rebuild panicked, the
    /// publish validation rejected the candidate index, or the mutator
    /// thread was lost. The live epoch is untouched; the caller may retry.
    MutationFailed(&'static str),
    /// Writing a mutation's write-ahead-log record failed. The mutation was
    /// **not** applied (never acknowledged, never published) and the mutator
    /// halts rather than continue un-journaled — the durable state on disk
    /// stays a true prefix of the acknowledged history.
    WalFailed(DataError),
    /// A malformed [`crate::ServeConfig`] field.
    Config(&'static str),
    /// Invalid search parameters, metric, or query shape (typed, from the
    /// core layer's validation).
    Search(KnngError),
    /// Loading the `.wkv`/`.wkk` pair failed.
    Io(DataError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "queue overloaded: {depth} pending of {capacity} capacity")
            }
            ServeError::Shutdown => write!(f, "engine is shut down"),
            ServeError::WorkerLost => {
                write!(f, "worker lost: the serving worker died before answering")
            }
            ServeError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServeError::Shed => write!(f, "query shed by the overload controller"),
            ServeError::QueryDimMismatch { got, want } => {
                write!(f, "query has {got} coordinates, index serves dimension {want}")
            }
            ServeError::NonFiniteQuery { coord } => {
                write!(f, "query coordinate {coord} is not finite")
            }
            ServeError::ListCountMismatch { lists, points } => {
                write!(f, "{lists} neighbor lists for {points} points")
            }
            ServeError::MutationsDisabled => {
                write!(f, "mutations are disabled: the engine was started without a MutatePolicy")
            }
            ServeError::MutationFailed(why) => write!(f, "mutation failed: {why}"),
            ServeError::WalFailed(e) => {
                write!(f, "write-ahead log failure (mutation not applied, mutator halted): {e}")
            }
            ServeError::Config(what) => write!(f, "invalid serve config: {what}"),
            ServeError::Search(e) => write!(f, "search error: {e}"),
            ServeError::Io(e) => write!(f, "index load error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<KnngError> for ServeError {
    fn from(e: KnngError) -> Self {
        ServeError::Search(e)
    }
}

impl From<DataError> for ServeError {
    fn from(e: DataError) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ServeError::Overloaded { depth: 64, capacity: 64 };
        assert!(e.to_string().contains("64 pending"), "{e}");
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        assert!(ServeError::WorkerLost.to_string().contains("worker"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(ServeError::Shed.to_string().contains("shed"));
        let e = ServeError::QueryDimMismatch { got: 3, want: 16 };
        assert!(e.to_string().contains("3 coordinates") && e.to_string().contains("16"), "{e}");
        let e = ServeError::NonFiniteQuery { coord: 5 };
        assert!(e.to_string().contains("coordinate 5"), "{e}");
        let e = ServeError::ListCountMismatch { lists: 9, points: 10 };
        assert!(e.to_string().contains("9 neighbor lists for 10 points"), "{e}");
        assert!(ServeError::Config("batch_size must be >= 1").to_string().contains("batch_size"));
        assert!(ServeError::MutationsDisabled.to_string().contains("MutatePolicy"));
        let e = ServeError::MutationFailed("mutator panicked during rebuild");
        assert!(e.to_string().contains("panicked"), "{e}");
        let e = ServeError::WalFailed(DataError::ZeroDimension);
        assert!(e.to_string().contains("write-ahead log"), "{e}");
        assert!(e.to_string().contains("not applied"), "{e}");
        let e: ServeError = KnngError::ZeroK.into();
        assert!(matches!(e, ServeError::Search(_)));
        let e: ServeError = DataError::ZeroDimension.into();
        assert!(matches!(e, ServeError::Io(_)));
    }
}
