//! The build-aside mutation pipeline: a background thread that absorbs
//! insert/delete batches, patches the graph off to the side, validates the
//! candidate, and publishes it as a new [`crate::Epoch`] — atomically, with
//! the old epoch serving until the instant of the swap.
//!
//! Every mutation batch is one *swap attempt*:
//!
//! 1. **rebuild** — apply the batch to the resident [`GraphExtender`]
//!    (greedy insert + local NN-descent refinement, or tombstone delete
//!    with reverse-edge patching), compacting when the tombstone fraction
//!    crosses [`MutatePolicy::compact_threshold`];
//! 2. **validate** — audit the candidate lists; any corruption-class
//!    finding refuses the swap and the live epoch stays untouched;
//! 3. **publish** — [`crate::EpochHandle::publish`] swaps the `Arc`; the
//!    critical section is the only reader-visible pause and is recorded
//!    per-swap for the report's `swap_p99_pause_us`.
//!
//! The rebuild phase runs panic-isolated: a panic (or a refused publish)
//! discards the torn extender and restores it from the last published
//! epoch, so a faulty batch can never corrupt subsequent ones. Swap-scoped
//! chaos ([`wknng_simt::SwapFault`], addressed by swap attempt index)
//! injects exactly these failures in tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use wknng_sync::mpsc::{self, RecvTimeoutError};
use wknng_sync::{thread, Arc};

use wknng_core::{audit_graph, GraphExtender, Knng, WknngParams};
use wknng_data::{CrashScope, Neighbor, VectorSet, WalOp};
use wknng_simt::SwapFault;

use crate::durability::{checkpoint, DurableSeed};
use crate::engine::DEADLINE_GRACE;
use crate::epoch::{Epoch, EpochHandle};
use crate::error::ServeError;
use crate::histogram::LatencyHistogram;

/// Online-mutation policy of a [`crate::ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MutatePolicy {
    /// Local NN-descent refinement rounds after each insert batch (see
    /// [`GraphExtender::refine`]). 0 skips refinement entirely.
    pub refine_rounds: usize,
    /// Insertion search beam (0 = the extender's `4·k` default).
    pub beam: usize,
    /// Tombstone fraction above which a batch triggers compaction (the
    /// background rebuild that renumbers survivors). Must be in `(0, 1]`.
    pub compact_threshold: f64,
}

impl Default for MutatePolicy {
    fn default() -> Self {
        MutatePolicy { refine_rounds: 2, beam: 0, compact_threshold: 0.3 }
    }
}

impl MutatePolicy {
    /// Validate the policy fields.
    pub fn check(&self) -> Result<(), ServeError> {
        if !(self.compact_threshold > 0.0 && self.compact_threshold <= 1.0) {
            return Err(ServeError::Config("compact_threshold must be in (0, 1]"));
        }
        Ok(())
    }
}

/// One mutation batch.
#[derive(Debug, Clone)]
pub enum MutationOp {
    /// Insert every row as a new point; ids are assigned sequentially past
    /// the current epoch's length.
    Insert(VectorSet),
    /// Tombstone the given ids (idempotent; out-of-range ids fail the
    /// whole batch).
    Delete(Vec<u32>),
}

/// What a successfully published mutation batch reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The epoch the batch was published as.
    pub epoch: u64,
    /// Points inserted or newly deleted by this batch.
    pub applied: usize,
    /// True when the batch triggered a compaction (ids were renumbered —
    /// previously returned ids are relative to earlier epochs).
    pub compacted: bool,
}

type MutationReply = Result<MutationOutcome, ServeError>;

/// Handle to one in-flight mutation batch. Mirrors [`crate::Ticket`]: the
/// wait is answered exactly once, with a typed error if the mutator dies.
#[derive(Debug)]
pub struct MutationTicket {
    pub(crate) rx: mpsc::Receiver<MutationReply>,
}

impl MutationTicket {
    /// Block until the batch is published or refused.
    pub fn wait(self) -> MutationReply {
        self.rx.recv().unwrap_or(Err(ServeError::MutationFailed("mutator thread lost")))
    }

    /// [`MutationTicket::wait`] bounded by a timeout; mirrors
    /// [`crate::Ticket::wait_timeout`]'s grace convention.
    pub fn wait_timeout(self, timeout: Duration) -> MutationReply {
        match self.rx.recv_timeout(timeout + DEADLINE_GRACE) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => {
                Err(ServeError::MutationFailed("mutator thread lost"))
            }
        }
    }
}

/// An admitted mutation batch. The `Drop` guard is the mutation-side
/// no-hang invariant: however the job leaves the mutator — published,
/// refused, or abandoned by a panic so abrupt the explicit reply was lost —
/// its ticket receives exactly one answer.
pub(crate) struct MutationJob {
    pub(crate) op: MutationOp,
    pub(crate) tx: Option<mpsc::Sender<MutationReply>>,
}

impl MutationJob {
    fn respond(mut self, reply: MutationReply) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(reply);
        }
    }
}

impl Drop for MutationJob {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Err(ServeError::MutationFailed("mutation batch abandoned")));
        }
    }
}

/// Counters the mutator folds into the final [`crate::ServeReport`].
#[derive(Debug, Default)]
pub(crate) struct MutatorStats {
    pub(crate) mutations_applied: u64,
    pub(crate) swaps: u64,
    pub(crate) swaps_refused: u64,
    /// Publish critical-section durations, recorded in nanoseconds.
    pub(crate) pause: LatencyHistogram,
    /// WAL records appended (acknowledged batches on a durable engine).
    pub(crate) wal_appends: u64,
    /// WAL frame bytes appended.
    pub(crate) wal_bytes: u64,
    /// Checkpoint generations written by this mutator.
    pub(crate) checkpoints: u64,
}

/// Everything the mutator thread needs, threaded through one struct so the
/// engine can spawn it with a single `Arc` clone of the epoch handle.
pub(crate) struct MutatorSeed {
    pub(crate) epochs: Arc<EpochHandle>,
    pub(crate) policy: MutatePolicy,
    pub(crate) params: WknngParams,
    pub(crate) chaos: Option<Arc<crate::engine::Chaos>>,
    pub(crate) durable: Option<DurableSeed>,
}

/// Rebuild a [`GraphExtender`] from a published epoch — the recovery path
/// after a rebuild panic or a refused publish. Tombstones are re-marked via
/// the idempotent delete (the epoch's lists already contain no edge to any
/// tombstone, so the re-mark is pure bookkeeping).
fn restore(epoch: &Epoch, params: WknngParams, beam: usize) -> GraphExtender {
    let graph = Knng { lists: epoch.lists.clone(), params };
    let mut ext = GraphExtender::from_parts(epoch.vectors.clone(), graph, beam)
        .expect("a published epoch is structurally valid");
    let tombstones: Vec<u32> =
        (0..epoch.len() as u32).filter(|&p| epoch.deleted[p as usize]).collect();
    if !tombstones.is_empty() {
        ext.delete_batch(&tombstones).expect("tombstone ids are in range");
    }
    ext
}

/// Apply one mutation batch to an extender under a policy — THE definition
/// of what a batch does, shared verbatim by the live mutator's rebuild
/// phase and by WAL replay during recovery, so a recovered index is
/// bit-identical to the one the mutator had (the extender itself is fully
/// deterministic — no RNG anywhere in insert/refine/delete/compact).
/// Returns `(applied, compacted)`.
pub(crate) fn apply_op(
    ext: &mut GraphExtender,
    op: &MutationOp,
    policy: &MutatePolicy,
) -> Result<(usize, bool), ServeError> {
    let applied = match op {
        MutationOp::Insert(points) => {
            let ids = ext.insert_batch(points)?;
            if policy.refine_rounds > 0 {
                ext.refine(policy.refine_rounds);
            }
            ids.len()
        }
        MutationOp::Delete(ids) => ext.delete_batch(ids)?,
    };
    let compacted = ext.tombstone_fraction() > policy.compact_threshold;
    if compacted {
        ext.compact();
    }
    Ok((applied, compacted))
}

/// The WAL image of a mutation batch.
pub(crate) fn to_wal_op(op: &MutationOp) -> WalOp {
    match op {
        MutationOp::Insert(points) => WalOp::Insert(points.clone()),
        MutationOp::Delete(ids) => WalOp::Delete(ids.clone()),
    }
}

/// Corrupt a candidate snapshot the way [`SwapFault::PoisonPublish`] models
/// — a torn write between rebuild and publish. Points the first non-empty
/// list at an out-of-range id, which the validation audit classifies as
/// corruption and must catch.
fn poison(lists: &mut [Vec<Neighbor>]) {
    if let Some(list) = lists.iter_mut().find(|l| !l.is_empty()) {
        list[0] = Neighbor::new(u32::MAX, list[0].dist);
    }
}

/// The mutator thread body: drain mutation jobs until the engine drops the
/// sender, publishing one epoch per successful batch.
///
/// On a durable engine the batch is journaled *between* validation and
/// publish: rebuild → audit → WAL append (fsynced per policy) → publish →
/// acknowledge → maybe checkpoint. An acknowledgement therefore implies
/// the record is durable; a WAL failure refuses the batch with a typed
/// [`ServeError::WalFailed`] and halts the mutator the way a dead process
/// halts (remaining queued jobs are answered by their drop guards).
pub(crate) fn mutator(mut seed: MutatorSeed, rx: mpsc::Receiver<MutationJob>) -> MutatorStats {
    let mut stats = MutatorStats::default();
    // The crash plan arms on this thread: every WAL append and checkpoint
    // write below consumes injection points from the one shared schedule.
    let _crash_scope = seed
        .durable
        .as_mut()
        .and_then(|d| d.crash.take())
        .filter(|plan| !plan.is_empty())
        .map(CrashScope::install);
    let first = seed.epochs.pin();
    let mut ext = restore(&first, seed.params, seed.policy.beam);
    drop(first);
    let mut next_swap: u64 = 0;
    let mut since_checkpoint: u64 = 0;
    while let Ok(job) = rx.recv() {
        // Under the model checker an aborting run must be able to unwind
        // through this loop even though the rebuild phase catches panics.
        wknng_sync::abort_checkpoint();
        let fault = seed.chaos.as_ref().and_then(|c| {
            let idx = next_swap;
            next_swap += 1;
            c.plan.swap_fault(idx)
        });
        // Phase 1: rebuild, panic-isolated. A panic abandons the torn
        // extender; the job is answered (typed, never a hang) and the
        // extender is restored from the last *published* generation.
        let rebuilt = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(SwapFault::PanicRebuild) => {
                    panic!("chaos: injected rebuild panic")
                }
                Some(SwapFault::StallRebuild(d)) => thread::sleep(d),
                _ => {}
            }
            apply_op(&mut ext, &job.op, &seed.policy)
        }));
        let (applied, compacted) = match rebuilt {
            Ok(Ok(ok)) => ok,
            Ok(Err(e)) => {
                // A typed rebuild error (bad dims, out-of-range id) rejects
                // only this batch; the extender is untouched by validation
                // at the batch entry points, but an insert that failed
                // midway would be torn — restore to be safe.
                ext = restore(&seed.epochs.pin(), seed.params, seed.policy.beam);
                stats.swaps_refused += 1;
                job.respond(Err(e));
                continue;
            }
            Err(_panic) => {
                ext = restore(&seed.epochs.pin(), seed.params, seed.policy.beam);
                stats.swaps_refused += 1;
                job.respond(Err(ServeError::MutationFailed("mutator panicked during rebuild")));
                continue;
            }
        };
        // Phase 2: snapshot + validate. The candidate is audited *after*
        // any chaos poisoning, so a torn write between rebuild and publish
        // is caught here and the live epoch survives.
        let candidate = ext.graph();
        let mut lists = candidate.lists;
        if matches!(fault, Some(SwapFault::PoisonPublish)) {
            poison(&mut lists);
        }
        let audit = audit_graph(&lists, ext.len(), seed.params.k);
        if audit.corruption_count() > 0 {
            ext = restore(&seed.epochs.pin(), seed.params, seed.policy.beam);
            stats.swaps_refused += 1;
            job.respond(Err(ServeError::MutationFailed(
                "publish validation rejected the candidate index",
            )));
            continue;
        }
        // Phase 3: journal. The batch is validated but not yet visible;
        // once the WAL append returns, the mutation is durable and the
        // acknowledgement below is honest. A failed append (injected crash
        // or real I/O death) refuses the batch and halts — the in-memory
        // apply is discarded with the thread, never silently kept.
        if let Some(durable) = seed.durable.as_mut() {
            if let Err(e) = durable.wal.append(&to_wal_op(&job.op)) {
                stats.swaps_refused += 1;
                job.respond(Err(ServeError::WalFailed(e)));
                break;
            }
            stats.wal_appends = durable.wal.appends();
            stats.wal_bytes = durable.wal.bytes_appended();
        }
        // Phase 4: publish atomically, then acknowledge.
        let epoch = Epoch {
            id: seed.epochs.next_id(),
            vectors: ext.vectors().clone(),
            lists,
            deleted: ext.deleted_flags().to_vec(),
            deleted_count: ext.deleted_count(),
        };
        let id = epoch.id;
        let (published, pause) = seed.epochs.publish(epoch);
        stats.pause.record(pause.as_nanos() as u64);
        stats.swaps += 1;
        stats.mutations_applied += applied as u64;
        job.respond(Ok(MutationOutcome { epoch: id, applied, compacted }));
        // Phase 5: checkpoint on cadence. The ack already happened — the
        // op is safe in the WAL whatever the checkpoint does. A crash here
        // halts the mutator; recovery falls back to the last sealed
        // generation plus the intact log.
        if let Some(durable) = seed.durable.as_mut() {
            since_checkpoint += 1;
            if durable.checkpoint_every > 0 && since_checkpoint >= durable.checkpoint_every {
                match checkpoint(durable, &published) {
                    Ok(()) => {
                        stats.checkpoints += 1;
                        since_checkpoint = 0;
                    }
                    Err(_dead) => break,
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        assert!(MutatePolicy::default().check().is_ok());
        let bad = MutatePolicy { compact_threshold: 0.0, ..MutatePolicy::default() };
        assert!(matches!(bad.check(), Err(ServeError::Config(_))));
        let bad = MutatePolicy { compact_threshold: 1.5, ..MutatePolicy::default() };
        assert!(matches!(bad.check(), Err(ServeError::Config(_))));
    }

    #[test]
    fn dropped_job_answers_its_ticket() {
        let (tx, rx) = mpsc::channel();
        let job = MutationJob { op: MutationOp::Delete(vec![]), tx: Some(tx) };
        drop(job);
        let ticket = MutationTicket { rx };
        assert_eq!(ticket.wait(), Err(ServeError::MutationFailed("mutation batch abandoned")));
    }

    #[test]
    fn poison_introduces_an_audit_catchable_corruption() {
        let mut lists = vec![vec![Neighbor::new(1, 0.5)], vec![Neighbor::new(0, 0.5)]];
        poison(&mut lists);
        let report = audit_graph(&lists, 2, 1);
        assert!(report.corruption_count() > 0, "poison must be audit-visible");
    }
}
