//! The metrics summary a drained engine returns.

use std::fmt;
use std::time::Duration;

use crate::histogram::LatencyHistogram;

/// Aggregated serving metrics, produced by
/// [`crate::ServeEngine::shutdown`] after the graceful drain.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Queries answered.
    pub served: u64,
    /// Queries admitted into the queue (includes still-pending ones dropped
    /// by an inert shutdown).
    pub submitted: u64,
    /// Queries rejected with `Overloaded`.
    pub rejected: u64,
    /// Worker shards.
    pub shards: usize,
    /// Batches dispatched across all shards.
    pub batches: u64,
    /// Mean queries per dispatched batch.
    pub mean_batch: f64,
    /// High-water mark of the submission queue.
    pub max_queue_depth: usize,
    /// Wall time from engine start to drain completion.
    pub elapsed: Duration,
    /// Answered queries per second of wall time.
    pub throughput_qps: f64,
    /// End-to-end latency distribution (submission to response), merged
    /// across shards.
    pub latency: LatencyHistogram,
    /// Mean distance evaluations per answered query.
    pub mean_distance_evals: f64,
    /// Mean node expansions per answered query.
    pub mean_expansions: f64,
    /// Device launch faults absorbed by retry (0 without fault injection).
    pub launch_faults: u64,
    /// Queries shed by the adaptive overload controller (answered
    /// [`crate::ServeError::Shed`] without search work).
    pub shed: u64,
    /// Queries whose deadline expired — shed from the queue before search,
    /// or finished past-deadline (answered, but excluded from the latency
    /// percentiles).
    pub deadline_expired: u64,
    /// Shard workers respawned by the supervisor after a panic.
    pub worker_restarts: u64,
    /// Batches served with browned-out (degraded) search parameters.
    pub brownout_batches: u64,
    /// Id of the epoch current at shutdown (0 when nothing was published).
    pub epoch: u64,
    /// Points inserted or deleted by published mutation batches.
    pub mutations_applied: u64,
    /// Epochs published by the mutator (successful swaps).
    pub swaps: u64,
    /// p99 of the publish critical-section pause, in microseconds — the
    /// only instant a swap can hold readers behind the epoch lock.
    pub swap_p99_pause_us: u64,
    /// Mutation records appended to the write-ahead log (0 without a
    /// [`crate::DurabilityPolicy`]).
    pub wal_appends: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Checkpoints written by the mutator's cadence during this run.
    pub checkpoints: u64,
    /// WAL records replayed by warm-start recovery (0 on a cold start).
    pub recovery_replayed_ops: u64,
    /// Wall time warm-start recovery took, in milliseconds.
    pub recovery_ms: u64,
}

impl ServeReport {
    /// Latency percentile as a [`Duration`] (`ZERO` when nothing was served).
    pub fn latency_p(&self, p: f64) -> Duration {
        Duration::from_nanos(self.latency.percentile(p).unwrap_or(0))
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} / submitted {} / rejected {} ({} shard(s), {} batches, mean batch {:.1})",
            self.served, self.submitted, self.rejected, self.shards, self.batches, self.mean_batch
        )?;
        writeln!(
            f,
            "throughput {:.0} q/s over {:.3} s, max queue depth {}",
            self.throughput_qps,
            self.elapsed.as_secs_f64(),
            self.max_queue_depth
        )?;
        writeln!(
            f,
            "latency p50 {:?} / p95 {:?} / p99 {:?} (max {:?})",
            self.latency_p(50.0),
            self.latency_p(95.0),
            self.latency_p(99.0),
            Duration::from_nanos(self.latency.max().unwrap_or(0)),
        )?;
        writeln!(
            f,
            "work/query: {:.1} distance evals, {:.1} expansions; launch faults {}",
            self.mean_distance_evals, self.mean_expansions, self.launch_faults
        )?;
        writeln!(
            f,
            "resilience: shed {} / deadline expired {} / worker restarts {} / brownout batches {}",
            self.shed, self.deadline_expired, self.worker_restarts, self.brownout_batches
        )?;
        writeln!(
            f,
            "mutation: epoch {} / applied {} / swaps {} / swap p99 pause {} us",
            self.epoch, self.mutations_applied, self.swaps, self.swap_p99_pause_us
        )?;
        write!(
            f,
            "durability: wal appends {} / wal bytes {} / checkpoints {} / recovered {} ops in {} ms",
            self.wal_appends,
            self.wal_bytes,
            self.checkpoints,
            self.recovery_replayed_ops,
            self.recovery_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_sections() {
        let mut latency = LatencyHistogram::new();
        for v in [1_000_000u64, 2_000_000, 40_000_000] {
            latency.record(v);
        }
        let r = ServeReport {
            served: 3,
            submitted: 4,
            rejected: 1,
            shards: 2,
            batches: 2,
            mean_batch: 1.5,
            max_queue_depth: 3,
            elapsed: Duration::from_millis(120),
            throughput_qps: 25.0,
            latency,
            mean_distance_evals: 81.5,
            mean_expansions: 7.25,
            launch_faults: 0,
            shed: 5,
            deadline_expired: 2,
            worker_restarts: 1,
            brownout_batches: 4,
            epoch: 3,
            mutations_applied: 120,
            swaps: 3,
            swap_p99_pause_us: 42,
            wal_appends: 7,
            wal_bytes: 9001,
            checkpoints: 2,
            recovery_replayed_ops: 6,
            recovery_ms: 11,
        };
        let s = r.to_string();
        assert!(s.contains("served 3"), "{s}");
        assert!(s.contains("rejected 1"), "{s}");
        assert!(s.contains("p50"), "{s}");
        assert!(s.contains("81.5 distance evals"), "{s}");
        assert!(s.contains("shed 5"), "{s}");
        assert!(s.contains("deadline expired 2"), "{s}");
        assert!(s.contains("worker restarts 1"), "{s}");
        assert!(s.contains("brownout batches 4"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");
        assert!(s.contains("applied 120"), "{s}");
        assert!(s.contains("swaps 3"), "{s}");
        assert!(s.contains("swap p99 pause 42 us"), "{s}");
        assert!(s.contains("wal appends 7"), "{s}");
        assert!(s.contains("wal bytes 9001"), "{s}");
        assert!(s.contains("checkpoints 2"), "{s}");
        assert!(s.contains("recovered 6 ops in 11 ms"), "{s}");
        assert!(r.latency_p(50.0) >= Duration::from_micros(900));
    }
}
