//! Log-bucketed latency histogram (HdrHistogram-style, 1/16 precision).
//!
//! Fixed memory, O(1) record, mergeable across shards — the standard shape
//! for serving-side latency tracking. Values are bucketed with a 4-bit
//! mantissa below each power of two, so any reported percentile is within
//! 6.25 % of the recorded value.

/// Sub-buckets per octave (4-bit mantissa).
const SUB: usize = 16;
/// Bucket count: exact values `0..16`, then 16 sub-buckets for each of the
/// 60 octaves a `u64` can hold above that.
const BUCKETS: usize = SUB + 60 * SUB;

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    SUB + (msb - 4) * SUB + sub
}

/// Lower bound of bucket `id` (the value percentiles report).
fn bucket_floor(id: usize) -> u64 {
    if id < SUB {
        return id as u64;
    }
    let oct = (id - SUB) / SUB + 4;
    let sub = ((id - SUB) % SUB) as u64;
    (SUB as u64 + sub) << (oct - 4)
}

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds, in the
/// engine's use).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (exact, not bucketed); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Largest recorded sample (exact); `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `p`-th percentile (0 < p ≤ 100), reported as the floor of the
    /// bucket holding the rank-`⌈p/100·count⌉` sample. `None` when empty.
    ///
    /// Monotone in `p` by construction, so `p50 ≤ p95 ≤ p99` always holds.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (id, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_floor(id));
            }
        }
        Some(bucket_floor(BUCKETS - 1))
    }

    /// Merge another histogram into this one (shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        let p50 = h.percentile(50.0).unwrap();
        assert_eq!(p50, h.percentile(95.0).unwrap());
        assert_eq!(p50, h.percentile(99.0).unwrap());
        // Bucketing error is bounded by the 1/16 mantissa resolution.
        assert!(p50 <= 1000 && 1000 - p50 <= 1000 / 16, "p50 = {p50}");
        assert_eq!(h.mean(), Some(1000.0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), Some(15));
        assert_eq!(h.percentile(0.001), Some(0));
    }

    #[test]
    fn heavy_tail_separates_p50_from_p99() {
        // 90 fast samples at ~1 ms, 10 stragglers at ~1 s: the tail must pull
        // p99 three orders of magnitude above p50, and the percentile curve
        // must stay monotone.
        let mut h = LatencyHistogram::new();
        for i in 0..90u64 {
            h.record(1_000_000 + i * 1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000_000);
        }
        let (p50, p95, p99) =
            (h.percentile(50.0).unwrap(), h.percentile(95.0).unwrap(), h.percentile(99.0).unwrap());
        assert!(p50 <= p95 && p95 <= p99, "monotone: {p50} {p95} {p99}");
        assert!(p50 < 2_000_000, "p50 in the fast mode: {p50}");
        assert!(p99 > 900_000_000, "p99 in the tail: {p99}");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [5u64, 70, 900, 33_000, 1_000_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [17u64, 250, 8_000_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn concurrent_shard_merge_preserves_count_and_percentiles() {
        // The engine's aggregation shape: each shard records its own
        // histogram on its own thread, the coordinator merges them in
        // whatever order the shards finish. The merged result must carry
        // every sample and agree with a single histogram that saw all of
        // them, regardless of merge order.
        const SHARDS: u64 = 8;
        const PER_SHARD: u64 = 500;
        let (tx, rx) = std::sync::mpsc::channel::<LatencyHistogram>();
        let workers: Vec<_> = (0..SHARDS)
            .map(|s| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut h = LatencyHistogram::new();
                    for i in 0..PER_SHARD {
                        // Deterministic per-shard mix: a fast mode, a slow
                        // mode, and a straggler, distinct across shards.
                        let v = match i % 3 {
                            0 => 1_000 + s * 37 + i,
                            1 => 250_000 + s * 1_001 + i * 13,
                            _ => 40_000_000 + s * 777_777,
                        };
                        h.record(v);
                    }
                    tx.send(h).unwrap();
                })
            })
            .collect();
        drop(tx);
        let mut merged = LatencyHistogram::new();
        while let Ok(shard) = rx.recv() {
            merged.merge(&shard);
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(merged.count(), SHARDS * PER_SHARD, "every shard sample must survive");
        // Reference: the same samples recorded sequentially into one
        // histogram must produce identical percentiles.
        let mut whole = LatencyHistogram::new();
        for s in 0..SHARDS {
            for i in 0..PER_SHARD {
                let v = match i % 3 {
                    0 => 1_000 + s * 37 + i,
                    1 => 250_000 + s * 1_001 + i * 13,
                    _ => 40_000_000 + s * 777_777,
                };
                whole.record(v);
            }
        }
        let mut prev = 0u64;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let got = merged.percentile(p).unwrap();
            assert_eq!(got, whole.percentile(p).unwrap(), "p{p}");
            assert!(got >= prev, "percentiles must stay monotone: p{p} = {got} < {prev}");
            prev = got;
        }
        assert_eq!(merged.mean(), whole.mean());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn merging_an_empty_histogram_is_identity_both_ways() {
        let mut a = LatencyHistogram::new();
        for v in [3u64, 500, 42_000] {
            a.record(v);
        }
        let before: Vec<Option<u64>> =
            [1.0, 50.0, 99.0, 100.0].iter().map(|&p| a.percentile(p)).collect();
        // Non-empty ← empty: nothing changes (min must not be clobbered by
        // the empty side's u64::MAX sentinel, max not by its 0).
        a.merge(&LatencyHistogram::new());
        let after: Vec<Option<u64>> =
            [1.0, 50.0, 99.0, 100.0].iter().map(|&p| a.percentile(p)).collect();
        assert_eq!(before, after);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(42_000));
        // Empty ← non-empty: adopts the other side wholesale.
        let mut e = LatencyHistogram::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
        assert_eq!(e.percentile(50.0), a.percentile(50.0));
        assert_eq!(e.max(), Some(42_000));
        // Empty ← empty stays empty.
        let mut z = LatencyHistogram::new();
        z.merge(&LatencyHistogram::new());
        assert_eq!(z.count(), 0);
        assert_eq!(z.percentile(50.0), None);
        assert_eq!(z.max(), None);
    }

    #[test]
    fn merging_single_sample_histograms_with_disjoint_buckets() {
        // Two shards that each saw one query, in buckets far apart: the
        // merge must place p50 at the low sample and p100 at the high one.
        let mut low = LatencyHistogram::new();
        low.record(10); // exact bucket
        let mut high = LatencyHistogram::new();
        high.record(1 << 30);
        low.merge(&high);
        assert_eq!(low.count(), 2);
        assert_eq!(low.percentile(50.0), Some(10));
        let p100 = low.percentile(100.0).unwrap();
        assert!(p100 <= (1 << 30) && (1 << 30) - p100 <= (1u64 << 30) / 16, "p100 = {p100}");
        assert_eq!(low.max(), Some(1 << 30));
        assert_eq!(low.mean(), Some((10.0 + (1u64 << 30) as f64) / 2.0));
    }

    #[test]
    fn percentile_extremes_clamp_to_first_and_last_sample() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        h.record(9_000_000);
        // Rank clamps to [1, count]: p→0 hits the smallest sample's bucket,
        // p = 100 the largest's.
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(1e-9), Some(7));
        let top = h.percentile(100.0).unwrap();
        assert!(top <= 9_000_000 && 9_000_000 - top <= 9_000_000 / 16, "top = {top}");
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let id = bucket_of(v);
            let floor = bucket_floor(id);
            assert!(floor <= v, "floor({v}) = {floor}");
            // Floor is within one mantissa step.
            assert!(v - floor <= (v >> 4), "v {v} floor {floor}");
        }
    }
}
