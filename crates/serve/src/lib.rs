//! # wknng-serve — batched query serving over a built w-KNNG
//!
//! The ROADMAP's north star is a similarity-search system "serving heavy
//! traffic"; this crate is that serving layer. It loads a built `.wkv`/`.wkk`
//! pair (or wraps an in-memory build), shards the index across worker
//! threads, coalesces incoming queries into warp-friendly batches, and
//! answers them with the graph beam search — either the host reference or
//! the one-query-per-warp device kernel
//! ([`wknng_core::kernels::beam`]), which returns bit-identical results.
//!
//! The production envelope around the search:
//!
//! * bounded admission queue — [`ServeEngine::submit`] never blocks, a full
//!   queue answers [`ServeError::Overloaded`];
//! * batch-size / linger-deadline batching policy ([`ServeConfig`]);
//! * graceful drain ([`ServeEngine::shutdown`]) returning a
//!   [`ServeReport`] with p50/p95/p99 latency, throughput, and per-query
//!   work counters;
//! * opt-in reverse-edge augmentation ([`Augment`]) so greedy descent can
//!   escape weakly connected components.
//!
//! The resilience envelope on top (see DESIGN.md "Serving resilience"):
//!
//! * supervised shards — a panicking worker answers its in-flight queries
//!   [`ServeError::WorkerLost`] and is respawned from the shared index with
//!   capped exponential backoff ([`SupervisorPolicy`]); a ticket wait never
//!   hangs on a dead worker;
//! * per-query deadlines ([`ServeConfig::deadline`],
//!   [`Ticket::wait_timeout`]) — deadline-expired queries are shed from the
//!   queue before any search work;
//! * adaptive load shedding ([`ShedPolicy`]) — a CoDel-style sojourn
//!   controller that first browns out the search
//!   ([`wknng_core::SearchParams::degraded`]) and then sheds, keeping p99
//!   bounded under sustained overload;
//! * a deterministic chaos harness ([`ServeConfig::chaos`], driven by
//!   [`wknng_simt::FaultPlan`] serve faults) for injecting worker panics,
//!   slow batches, and poisoned result channels in tests and from the CLI.
//!
//! The live-mutation envelope (see DESIGN.md "Live mutation & epoch
//! publication"):
//!
//! * epoch-published index ([`Epoch`], [`EpochHandle`]) — workers pin the
//!   current epoch per batch, so a swap never tears an in-flight query and
//!   retired epochs free themselves when their last reader finishes;
//! * online insert/delete ([`ServeEngine::insert`],
//!   [`ServeEngine::delete`], gated by [`MutatePolicy`]) — a build-aside
//!   mutator thread extends or tombstones the graph, locally refines it,
//!   validates the candidate with the structural audit, and publishes a new
//!   epoch atomically; a refused or panicked batch leaves the live epoch
//!   untouched;
//! * swap-scoped chaos ([`wknng_simt::SwapFault`]) — rebuild panics, stalls,
//!   and poisoned publishes prove the no-hang / no-torn-read invariants.
//!
//! The durability envelope (see DESIGN.md "Durability & recovery"):
//!
//! * crash-consistent journaling ([`DurabilityPolicy`]) — every acknowledged
//!   mutation is appended to a checksummed write-ahead log *before* its
//!   ticket resolves, and published epochs are checkpointed on a cadence
//!   through the v2 snapshot writers (manifest written last, atomically);
//! * warm-start recovery ([`ServeEngine::recover`]) — load the newest valid
//!   checkpoint generation (falling back past corrupt ones), replay the
//!   surviving WAL tail through the mutator's own apply path, and serve;
//! * offline deep verification ([`fsck`]) — checksums, manifest/WAL
//!   sequence continuity, and the structural graph audit over every
//!   generation on disk;
//! * deterministic crash injection ([`wknng_data::CrashPlan`], threaded via
//!   [`DurabilityPolicy::crash`]) — kill-before-fsync, torn appends, and
//!   killed checkpoint renames prove that recovery never loses an
//!   acknowledged mutation.
//!
//! ```
//! use wknng_core::WknngBuilder;
//! use wknng_data::DatasetSpec;
//! use wknng_serve::{ServeConfig, ServeEngine, ServeIndex};
//!
//! let vs = DatasetSpec::Manifold { n: 200, ambient_dim: 16, intrinsic_dim: 3 }
//!     .generate(7)
//!     .vectors;
//! let (graph, _) = WknngBuilder::new(8).trees(4).leaf_size(24).build_native(&vs).unwrap();
//! let index = ServeIndex::from_parts(vs.clone(), graph.lists).unwrap();
//! let engine = ServeEngine::start(index, ServeConfig::default()).unwrap();
//! let res = engine.query(vs.row(17).to_vec()).unwrap();
//! assert_eq!(res.neighbors[0].index, 17);
//! let report = engine.shutdown();
//! assert_eq!(report.served, 1);
//! ```

pub mod config;
pub mod durability;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod histogram;
pub mod mutate;
#[cfg(feature = "model")]
pub mod race;
pub mod report;
pub mod shed;
pub mod supervisor;

pub use config::{Augment, Backend, ServeConfig};
pub use durability::{
    fsck, list_generations, wal_path, DurabilityPolicy, FsckReport, RecoveryInfo,
};
pub use engine::{QueryResult, ServeEngine, ServeIndex, Ticket, DEADLINE_GRACE};
pub use epoch::{Epoch, EpochHandle};
pub use error::ServeError;
pub use histogram::LatencyHistogram;
pub use mutate::{MutatePolicy, MutationOp, MutationOutcome, MutationTicket};
pub use report::ServeReport;
pub use shed::ShedPolicy;
pub use supervisor::SupervisorPolicy;

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use wknng_core::{search, SearchParams, WknngBuilder};
    use wknng_data::{DatasetSpec, Metric, VectorSet};
    use wknng_simt::DeviceConfig;

    use super::*;

    fn built(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<Vec<wknng_data::Neighbor>>) {
        let vs =
            DatasetSpec::Manifold { n, ambient_dim: dim, intrinsic_dim: 3 }.generate(seed).vectors;
        let (g, _) = WknngBuilder::new(8)
            .trees(4)
            .leaf_size(24)
            .exploration(2)
            .seed(seed + 1)
            .build_native(&vs)
            .expect("valid build");
        (vs, g.lists)
    }

    fn engine_with(cfg: ServeConfig) -> (ServeEngine, VectorSet, Vec<Vec<wknng_data::Neighbor>>) {
        let (vs, lists) = built(200, 16, 11);
        let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
        (ServeEngine::start(index, cfg).unwrap(), vs, lists)
    }

    #[test]
    fn serves_queries_matching_direct_search() {
        let (engine, vs, lists) = engine_with(ServeConfig::default());
        let g = wknng_core::Knng { lists, params: Default::default() };
        for p in [0usize, 13, 57, 199] {
            let res = engine.query(vs.row(p).to_vec()).unwrap();
            let (want, wstats) = search(&vs, &g, vs.row(p), &SearchParams::default());
            assert_eq!(res.neighbors, want, "point {p}");
            assert_eq!(res.stats, wstats);
            assert!(res.latency > Duration::ZERO);
        }
        let report = engine.shutdown();
        assert_eq!(report.served, 4);
        assert_eq!(report.rejected, 0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.mean_distance_evals > 0.0);
    }

    #[test]
    fn device_backend_matches_native_results() {
        let (vs, lists) = built(150, 16, 21);
        let queries =
            DatasetSpec::Manifold { n: 12, ambient_dim: 16, intrinsic_dim: 3 }.generate(22).vectors;
        let mk = |backend| {
            let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
            ServeEngine::start(
                index,
                ServeConfig { backend, batch_size: 4, ..ServeConfig::default() },
            )
            .unwrap()
        };
        let native = mk(Backend::Native);
        let device = mk(Backend::Device(DeviceConfig::test_tiny()));
        for q in 0..queries.len() {
            let a = native.query(queries.row(q).to_vec()).unwrap();
            let b = device.query(queries.row(q).to_vec()).unwrap();
            assert_eq!(a.neighbors, b.neighbors, "query {q}");
            assert_eq!(a.stats, b.stats, "query {q}");
        }
        native.shutdown();
        device.shutdown();
    }

    #[test]
    fn inert_engine_applies_backpressure_deterministically() {
        let (vs, lists) = built(120, 16, 31);
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        let engine = ServeEngine::start(
            index,
            ServeConfig { shards: 0, queue_capacity: 3, ..ServeConfig::default() },
        )
        .unwrap();
        let mut tickets = Vec::new();
        for p in 0..3 {
            tickets.push(engine.submit(vs.row(p).to_vec()).unwrap());
        }
        assert_eq!(engine.queue_depth(), 3);
        // Capacity reached: the 4th submission is rejected, not blocked.
        match engine.submit(vs.row(3).to_vec()) {
            Err(ServeError::Overloaded { depth: 3, capacity: 3 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let report = engine.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.submitted, 3);
        assert_eq!(report.served, 0);
        assert_eq!(report.max_queue_depth, 3);
        // Drained-away tickets observe Shutdown.
        for t in tickets {
            assert_eq!(t.wait(), Err(ServeError::Shutdown));
        }
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let (vs, lists) = built(150, 16, 41);
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        // Long linger: queries sit in the queue until shutdown flushes them.
        let engine = ServeEngine::start(
            index,
            ServeConfig {
                batch_size: 64,
                linger: Duration::from_secs(30),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            (0..10).map(|p| engine.submit(vs.row(p).to_vec()).unwrap()).collect();
        let report = engine.shutdown();
        assert_eq!(report.served, 10);
        for (p, t) in tickets.into_iter().enumerate() {
            let res = t.wait().expect("drained, not dropped");
            assert_eq!(res.neighbors[0].index as usize, p);
        }
    }

    #[test]
    fn abandoned_tickets_do_not_disturb_other_queries() {
        // A caller that gives up (drops its ticket) must not wedge the shard
        // or corrupt later answers.
        let (engine, vs, _) = engine_with(ServeConfig::default());
        drop(engine.submit(vs.row(0).to_vec()).unwrap());
        let res = engine.query(vs.row(7).to_vec()).unwrap();
        assert_eq!(res.neighbors[0].index, 7);
        let report = engine.shutdown();
        assert_eq!(report.served, 2, "the abandoned query is still served");
    }

    #[test]
    fn malformed_queries_and_configs_get_typed_errors() {
        let (engine, _, _) = engine_with(ServeConfig::default());
        assert!(matches!(
            engine.submit(vec![0.0; 3]),
            Err(ServeError::QueryDimMismatch { got: 3, want: 16 })
        ));
        assert!(matches!(
            engine.submit(vec![f32::NAN; 16]),
            Err(ServeError::NonFiniteQuery { coord: 0 })
        ));
        engine.shutdown();

        let (vs, lists) = built(120, 16, 51);
        let index = ServeIndex::from_parts(vs, lists).unwrap();
        let bad = ServeConfig {
            params: SearchParams { k: 10, beam: 2, ..SearchParams::default() },
            ..ServeConfig::default()
        };
        assert!(matches!(ServeEngine::start(index.clone(), bad), Err(ServeError::Search(_))));
        let bad = ServeConfig {
            backend: Backend::Device(DeviceConfig::test_tiny()),
            params: SearchParams { metric: Metric::Cosine, ..SearchParams::default() },
            ..ServeConfig::default()
        };
        assert!(matches!(ServeEngine::start(index, bad), Err(ServeError::Search(_))));
    }

    #[test]
    fn augmented_serving_escapes_a_weak_component() {
        // Two far-apart clusters on a line; the k-NN lists are in-cluster
        // only, except for one *directed* edge B₀ → A₀ (the kind of stray
        // edge approximate construction leaves). With entries = 1 the
        // descent starts at point 0 (cluster A): a B-side query cannot
        // cross over — unless augmentation mirrors the edge as A₀ → B₀.
        let rows: Vec<Vec<f32>> = (0..10)
            .map(|i| vec![0.1 * i as f32, 0.0])
            .chain((0..10).map(|i| vec![100.0 + 0.1 * i as f32, 0.0]))
            .collect();
        let vs = VectorSet::from_rows(&rows).unwrap();
        let mut lists = wknng_data::exact_knn(&vs, 3, Metric::SquaredL2);
        let d = Metric::SquaredL2.eval(vs.row(10), vs.row(0));
        lists[10].push(wknng_data::Neighbor::new(0, d));
        let params = SearchParams { k: 3, beam: 8, entries: 1, ..SearchParams::default() };
        let run = |augment| {
            let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
            let engine = ServeEngine::start(
                index,
                ServeConfig { params, augment, ..ServeConfig::default() },
            )
            .unwrap();
            let res = engine.query(vs.row(15).to_vec()).unwrap();
            engine.shutdown();
            res.neighbors[0]
        };
        let plain = run(Augment::Off);
        assert_ne!(plain.index, 15, "weak component must strand the plain search");
        assert!(plain.dist > 1_000.0, "stranded in cluster A: {plain:?}");
        let augmented = run(Augment::On { max_degree: None });
        assert_eq!(augmented.index, 15, "reverse edge restores reachability");
        assert_eq!(augmented.dist, 0.0);
    }

    #[test]
    fn wait_timeout_on_an_unanswered_query_is_typed_and_bounded() {
        let (vs, lists) = built(120, 16, 61);
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        // Inert engine: the query will never be answered.
        let engine =
            ServeEngine::start(index, ServeConfig { shards: 0, ..ServeConfig::default() }).unwrap();
        let t = engine.submit(vs.row(0).to_vec()).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(t.wait_timeout(Duration::from_millis(50)), Err(ServeError::DeadlineExceeded));
        assert!(start.elapsed() < Duration::from_secs(2), "returned promptly");
        engine.shutdown();
    }

    #[test]
    fn configured_deadline_bounds_a_plain_wait() {
        let (vs, lists) = built(120, 16, 71);
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        let deadline = Duration::from_millis(50);
        let engine = ServeEngine::start(
            index,
            ServeConfig { shards: 0, deadline: Some(deadline), ..ServeConfig::default() },
        )
        .unwrap();
        let t = engine.submit(vs.row(0).to_vec()).unwrap();
        let start = std::time::Instant::now();
        // Plain wait() — no explicit timeout — must still return by
        // deadline + grace because the engine has a configured deadline.
        assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
        assert!(
            start.elapsed() < deadline + DEADLINE_GRACE + Duration::from_millis(250),
            "wait bounded by deadline + grace, took {:?}",
            start.elapsed()
        );
        engine.shutdown();
    }

    #[test]
    fn deadline_expired_in_queue_is_shed_before_search() {
        let (vs, lists) = built(150, 16, 81);
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        // A long linger holds the batch open well past the tiny deadline, so
        // every query expires while queued.
        let engine = ServeEngine::start(
            index,
            ServeConfig {
                batch_size: 64,
                linger: Duration::from_millis(200),
                deadline: Some(Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            (0..8).map(|p| engine.submit(vs.row(p).to_vec()).unwrap()).collect();
        for t in tickets {
            assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
        }
        let report = engine.shutdown();
        assert_eq!(report.deadline_expired, 8);
        assert_eq!(report.served, 0, "no search work spent on expired queries");
        assert_eq!(report.latency.count(), 0, "expired queries never reach the histogram");
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-serve-durable-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn durable_engine_journals_recovers_bit_identically_and_fscks_clean() {
        let dir = durable_dir("roundtrip");
        let (vs, lists) = built(200, 16, 91);
        let cfg = ServeConfig {
            mutate: Some(MutatePolicy::default()),
            durability: Some(DurabilityPolicy {
                checkpoint_every: 3,
                ..DurabilityPolicy::at(&dir)
            }),
            ..ServeConfig::default()
        };
        let index = ServeIndex::from_parts(vs.clone(), lists).unwrap();
        let engine = ServeEngine::start(index, cfg.clone()).unwrap();
        let extra =
            DatasetSpec::Manifold { n: 30, ambient_dim: 16, intrinsic_dim: 3 }.generate(92).vectors;
        for b in 0..3 {
            let rows: Vec<Vec<f32>> = (0..10).map(|i| extra.row(b * 10 + i).to_vec()).collect();
            let batch = VectorSet::from_rows(&rows).unwrap();
            engine.insert(batch).unwrap().wait().unwrap();
        }
        // The delete lands after the cadence-3 checkpoint: it lives only in
        // the WAL tail and must come back via replay.
        engine.delete(vec![5, 17]).unwrap().wait().unwrap();
        let live = engine.pin_epoch();
        let (live_vectors, live_lists, live_deleted) =
            (live.vectors.clone(), live.lists.clone(), live.deleted.clone());
        drop(live);
        let report = engine.shutdown();
        assert_eq!(report.wal_appends, 4);
        assert!(report.wal_bytes > 0);
        assert_eq!(report.checkpoints, 1);
        assert_eq!(report.recovery_replayed_ops, 0, "cold start replays nothing");

        // A second cold start on a dir that already holds durable state is
        // refused — warm-start is the only correct entry.
        let index = ServeIndex::from_parts(vs.clone(), built(200, 16, 91).1).unwrap();
        assert!(matches!(ServeEngine::start(index, cfg.clone()), Err(ServeError::Config(_))));

        // Warm-start: checkpoint + replayed WAL tail == the exact live epoch.
        let (engine2, info) = ServeEngine::recover(cfg).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.replayed_ops, 1, "the post-checkpoint delete replays");
        assert_eq!(info.skipped_ops, 0);
        assert!(!info.fell_back);
        let rec = engine2.pin_epoch();
        assert_eq!(rec.vectors, live_vectors);
        assert_eq!(rec.lists, live_lists);
        assert_eq!(rec.deleted, live_deleted);
        drop(rec);
        let res = engine2.query(vs.row(3).to_vec()).unwrap();
        assert_eq!(res.neighbors[0].index, 3);
        let report2 = engine2.shutdown();
        assert_eq!(report2.recovery_replayed_ops, 1);

        let fsck_report = fsck(&dir);
        assert!(fsck_report.is_clean(), "{fsck_report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_percentiles_are_monotone_under_load() {
        let (engine, vs, _) = engine_with(ServeConfig {
            shards: 2,
            batch_size: 8,
            linger: Duration::from_micros(200),
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> =
            (0..120).map(|p| engine.submit(vs.row(p % 200).to_vec()).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let report = engine.shutdown();
        assert_eq!(report.served, 120);
        let (p50, p95, p99) =
            (report.latency_p(50.0), report.latency_p(95.0), report.latency_p(99.0));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        assert!(p50 > Duration::ZERO);
        assert!(report.batches > 0);
        assert!(report.mean_batch >= 1.0);
        assert!(report.max_queue_depth >= 1);
    }
}
