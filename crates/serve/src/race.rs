//! Model-checked concurrency protocols of the serve/epoch layer.
//!
//! Compiled only under the `model` feature (`--features race` at the
//! workspace root; `wknng race` on the CLI). Each protocol here drives
//! *real* serve code — [`EpochHandle`], the mutator loop, the query and
//! mutation reply drop guards, `ShedController`, `run_supervised` —
//! under the deterministic scheduler in [`wknng_sync::model`]: every
//! `wknng_sync` primitive the code touches becomes a scheduling point, the
//! explorer enumerates thread interleavings up to the preemption bound
//! (DPOR-style, conflict-directed), and a vector-clock happens-before
//! detector checks every explored schedule for data races, deadlocks, lost
//! wakeups, and lock-order inversions.
//!
//! The module has two halves:
//!
//! * [`race_all_protocols`] — the protocols that must come back **clean**;
//!   `wknng race` fails if any of them produces a finding. The protocol
//!   bodies are deterministic modulo scheduling (fixed instants, no
//!   randomness), so a finding always comes with a replayable schedule.
//! * [`race_mutants`] — seeded concurrency bugs (a skipped publish fence, a
//!   too-weak acquire, a defeated reply drop guard, an inverted lock order)
//!   that the checker must flag at exactly the seeded site; `wknng race
//!   --self-check` fails if any mutant escapes. This is the checker's own
//!   regression suite: a detector change that stops seeing a seeded bug
//!   fails CI even though the real protocols still pass.

use std::time::{Duration, Instant};

use wknng_core::{SearchParams, WknngParams};
use wknng_data::{Metric, VectorSet};
use wknng_sync::atomic::{AtomicU64, Ordering};
use wknng_sync::model::{explore, Config, ExploreReport, Finding, FindingKind, RaceCell};
use wknng_sync::{channel_labeled, mutex_labeled, thread, Arc};

use crate::engine::{Job, Ticket};
use crate::epoch::{Epoch, EpochHandle};
use crate::error::ServeError;
use crate::mutate::{mutator, MutatePolicy, MutationJob, MutationOp, MutationTicket, MutatorSeed};
use crate::shed::{ShedController, ShedPolicy};
use crate::supervisor::{run_supervised, SupervisorPolicy};

/// 4 points on a line; exact 2-NN lists — large enough to search, small
/// enough that every explored schedule re-runs the real rebuild in
/// microseconds.
fn tiny_epoch() -> Epoch {
    let vs = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap();
    let lists = wknng_data::exact_knn(&vs, 2, Metric::SquaredL2);
    Epoch::initial(vs, lists)
}

fn search_params() -> SearchParams {
    SearchParams { k: 2, ..SearchParams::default() }
}

/// Pin/publish/retire on the real [`EpochHandle`]: a pin is never torn by a
/// concurrent publish, the published generation becomes current, and the
/// old generation retires exactly when its last pin drops.
pub fn epoch_protocol() -> ExploreReport {
    explore(Config::new("epoch-pin-publish-retire"), || {
        let handle = Arc::new(EpochHandle::new(tiny_epoch()));
        let h = Arc::clone(&handle);
        let publisher = thread::Builder::new()
            .name("publisher".into())
            .spawn(move || {
                let mut next = tiny_epoch();
                next.id = h.next_id();
                let (arc, _pause) = h.publish(next);
                assert_eq!(arc.id, 1, "publish must install the id it drew");
            })
            .unwrap();
        let pin = handle.pin();
        let generation = pin.id;
        assert!(generation <= 1, "pin observed a torn generation id");
        let (res, _) = pin.search(&[1.4], &search_params());
        assert!(!res.is_empty(), "a pinned epoch must stay searchable");
        assert_eq!(pin.id, generation, "a pin must stay on one generation");
        publisher.join().unwrap();
        assert!(
            handle.live_epochs().contains(&1),
            "the published generation must be live after the publisher joined"
        );
        drop(pin);
        assert_eq!(handle.live_epochs(), vec![1], "unpinned old generations must retire");
        assert!(handle.find(1).is_some(), "the current generation must stay reachable");
    })
}

/// The real `mutator` thread against concurrent pinned queries: a refused
/// batch (out-of-range delete) restores the extender without disturbing the
/// live epoch, a valid batch publishes exactly one new generation, and a
/// reader pinned at any point of either never sees a tombstone.
pub fn mutator_protocol() -> ExploreReport {
    explore(Config::new("mutator-restore-vs-queries"), || {
        let epochs = Arc::new(EpochHandle::new(tiny_epoch()));
        let seed = MutatorSeed {
            epochs: Arc::clone(&epochs),
            policy: MutatePolicy { refine_rounds: 0, beam: 0, compact_threshold: 0.9 },
            params: WknngParams { k: 2, ..WknngParams::default() },
            chaos: None,
            durable: None,
        };
        let (jobs, jobs_rx) = channel_labeled::<MutationJob>("mutator-jobs");
        let worker = thread::Builder::new()
            .name("mutator".into())
            .spawn(move || mutator(seed, jobs_rx))
            .unwrap();
        let reader = {
            let epochs = Arc::clone(&epochs);
            thread::Builder::new()
                .name("reader".into())
                .spawn(move || {
                    let pin = epochs.pin();
                    let (res, _) = pin.search(&[0.9], &search_params());
                    assert!(!res.is_empty(), "a pinned search must answer");
                    assert!(
                        res.iter().all(|nb| !pin.deleted[nb.index as usize]),
                        "a pinned search surfaced a tombstone"
                    );
                })
                .unwrap()
        };
        // An out-of-range delete is refused with a typed error; the restore
        // path it takes races the pinned reader above and must leave the
        // live epoch untouched.
        let (tx, rx) = channel_labeled("mutation-reply");
        jobs.send(MutationJob { op: MutationOp::Delete(vec![99]), tx: Some(tx) }).unwrap();
        assert!(MutationTicket { rx }.wait().is_err(), "an out-of-range delete must be refused");
        assert_eq!(epochs.current_id(), 0, "a refused batch must not publish");
        // A valid delete publishes the next generation exactly once.
        let (tx, rx) = channel_labeled("mutation-reply");
        jobs.send(MutationJob { op: MutationOp::Delete(vec![3]), tx: Some(tx) }).unwrap();
        let out = MutationTicket { rx }.wait().expect("a valid delete must publish");
        assert_eq!(
            (out.epoch, out.applied, out.compacted),
            (1, 1, false),
            "the valid batch must publish generation 1 without compaction"
        );
        drop(jobs);
        let stats = worker.join().unwrap();
        assert_eq!(
            (stats.swaps, stats.swaps_refused),
            (1, 1),
            "exactly one publish and one refusal"
        );
        reader.join().unwrap();
    })
}

/// The query-side no-hang invariant: a worker that abandons an admitted
/// `Job` mid-batch (here: drops it without answering, as an unwinding
/// panic would) still resolves the caller's [`Ticket`] — to
/// [`ServeError::WorkerLost`], via the job's `Drop` guard.
pub fn ticket_protocol() -> ExploreReport {
    explore(Config::new("ticket-drop-worker-lost"), || {
        let (jobs, jobs_rx) = channel_labeled::<Job>("serve-jobs");
        let worker = thread::Builder::new()
            .name("shard".into())
            .spawn(move || {
                let job = jobs_rx.recv().expect("one admitted job");
                // The "crash": the job leaves the worker unanswered.
                drop(job);
            })
            .unwrap();
        let (tx, rx) = channel_labeled("query-reply");
        let ticket = Ticket { rx, deadline: None };
        jobs.send(Job { query: vec![1.4], at: Instant::now(), deadline: None, tx: Some(tx) })
            .unwrap();
        assert!(
            matches!(ticket.wait(), Err(ServeError::WorkerLost)),
            "an abandoned job must resolve its ticket to WorkerLost"
        );
        worker.join().unwrap();
    })
}

/// Two threads sharing the real `ShedController` under its lock: with
/// every observation over target, the brownout level only escalates, and a
/// sustained-overload observation far past the window must brown the
/// search out regardless of how the observations interleaved.
pub fn shed_protocol() -> ExploreReport {
    explore(Config::new("shed-controller-brownout"), || {
        let policy = ShedPolicy {
            target: Duration::from_millis(2),
            window: Duration::from_millis(10),
            brownout_tiers: 2,
            shed_factor: 4,
        };
        let base = SearchParams::default();
        // The controller never reads the clock itself — both threads walk
        // the same fixed timeline, so the body is deterministic modulo
        // scheduling.
        let t0 = Instant::now();
        let window = Duration::from_millis(10);
        let over = Duration::from_millis(5);
        let ctl = Arc::new(mutex_labeled("shed-controller", ShedController::new(policy)));
        let observer = {
            let ctl = Arc::clone(&ctl);
            thread::Builder::new()
                .name("observer".into())
                .spawn(move || {
                    for i in 0..3u32 {
                        let mut g = ctl.lock().unwrap();
                        g.observe(over, t0 + window * i);
                        let eff = g.effective_params(&base);
                        assert_eq!(eff.k, base.k, "brownout must never shrink k");
                        assert!(eff.beam <= base.beam, "brownout must never widen the beam");
                    }
                })
                .unwrap()
        };
        for i in 0..3u32 {
            let mut g = ctl.lock().unwrap();
            g.observe(over, t0 + window * i);
            assert!(g.effective_params(&base).beam <= base.beam);
        }
        observer.join().unwrap();
        let mut g = ctl.lock().unwrap();
        g.observe(over, t0 + window * 10);
        assert!(
            g.effective_params(&base).beam < base.beam,
            "sustained overload must brown the search out"
        );
    })
}

/// The real `run_supervised` loop: a poisoned batch panics the pass, the
/// in-flight job's drop guard answers `WorkerLost`, the supervisor respawns
/// the pass exactly once, and the next batch is served normally.
pub fn supervisor_protocol() -> ExploreReport {
    explore(Config::new("supervisor-respawn-under-panic"), || {
        let (jobs, jobs_rx) = channel_labeled::<Job>("serve-jobs");
        let worker = thread::Builder::new()
            .name("shard".into())
            .spawn(move || {
                let mut restarts = 0u32;
                run_supervised(
                    &SupervisorPolicy::default(),
                    &mut restarts,
                    |_| {
                        while let Ok(job) = jobs_rx.recv() {
                            if job.query.is_empty() {
                                panic!("poisoned batch");
                            }
                            job.respond(Err(ServeError::Shed));
                        }
                    },
                    |restarts, _backoff| *restarts += 1,
                );
                restarts
            })
            .unwrap();
        let (tx1, rx1) = channel_labeled("query-reply");
        jobs.send(Job { query: vec![], at: Instant::now(), deadline: None, tx: Some(tx1) })
            .unwrap();
        let (tx2, rx2) = channel_labeled("query-reply");
        jobs.send(Job { query: vec![1.0], at: Instant::now(), deadline: None, tx: Some(tx2) })
            .unwrap();
        drop(jobs);
        assert!(
            matches!(Ticket { rx: rx1, deadline: None }.wait(), Err(ServeError::WorkerLost)),
            "the poisoned batch must resolve through the drop guard"
        );
        assert!(
            matches!(Ticket { rx: rx2, deadline: None }.wait(), Err(ServeError::Shed)),
            "the batch after the respawn must be answered by the pass"
        );
        assert_eq!(worker.join().unwrap(), 1, "exactly one respawn after the poisoned batch");
    })
}

/// Every protocol `wknng race` checks, in a fixed order.
pub fn race_all_protocols() -> Vec<ExploreReport> {
    vec![
        epoch_protocol(),
        mutator_protocol(),
        ticket_protocol(),
        shed_protocol(),
        supervisor_protocol(),
    ]
}

/// One seeded-bug self-check case: the mutated protocol, which finding
/// kinds count as catching the bug, and the marker string (the seeded
/// site's label) the finding must carry.
pub struct MutantReport {
    pub name: &'static str,
    pub expected: &'static [FindingKind],
    pub marker: &'static str,
    pub report: ExploreReport,
}

impl MutantReport {
    /// The finding that flags the seeded bug, if the checker caught it at
    /// the seeded site.
    pub fn caught(&self) -> Option<&Finding> {
        self.report.findings.iter().find(|f| {
            self.expected.contains(&f.kind)
                && (f.site.contains(self.marker) || f.detail.contains(self.marker))
        })
    }
}

/// The epoch-publish protocol with its release fence removed: the payload
/// write is published with a `Relaxed` store, so the reader's acquire load
/// carries no happens-before edge and the payload read races the write.
fn mutant_skipped_publish_fence() -> MutantReport {
    let report = explore(Config::new("mutant-skipped-publish-fence"), || {
        let slot = Arc::new(RaceCell::new("mutant-epoch-slot", 0u64));
        let ready = Arc::new(AtomicU64::new(0));
        let (s, r) = (Arc::clone(&slot), Arc::clone(&ready));
        let publisher = thread::Builder::new()
            .name("publisher".into())
            .spawn(move || {
                s.write("mutant-epoch-slot: publish", 1);
                // MUTANT: the publish fence is skipped — Relaxed where the
                // epoch swap needs Release.
                r.store(1, Ordering::Relaxed);
            })
            .unwrap();
        if ready.load(Ordering::Acquire) == 1 {
            let _ = slot.read("mutant-epoch-slot: pinned read");
        }
        publisher.join().unwrap();
    });
    MutantReport {
        name: "skipped-publish-fence",
        expected: &[FindingKind::DataRace],
        marker: "mutant-epoch-slot",
        report,
    }
}

/// The consumer side of the same handshake with its acquire weakened: the
/// writer publishes with `Release`, but the reader polls the flag with
/// `Relaxed` and so never joins the writer's clock before touching the
/// payload.
fn mutant_relaxed_for_acquire() -> MutantReport {
    let report = explore(Config::new("mutant-relaxed-for-acquire"), || {
        let batch = Arc::new(RaceCell::new("mutant-query-batch", 0u64));
        let ready = Arc::new(AtomicU64::new(0));
        let (b, r) = (Arc::clone(&batch), Arc::clone(&ready));
        let producer = thread::Builder::new()
            .name("producer".into())
            .spawn(move || {
                b.write("mutant-query-batch: fill", 7);
                r.store(1, Ordering::Release);
            })
            .unwrap();
        // MUTANT: Relaxed where the consumer needs Acquire.
        if ready.load(Ordering::Relaxed) == 1 {
            let _ = batch.read("mutant-query-batch: consume");
        }
        producer.join().unwrap();
    });
    MutantReport {
        name: "relaxed-for-acquire",
        expected: &[FindingKind::DataRace],
        marker: "mutant-query-batch",
        report,
    }
}

/// A mutator worker with the reply drop guard defeated: the sender is
/// stripped out of the real [`MutationJob`] before the job can answer, so
/// the caller's ticket wait can never be woken — a lost wakeup on the
/// `mutation-reply` channel.
fn mutant_dropped_reply_guard() -> MutantReport {
    let report = explore(Config::new("mutant-dropped-reply-guard"), || {
        let (jobs, jobs_rx) = channel_labeled::<MutationJob>("mutator-jobs");
        let (stop, stop_rx) = channel_labeled::<()>("mutator-stop");
        let worker = thread::Builder::new()
            .name("mutator".into())
            .spawn(move || {
                let mut job = jobs_rx.recv().expect("one batch");
                // MUTANT: the drop guard is defeated — the reply sender is
                // stripped from the job, so nothing can ever answer.
                let stolen = job.tx.take();
                let _ = stop_rx.recv();
                drop(stolen);
            })
            .unwrap();
        let (tx, rx) = channel_labeled("mutation-reply");
        jobs.send(MutationJob { op: MutationOp::Delete(vec![]), tx: Some(tx) }).unwrap();
        let _ = MutationTicket { rx }.wait();
        drop(stop);
        worker.join().unwrap();
    });
    MutantReport {
        name: "dropped-reply-guard",
        expected: &[FindingKind::LostWakeup],
        marker: "mutation-reply",
        report,
    }
}

/// The publish path with its lock order inverted against a concurrent
/// reader: one thread takes history before current (as `publish` does), the
/// mutated side takes current before history — a cycle the checker must
/// report (as a manifest deadlock under some schedule, or as a lock-order
/// inversion from the aggregated acquisition graph).
fn mutant_inverted_lock_order() -> MutantReport {
    let report = explore(Config::new("mutant-inverted-lock-order"), || {
        let current = Arc::new(mutex_labeled("mutant-epoch-current", 0u64));
        let history = Arc::new(mutex_labeled("mutant-epoch-history", 0u64));
        let (c, h) = (Arc::clone(&current), Arc::clone(&history));
        let publisher = thread::Builder::new()
            .name("publisher".into())
            .spawn(move || {
                let _h = h.lock().unwrap();
                let _c = c.lock().unwrap();
            })
            .unwrap();
        // MUTANT: the inverted order — current before history, opposite of
        // the publisher above.
        let guard_c = current.lock().unwrap();
        let guard_h = history.lock().unwrap();
        drop(guard_h);
        drop(guard_c);
        publisher.join().unwrap();
    });
    MutantReport {
        name: "inverted-lock-order",
        expected: &[FindingKind::Deadlock, FindingKind::LockOrderInversion],
        marker: "mutant-epoch-",
        report,
    }
}

/// Every seeded mutant `wknng race --self-check` runs, in a fixed order.
pub fn race_mutants() -> Vec<MutantReport> {
    vec![
        mutant_skipped_publish_fence(),
        mutant_relaxed_for_acquire(),
        mutant_dropped_reply_guard(),
        mutant_inverted_lock_order(),
    ]
}

/// Render protocol reports the way `wknng race` prints them — one status
/// line per protocol, findings indented under it.
pub fn render_protocols(reports: &[ExploreReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in reports {
        let status = if r.clean() { "clean" } else { "FINDINGS" };
        let capped = if r.capped { " (capped)" } else { "" };
        writeln!(out, "protocol {:<34} {:>6} schedules  {status}{capped}", r.name, r.schedules)
            .unwrap();
        for f in &r.findings {
            writeln!(out, "  {:<20} at {}", f.kind.as_str(), f.site).unwrap();
            writeln!(out, "      {}", f.detail).unwrap();
        }
    }
    out
}

/// Render the self-check the way `wknng race --self-check` prints it.
pub fn render_mutants(mutants: &[MutantReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for m in mutants {
        match m.caught() {
            Some(f) => {
                writeln!(
                    out,
                    "mutant {:<26} flagged {:<20} at {}",
                    m.name,
                    f.kind.as_str(),
                    f.site
                )
                .unwrap();
            }
            None => {
                let kinds: Vec<&str> = m.expected.iter().map(|k| k.as_str()).collect();
                writeln!(
                    out,
                    "mutant {:<26} MISSED (expected {} at `{}`)",
                    m.name,
                    kinds.join(" or "),
                    m.marker
                )
                .unwrap();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_are_clean() {
        for report in race_all_protocols() {
            assert!(
                report.clean(),
                "protocol `{}` produced findings: {:#?}",
                report.name,
                report.findings
            );
            assert!(!report.capped, "protocol `{}` hit the schedule cap", report.name);
            assert!(report.schedules > 1, "protocol `{}` explored nothing", report.name);
        }
    }

    #[test]
    fn every_mutant_is_flagged_at_its_seeded_site() {
        for m in race_mutants() {
            let f = m.caught().unwrap_or_else(|| {
                panic!(
                    "mutant `{}` escaped: expected {:?} carrying `{}`, got {:#?}",
                    m.name, m.expected, m.marker, m.report.findings
                )
            });
            assert!(
                f.site.contains(m.marker) || f.detail.contains(m.marker),
                "mutant `{}` flagged away from the seeded site: {f:?}",
                m.name
            );
        }
    }
}
