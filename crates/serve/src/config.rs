//! Serving-engine configuration.

use std::time::Duration;

use wknng_core::SearchParams;
use wknng_simt::{DeviceConfig, FaultPlan};

use crate::durability::DurabilityPolicy;
use crate::error::ServeError;
use crate::mutate::MutatePolicy;
use crate::shed::ShedPolicy;
use crate::supervisor::SupervisorPolicy;

/// Execution backend for batch search.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Host execution: each shard runs the reference `search_lists` per
    /// query. The default.
    Native,
    /// Warp-batched execution on the `wknng-simt` device: each shard uploads
    /// its own copy of the index and runs the one-query-per-warp beam
    /// kernel. Bit-identical results to [`Backend::Native`].
    Device(DeviceConfig),
}

/// Reverse-edge augmentation applied when the engine takes ownership of the
/// index (see [`wknng_core::augment_reverse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Augment {
    /// Serve the graph exactly as built.
    #[default]
    Off,
    /// Add reverse edges up to `max_degree` per point (`None` = `2k`), so
    /// greedy descent can escape weakly connected components.
    On {
        /// Per-point degree cap after augmentation.
        max_degree: Option<usize>,
    },
}

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each owning a full copy (`Arc`) of the index. `0`
    /// builds an inert engine that admits queries but never answers them —
    /// useful for testing admission control deterministically.
    pub shards: usize,
    /// Maximum queries coalesced into one batch (≥ 1).
    pub batch_size: usize,
    /// How long a shard holds an under-full batch open waiting for more
    /// queries, measured from the oldest pending query's arrival.
    /// `Duration::ZERO` dispatches whatever is queued immediately.
    pub linger: Duration,
    /// Bounded submission-queue capacity (≥ 1); a full queue rejects with
    /// [`ServeError::Overloaded`] instead of blocking.
    pub queue_capacity: usize,
    /// Search parameters, validated against the index at engine start.
    pub params: SearchParams,
    /// Reverse-edge augmentation policy.
    pub augment: Augment,
    /// Execution backend.
    pub backend: Backend,
    /// Per-query deadline, measured from submission. Queries whose deadline
    /// expires while queued are shed before any search work
    /// ([`ServeError::DeadlineExceeded`]); a deadline-configured
    /// [`crate::Ticket::wait`] never blocks past the deadline plus
    /// [`crate::engine::DEADLINE_GRACE`]. `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Adaptive load-shedding / brownout policy (see [`ShedPolicy`]).
    /// `None` — the default — disables the controller entirely: behaviour
    /// is identical to the pre-resilience engine.
    pub shed: Option<ShedPolicy>,
    /// Worker supervision: panic-isolated shards respawned with capped
    /// exponential backoff.
    pub supervisor: SupervisorPolicy,
    /// Serve-side chaos plan ([`FaultPlan::panic_batch`] and friends, plus
    /// the swap-scoped faults the mutator consumes) for fault-injection
    /// testing; `None` serves faithfully.
    pub chaos: Option<FaultPlan>,
    /// Live-mutation policy: `Some` spawns the build-aside mutator thread
    /// so [`crate::ServeEngine::insert`]/[`crate::ServeEngine::delete`]
    /// publish new epochs under traffic. `None` — the default — serves a
    /// single immutable epoch forever. Requires [`Augment::Off`] (the
    /// mutator owns the raw graph) and [`Backend::Native`].
    pub mutate: Option<MutatePolicy>,
    /// Crash-consistent durability: `Some` journals every acknowledged
    /// mutation to a write-ahead log under [`DurabilityPolicy::dir`] and
    /// checkpoints published epochs on a cadence, so
    /// [`crate::ServeEngine::recover`] can warm-start after a crash.
    /// Requires [`ServeConfig::mutate`] (the mutator thread owns the log).
    /// `None` — the default — keeps the engine purely in-memory.
    pub durability: Option<DurabilityPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            batch_size: 32,
            linger: Duration::from_millis(1),
            queue_capacity: 1024,
            params: SearchParams::default(),
            augment: Augment::Off,
            backend: Backend::Native,
            deadline: None,
            shed: None,
            supervisor: SupervisorPolicy::default(),
            chaos: None,
            mutate: None,
            durability: None,
        }
    }
}

impl ServeConfig {
    /// Check the engine-level fields (search parameters are validated
    /// separately against the index size).
    pub fn check(&self) -> Result<(), ServeError> {
        if self.batch_size == 0 {
            return Err(ServeError::Config("batch_size must be >= 1"));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1"));
        }
        if matches!(self.deadline, Some(d) if d.is_zero()) {
            return Err(ServeError::Config("deadline must be > 0 when set"));
        }
        if let Some(shed) = &self.shed {
            shed.check()?;
        }
        if let Some(mutate) = &self.mutate {
            mutate.check()?;
            if !matches!(self.augment, Augment::Off) {
                return Err(ServeError::Config(
                    "mutation requires Augment::Off (the mutator owns the raw graph)",
                ));
            }
            if matches!(self.backend, Backend::Device(_)) {
                return Err(ServeError::Config(
                    "mutation requires Backend::Native (device uploads are per-epoch immutable)",
                ));
            }
        }
        if let Some(durability) = &self.durability {
            durability.check()?;
            if self.mutate.is_none() {
                return Err(ServeError::Config(
                    "durability requires a MutatePolicy (the mutator thread owns the WAL)",
                ));
            }
        }
        self.supervisor.check()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().check().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let c = ServeConfig { batch_size: 0, ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        // shards = 0 is legal: the inert admission-control engine.
        let c = ServeConfig { shards: 0, ..ServeConfig::default() };
        assert!(c.check().is_ok());
    }

    #[test]
    fn resilience_fields_are_validated() {
        let c = ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig { deadline: Some(Duration::from_millis(5)), ..ServeConfig::default() };
        assert!(c.check().is_ok());
        let bad_shed = ShedPolicy { shed_factor: 0, ..ShedPolicy::default() };
        let c = ServeConfig { shed: Some(bad_shed), ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let bad_sup = SupervisorPolicy {
            backoff_initial: Duration::from_secs(2),
            backoff_cap: Duration::from_secs(1),
        };
        let c = ServeConfig { supervisor: bad_sup, ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig {
            shed: Some(ShedPolicy::default()),
            chaos: Some(FaultPlan::default().panic_batch(1)),
            ..ServeConfig::default()
        };
        assert!(c.check().is_ok());
    }

    #[test]
    fn mutation_fields_are_validated() {
        let c = ServeConfig { mutate: Some(MutatePolicy::default()), ..ServeConfig::default() };
        assert!(c.check().is_ok());
        let bad = MutatePolicy { compact_threshold: -1.0, ..MutatePolicy::default() };
        let c = ServeConfig { mutate: Some(bad), ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig {
            mutate: Some(MutatePolicy::default()),
            augment: Augment::On { max_degree: None },
            ..ServeConfig::default()
        };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig {
            mutate: Some(MutatePolicy::default()),
            backend: Backend::Device(wknng_simt::DeviceConfig::test_tiny()),
            ..ServeConfig::default()
        };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
    }

    #[test]
    fn durability_fields_are_validated() {
        let dir = std::path::PathBuf::from("/tmp/wknng-cfg-test");
        // Durability without mutation is rejected: there is no mutator
        // thread to own the WAL.
        let c =
            ServeConfig { durability: Some(DurabilityPolicy::at(&dir)), ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig {
            durability: Some(DurabilityPolicy::at(&dir)),
            mutate: Some(MutatePolicy::default()),
            ..ServeConfig::default()
        };
        assert!(c.check().is_ok());
        let bad = DurabilityPolicy { keep_generations: 0, ..DurabilityPolicy::at(&dir) };
        let c = ServeConfig {
            durability: Some(bad),
            mutate: Some(MutatePolicy::default()),
            ..ServeConfig::default()
        };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
    }
}
