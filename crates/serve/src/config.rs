//! Serving-engine configuration.

use std::time::Duration;

use wknng_core::SearchParams;
use wknng_simt::DeviceConfig;

use crate::error::ServeError;

/// Execution backend for batch search.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Host execution: each shard runs the reference `search_lists` per
    /// query. The default.
    Native,
    /// Warp-batched execution on the `wknng-simt` device: each shard uploads
    /// its own copy of the index and runs the one-query-per-warp beam
    /// kernel. Bit-identical results to [`Backend::Native`].
    Device(DeviceConfig),
}

/// Reverse-edge augmentation applied when the engine takes ownership of the
/// index (see [`wknng_core::augment_reverse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Augment {
    /// Serve the graph exactly as built.
    #[default]
    Off,
    /// Add reverse edges up to `max_degree` per point (`None` = `2k`), so
    /// greedy descent can escape weakly connected components.
    On {
        /// Per-point degree cap after augmentation.
        max_degree: Option<usize>,
    },
}

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each owning a full copy (`Arc`) of the index. `0`
    /// builds an inert engine that admits queries but never answers them —
    /// useful for testing admission control deterministically.
    pub shards: usize,
    /// Maximum queries coalesced into one batch (≥ 1).
    pub batch_size: usize,
    /// How long a shard holds an under-full batch open waiting for more
    /// queries, measured from the oldest pending query's arrival.
    /// `Duration::ZERO` dispatches whatever is queued immediately.
    pub linger: Duration,
    /// Bounded submission-queue capacity (≥ 1); a full queue rejects with
    /// [`ServeError::Overloaded`] instead of blocking.
    pub queue_capacity: usize,
    /// Search parameters, validated against the index at engine start.
    pub params: SearchParams,
    /// Reverse-edge augmentation policy.
    pub augment: Augment,
    /// Execution backend.
    pub backend: Backend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            batch_size: 32,
            linger: Duration::from_millis(1),
            queue_capacity: 1024,
            params: SearchParams::default(),
            augment: Augment::Off,
            backend: Backend::Native,
        }
    }
}

impl ServeConfig {
    /// Check the engine-level fields (search parameters are validated
    /// separately against the index size).
    pub fn check(&self) -> Result<(), ServeError> {
        if self.batch_size == 0 {
            return Err(ServeError::Config("batch_size must be >= 1"));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().check().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let c = ServeConfig { batch_size: 0, ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        let c = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(matches!(c.check(), Err(ServeError::Config(_))));
        // shards = 0 is legal: the inert admission-control engine.
        let c = ServeConfig { shards: 0, ..ServeConfig::default() };
        assert!(c.check().is_ok());
    }
}
