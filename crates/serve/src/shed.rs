//! Adaptive load shedding: a CoDel-style sojourn controller with brownout
//! tiers.
//!
//! The bounded admission queue (PR 2) only has a binary overload answer:
//! reject at queue-full. Between "healthy" and "full" lies the regime that
//! actually kills tail latency — the queue is legal but *standing*, so every
//! query pays the whole backlog's service time. Following CoDel (Nichols &
//! Jacobson), the controller watches queue **sojourn time** (dequeue time
//! minus arrival time — the one signal that reflects load regardless of
//! queue length or service speed) and reacts only to *sustained* overload:
//!
//! 1. first it **browns out** — narrows the effective
//!    [`SearchParams`] down the [`SearchParams::degraded`] ladder
//!    (beam halves toward `k`, then single-entry), mirroring the build
//!    pipeline's tiled → atomic → basic degradation: serve every query a
//!    little cheaper before refusing any;
//! 2. if overload persists through every configured tier, it **sheds**:
//!    dequeued queries whose sojourn exceeds `shed_factor × target` are
//!    answered [`crate::ServeError::Shed`] without any search work, which
//!    caps the queueing delay any *served* query can have paid.
//!
//! Recovery is symmetric: a sustained under-target window steps one tier
//! back up. Everything is driven by observations the workers already make
//! at batch-cut time; the controller itself does no clock reads.

use std::time::{Duration, Instant};

use wknng_core::SearchParams;

use crate::error::ServeError;

/// Tuning of the shedding controller (see the module docs). Installed via
/// `ServeConfig::shed`; `None` there disables shedding and brownout
/// entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queue-sojourn target: batches whose *minimum* sojourn exceeds this
    /// count as overloaded (min, not mean — one straggler must not trip the
    /// controller, CoDel-style).
    pub target: Duration,
    /// How long overload must persist before the controller escalates one
    /// tier (and how long under-target operation must persist to step back
    /// down).
    pub window: Duration,
    /// Brownout tiers to walk through before shedding starts: each tier is
    /// one step down the [`SearchParams::degraded`] ladder. `0` sheds
    /// immediately on sustained overload, preserving per-query recall.
    pub brownout_tiers: u8,
    /// Shedding threshold multiplier: once shedding is active, a dequeued
    /// query with sojourn above `shed_factor × target` is shed.
    pub shed_factor: u32,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            target: Duration::from_millis(2),
            window: Duration::from_millis(10),
            brownout_tiers: 2,
            shed_factor: 4,
        }
    }
}

impl ShedPolicy {
    /// Validate the policy fields.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.target.is_zero() {
            return Err(ServeError::Config("shed target must be > 0"));
        }
        if self.window.is_zero() {
            return Err(ServeError::Config("shed window must be > 0"));
        }
        if self.shed_factor == 0 {
            return Err(ServeError::Config("shed_factor must be >= 1"));
        }
        Ok(())
    }

    /// The sojourn bound above which an active shedder drops a query.
    fn shed_bound(&self) -> Duration {
        self.target.saturating_mul(self.shed_factor)
    }
}

/// The per-engine controller state, shared by all shard workers (behind one
/// mutex; it is touched once per batch, not per query).
#[derive(Debug)]
pub(crate) struct ShedController {
    policy: ShedPolicy,
    /// Escalation level: `0` = healthy, `1..=brownout_tiers` = brownout,
    /// `brownout_tiers + 1` = shedding (the level ladder's last rung).
    level: u8,
    /// When the current over-target streak started.
    over_since: Option<Instant>,
    /// When the current under-target streak started.
    under_since: Option<Instant>,
}

impl ShedController {
    pub(crate) fn new(policy: ShedPolicy) -> Self {
        ShedController { policy, level: 0, over_since: None, under_since: None }
    }

    /// The level at which shedding (not just brownout) is active.
    fn shed_level(&self) -> u8 {
        self.policy.brownout_tiers.saturating_add(1)
    }

    /// Feed one batch observation: the minimum queue sojourn across the
    /// batch, taken at dequeue time `now`. Escalates or de-escalates one
    /// level per sustained window.
    pub(crate) fn observe(&mut self, min_sojourn: Duration, now: Instant) {
        if min_sojourn > self.policy.target {
            self.under_since = None;
            let since = *self.over_since.get_or_insert(now);
            if now.saturating_duration_since(since) >= self.policy.window
                && self.level < self.shed_level()
            {
                self.level += 1;
                // Each further escalation needs its own full window.
                self.over_since = Some(now);
            }
        } else {
            self.over_since = None;
            let since = *self.under_since.get_or_insert(now);
            if now.saturating_duration_since(since) >= self.policy.window && self.level > 0 {
                self.level -= 1;
                self.under_since = Some(now);
            }
        }
    }

    /// The parameters this batch should be served with: `base` walked
    /// `min(level, brownout_tiers)` steps down the degradation ladder. At
    /// level 0 this is `base` itself.
    pub(crate) fn effective_params(&self, base: &SearchParams) -> SearchParams {
        let mut p = *base;
        for _ in 0..self.level.min(self.policy.brownout_tiers) {
            match p.degraded() {
                Some(d) => p = d,
                None => break,
            }
        }
        p
    }

    /// When shedding is active, the sojourn bound above which a dequeued
    /// query is shed; `None` while only brownout (or nothing) is active.
    pub(crate) fn shed_bound(&self) -> Option<Duration> {
        (self.level >= self.shed_level()).then(|| self.policy.shed_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ShedPolicy {
        ShedPolicy {
            target: Duration::from_millis(2),
            window: Duration::from_millis(10),
            brownout_tiers: 2,
            shed_factor: 4,
        }
    }

    /// Drive the controller with a fixed sojourn for `steps` observations
    /// spaced `step` apart, starting at `t0`; returns the time after the
    /// last observation.
    fn drive(
        ctl: &mut ShedController,
        sojourn: Duration,
        t0: Instant,
        steps: u32,
        step: Duration,
    ) -> Instant {
        let mut t = t0;
        for _ in 0..steps {
            ctl.observe(sojourn, t);
            t += step;
        }
        t
    }

    #[test]
    fn default_policy_checks_and_zeroes_are_rejected() {
        assert!(ShedPolicy::default().check().is_ok());
        let z = ShedPolicy { target: Duration::ZERO, ..policy() };
        assert!(matches!(z.check(), Err(ServeError::Config(_))));
        let z = ShedPolicy { window: Duration::ZERO, ..policy() };
        assert!(matches!(z.check(), Err(ServeError::Config(_))));
        let z = ShedPolicy { shed_factor: 0, ..policy() };
        assert!(matches!(z.check(), Err(ServeError::Config(_))));
    }

    #[test]
    fn healthy_traffic_never_escalates() {
        let mut ctl = ShedController::new(policy());
        let base = SearchParams::default();
        drive(&mut ctl, Duration::from_micros(100), Instant::now(), 100, Duration::from_millis(5));
        assert_eq!(ctl.effective_params(&base), base);
        assert_eq!(ctl.shed_bound(), None);
    }

    #[test]
    fn sustained_overload_walks_brownout_then_sheds() {
        let mut ctl = ShedController::new(policy());
        let base = SearchParams { k: 10, beam: 32, entries: 2, ..SearchParams::default() };
        let t0 = Instant::now();
        // One observation starts the streak but must not escalate yet.
        ctl.observe(Duration::from_millis(5), t0);
        assert_eq!(ctl.effective_params(&base), base);
        // A full window of overload: tier 1 (beam halves). The drive steps
        // land at t0, +5, +10, +15 ms; escalation fires at +10.
        let t = drive(&mut ctl, Duration::from_millis(5), t0, 4, Duration::from_millis(5));
        assert_eq!(ctl.effective_params(&base).beam, 16);
        assert_eq!(ctl.shed_bound(), None, "brownout before shedding");
        // Another window (+20, +25; fires at +20): tier 2, beam at floor k.
        let t = drive(&mut ctl, Duration::from_millis(5), t, 2, Duration::from_millis(5));
        assert_eq!(ctl.effective_params(&base).beam, 10);
        assert_eq!(ctl.shed_bound(), None);
        // A third window (+30): shedding becomes active, floor retained.
        drive(&mut ctl, Duration::from_millis(5), t, 1, Duration::from_millis(5));
        assert_eq!(ctl.shed_bound(), Some(Duration::from_millis(8)), "4x the 2ms target");
        assert_eq!(ctl.effective_params(&base).beam, 10);
    }

    #[test]
    fn zero_tiers_sheds_without_touching_params() {
        let mut ctl = ShedController::new(ShedPolicy { brownout_tiers: 0, ..policy() });
        let base = SearchParams::default();
        drive(&mut ctl, Duration::from_millis(9), Instant::now(), 5, Duration::from_millis(6));
        assert!(ctl.shed_bound().is_some());
        assert_eq!(ctl.effective_params(&base), base, "recall of served queries unchanged");
    }

    #[test]
    fn recovery_steps_back_down_to_healthy() {
        let mut ctl = ShedController::new(policy());
        let base = SearchParams { k: 10, beam: 32, entries: 2, ..SearchParams::default() };
        let t =
            drive(&mut ctl, Duration::from_millis(9), Instant::now(), 12, Duration::from_millis(6));
        assert!(ctl.shed_bound().is_some(), "driven all the way to shedding");
        // Sustained under-target traffic walks every level back down.
        drive(&mut ctl, Duration::from_micros(50), t, 12, Duration::from_millis(6));
        assert_eq!(ctl.shed_bound(), None);
        assert_eq!(ctl.effective_params(&base), base);
    }

    #[test]
    fn a_single_burst_does_not_escalate() {
        // Alternating over/under observations: the over streak keeps
        // resetting, so the controller must hold at level 0.
        let mut ctl = ShedController::new(policy());
        let mut t = Instant::now();
        for i in 0..40 {
            let s = if i % 2 == 0 { Duration::from_millis(9) } else { Duration::from_micros(10) };
            ctl.observe(s, t);
            t += Duration::from_millis(6);
        }
        let base = SearchParams::default();
        assert_eq!(ctl.effective_params(&base), base);
        assert_eq!(ctl.shed_bound(), None);
    }
}
