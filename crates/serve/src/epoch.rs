//! Epoch-published index snapshots: the arc-swap layer that lets a live
//! engine swap its index under traffic with zero dropped queries.
//!
//! An [`Epoch`] is one immutable, coherent generation of the servable index
//! — vectors, neighbor lists, and the tombstone bitmap, frozen together.
//! The [`EpochHandle`] owns the *current* epoch behind a mutex-guarded
//! `Arc`; workers [`pin`](EpochHandle::pin) it once per batch (one lock, one
//! refcount bump) and answer the whole batch from that pin, so:
//!
//! * a [`publish`](EpochHandle::publish) mid-batch is invisible — in-flight
//!   queries finish on the old epoch, the *next* batch sees the new one;
//! * no answer can mix state from two generations (the torn-read argument
//!   in DESIGN.md): a pin is a single `Arc` whose pointee never mutates;
//! * an old epoch retires automatically when its last pin drops — the
//!   handle keeps only [`Weak`] references in its history, so retirement
//!   needs no bookkeeping and can be *proved* in tests via
//!   [`live_epochs`](EpochHandle::live_epochs).

use std::time::{Duration, Instant};

use wknng_sync::{mutex_labeled, Arc, Mutex, Weak};

use wknng_core::{search_lists, SearchParams, SearchStats};
use wknng_data::{Neighbor, VectorSet};

/// One immutable generation of the servable index.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Generation number, monotonically increasing from 0.
    pub id: u64,
    /// Indexed point coordinates (tombstoned rows keep stale coordinates).
    pub vectors: VectorSet,
    /// Neighbor lists, one per slot; tombstoned slots are empty.
    pub lists: Vec<Vec<Neighbor>>,
    /// Tombstone bitmap, one flag per slot.
    pub deleted: Vec<bool>,
    /// Number of `true` flags in `deleted`.
    pub deleted_count: usize,
}

impl Epoch {
    /// Epoch 0: a fresh index with no tombstones.
    pub fn initial(vectors: VectorSet, lists: Vec<Vec<Neighbor>>) -> Epoch {
        let n = vectors.len();
        Epoch { id: 0, vectors, lists, deleted: vec![false; n], deleted_count: 0 }
    }

    /// Number of index slots (live points + tombstones).
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the epoch holds no slots.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Number of live (queryable) points.
    pub fn live_len(&self) -> usize {
        self.lists.len() - self.deleted_count
    }

    /// Answer one query from this epoch — a pure function of the epoch's
    /// frozen state (the coherence tests recompute answers through exactly
    /// this entry point).
    ///
    /// Without tombstones this is the engine's plain `search_lists`,
    /// bit-for-bit. With tombstones the search widens to the full beam
    /// (entry points are drawn uniformly and may land on a tombstone),
    /// filters deleted ids out of the candidates, and truncates back to
    /// `k`, so a deleted point can never appear in an answer.
    pub fn search(&self, query: &[f32], params: &SearchParams) -> (Vec<Neighbor>, SearchStats) {
        if self.deleted_count == 0 {
            return search_lists(&self.vectors, &self.lists, query, params);
        }
        let widened = SearchParams { k: params.beam.max(params.k), ..*params };
        let (found, stats) = search_lists(&self.vectors, &self.lists, query, &widened);
        let mut out: Vec<Neighbor> =
            found.into_iter().filter(|nb| !self.deleted[nb.index as usize]).collect();
        out.truncate(params.k);
        (out, stats)
    }

    /// Compact the epoch to its live points: tombstoned slots are dropped,
    /// surviving slots are renumbered densely (in slot order), and every
    /// neighbor list is filtered to surviving points and remapped to the new
    /// numbering. This is the densified view the on-disk snapshot writers
    /// expect — the `.wkv`/`.wkk` formats have no tombstone column.
    pub fn compact_parts(&self) -> (VectorSet, Vec<Vec<Neighbor>>) {
        let dim = self.vectors.dim();
        // remap[old_slot] = Some(new_index) for live slots.
        let mut remap: Vec<Option<u32>> = vec![None; self.len()];
        let mut next = 0u32;
        for (slot, slot_remap) in remap.iter_mut().enumerate() {
            if !self.deleted[slot] {
                *slot_remap = Some(next);
                next += 1;
            }
        }
        let mut flat = Vec::with_capacity(self.live_len() * dim);
        let mut lists = Vec::with_capacity(self.live_len());
        for slot in 0..self.len() {
            if remap[slot].is_none() {
                continue;
            }
            flat.extend_from_slice(self.vectors.row(slot));
            lists.push(
                self.lists[slot]
                    .iter()
                    .filter_map(|nb| {
                        remap[nb.index as usize].map(|index| Neighbor { index, dist: nb.dist })
                    })
                    .collect(),
            );
        }
        let vectors = VectorSet::new(flat, dim).expect("dim is preserved by compaction");
        (vectors, lists)
    }
}

/// The arc-swap publication point: one current epoch, a weak history of
/// every generation ever published, and an atomic (mutex-guarded) swap.
pub struct EpochHandle {
    current: Mutex<Arc<Epoch>>,
    history: Mutex<Vec<(u64, Weak<Epoch>)>>,
}

impl EpochHandle {
    /// Wrap the first epoch.
    pub fn new(first: Epoch) -> EpochHandle {
        let arc = Arc::new(first);
        let history = vec![(arc.id, Arc::downgrade(&arc))];
        EpochHandle {
            current: mutex_labeled("epoch-current", arc),
            history: mutex_labeled("epoch-history", history),
        }
    }

    /// Pin the current epoch: one lock acquisition and one refcount bump.
    /// The pin keeps that generation alive until dropped, however many
    /// publishes happen meanwhile.
    pub fn pin(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.lock().expect("epoch lock"))
    }

    /// Id of the current epoch.
    pub fn current_id(&self) -> u64 {
        self.current.lock().expect("epoch lock").id
    }

    /// The id the next published epoch must carry.
    pub fn next_id(&self) -> u64 {
        self.current_id() + 1
    }

    /// Atomically swap in `epoch` as the new current generation. Returns
    /// the published `Arc` and the duration of the swap critical section —
    /// the only instant during which readers can be paused behind the lock
    /// (the `swap_p99_pause_us` a [`crate::ServeReport`] records).
    pub fn publish(&self, epoch: Epoch) -> (Arc<Epoch>, Duration) {
        let arc = Arc::new(epoch);
        self.history.lock().expect("epoch history lock").push((arc.id, Arc::downgrade(&arc)));
        let start = Instant::now();
        *self.current.lock().expect("epoch lock") = Arc::clone(&arc);
        let pause = start.elapsed();
        (arc, pause)
    }

    /// Look up a generation by id, if it is still alive (current, or pinned
    /// by someone).
    pub fn find(&self, id: u64) -> Option<Arc<Epoch>> {
        self.history
            .lock()
            .expect("epoch history lock")
            .iter()
            .find(|(eid, _)| *eid == id)
            .and_then(|(_, weak)| weak.upgrade())
    }

    /// Ids of every generation still alive, pruning retired entries from
    /// the history. After all pins drop, exactly the current epoch remains
    /// — the retirement proof the chaos suite asserts.
    pub fn live_epochs(&self) -> Vec<u64> {
        let mut history = self.history.lock().expect("epoch history lock");
        history.retain(|(_, weak)| weak.strong_count() > 0);
        history.iter().map(|(id, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::Metric;

    fn tiny_epoch() -> Epoch {
        // 4 points on a line; exact 2-NN lists.
        let vs = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap();
        let lists = wknng_data::exact_knn(&vs, 2, Metric::SquaredL2);
        Epoch::initial(vs, lists)
    }

    #[test]
    fn pins_outlive_publishes_and_then_retire() {
        let handle = EpochHandle::new(tiny_epoch());
        assert_eq!(handle.current_id(), 0);
        let pin0 = handle.pin();
        let mut next = tiny_epoch();
        next.id = handle.next_id();
        let (arc1, pause) = handle.publish(next);
        assert_eq!(arc1.id, 1);
        assert!(pause < Duration::from_secs(1));
        // The old generation is alive exactly as long as its pin.
        assert_eq!(handle.live_epochs(), vec![0, 1]);
        assert_eq!(pin0.id, 0, "in-flight work still reads the old epoch");
        assert_eq!(handle.pin().id, 1, "new batches see the new epoch");
        drop(pin0);
        drop(arc1);
        assert_eq!(handle.live_epochs(), vec![1], "only the current epoch survives");
        assert!(handle.find(0).is_none(), "retired epochs are unreachable");
        assert_eq!(handle.find(1).unwrap().id, 1);
    }

    #[test]
    fn retire_waits_for_a_pin_held_across_a_concurrent_publish() {
        // Real threads, no model checker: a reader pins generation 0, the
        // writer publishes generation 1 over it, and generation 0 must stay
        // alive — and searchable — until the reader's pin drops.
        let handle = Arc::new(EpochHandle::new(tiny_epoch()));
        let (pinned_tx, pinned_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let pin = handle.pin();
                assert_eq!(pin.id, 0);
                pinned_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                // By now the publish has happened; the pin must be intact.
                let params = SearchParams { k: 2, ..SearchParams::default() };
                let (res, _) = pin.search(&[1.4], &params);
                assert!(!res.is_empty(), "a published-over pin must stay searchable");
                assert_eq!(pin.id, 0, "a published-over pin must stay on its generation");
            })
        };
        pinned_rx.recv().unwrap();
        let mut next = tiny_epoch();
        next.id = handle.next_id();
        let (current, _) = handle.publish(next);
        assert_eq!(current.id, 1);
        assert_eq!(handle.live_epochs(), vec![0, 1], "generation 0 is retained while pinned");
        assert!(handle.find(0).is_some(), "a pinned old generation stays reachable");
        release_tx.send(()).unwrap();
        reader.join().unwrap();
        drop(current);
        assert_eq!(handle.live_epochs(), vec![1], "generation 0 retires once its pin drops");
        assert!(handle.find(0).is_none(), "a retired generation is unreachable");
    }

    #[test]
    fn search_without_tombstones_is_the_plain_path() {
        let e = tiny_epoch();
        let params = SearchParams { k: 2, ..SearchParams::default() };
        let (got, _) = e.search(&[1.4], &params);
        let (want, _) = search_lists(&e.vectors, &e.lists, &[1.4], &params);
        assert_eq!(got, want);
    }

    #[test]
    fn search_never_surfaces_a_tombstone() {
        let mut e = tiny_epoch();
        // Tombstone point 1 (the nearest neighbor of the query below) the
        // way a mutator would: clear its list, drop edges to it.
        e.deleted[1] = true;
        e.deleted_count = 1;
        e.lists[1].clear();
        for l in &mut e.lists {
            l.retain(|nb| nb.index != 1);
        }
        let params = SearchParams { k: 2, ..SearchParams::default() };
        let (got, _) = e.search(&[1.1], &params);
        assert!(!got.is_empty());
        assert!(got.iter().all(|nb| nb.index != 1), "tombstone leaked: {got:?}");
        assert!(got.len() <= 2);
    }

    #[test]
    fn compaction_renumbers_live_points_and_drops_dead_edges() {
        let mut e = tiny_epoch();
        e.deleted[1] = true;
        e.deleted_count = 1;
        e.lists[1].clear();
        let (vs, lists) = e.compact_parts();
        assert_eq!(vs.len(), 3);
        assert_eq!(lists.len(), 3);
        // Slots 0,2,3 survive as 0,1,2 with their coordinates intact.
        assert_eq!(vs.row(0), &[0.0]);
        assert_eq!(vs.row(1), &[2.0]);
        assert_eq!(vs.row(2), &[10.0]);
        // No list may reference the dropped slot, and all indices are dense.
        for l in &lists {
            assert!(l.iter().all(|nb| (nb.index as usize) < 3), "dangling edge: {l:?}");
        }
        // Old slot 2's edge to old slot 3 is remapped 3 -> 2.
        assert!(lists[1].iter().any(|nb| nb.index == 2 || nb.index == 0));
        // A tombstone-free epoch compacts to itself.
        let clean = tiny_epoch();
        let (vs2, lists2) = clean.compact_parts();
        assert_eq!(vs2.as_flat(), clean.vectors.as_flat());
        assert_eq!(lists2, clean.lists);
    }
}
