//! Acceptance tests for the race & hazard sanitizer: intentionally broken
//! kernels must be detected with a correct (lane, warp, address) diagnosis,
//! and correctly synchronized kernels must stay clean.

#![cfg(feature = "sanitize")]

use wknng_simt::{
    launch_sanitized, AccessKind, DeviceBuffer, DeviceConfig, HazardKind, LaneVec, Mask,
    SanitizerScope, Space,
};

fn dev() -> DeviceConfig {
    DeviceConfig::test_tiny()
}

/// Two warps of one block write different values to element 5 of the same
/// buffer with no barrier in between: a write/write race, diagnosed with the
/// exact lanes and warps involved.
#[test]
fn racy_kernel_is_detected_with_lane_warp_address_diagnosis() {
    let buf = DeviceBuffer::<u32>::zeroed(32).set_label("racy");
    let (_, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
        blk.each_warp(|w| {
            let who = w.warp_in_block as u32;
            let mask = if who == 0 { Mask(1 << 3) } else { Mask(1 << 7) };
            let idx = w.math_idx(mask, |_| 5);
            let vals = w.math(mask, |_| 100 + who);
            w.st_global(&buf, &idx, &vals, mask);
        });
    });
    assert!(!hazards.is_clean());
    let h = hazards
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::RaceWriteWrite)
        .expect("write/write race reported");
    assert_eq!(h.space, Space::Global { buffer: buf_id(&buf), label: Some("racy") });
    assert_eq!(h.addr, 5);
    assert_eq!((h.first.warp, h.first.lane), (0, 3));
    assert_eq!((h.second.warp, h.second.lane), (1, 7));
    assert_eq!(h.first.kind, AccessKind::Write);
    assert_eq!(h.second.kind, AccessKind::Write);
}

/// The same two writes separated by a block barrier are ordered, not racy.
#[test]
fn barrier_between_conflicting_writes_clears_the_race() {
    let buf = DeviceBuffer::<u32>::zeroed(32);
    let (report, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
        blk.warp(0, |w| {
            let mask = Mask(1 << 3);
            let idx = w.math_idx(mask, |_| 5);
            let vals = w.math(mask, |_| 100u32);
            w.st_global(&buf, &idx, &vals, mask);
        });
        blk.sync();
        blk.warp(1, |w| {
            let mask = Mask(1 << 7);
            let idx = w.math_idx(mask, |_| 5);
            let vals = w.math(mask, |_| 200u32);
            w.st_global(&buf, &idx, &vals, mask);
        });
    });
    assert!(hazards.is_clean(), "{}", hazards.summary());
    assert_eq!(report.stats.hazards, 0);
}

/// Barriers do not exist between blocks: the same pattern across two blocks
/// races no matter how many `sync()` calls each block makes.
#[test]
fn cross_block_conflicts_race_despite_barriers() {
    let buf = DeviceBuffer::<u32>::zeroed(8);
    let (_, hazards) = launch_sanitized(&dev(), 2, 1, |blk| {
        blk.sync();
        let who = blk.block_idx as u32;
        blk.each_warp(|w| {
            let mask = Mask(1 << 1);
            let idx = w.math_idx(mask, |_| 2);
            let vals = w.math(mask, |_| who);
            w.st_global(&buf, &idx, &vals, mask);
        });
        blk.sync();
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::RaceWriteWrite);
    let h = h.expect("cross-block write/write race reported");
    assert_eq!(h.addr, 2);
    assert_eq!(h.first.block, 0);
    assert_eq!(h.second.block, 1);
}

/// A plain read overlapping another warp's plain write is a read/write race,
/// in either order.
#[test]
fn read_write_race_is_detected() {
    let buf = DeviceBuffer::<u32>::zeroed(8);
    let (_, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 3);
            if w.warp_in_block == 0 {
                let _ = w.ld_global(&buf, &idx, mask);
            } else {
                let vals = w.math(mask, |_| 9u32);
                w.st_global(&buf, &idx, &vals, mask);
            }
        });
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::RaceReadWrite);
    let h = h.expect("read/write race reported");
    assert_eq!(h.addr, 3);
    assert_eq!(h.first.kind, AccessKind::Read);
    assert_eq!(h.second.kind, AccessKind::Write);
}

/// Atomics overlapping atomics (and plain reads overlapping atomics — the
/// CAS-retry protocol's scan) are allowed; a plain write overlapping an
/// atomic is not.
#[test]
fn atomics_synchronize_but_plain_writes_do_not() {
    let slots = DeviceBuffer::<u64>::zeroed(8);
    let (_, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 4);
            // Scan (plain read) then commit (CAS): the atomic protocol.
            let cur = w.ld_global(&slots, &idx, mask);
            let newv = LaneVec::splat(1 + w.warp_in_block as u64);
            let _ = w.atomic_cas_u64(&slots, &idx, &cur, &newv, mask);
        });
    });
    assert!(hazards.is_clean(), "atomic protocol must be clean: {}", hazards.summary());

    let (_, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 4);
            if w.warp_in_block == 0 {
                let cur = w.ld_global(&slots, &idx, mask);
                let _ = w.atomic_cas_u64(&slots, &idx, &cur, &LaneVec::splat(7), mask);
            } else {
                w.st_global(&slots, &idx, &LaneVec::splat(8u64), mask);
            }
        });
    });
    assert!(
        hazards.hazards.iter().any(|h| h.kind == HazardKind::RaceWriteWrite),
        "plain write racing an atomic must be reported: {}",
        hazards.summary()
    );
}

/// Lanes of a single store instruction writing different values to one
/// address: the hardware winner is unspecified, so it is a hazard — but
/// writing the *same* value (the beam kernel's visited flags) is fine.
#[test]
fn intra_instruction_conflicts_require_differing_values() {
    let buf = DeviceBuffer::<u32>::zeroed(8);
    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        blk.each_warp(|w| {
            let mask = Mask::first(2);
            let idx = w.math_idx(mask, |_| 6);
            let vals = w.math(mask, |_| 1u32); // same value from both lanes
            w.st_global(&buf, &idx, &vals, mask);
        });
    });
    assert!(hazards.is_clean(), "{}", hazards.summary());

    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        blk.each_warp(|w| {
            let mask = Mask::first(2);
            let idx = w.math_idx(mask, |_| 6);
            let vals = w.math(mask, |l| l as u32); // lane 0 writes 0, lane 1 writes 1
            w.st_global(&buf, &idx, &vals, mask);
        });
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::RaceWriteWrite);
    let h = h.expect("differing-value same-address store reported");
    assert_eq!(h.addr, 6);
    assert_eq!((h.first.lane, h.second.lane), (0, 1));
    assert!(h.note.contains("0x0") && h.note.contains("0x1"), "{}", h.note);
}

/// Out-of-bounds shared accesses are reported (with the index and bounds)
/// instead of crashing the simulated kernel.
#[test]
fn shared_out_of_bounds_is_reported_not_fatal() {
    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        let arr = blk.shared_alloc::<f32>(8);
        blk.each_warp(|w| {
            let mask = Mask(1 << 2);
            let idx = w.math_idx(mask, |_| 9); // len is 8
            w.sh_store(&arr, &idx, &LaneVec::splat(1.0f32), mask);
        });
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::SharedOutOfBounds);
    let h = h.expect("shared OOB reported");
    assert_eq!(h.space, Space::Shared);
    assert_eq!(h.second.lane, 2);
    assert!(h.note.contains("index 9") && h.note.contains("8 elements"), "{}", h.note);
}

/// Reading shared memory a block never wrote is undefined on hardware (the
/// simulator's zero-fill is a fiction) — reported, and cleared by a write.
#[test]
fn uninitialized_shared_read_is_reported() {
    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        let arr = blk.shared_alloc::<f32>(8);
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 3);
            let _ = w.sh_load(&arr, &idx, mask);
        });
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::SharedUninitRead);
    assert!(h.is_some(), "uninit shared read reported: {}", hazards.summary());

    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        let arr = blk.shared_alloc::<f32>(8);
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 3);
            w.sh_store(&arr, &idx, &LaneVec::splat(2.5f32), mask);
            let _ = w.sh_load(&arr, &idx, mask);
        });
    });
    assert!(hazards.is_clean(), "write-then-read must be clean: {}", hazards.summary());
}

/// The write/sync/read shared-tile pattern (what the tiled kernel does) is
/// clean; dropping the barrier turns the cross-warp read into a race.
#[test]
fn shared_tile_handoff_requires_a_barrier() {
    let run = |use_barrier: bool| {
        let (_, hazards) = launch_sanitized(&dev(), 1, 2, |blk| {
            let arr = blk.shared_alloc::<f32>(32);
            blk.warp(0, |w| {
                let mask = Mask::FULL;
                let idx = w.math_idx(mask, |l| l);
                w.sh_store(&arr, &idx, &LaneVec::splat(1.0f32), mask);
            });
            if use_barrier {
                blk.sync();
            }
            blk.warp(1, |w| {
                let mask = Mask::FULL;
                let idx = w.math_idx(mask, |l| l);
                let _ = w.sh_load(&arr, &idx, mask);
            });
        });
        hazards
    };
    assert!(run(true).is_clean(), "{}", run(true).summary());
    let racy = run(false);
    assert!(
        racy.hazards.iter().any(|h| h.kind == HazardKind::RaceReadWrite),
        "unbarriered tile handoff must race: {}",
        racy.summary()
    );
}

/// Lanes arriving at `sync_warp` convergence points unevenly is barrier
/// divergence; syncing each subgroup once keeps arrivals balanced.
#[test]
fn uneven_sync_warp_arrivals_are_barrier_divergence() {
    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        blk.each_warp(|w| {
            w.sync_warp(Mask::first(16)); // lanes 16..32 never arrive
        });
    });
    let h = hazards.hazards.iter().find(|h| h.kind == HazardKind::BarrierDivergence);
    let h = h.expect("divergent sync_warp reported");
    assert_eq!(h.space, Space::Barrier);
    assert_eq!(h.first.lane, 0, "a lane that arrived");
    assert_eq!(h.second.lane, 16, "a lane that did not");
    assert!(h.note.contains("1 warp sync point(s)") && h.note.contains("at 0"), "{}", h.note);

    let (_, hazards) = launch_sanitized(&dev(), 1, 1, |blk| {
        blk.each_warp(|w| {
            // Sub-warp sync modeled per subgroup: every lane arrives once.
            w.sync_warp(Mask::first(16));
            w.sync_warp(Mask::FULL.and_not(Mask::first(16)));
        });
    });
    assert!(hazards.is_clean(), "{}", hazards.summary());
}

/// `stats.hazards` carries the per-launch event count into launch reports.
#[test]
fn launch_report_carries_hazard_count() {
    let scope = SanitizerScope::install();
    let buf = DeviceBuffer::<u32>::zeroed(8);
    let racy = |blk: &mut wknng_simt::BlockCtx| {
        let who = blk.block_idx as u32;
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 0);
            let vals = w.math(mask, |_| who);
            w.st_global(&buf, &idx, &vals, mask);
        });
    };
    let clean = wknng_simt::launch(&dev(), 1, 1, racy);
    assert_eq!(clean.stats.hazards, 0, "single block cannot race with itself");
    let dirty = wknng_simt::launch(&dev(), 2, 1, racy);
    assert_eq!(dirty.stats.hazards, 1, "one cross-block conflict");
    let report = scope.report();
    assert_eq!(report.launches, 2);
    assert_eq!(report.events, 1);
    drop(scope);
    // With no scope installed, launches are untracked.
    let untracked = wknng_simt::launch(&dev(), 2, 1, racy);
    assert_eq!(untracked.stats.hazards, 0);
}

/// Repeated instances of one hazard class fold into a count instead of
/// flooding the report.
#[test]
fn repeated_hazards_fold_into_counts() {
    let buf = DeviceBuffer::<u32>::zeroed(64);
    let (_, hazards) = launch_sanitized(&dev(), 2, 1, |blk| {
        let who = blk.block_idx as u32;
        blk.each_warp(|w| {
            let mask = Mask::FULL;
            let idx = w.math_idx(mask, |l| l); // all 32 elements conflict
            let vals = w.math(mask, |_| who);
            w.st_global(&buf, &idx, &vals, mask);
        });
    });
    assert_eq!(hazards.hazards.len(), 1, "one class: {}", hazards.summary());
    assert_eq!(hazards.hazards[0].count, 32);
    assert_eq!(hazards.events, 32);
}

/// Buffer generations reset between launches: writing a buffer in one launch
/// and reading it in the next is the normal host-ordered pipeline pattern.
#[test]
fn accesses_in_different_launches_never_conflict() {
    let scope = SanitizerScope::install();
    let buf = DeviceBuffer::<u32>::zeroed(32);
    wknng_simt::launch(&dev(), 1, 1, |blk| {
        blk.each_warp(|w| {
            let idx = w.math_idx(Mask::FULL, |l| l);
            let vals = w.math(Mask::FULL, |l| l as u32);
            w.st_global(&buf, &idx, &vals, Mask::FULL);
        });
    });
    wknng_simt::launch(&dev(), 2, 1, |blk| {
        blk.each_warp(|w| {
            let idx = w.math_idx(Mask::FULL, |l| l);
            let _ = w.ld_global(&buf, &idx, Mask::FULL);
        });
    });
    let report = scope.report();
    assert!(report.is_clean(), "{}", report.summary());
}

fn buf_id(buf: &DeviceBuffer<u32>) -> u64 {
    // The id is internal; recover it from a hazard on a scratch launch so the
    // diagnosis assertions can compare against the true allocation id.
    let (_, hz) = launch_sanitized(&dev(), 2, 1, |blk| {
        let who = blk.block_idx as u32;
        blk.each_warp(|w| {
            let mask = Mask(1 << 0);
            let idx = w.math_idx(mask, |_| 0);
            let vals = w.math(mask, |_| who);
            w.st_global(buf, &idx, &vals, mask);
        });
    });
    match hz.hazards.first().expect("scratch race").space {
        Space::Global { buffer, .. } => buffer,
        other => panic!("expected a global-space hazard, got {other:?}"),
    }
}
