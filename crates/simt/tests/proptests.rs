//! Property tests: the simulator's collectives and memory model against
//! scalar oracles.

use proptest::prelude::*;
use wknng_simt::primitives::{exclusive_scan_u32, reduce_max_u64, reduce_min_f32, reduce_sum_u32};
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, Mask, WARP_LANES};

/// Run `f` inside a single simulated warp and return what it produces.
fn in_warp<T: Send + 'static>(f: impl FnMut(&mut wknng_simt::WarpCtx) -> T) -> T {
    let dev = DeviceConfig::test_tiny();
    let mut f = f;
    let mut out = None;
    launch(&dev, 1, 1, |blk| {
        blk.each_warp(|w| {
            out = Some(f(w));
        });
    });
    out.expect("warp ran")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_sum_matches_scalar(vals in prop::array::uniform32(0u32..1000), bits in any::<u32>()) {
        let mask = Mask(bits);
        let lv = LaneVec(vals.map(|v| v));
        let got = in_warp(|w| reduce_sum_u32(w, &lv, mask));
        let want: u32 = (0..WARP_LANES).filter(|&l| mask.active(l)).map(|l| vals[l]).sum();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_min_matches_scalar(vals in prop::array::uniform32(-1e6f32..1e6), bits in any::<u32>()) {
        let mask = Mask(bits);
        let lv = LaneVec(vals);
        let got = in_warp(|w| reduce_min_f32(w, &lv, mask));
        match got {
            None => prop_assert!(mask.is_empty()),
            Some((v, lane)) => {
                prop_assert!(mask.active(lane));
                prop_assert_eq!(v, vals[lane]);
                for l in mask.iter() {
                    prop_assert!(vals[l] >= v);
                }
            }
        }
    }

    #[test]
    fn reduce_max_matches_scalar(vals in prop::array::uniform32(any::<u64>()), bits in any::<u32>()) {
        let mask = Mask(bits);
        let lv = LaneVec(vals);
        let got = in_warp(|w| reduce_max_u64(w, &lv, mask));
        let want = mask.iter().map(|l| vals[l]).max();
        prop_assert_eq!(got.map(|(v, _)| v), want);
    }

    #[test]
    fn scan_matches_scalar(vals in prop::array::uniform32(0u32..1000), bits in any::<u32>()) {
        let mask = Mask(bits);
        let lv = LaneVec(vals);
        let got = in_warp(|w| exclusive_scan_u32(w, &lv, mask));
        let mut acc = 0u32;
        for (l, &v) in vals.iter().enumerate() {
            if mask.active(l) {
                prop_assert_eq!(got.get(l), acc);
                acc += v;
            }
        }
    }

    #[test]
    fn load_store_roundtrip(data in prop::collection::vec(any::<u32>(), 32..256)) {
        let n = data.len();
        let src = DeviceBuffer::from_slice(&data);
        let dst = DeviceBuffer::<u32>::zeroed(n);
        let dev = DeviceConfig::test_tiny();
        let warps = n.div_ceil(WARP_LANES);
        launch(&dev, 1, warps, |blk| {
            blk.each_warp(|w| {
                let base = w.warp_in_block * WARP_LANES;
                let count = n.saturating_sub(base).min(WARP_LANES);
                let mask = Mask::first(count);
                let idx = w.math_idx(mask, |l| base + l);
                let v = w.ld_global(&src, &idx, mask);
                w.st_global(&dst, &idx, &v, mask);
            });
        });
        prop_assert_eq!(dst.to_vec(), data);
    }

    #[test]
    fn coalesced_load_transaction_bounds(start in 0usize..64, stride in 1usize..9) {
        // A full-warp strided f32 load touches between 4 (unit stride) and 32
        // (stride >= 8) sectors.
        let buf = DeviceBuffer::<f32>::zeroed(start + 32 * stride + 32);
        let dev = DeviceConfig::test_tiny();
        let report = launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                let idx = w.math_idx(Mask::FULL, |l| start + l * stride);
                let _ = w.ld_global(&buf, &idx, Mask::FULL);
            });
        });
        let tx = report.stats.global_load_transactions;
        prop_assert!((4..=32).contains(&tx), "tx = {tx}");
        if stride == 1 && start % 8 == 0 {
            prop_assert_eq!(tx, 4);
        }
        if stride >= 8 {
            prop_assert_eq!(tx, 32);
        }
    }

    #[test]
    fn atomic_max_is_running_max(vals in prop::collection::vec(any::<u64>(), 1..128)) {
        let buf = DeviceBuffer::<u64>::zeroed(1);
        let dev = DeviceConfig::test_tiny();
        let vals2 = vals.clone();
        launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                for chunk in vals2.chunks(WARP_LANES) {
                    let mask = Mask::first(chunk.len());
                    let idx = LaneVec::splat(0usize);
                    let mut lv = LaneVec::zeroed();
                    for (l, &v) in chunk.iter().enumerate() {
                        lv.set(l, v);
                    }
                    let _ = w.atomic_max_u64(&buf, &idx, &lv, mask);
                }
            });
        });
        prop_assert_eq!(buf.read(0), vals.iter().copied().max().unwrap());
    }

    #[test]
    fn shfl_is_a_gather(vals in prop::array::uniform32(any::<u32>()), srcs in prop::array::uniform32(0usize..32)) {
        let lv = LaneVec(vals);
        let sv = LaneVec(srcs);
        let got = in_warp(|w| w.shfl(&lv, &sv, Mask::FULL));
        for l in 0..WARP_LANES {
            prop_assert_eq!(got.get(l), vals[srcs[l]]);
        }
    }
}

#[test]
fn deterministic_replay() {
    // Identical launches must produce identical reports, bit for bit.
    let run = || {
        let dev = DeviceConfig::pascal_like();
        let buf = DeviceBuffer::<u64>::zeroed(64);
        let report = launch(&dev, 4, 2, |blk| {
            blk.each_warp(|w| {
                let warp = w.global_warp;
                let block = w.block_idx;
                let idx = w.math_idx(Mask::FULL, |l| (l * 7 + warp) % 64);
                let vals = w.math(Mask::FULL, |l| (l as u64) << block);
                let _ = w.atomic_max_u64(&buf, &idx, &vals, Mask::FULL);
            });
            blk.sync();
        });
        (report, buf.to_vec())
    };
    let (r1, m1) = run();
    let (r2, m2) = run();
    assert_eq!(r1, r2);
    assert_eq!(m1, m2);
}

#[test]
fn atomic_contention_counts_same_address_lanes() {
    let dev = DeviceConfig::test_tiny();
    let buf = DeviceBuffer::<u64>::zeroed(4);
    let report = launch(&dev, 1, 1, |blk| {
        blk.each_warp(|w| {
            // All 32 lanes hit address 0: 31 serializations.
            let idx = LaneVec::splat(0usize);
            let vals = LaneVec::from_fn(|l| l as u64);
            let _ = w.atomic_max_u64(&buf, &idx, &vals, Mask::FULL);
        });
    });
    assert_eq!(report.stats.atomic_ops, 32);
    assert_eq!(report.stats.atomic_serializations, 31);
    assert_eq!(buf.read(0), 31);
}

#[test]
fn spread_atomics_do_not_serialize() {
    let dev = DeviceConfig::test_tiny();
    let buf = DeviceBuffer::<u64>::zeroed(32);
    let report = launch(&dev, 1, 1, |blk| {
        blk.each_warp(|w| {
            let idx = w.math_idx(Mask::FULL, |l| l);
            let vals = LaneVec::splat(5u64);
            let _ = w.atomic_max_u64(&buf, &idx, &vals, Mask::FULL);
        });
    });
    assert_eq!(report.stats.atomic_serializations, 0);
}
