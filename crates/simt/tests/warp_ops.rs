//! Architectural semantics of every `WarpCtx` operation: predication,
//! masking, tie resolution, out-of-bounds behaviour and counter accounting.

use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, Mask, WARP_LANES};

fn one_warp(mut f: impl FnMut(&mut wknng_simt::WarpCtx)) -> wknng_simt::LaunchReport {
    launch(&DeviceConfig::test_tiny(), 1, 1, |blk| blk.each_warp(&mut f))
}

#[test]
fn math_writes_default_to_inactive_lanes() {
    one_warp(|w| {
        let v = w.math(Mask::first(4), |l| (l + 1) as f32);
        assert_eq!(v.get(3), 4.0);
        assert_eq!(v.get(4), 0.0, "predicated-off lanes read the type default");
        assert_eq!(v.get(31), 0.0);
    });
}

#[test]
fn math_keep_preserves_inactive_lanes() {
    one_warp(|w| {
        let init = w.math(Mask::FULL, |l| l as f32);
        let upd = w.math_keep(Mask::first(2), &init, |l| 100.0 + l as f32);
        assert_eq!(upd.get(0), 100.0);
        assert_eq!(upd.get(1), 101.0);
        assert_eq!(upd.get(2), 2.0, "inactive lanes keep the previous value");
        assert_eq!(upd.get(31), 31.0);
    });
}

#[test]
fn pred_produces_a_submask_of_the_active_mask() {
    one_warp(|w| {
        let m = w.pred(Mask::first(8), |l| l % 2 == 0);
        assert_eq!(m.count(), 4);
        assert!(m.active(0) && m.active(6));
        assert!(!m.active(8), "lanes outside the input mask never activate");
        assert!(!m.active(10));
    });
}

#[test]
fn store_same_address_resolves_to_highest_lane() {
    let buf = DeviceBuffer::<u32>::zeroed(1);
    one_warp(|w| {
        let idx = LaneVec::splat(0usize);
        let vals = w.math(Mask::first(5), |l| l as u32 + 10);
        w.st_global(&buf, &idx, &vals, Mask::first(5));
    });
    assert_eq!(buf.read(0), 14, "highest active lane wins the write");
}

#[test]
fn load_ignores_out_of_bounds_addresses_on_inactive_lanes() {
    let buf = DeviceBuffer::<f32>::from_slice(&[7.0, 8.0]);
    one_warp(|w| {
        // Lanes 2.. point far out of bounds but are masked off.
        let idx = LaneVec::from_fn(|l| if l < 2 { l } else { 1_000_000 });
        let v = w.ld_global(&buf, &idx, Mask::first(2));
        assert_eq!(v.get(0), 7.0);
        assert_eq!(v.get(1), 8.0);
        assert_eq!(v.get(2), 0.0);
    });
}

#[test]
#[should_panic]
fn load_out_of_bounds_on_active_lane_is_a_kernel_fault() {
    let buf = DeviceBuffer::<f32>::zeroed(4);
    one_warp(|w| {
        let idx = LaneVec::splat(99usize);
        let _ = w.ld_global(&buf, &idx, Mask::first(1));
    });
}

#[test]
fn shfl_wraps_source_lane_and_reads_inactive_registers() {
    one_warp(|w| {
        let vals = w.math(Mask::FULL, |l| l as u32);
        // Source 33 wraps to lane 1; reading an inactive lane's register is
        // allowed (the register exists).
        let src = LaneVec::splat(33usize);
        let out = w.shfl(&vals, &src, Mask::first(4));
        assert_eq!(out.get(0), 1);
        assert_eq!(out.get(3), 1);
        assert_eq!(out.get(4), 0, "inactive destination lanes get default");
    });
}

#[test]
fn ballot_reports_only_active_true_lanes() {
    one_warp(|w| {
        let pred = LaneVec::from_fn(|l| l % 2 == 0);
        let bits = w.ballot(&pred, Mask::first(6));
        assert_eq!(bits, 0b010101);
    });
}

#[test]
fn atomic_cas_success_and_failure_return_observed_values() {
    let buf = DeviceBuffer::<u64>::from_slice(&[5, 5]);
    one_warp(|w| {
        let idx = LaneVec::from_fn(|l| l % 2);
        let cmp = LaneVec::from_fn(|l| if l == 0 { 5u64 } else { 999 });
        let new = LaneVec::splat(42u64);
        let old = w.atomic_cas_u64(&buf, &idx, &cmp, &new, Mask::first(2));
        assert_eq!(old.get(0), 5, "successful CAS returns the prior value");
        assert_eq!(old.get(1), 5, "failed CAS also returns the observed value");
    });
    assert_eq!(buf.read(0), 42);
    assert_eq!(buf.read(1), 5, "mismatched compare leaves memory untouched");
}

#[test]
fn same_instruction_cas_to_one_address_serializes_in_lane_order() {
    let buf = DeviceBuffer::<u64>::zeroed(1);
    one_warp(|w| {
        let idx = LaneVec::splat(0usize);
        let cmp = LaneVec::splat(0u64);
        let new = LaneVec::from_fn(|l| l as u64 + 1);
        let old = w.atomic_cas_u64(&buf, &idx, &cmp, &new, Mask::first(3));
        // Lane 0 wins; lanes 1 and 2 observe its value and fail.
        assert_eq!(old.get(0), 0);
        assert_eq!(old.get(1), 1);
        assert_eq!(old.get(2), 1);
    });
    assert_eq!(buf.read(0), 1);
}

#[test]
fn atomic_add_accumulates_across_lanes_and_returns_prefixes() {
    let buf = DeviceBuffer::<u32>::zeroed(1);
    one_warp(|w| {
        let idx = LaneVec::splat(0usize);
        let vals = LaneVec::splat(2u32);
        let old = w.atomic_add_u32(&buf, &idx, &vals, Mask::first(4));
        assert_eq!(
            (0..4).map(|l| old.get(l)).collect::<Vec<_>>(),
            vec![0, 2, 4, 6],
            "pre-values form the exclusive prefix in lane order"
        );
    });
    assert_eq!(buf.read(0), 8);
}

#[test]
fn atomic_min_max_pre_values() {
    let buf = DeviceBuffer::<u64>::from_slice(&[10]);
    one_warp(|w| {
        let idx = LaneVec::splat(0usize);
        let old = w.atomic_max_u64(&buf, &idx, &LaneVec::splat(3u64), Mask::first(1));
        assert_eq!(old.get(0), 10);
        let old = w.atomic_min_u64(&buf, &idx, &LaneVec::splat(4u64), Mask::first(1));
        assert_eq!(old.get(0), 10);
    });
    assert_eq!(buf.read(0), 4);
}

#[test]
fn counters_track_instructions_lanes_and_divergence() {
    let report = one_warp(|w| {
        w.charge_alu(Mask::FULL, 3);
        let _ = w.math(Mask::first(8), |_| 0u32);
    });
    let s = report.stats;
    assert_eq!(s.instructions, 4);
    assert_eq!(s.lane_ops, 3 * 32 + 8);
    assert_eq!(s.inactive_lane_slots, 24);
    assert!(s.divergence_ratio() > 0.0);
}

#[test]
fn l2_counters_split_hits_and_misses() {
    let buf = DeviceBuffer::<f32>::zeroed(64);
    let report = one_warp(|w| {
        let idx = w.math_idx(Mask::FULL, |l| l);
        let _ = w.ld_global(&buf, &idx, Mask::FULL); // 4 cold sectors
        let _ = w.ld_global(&buf, &idx, Mask::FULL); // 4 hits
    });
    assert_eq!(report.stats.l2_misses, 4);
    assert_eq!(report.stats.l2_hits, 4);
    assert_eq!(report.stats.dram_bytes, 4 * 32);
    assert_eq!(report.stats.global_load_transactions, 8);
}

#[test]
fn shared_memory_store_load_with_mask_resolution() {
    let report = launch(&DeviceConfig::test_tiny(), 1, 1, |blk| {
        let arr = blk.shared_alloc::<u32>(8);
        blk.each_warp(|w| {
            // Two active lanes write the same shared slot: highest wins.
            let idx = LaneVec::splat(3usize);
            let vals = w.math(Mask::first(2), |l| l as u32 + 50);
            w.sh_store(&arr, &idx, &vals, Mask::first(2));
            let back = w.sh_load(&arr, &idx, Mask::first(1));
            assert_eq!(back.get(0), 51);
        });
    });
    assert_eq!(report.stats.shared_accesses, 2);
}

#[test]
fn empty_masks_execute_without_architectural_effects() {
    let buf = DeviceBuffer::<u64>::from_slice(&[9]);
    one_warp(|w| {
        let idx = LaneVec::splat(0usize);
        w.st_global(&buf, &idx, &LaneVec::splat(1u64), Mask::NONE);
        let _ = w.atomic_max_u64(&buf, &idx, &LaneVec::splat(99u64), Mask::NONE);
    });
    assert_eq!(buf.read(0), 9);
}

#[test]
fn warp_identities_are_consistent_across_the_grid() {
    let mut seen = Vec::new();
    launch(&DeviceConfig::test_tiny(), 3, 2, |blk| {
        blk.each_warp(|w| {
            seen.push((w.block_idx, w.warp_in_block, w.global_warp));
        });
    });
    assert_eq!(seen.len(), 6);
    for (b, wi, g) in &seen {
        assert_eq!(*g, b * 2 + wi);
    }
    assert_eq!(WARP_LANES, 32);
}
