//! Simulated device descriptions and the cycle-cost model.

/// Number of lanes (threads) per warp. Fixed at 32, like every NVIDIA GPU.
pub const WARP_LANES: usize = 32;

/// Number of shared-memory banks (4-byte interleaved), as on all recent GPUs.
pub const SHARED_BANKS: usize = 32;

/// Size in bytes of one global-memory sector/transaction in the cost model.
pub const SECTOR_BYTES: usize = 32;

/// A simulated GPU: structural parameters plus the cost constants used to
/// convert an execution trace into estimated device cycles.
///
/// The absolute constants are a throughput model, not silicon; what matters
/// for the reproduction is that the *relative* costs (ALU vs. DRAM vs. shared
/// vs. atomic) are in realistic proportion, so that algorithm-level trade-offs
/// (e.g. the atomic/tiled dimensionality crossover of w-KNNG) appear where
/// they would on hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name used in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: u32,
    /// Core clock in GHz, used only to convert cycles into milliseconds.
    pub clock_ghz: f64,
    /// Device-wide DRAM bandwidth expressed in bytes per core cycle.
    pub dram_bytes_per_cycle: f64,
    /// Shared-memory capacity per block in bytes.
    pub shared_mem_bytes: u32,
    /// Cycles per warp ALU instruction (throughput).
    pub alu_cycles: f64,
    /// Cycles charged per 32-byte global-memory transaction.
    pub global_tx_cycles: f64,
    /// Cycles per shared-memory replay (conflict-free access = 1 replay).
    pub shared_cycles: f64,
    /// Base cycles for a warp-level atomic instruction.
    pub atomic_base_cycles: f64,
    /// Extra cycles for each lane serialized behind a same-address conflict.
    pub atomic_conflict_cycles: f64,
    /// Cycles for a block-wide barrier (`__syncthreads`).
    pub sync_cycles: f64,
    /// L2 cache capacity in bytes. Global transactions that hit in L2 cost
    /// [`DeviceConfig::l2_hit_cycles`] and do not count against the DRAM
    /// bandwidth roofline.
    pub l2_bytes: u32,
    /// Cycles per L2-hit transaction.
    pub l2_hit_cycles: f64,
}

impl DeviceConfig {
    /// A Pascal-generation mid-range device (GTX-1070 class): 15 SMs,
    /// 256 GB/s DRAM. Matches the scale of hardware available to the
    /// original study's academic lab.
    pub fn pascal_like() -> Self {
        DeviceConfig {
            name: "pascal-like (15 SM, 256 GB/s)",
            sm_count: 15,
            max_warps_per_sm: 64,
            clock_ghz: 1.68,
            dram_bytes_per_cycle: 152.0,
            shared_mem_bytes: 48 * 1024,
            alu_cycles: 1.0,
            global_tx_cycles: 4.0,
            shared_cycles: 1.0,
            atomic_base_cycles: 8.0,
            atomic_conflict_cycles: 4.0,
            sync_cycles: 24.0,
            l2_bytes: 2 * 1024 * 1024,
            l2_hit_cycles: 0.25,
        }
    }

    /// A Volta-generation datacenter device (V100 class): 80 SMs,
    /// 900 GB/s HBM2.
    pub fn volta_like() -> Self {
        DeviceConfig {
            name: "volta-like (80 SM, 900 GB/s)",
            sm_count: 80,
            max_warps_per_sm: 64,
            clock_ghz: 1.38,
            dram_bytes_per_cycle: 652.0,
            shared_mem_bytes: 96 * 1024,
            alu_cycles: 1.0,
            global_tx_cycles: 4.0,
            shared_cycles: 1.0,
            atomic_base_cycles: 6.0,
            atomic_conflict_cycles: 3.0,
            sync_cycles: 20.0,
            l2_bytes: 6 * 1024 * 1024,
            l2_hit_cycles: 0.25,
        }
    }

    /// A proportionally scaled-down GPU (2 SMs, 1/8 of the pascal-class
    /// bandwidth, same per-SM balance).
    ///
    /// Simulating paper-scale datasets (10⁵–10⁶ points) is not feasible, so
    /// the evaluation runs 10²–10³-point workloads; on a full-size device
    /// those grids cannot saturate the SMs and every comparison degenerates
    /// into per-block latency. Shrinking the machine with the workload — the
    /// standard scaled-simulation methodology — keeps grids in the saturated
    /// regime where the paper's throughput trade-offs (memory roofline vs.
    /// compute vs. atomic contention) are the binding constraints.
    pub fn scaled_gpu() -> Self {
        DeviceConfig {
            name: "scaled-gpu (2 SM, 20 B/cycle)",
            sm_count: 2,
            max_warps_per_sm: 32,
            clock_ghz: 1.68,
            dram_bytes_per_cycle: 20.0,
            shared_mem_bytes: 48 * 1024,
            alu_cycles: 1.0,
            global_tx_cycles: 4.0,
            shared_cycles: 1.0,
            atomic_base_cycles: 8.0,
            atomic_conflict_cycles: 4.0,
            sync_cycles: 24.0,
            l2_bytes: 64 * 1024,
            l2_hit_cycles: 0.25,
        }
    }

    /// A tiny single-SM device. Useful in tests: scheduling is trivial and
    /// cycle counts are easy to reason about.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny (1 SM)",
            sm_count: 1,
            max_warps_per_sm: 8,
            clock_ghz: 1.0,
            dram_bytes_per_cycle: 64.0,
            shared_mem_bytes: 16 * 1024,
            alu_cycles: 1.0,
            global_tx_cycles: 4.0,
            shared_cycles: 1.0,
            atomic_base_cycles: 8.0,
            atomic_conflict_cycles: 4.0,
            sync_cycles: 24.0,
            l2_bytes: 8 * 1024,
            l2_hit_cycles: 0.25,
        }
    }

    /// Convert a cycle count into milliseconds at this device's clock.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }

    /// Number of blocks that can be resident simultaneously on the device
    /// for a given block size (warps per block). Always at least 1.
    pub fn concurrent_blocks(&self, warps_per_block: u32) -> u32 {
        let per_sm = (self.max_warps_per_sm / warps_per_block.max(1)).max(1);
        (per_sm * self.sm_count).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for dev in
            [DeviceConfig::pascal_like(), DeviceConfig::volta_like(), DeviceConfig::test_tiny()]
        {
            assert!(dev.sm_count >= 1);
            assert!(dev.max_warps_per_sm >= 1);
            assert!(dev.clock_ghz > 0.0);
            assert!(dev.dram_bytes_per_cycle > 0.0);
            assert!(dev.shared_mem_bytes >= 1024);
        }
    }

    #[test]
    fn volta_outclasses_pascal() {
        let p = DeviceConfig::pascal_like();
        let v = DeviceConfig::volta_like();
        assert!(v.sm_count > p.sm_count);
        assert!(v.dram_bytes_per_cycle > p.dram_bytes_per_cycle);
    }

    #[test]
    fn cycles_to_ms_uses_clock() {
        let dev = DeviceConfig::test_tiny(); // 1 GHz
        assert!((dev.cycles_to_ms(1e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_blocks_respects_occupancy() {
        let dev = DeviceConfig::test_tiny(); // 1 SM x 8 warps
        assert_eq!(dev.concurrent_blocks(1), 8);
        assert_eq!(dev.concurrent_blocks(4), 2);
        assert_eq!(dev.concurrent_blocks(8), 1);
        // Oversized blocks still get one slot.
        assert_eq!(dev.concurrent_blocks(16), 1);
        // warps_per_block = 0 must not divide by zero.
        assert_eq!(dev.concurrent_blocks(0), 8);
    }
}
