//! Per-block shared memory: a bump-allocated, byte-addressed scratchpad with
//! bank-conflict accounting hooks.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;

use crate::device::SHARED_BANKS;
use crate::memory::Pod;

/// A typed view into a block's shared-memory arena.
///
/// Obtained from [`crate::block::BlockCtx::shared_alloc`]; all loads/stores go
/// through [`crate::warp::WarpCtx`] so the bank-conflict model sees the lane
/// address pattern.
#[derive(Debug, Clone, Copy)]
pub struct SharedArray<T: Pod> {
    pub(crate) byte_offset: usize,
    pub(crate) len: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> SharedArray<T> {
    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx` within the arena.
    ///
    /// # Panics
    /// Panics on an out-of-range index in every build profile. A wrapped
    /// address would silently alias a *neighboring* shared allocation in
    /// release builds — the exact corruption class the analyzer exists to
    /// rule out — so this is a checked fault, not a `debug_assert`.
    pub(crate) fn byte_addr(&self, idx: usize) -> usize {
        assert!(idx < self.len, "shared-memory index {idx} out of bounds (len {})", self.len);
        self.byte_offset + idx * T::SIZE
    }
}

/// The shared-memory scratchpad of one thread block.
#[derive(Debug)]
pub struct SharedMem {
    bytes: RefCell<Vec<u8>>,
    next: Cell<usize>,
    capacity: usize,
}

impl SharedMem {
    pub(crate) fn new(capacity: usize) -> Self {
        SharedMem { bytes: RefCell::new(vec![0u8; capacity]), next: Cell::new(0), capacity }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.next.get()
    }

    /// Arena capacity in bytes (the device's per-block shared memory).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bump-allocate `len` elements of `T`, aligned to `T::SIZE`.
    ///
    /// # Panics
    /// Panics if the block's shared-memory capacity would be exceeded — the
    /// same condition that makes a real CUDA launch fail.
    pub(crate) fn alloc<T: Pod>(&self, len: usize) -> SharedArray<T> {
        let align = T::SIZE.max(1);
        let start = self.next.get().div_ceil(align) * align;
        let end = start + len * T::SIZE;
        assert!(
            end <= self.capacity,
            "shared memory overflow: need {end} bytes, capacity {}",
            self.capacity
        );
        self.next.set(end);
        SharedArray { byte_offset: start, len, _elem: PhantomData }
    }

    /// Reset the arena (between logically independent kernel phases).
    pub(crate) fn reset(&self) {
        self.next.set(0);
    }

    pub(crate) fn load<T: Pod>(&self, arr: &SharedArray<T>, idx: usize) -> T {
        let addr = arr.byte_addr(idx);
        let bytes = self.bytes.borrow();
        let mut bits = 0u64;
        for i in 0..T::SIZE {
            bits |= (bytes[addr + i] as u64) << (8 * i);
        }
        T::from_bits64(bits)
    }

    pub(crate) fn store<T: Pod>(&self, arr: &SharedArray<T>, idx: usize, v: T) {
        let addr = arr.byte_addr(idx);
        let mut bytes = self.bytes.borrow_mut();
        let bits = v.to_bits64();
        for i in 0..T::SIZE {
            bytes[addr + i] = (bits >> (8 * i)) as u8;
        }
    }
}

/// Number of shared-memory replays needed to satisfy the given active byte
/// addresses (1 = conflict-free). Lanes touching the same 4-byte word
/// broadcast and cost nothing extra; distinct words mapping to the same bank
/// serialize.
pub(crate) fn bank_replays(addrs: &[usize]) -> u64 {
    let mut words_per_bank: [Vec<usize>; SHARED_BANKS] = std::array::from_fn(|_| Vec::new());
    for &addr in addrs {
        let word = addr / 4;
        let bank = word % SHARED_BANKS;
        if !words_per_bank[bank].contains(&word) {
            words_per_bank[bank].push(word);
        }
    }
    words_per_bank.iter().map(|w| w.len() as u64).max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let sm = SharedMem::new(64);
        let a = sm.alloc::<u8>(3);
        assert_eq!(a.byte_offset, 0);
        let b = sm.alloc::<f32>(4);
        assert_eq!(b.byte_offset % 4, 0);
        assert_eq!(sm.used(), b.byte_offset + 16);
        assert_eq!(sm.capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn alloc_overflow_panics() {
        let sm = SharedMem::new(16);
        let _ = sm.alloc::<u64>(3);
    }

    #[test]
    fn load_store_roundtrip() {
        let sm = SharedMem::new(256);
        let arr = sm.alloc::<f32>(8);
        sm.store(&arr, 3, -1.5f32);
        assert_eq!(sm.load::<f32>(&arr, 3), -1.5);
        assert_eq!(sm.load::<f32>(&arr, 0), 0.0);
        let ints = sm.alloc::<u64>(2);
        sm.store(&ints, 1, u64::MAX - 7);
        assert_eq!(sm.load::<u64>(&ints, 1), u64::MAX - 7);
    }

    #[test]
    fn reset_reclaims_space() {
        let sm = SharedMem::new(32);
        let _ = sm.alloc::<u64>(4);
        sm.reset();
        let again = sm.alloc::<u64>(4);
        assert_eq!(again.byte_offset, 0);
    }

    #[test]
    fn conflict_free_unit_stride() {
        // Lanes access consecutive f32 words: one replay.
        let addrs: Vec<usize> = (0..32).map(|l| l * 4).collect();
        assert_eq!(bank_replays(&addrs), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![100usize; 32];
        assert_eq!(bank_replays(&addrs), 1);
    }

    #[test]
    fn stride_two_words_conflicts() {
        // Stride of 2 words: lanes 0 and 16 hit bank 0 with distinct words.
        let addrs: Vec<usize> = (0..32).map(|l| l * 8).collect();
        assert_eq!(bank_replays(&addrs), 2);
    }

    #[test]
    fn worst_case_same_bank() {
        // 32 distinct words, all in bank 0.
        let addrs: Vec<usize> = (0..32).map(|l| l * 4 * SHARED_BANKS).collect();
        assert_eq!(bank_replays(&addrs), 32);
    }

    #[test]
    fn empty_access_counts_one_replay() {
        assert_eq!(bank_replays(&[]), 1);
    }
}
