//! The warp execution context: every SIMT instruction a kernel can issue.

use crate::cache::L2Cache;
use crate::device::{DeviceConfig, SECTOR_BYTES, WARP_LANES};
use crate::lane::{LaneVec, Mask};
use crate::memory::{DeviceBuffer, Pod};
use crate::shared::{bank_replays, SharedArray, SharedMem};
use crate::stats::Stats;

/// Execution context of one warp inside a block.
///
/// Every method models one (or a fixed short sequence of) SIMT instruction(s):
/// it performs the architectural effect *and* charges the cost model. Kernels
/// are written against this context exactly the way warp-centric CUDA kernels
/// are written against `__shfl_sync`/`atomicCAS`/shared tiles.
pub struct WarpCtx<'a> {
    /// Device being simulated.
    pub device: &'a DeviceConfig,
    /// Index of the owning block within the grid.
    pub block_idx: usize,
    /// Warp index within the block.
    pub warp_in_block: usize,
    /// Flat warp index within the grid.
    pub global_warp: usize,
    pub(crate) shared: &'a SharedMem,
    pub(crate) stats: &'a mut Stats,
    pub(crate) cycles: f64,
    /// `(buffer id, 32-byte sector)` of every lane-atomic issued; the launch
    /// aggregates this into the cross-warp contention model.
    pub(crate) atomic_log: &'a mut Vec<(u64, u64)>,
    /// Launch-wide L2 cache consulted by every global transaction.
    pub(crate) l2: &'a mut L2Cache,
}

impl<'a> WarpCtx<'a> {
    /// Cycles this warp has accumulated so far in the current phase.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    #[inline]
    fn charge_issue(&mut self, mask: Mask, n: u64) {
        let active = mask.count() as u64;
        self.stats.instructions += n;
        self.stats.lane_ops += active * n;
        self.stats.inactive_lane_slots += (WARP_LANES as u64 - active) * n;
        self.cycles += self.device.alu_cycles * n as f64;
    }

    /// Charge `n` ALU instructions without an architectural effect. Used by
    /// composite primitives whose semantics are computed directly but whose
    /// hardware cost is a known instruction sequence.
    pub fn charge_alu(&mut self, mask: Mask, n: u64) {
        self.charge_issue(mask, n);
    }

    /// One ALU instruction: apply `f` on each active lane.
    ///
    /// Inactive lanes hold `T::default()` in the result, mirroring a
    /// predicated-off register write.
    pub fn math<T: Pod>(&mut self, mask: Mask, mut f: impl FnMut(usize) -> T) -> LaneVec<T> {
        self.charge_issue(mask, 1);
        LaneVec::from_fn(|l| if mask.active(l) { f(l) } else { T::default() })
    }

    /// One ALU instruction with **predicated write-back**: active lanes
    /// receive `f(lane)`, inactive lanes keep their value from `prev`. This
    /// is how a masked accumulator update behaves on hardware — use it for
    /// any loop-carried register, or partial sums silently vanish on the
    /// ragged last iteration.
    pub fn math_keep<T: Pod>(
        &mut self,
        mask: Mask,
        prev: &LaneVec<T>,
        mut f: impl FnMut(usize) -> T,
    ) -> LaneVec<T> {
        self.charge_issue(mask, 1);
        LaneVec::from_fn(|l| if mask.active(l) { f(l) } else { prev.get(l) })
    }

    /// Like [`WarpCtx::math`] for index-typed values (`usize` is not `Pod`
    /// because it never lives in device memory).
    pub fn math_idx(&mut self, mask: Mask, mut f: impl FnMut(usize) -> usize) -> LaneVec<usize> {
        self.charge_issue(mask, 1);
        LaneVec::from_fn(|l| if mask.active(l) { f(l) } else { 0 })
    }

    /// One predicate instruction: evaluate `f` on active lanes, returning the
    /// sub-mask of lanes where it held.
    pub fn pred(&mut self, mask: Mask, mut f: impl FnMut(usize) -> bool) -> Mask {
        self.charge_issue(mask, 1);
        Mask::from_fn(|l| mask.active(l) && f(l))
    }

    // ---------------------------------------------------------------- global

    /// Group the active lane addresses into 32-byte sectors, consult the L2
    /// cache for each, and charge the memory-path costs. Returns the number
    /// of transactions issued.
    fn access_global<T: Pod>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &LaneVec<usize>,
        mask: Mask,
    ) -> u64 {
        let mut sectors: Vec<(u64, u64)> = Vec::with_capacity(mask.count());
        for lane in mask.iter() {
            let byte = idx.get(lane) * T::SIZE;
            let sector = (buf.id(), (byte / SECTOR_BYTES) as u64);
            if !sectors.contains(&sector) {
                sectors.push(sector);
            }
        }
        for &sector in &sectors {
            if self.l2.access(sector) {
                self.stats.l2_hits += 1;
                self.cycles += self.device.l2_hit_cycles;
            } else {
                self.stats.l2_misses += 1;
                self.stats.dram_bytes += SECTOR_BYTES as u64;
                self.cycles += self.device.global_tx_cycles;
            }
        }
        sectors.len() as u64
    }

    /// Coalesced global load: each active lane reads `buf[idx[lane]]`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices of active lanes (a kernel bug, like a
    /// CUDA illegal memory access), naming the buffer's label and the
    /// faulting lane, before any cost is accounted.
    pub fn ld_global<T: Pod>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &LaneVec<usize>,
        mask: Mask,
    ) -> LaneVec<T> {
        buf.assert_lane_bounds("global load", idx, mask);
        let tx = self.access_global(buf, idx, mask);
        self.charge_issue(mask, 1);
        self.stats.global_load_transactions += tx;
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::global_read(
            buf.id(),
            buf.label(),
            buf.len(),
            idx,
            mask,
            self.block_idx,
            self.warp_in_block,
        );
        let data = buf.borrow();
        LaneVec::from_fn(|l| if mask.active(l) { data[idx.get(l)] } else { T::default() })
    }

    /// Coalesced global store: each active lane writes `vals[lane]` to
    /// `buf[idx[lane]]`. Lanes writing the same address resolve to the
    /// highest active lane (deterministic stand-in for the hardware's
    /// unspecified winner).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices of active lanes, naming the buffer's
    /// label and the faulting lane, before any cost is accounted.
    pub fn st_global<T: Pod>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &LaneVec<usize>,
        vals: &LaneVec<T>,
        mask: Mask,
    ) {
        buf.assert_lane_bounds("global store", idx, mask);
        let tx = self.access_global(buf, idx, mask);
        self.charge_issue(mask, 1);
        self.stats.global_store_transactions += tx;
        #[cfg(feature = "sanitize")]
        {
            let bits: [u64; WARP_LANES] = std::array::from_fn(|l| vals.get(l).to_bits64());
            crate::sanitizer::hooks::global_write(
                buf.id(),
                buf.label(),
                buf.len(),
                idx,
                &bits,
                mask,
                self.block_idx,
                self.warp_in_block,
            );
        }
        let mut data = buf.borrow_mut();
        for lane in mask.iter() {
            data[idx.get(lane)] = vals.get(lane);
        }
    }

    // --------------------------------------------------------------- atomics

    fn charge_atomic<T: Pod>(&mut self, buf: &DeviceBuffer<T>, idx: &LaneVec<usize>, mask: Mask) {
        buf.assert_lane_bounds("global atomic", idx, mask);
        let active = mask.count() as u64;
        self.stats.atomic_ops += active;
        for lane in mask.iter() {
            let sector = (idx.get(lane) * T::SIZE / SECTOR_BYTES) as u64;
            self.atomic_log.push((buf.id(), sector));
        }
        // Serialization: lanes grouped by target address; each extra lane in
        // a group replays.
        let mut groups: Vec<(usize, u64)> = Vec::new();
        for lane in mask.iter() {
            let a = idx.get(lane);
            if let Some(g) = groups.iter_mut().find(|(addr, _)| *addr == a) {
                g.1 += 1;
            } else {
                groups.push((a, 1));
            }
        }
        let serialized: u64 = groups.iter().map(|&(_, c)| c - 1).sum();
        self.stats.atomic_serializations += serialized;
        self.stats.global_store_transactions += groups.len() as u64;
        // Atomics resolve in L2; only misses touch DRAM.
        for &(a, _) in &groups {
            let sector = (buf.id(), (a * T::SIZE / SECTOR_BYTES) as u64);
            if self.l2.access(sector) {
                self.stats.l2_hits += 1;
            } else {
                self.stats.l2_misses += 1;
                self.stats.dram_bytes += SECTOR_BYTES as u64;
                self.cycles += self.device.global_tx_cycles;
            }
        }
        self.charge_issue(mask, 1);
        self.cycles +=
            self.device.atomic_base_cycles + serialized as f64 * self.device.atomic_conflict_cycles;
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::global_atomic(
            buf.id(),
            buf.label(),
            buf.len(),
            idx,
            mask,
            self.block_idx,
            self.warp_in_block,
        );
    }

    /// Per-lane `atomicCAS` on a `u64` buffer. Lanes execute in ascending
    /// lane order (deterministic). Returns the value observed before the
    /// lane's own operation (the CUDA `atomicCAS` return value).
    pub fn atomic_cas_u64(
        &mut self,
        buf: &DeviceBuffer<u64>,
        idx: &LaneVec<usize>,
        compare: &LaneVec<u64>,
        new: &LaneVec<u64>,
        mask: Mask,
    ) -> LaneVec<u64> {
        self.charge_atomic(buf, idx, mask);
        let mut data = buf.borrow_mut();
        let mut old = LaneVec::zeroed();
        for lane in mask.iter() {
            let a = idx.get(lane);
            let cur = data[a];
            old.set(lane, cur);
            if cur == compare.get(lane) {
                data[a] = new.get(lane);
            }
        }
        old
    }

    /// Per-lane `atomicMax` on a `u64` buffer; returns pre-operation values.
    pub fn atomic_max_u64(
        &mut self,
        buf: &DeviceBuffer<u64>,
        idx: &LaneVec<usize>,
        vals: &LaneVec<u64>,
        mask: Mask,
    ) -> LaneVec<u64> {
        self.charge_atomic(buf, idx, mask);
        let mut data = buf.borrow_mut();
        let mut old = LaneVec::zeroed();
        for lane in mask.iter() {
            let a = idx.get(lane);
            old.set(lane, data[a]);
            data[a] = data[a].max(vals.get(lane));
        }
        old
    }

    /// Per-lane `atomicMin` on a `u64` buffer; returns pre-operation values.
    pub fn atomic_min_u64(
        &mut self,
        buf: &DeviceBuffer<u64>,
        idx: &LaneVec<usize>,
        vals: &LaneVec<u64>,
        mask: Mask,
    ) -> LaneVec<u64> {
        self.charge_atomic(buf, idx, mask);
        let mut data = buf.borrow_mut();
        let mut old = LaneVec::zeroed();
        for lane in mask.iter() {
            let a = idx.get(lane);
            old.set(lane, data[a]);
            data[a] = data[a].min(vals.get(lane));
        }
        old
    }

    /// Per-lane `atomicAdd` on a `u32` buffer; returns pre-operation values.
    pub fn atomic_add_u32(
        &mut self,
        buf: &DeviceBuffer<u32>,
        idx: &LaneVec<usize>,
        vals: &LaneVec<u32>,
        mask: Mask,
    ) -> LaneVec<u32> {
        self.charge_atomic(buf, idx, mask);
        let mut data = buf.borrow_mut();
        let mut old = LaneVec::zeroed();
        for lane in mask.iter() {
            let a = idx.get(lane);
            old.set(lane, data[a]);
            data[a] = data[a].wrapping_add(vals.get(lane));
        }
        old
    }

    /// Record `n` failed-and-retried CAS attempts (callers implementing CAS
    /// loops report their retries so E8 can expose contention).
    pub fn note_atomic_retries(&mut self, n: u64) {
        self.stats.atomic_retries += n;
    }

    // --------------------------------------------------------------- shuffle

    /// `__shfl_sync`: every active lane reads the register of `src[lane]`.
    /// Reading from an inactive source lane yields that lane's current value
    /// (matching hardware, where the register still exists).
    pub fn shfl<T: Pod>(
        &mut self,
        vals: &LaneVec<T>,
        src: &LaneVec<usize>,
        mask: Mask,
    ) -> LaneVec<T> {
        self.charge_issue(mask, 1);
        LaneVec::from_fn(|l| {
            if mask.active(l) {
                vals.get(src.get(l) % WARP_LANES)
            } else {
                T::default()
            }
        })
    }

    /// `__ballot_sync`: bitmask of active lanes whose value is `true`.
    pub fn ballot(&mut self, pred: &LaneVec<bool>, mask: Mask) -> u32 {
        self.charge_issue(mask, 1);
        let mut bits = 0u32;
        for lane in mask.iter() {
            if pred.get(lane) {
                bits |= 1 << lane;
            }
        }
        bits
    }

    /// `__syncwarp`: a warp-level convergence point for `mask`'s lanes.
    ///
    /// The simulator executes lanes in lockstep, so this has no architectural
    /// effect beyond its one-instruction cost — but under the sanitizer it is
    /// a *declared* convergence point: by the end of the warp invocation every
    /// lane must have arrived at sync points the same number of times, or a
    /// [`crate::sanitizer::HazardKind::BarrierDivergence`] hazard is reported.
    /// Model a sub-warp sync by calling this once per converging subgroup.
    pub fn sync_warp(&mut self, mask: Mask) {
        self.charge_issue(mask, 1);
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::warp_sync(mask);
    }

    // ---------------------------------------------------------------- shared

    /// Shared-memory load with bank-conflict accounting.
    pub fn sh_load<T: Pod>(
        &mut self,
        arr: &SharedArray<T>,
        idx: &LaneVec<usize>,
        mask: Mask,
    ) -> LaneVec<T> {
        #[cfg(feature = "sanitize")]
        let mask = crate::sanitizer::hooks::shared_access(
            crate::sanitizer::AccessKind::Read,
            arr.byte_offset,
            T::SIZE,
            arr.len,
            idx,
            mask,
            None,
            self.block_idx,
            self.warp_in_block,
        );
        let addrs: Vec<usize> = mask.iter().map(|l| arr.byte_addr(idx.get(l))).collect();
        let replays = bank_replays(&addrs);
        self.charge_issue(mask, 1);
        self.stats.shared_accesses += 1;
        self.stats.shared_bank_conflicts += replays - 1;
        self.cycles += replays as f64 * self.device.shared_cycles;
        LaneVec::from_fn(|l| {
            if mask.active(l) {
                self.shared.load(arr, idx.get(l))
            } else {
                T::default()
            }
        })
    }

    /// Shared-memory store with bank-conflict accounting. Same-address lanes
    /// resolve to the highest active lane.
    pub fn sh_store<T: Pod>(
        &mut self,
        arr: &SharedArray<T>,
        idx: &LaneVec<usize>,
        vals: &LaneVec<T>,
        mask: Mask,
    ) {
        #[cfg(feature = "sanitize")]
        let mask = {
            let bits: [u64; WARP_LANES] = std::array::from_fn(|l| vals.get(l).to_bits64());
            crate::sanitizer::hooks::shared_access(
                crate::sanitizer::AccessKind::Write,
                arr.byte_offset,
                T::SIZE,
                arr.len,
                idx,
                mask,
                Some(&bits),
                self.block_idx,
                self.warp_in_block,
            )
        };
        let addrs: Vec<usize> = mask.iter().map(|l| arr.byte_addr(idx.get(l))).collect();
        let replays = bank_replays(&addrs);
        self.charge_issue(mask, 1);
        self.stats.shared_accesses += 1;
        self.stats.shared_bank_conflicts += replays - 1;
        self.cycles += replays as f64 * self.device.shared_cycles;
        for lane in mask.iter() {
            self.shared.store(arr, idx.get(lane), vals.get(lane));
        }
    }
}
