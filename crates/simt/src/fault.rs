//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] schedules faults by *fault-aware launch index*: every call
//! to [`crate::launch::try_launch`] made while a [`FaultScope`] is installed
//! on the current thread consumes one index. Plain [`crate::launch::launch`]
//! calls never consult the plan, so substrate code that has no recovery path
//! (e.g. forest construction) is unaffected. Three fault kinds are modelled:
//!
//! * **transient launch failures** — the launch fails at entry with
//!   [`LaunchFault::Transient`] and has no side effects, like a sporadic
//!   `cudaErrorLaunchFailure`; retrying the same kernel consumes the next
//!   index and (unless that one is also scheduled) succeeds;
//! * **shared-memory allocation failures** — the launch is rejected with
//!   [`LaunchFault::SharedAllocFailed`], modelling a launch-configuration
//!   error (`cudaErrorLaunchOutOfResources`). Retrying the same
//!   configuration cannot help; the caller must degrade to a kernel that
//!   requests less shared memory;
//! * **single-bit memory flips** — after a scheduled launch completes, one
//!   bit of one word of device global memory is flipped (an ECC-style
//!   upset). The flip is delivered through [`take_due_flips`]: the pipeline
//!   that owns the global-memory state polls after each kernel and applies
//!   the flip with [`crate::memory::DeviceBuffer::corrupt_bit`] at a word
//!   position derived from the plan seed.
//!
//! Everything is deterministic: the same plan against the same build produces
//! the same injected faults in the same places, which is what makes recovery
//! unit-testable.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;

/// Why a fault-aware launch was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchFault {
    /// A transient, side-effect-free launch failure; retrying may succeed.
    Transient {
        /// Fault-aware launch index that failed.
        launch: u64,
    },
    /// The launch configuration could not allocate its shared memory;
    /// retrying the same configuration will fail again.
    SharedAllocFailed {
        /// Fault-aware launch index that failed.
        launch: u64,
    },
}

impl fmt::Display for LaunchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchFault::Transient { launch } => {
                write!(f, "transient launch failure (launch {launch})")
            }
            LaunchFault::SharedAllocFailed { launch } => {
                write!(f, "shared-memory allocation failed (launch {launch})")
            }
        }
    }
}

impl std::error::Error for LaunchFault {}

/// A scheduled bit flip that has become due: the owner of the device state
/// applies it to a buffer of its choosing at `word_seed % len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFlip {
    /// Seeded value used to derive the target word index.
    pub word_seed: u64,
    /// Seeded bit position. The owner must reduce it modulo the element
    /// width before calling [`crate::memory::DeviceBuffer::corrupt_bit`],
    /// which rejects out-of-width positions.
    pub bit: u8,
}

/// A reproducible schedule of device faults, addressed by fault-aware launch
/// index (see the module docs for the numbering rules).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    launch_failures: BTreeSet<u64>,
    shared_alloc_failures: BTreeSet<u64>,
    bit_flips: BTreeMap<u64, u8>,
}

impl FaultPlan {
    /// An empty plan; `seed` determines where scheduled bit flips land.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Schedule a transient failure at fault-aware launch `launch`.
    pub fn fail_launch(mut self, launch: u64) -> Self {
        self.launch_failures.insert(launch);
        self
    }

    /// Schedule a shared-memory allocation failure at launch `launch`.
    pub fn fail_shared_alloc(mut self, launch: u64) -> Self {
        self.shared_alloc_failures.insert(launch);
        self
    }

    /// Schedule a single-bit flip of device memory after launch `launch`
    /// completes successfully (flips scheduled on a failing launch are
    /// dropped — the kernel never ran).
    pub fn flip_bit(mut self, launch: u64, bit: u8) -> Self {
        self.bit_flips.insert(launch, bit);
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.launch_failures.is_empty()
            && self.shared_alloc_failures.is_empty()
            && self.bit_flips.is_empty()
    }
}

/// One fault actually delivered by an installed [`FaultScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transient launch failure was delivered.
    TransientLaunch {
        /// Launch index it hit.
        launch: u64,
    },
    /// A shared-memory allocation failure was delivered.
    SharedAllocFailure {
        /// Launch index it hit.
        launch: u64,
    },
    /// A bit flip was queued after this launch.
    BitFlip {
        /// Launch index it followed.
        launch: u64,
        /// Bit position flipped.
        bit: u8,
    },
}

struct FaultState {
    plan: FaultPlan,
    next_launch: u64,
    due: Vec<PendingFlip>,
    log: Vec<InjectedFault>,
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultState>> = const { RefCell::new(None) };
}

/// RAII guard that arms a [`FaultPlan`] on the current thread. Dropping the
/// scope disarms injection and discards any undelivered faults.
///
/// `!Send` by construction: the plan is thread-local state.
pub struct FaultScope {
    _not_send: PhantomData<*const ()>,
}

impl FaultScope {
    /// Install `plan` on the current thread.
    ///
    /// # Panics
    /// Panics if a scope is already installed (plans do not nest).
    pub fn install(plan: FaultPlan) -> FaultScope {
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            assert!(a.is_none(), "a FaultScope is already installed on this thread");
            *a = Some(FaultState { plan, next_launch: 0, due: Vec::new(), log: Vec::new() });
        });
        FaultScope { _not_send: PhantomData }
    }

    /// Every fault delivered so far (ground truth for tests).
    pub fn log(&self) -> Vec<InjectedFault> {
        ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.log.clone()).unwrap_or_default())
    }

    /// Number of fault-aware launches observed so far.
    pub fn launches(&self) -> u64 {
        ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.next_launch).unwrap_or(0))
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = None);
    }
}

/// SplitMix64 — the standard 64-bit seed scrambler; used to derive flip
/// positions deterministically from (plan seed, launch index).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Called by [`crate::launch::try_launch`] at entry: consumes one launch
/// index and delivers any fault scheduled there. No scope installed → `Ok`.
pub(crate) fn begin_launch() -> Result<(), LaunchFault> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let Some(s) = a.as_mut() else { return Ok(()) };
        let idx = s.next_launch;
        s.next_launch += 1;
        if s.plan.shared_alloc_failures.contains(&idx) {
            s.log.push(InjectedFault::SharedAllocFailure { launch: idx });
            return Err(LaunchFault::SharedAllocFailed { launch: idx });
        }
        if s.plan.launch_failures.contains(&idx) {
            s.log.push(InjectedFault::TransientLaunch { launch: idx });
            return Err(LaunchFault::Transient { launch: idx });
        }
        if let Some(&bit) = s.plan.bit_flips.get(&idx) {
            s.due.push(PendingFlip { word_seed: splitmix64(s.plan.seed ^ idx), bit });
            s.log.push(InjectedFault::BitFlip { launch: idx, bit });
        }
        Ok(())
    })
}

/// Drain the bit flips that became due since the last call. The caller
/// applies each to the device buffer holding the state under test.
pub fn take_due_flips() -> Vec<PendingFlip> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(|s| std::mem::take(&mut s.due)).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_means_no_faults() {
        assert_eq!(begin_launch(), Ok(()));
        assert!(take_due_flips().is_empty());
    }

    #[test]
    fn plan_delivers_scheduled_faults_in_order() {
        let plan = FaultPlan::new(7).fail_launch(1).flip_bit(2, 61).fail_shared_alloc(3);
        assert!(!plan.is_empty());
        let scope = FaultScope::install(plan);
        assert_eq!(begin_launch(), Ok(())); // launch 0
        assert_eq!(begin_launch(), Err(LaunchFault::Transient { launch: 1 }));
        assert_eq!(begin_launch(), Ok(())); // launch 2, queues the flip
        let flips = take_due_flips();
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].bit, 61);
        assert_eq!(flips[0].word_seed, splitmix64(7 ^ 2));
        assert!(take_due_flips().is_empty(), "flips are drained once");
        assert_eq!(begin_launch(), Err(LaunchFault::SharedAllocFailed { launch: 3 }));
        assert_eq!(
            scope.log(),
            vec![
                InjectedFault::TransientLaunch { launch: 1 },
                InjectedFault::BitFlip { launch: 2, bit: 61 },
                InjectedFault::SharedAllocFailure { launch: 3 },
            ]
        );
        assert_eq!(scope.launches(), 4);
    }

    #[test]
    fn dropping_the_scope_disarms_injection() {
        {
            let _scope = FaultScope::install(FaultPlan::new(0).fail_launch(0));
        }
        assert_eq!(begin_launch(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn scopes_do_not_nest() {
        let _a = FaultScope::install(FaultPlan::new(0));
        let _b = FaultScope::install(FaultPlan::new(1));
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn display_names_the_fault() {
        let t = LaunchFault::Transient { launch: 5 };
        assert!(t.to_string().contains("transient"));
        let s = LaunchFault::SharedAllocFailed { launch: 6 };
        assert!(s.to_string().contains("shared-memory"));
    }
}
