//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] schedules faults by *fault-aware launch index*: every call
//! to [`crate::launch::try_launch`] made while a [`FaultScope`] is installed
//! on the current thread consumes one index. Plain [`crate::launch::launch`]
//! calls never consult the plan, so substrate code that has no recovery path
//! (e.g. forest construction) is unaffected. Three fault kinds are modelled:
//!
//! * **transient launch failures** — the launch fails at entry with
//!   [`LaunchFault::Transient`] and has no side effects, like a sporadic
//!   `cudaErrorLaunchFailure`; retrying the same kernel consumes the next
//!   index and (unless that one is also scheduled) succeeds;
//! * **shared-memory allocation failures** — the launch is rejected with
//!   [`LaunchFault::SharedAllocFailed`], modelling a launch-configuration
//!   error (`cudaErrorLaunchOutOfResources`). Retrying the same
//!   configuration cannot help; the caller must degrade to a kernel that
//!   requests less shared memory;
//! * **single-bit memory flips** — after a scheduled launch completes, one
//!   bit of one word of device global memory is flipped (an ECC-style
//!   upset). The flip is delivered through [`take_due_flips`]: the pipeline
//!   that owns the global-memory state polls after each kernel and applies
//!   the flip with [`crate::memory::DeviceBuffer::corrupt_bit`] at a word
//!   position derived from the plan seed.
//!
//! Everything is deterministic: the same plan against the same build produces
//! the same injected faults in the same places, which is what makes recovery
//! unit-testable.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;
use std::time::Duration;

/// Why a fault-aware launch was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchFault {
    /// A transient, side-effect-free launch failure; retrying may succeed.
    Transient {
        /// Fault-aware launch index that failed.
        launch: u64,
    },
    /// The launch configuration could not allocate its shared memory;
    /// retrying the same configuration will fail again.
    SharedAllocFailed {
        /// Fault-aware launch index that failed.
        launch: u64,
    },
}

impl fmt::Display for LaunchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchFault::Transient { launch } => {
                write!(f, "transient launch failure (launch {launch})")
            }
            LaunchFault::SharedAllocFailed { launch } => {
                write!(f, "shared-memory allocation failed (launch {launch})")
            }
        }
    }
}

impl std::error::Error for LaunchFault {}

/// A scheduled bit flip that has become due: the owner of the device state
/// applies it to a buffer of its choosing at `word_seed % len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFlip {
    /// Seeded value used to derive the target word index.
    pub word_seed: u64,
    /// Seeded bit position. The owner must reduce it modulo the element
    /// width before calling [`crate::memory::DeviceBuffer::corrupt_bit`],
    /// which rejects out-of-width positions.
    pub bit: u8,
}

/// A serve-side fault delivered at a scheduled serve-batch index (see
/// [`FaultPlan::serve_fault`]). Unlike the launch faults above — which are
/// consumed through a thread-local [`FaultScope`] — serve faults are owned
/// by the serving engine, which numbers dispatched batches globally across
/// its shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// The worker thread panics before serving the batch; its in-flight
    /// queries are abandoned (the supervision layer must turn that into a
    /// typed error, never a hang) and the worker must be respawned.
    PanicWorker,
    /// The worker stalls for the given duration before serving the batch —
    /// a slow device, a page fault storm, a GC'd neighbor (models the
    /// straggler that per-query deadlines exist to bound).
    StallBatch(Duration),
    /// The batch is searched but every result is dropped instead of sent —
    /// a poisoned result channel. Waiters must observe a typed error.
    PoisonResults,
}

/// A fault scoped to one index-swap attempt of a live mutation pipeline (see
/// [`FaultPlan::swap_fault`]). Swap faults are addressed by the global swap
/// attempt index the mutator maintains, independent of the serve-batch
/// numbering: a swap proceeds rebuild → validate → publish, and each variant
/// sabotages one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapFault {
    /// The background rebuild panics mid-way, leaving its working state
    /// torn. The live epoch must stay untouched and the mutation must
    /// resolve to a typed error, never a hang or a partial publish.
    PanicRebuild,
    /// The background rebuild stalls for the given duration. Queries must
    /// keep flowing on the current epoch for the whole stall — a slow swap
    /// is invisible to readers.
    StallRebuild(Duration),
    /// The candidate index is corrupted between rebuild and publish (a torn
    /// write, a flipped bit in the snapshot). The pre-publish validation
    /// audit must catch it and refuse the swap.
    PoisonPublish,
}

/// A reproducible schedule of device faults, addressed by fault-aware launch
/// index (see the module docs for the numbering rules), plus serve-side
/// faults addressed by global serve-batch index and swap-scoped faults
/// addressed by swap attempt index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    launch_failures: BTreeSet<u64>,
    shared_alloc_failures: BTreeSet<u64>,
    bit_flips: BTreeMap<u64, u8>,
    serve_panics: BTreeSet<u64>,
    serve_stalls: BTreeMap<u64, Duration>,
    serve_poisons: BTreeSet<u64>,
    swap_panics: BTreeSet<u64>,
    swap_stalls: BTreeMap<u64, Duration>,
    swap_poisons: BTreeSet<u64>,
}

impl FaultPlan {
    /// An empty plan; `seed` determines where scheduled bit flips land.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Schedule a transient failure at fault-aware launch `launch`.
    pub fn fail_launch(mut self, launch: u64) -> Self {
        self.launch_failures.insert(launch);
        self
    }

    /// Schedule a shared-memory allocation failure at launch `launch`.
    pub fn fail_shared_alloc(mut self, launch: u64) -> Self {
        self.shared_alloc_failures.insert(launch);
        self
    }

    /// Schedule a single-bit flip of device memory after launch `launch`
    /// completes successfully (flips scheduled on a failing launch are
    /// dropped — the kernel never ran).
    pub fn flip_bit(mut self, launch: u64, bit: u8) -> Self {
        self.bit_flips.insert(launch, bit);
        self
    }

    /// Schedule a worker panic at global serve-batch index `batch`.
    pub fn panic_batch(mut self, batch: u64) -> Self {
        self.serve_panics.insert(batch);
        self
    }

    /// Schedule a worker stall of `dur` before serve-batch `batch`.
    pub fn stall_batch(mut self, batch: u64, dur: Duration) -> Self {
        self.serve_stalls.insert(batch, dur);
        self
    }

    /// Schedule a poisoned result channel for serve-batch `batch`: the batch
    /// is searched but no result is delivered.
    pub fn poison_batch(mut self, batch: u64) -> Self {
        self.serve_poisons.insert(batch);
        self
    }

    /// Schedule a rebuild panic at swap attempt `swap`.
    pub fn panic_rebuild(mut self, swap: u64) -> Self {
        self.swap_panics.insert(swap);
        self
    }

    /// Schedule a rebuild stall of `dur` during swap attempt `swap`.
    pub fn stall_rebuild(mut self, swap: u64, dur: Duration) -> Self {
        self.swap_stalls.insert(swap, dur);
        self
    }

    /// Schedule candidate-index corruption just before the publish of swap
    /// attempt `swap` (the validation audit must refuse the swap).
    pub fn poison_publish(mut self, swap: u64) -> Self {
        self.swap_poisons.insert(swap);
        self
    }

    /// The serve-side fault scheduled at serve-batch `batch`, if any. When
    /// several kinds are scheduled on one index, a panic outranks a stall
    /// outranks a poison (the panic makes the others unobservable anyway).
    pub fn serve_fault(&self, batch: u64) -> Option<ServeFault> {
        if self.serve_panics.contains(&batch) {
            return Some(ServeFault::PanicWorker);
        }
        if let Some(&d) = self.serve_stalls.get(&batch) {
            return Some(ServeFault::StallBatch(d));
        }
        self.serve_poisons.contains(&batch).then_some(ServeFault::PoisonResults)
    }

    /// True when the plan schedules any serve-side fault (the serving engine
    /// uses this to decide whether to number batches at all).
    pub fn has_serve_faults(&self) -> bool {
        !self.serve_panics.is_empty()
            || !self.serve_stalls.is_empty()
            || !self.serve_poisons.is_empty()
    }

    /// The swap-scoped fault scheduled at swap attempt `swap`, if any. On a
    /// shared index a panic outranks a stall outranks a poison, mirroring
    /// [`FaultPlan::serve_fault`]: the panic aborts the rebuild, so the
    /// later phases never run.
    pub fn swap_fault(&self, swap: u64) -> Option<SwapFault> {
        if self.swap_panics.contains(&swap) {
            return Some(SwapFault::PanicRebuild);
        }
        if let Some(&d) = self.swap_stalls.get(&swap) {
            return Some(SwapFault::StallRebuild(d));
        }
        self.swap_poisons.contains(&swap).then_some(SwapFault::PoisonPublish)
    }

    /// True when the plan schedules any swap-scoped fault (the mutator uses
    /// this to decide whether to number swap attempts at all).
    pub fn has_swap_faults(&self) -> bool {
        !self.swap_panics.is_empty()
            || !self.swap_stalls.is_empty()
            || !self.swap_poisons.is_empty()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.launch_failures.is_empty()
            && self.shared_alloc_failures.is_empty()
            && self.bit_flips.is_empty()
            && !self.has_serve_faults()
            && !self.has_swap_faults()
    }

    /// Parse a serve-side chaos spec: comma-separated events of the form
    /// `panic@B`, `stall@B:DURms` (or `DURus` / `DURs`), `poison@B`, where
    /// `B` is the global serve-batch index, plus swap-scoped events
    /// `rebuild-panic@S`, `rebuild-stall@S:DUR`, `publish-poison@S` where
    /// `S` is the swap attempt index. Example:
    /// `panic@1,stall@3:20ms,poison@5,rebuild-panic@0,publish-poison@1`.
    pub fn parse_serve(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, rest) =
                tok.split_once('@').ok_or_else(|| format!("'{tok}': expected kind@index"))?;
            match kind {
                "panic" | "poison" | "rebuild-panic" | "publish-poison" => {
                    let idx: u64 =
                        rest.parse().map_err(|_| format!("'{tok}': bad index '{rest}'"))?;
                    plan = match kind {
                        "panic" => plan.panic_batch(idx),
                        "poison" => plan.poison_batch(idx),
                        "rebuild-panic" => plan.panic_rebuild(idx),
                        _ => plan.poison_publish(idx),
                    };
                }
                "stall" | "rebuild-stall" => {
                    let (b, d) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("'{tok}': expected {kind}@index:duration"))?;
                    let idx: u64 = b.parse().map_err(|_| format!("'{tok}': bad index '{b}'"))?;
                    let dur = parse_duration(d)?;
                    plan = if kind == "stall" {
                        plan.stall_batch(idx, dur)
                    } else {
                        plan.stall_rebuild(idx, dur)
                    };
                }
                other => {
                    return Err(format!(
                        "'{tok}': unknown fault kind '{other}' (panic|stall|poison|\
                         rebuild-panic|rebuild-stall|publish-poison)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// Parse `12ms` / `500us` / `2s` (no suffix = milliseconds).
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, mul_ns) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1_000_000)
    };
    let v: u64 = num.parse().map_err(|_| format!("bad duration '{s}'"))?;
    Ok(Duration::from_nanos(v.saturating_mul(mul_ns)))
}

/// One fault actually delivered by an installed [`FaultScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transient launch failure was delivered.
    TransientLaunch {
        /// Launch index it hit.
        launch: u64,
    },
    /// A shared-memory allocation failure was delivered.
    SharedAllocFailure {
        /// Launch index it hit.
        launch: u64,
    },
    /// A bit flip was queued after this launch.
    BitFlip {
        /// Launch index it followed.
        launch: u64,
        /// Bit position flipped.
        bit: u8,
    },
}

struct FaultState {
    plan: FaultPlan,
    next_launch: u64,
    due: Vec<PendingFlip>,
    log: Vec<InjectedFault>,
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultState>> = const { RefCell::new(None) };
}

/// RAII guard that arms a [`FaultPlan`] on the current thread. Dropping the
/// scope disarms injection and discards any undelivered faults.
///
/// `!Send` by construction: the plan is thread-local state.
pub struct FaultScope {
    _not_send: PhantomData<*const ()>,
}

impl FaultScope {
    /// Install `plan` on the current thread.
    ///
    /// # Panics
    /// Panics if a scope is already installed (plans do not nest).
    pub fn install(plan: FaultPlan) -> FaultScope {
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            assert!(a.is_none(), "a FaultScope is already installed on this thread");
            *a = Some(FaultState { plan, next_launch: 0, due: Vec::new(), log: Vec::new() });
        });
        FaultScope { _not_send: PhantomData }
    }

    /// Every fault delivered so far (ground truth for tests).
    pub fn log(&self) -> Vec<InjectedFault> {
        ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.log.clone()).unwrap_or_default())
    }

    /// Number of fault-aware launches observed so far.
    pub fn launches(&self) -> u64 {
        ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.next_launch).unwrap_or(0))
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = None);
    }
}

/// SplitMix64 — the standard 64-bit seed scrambler; used to derive flip
/// positions deterministically from (plan seed, launch index).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Called by [`crate::launch::try_launch`] at entry: consumes one launch
/// index and delivers any fault scheduled there. No scope installed → `Ok`.
pub(crate) fn begin_launch() -> Result<(), LaunchFault> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let Some(s) = a.as_mut() else { return Ok(()) };
        let idx = s.next_launch;
        s.next_launch += 1;
        if s.plan.shared_alloc_failures.contains(&idx) {
            s.log.push(InjectedFault::SharedAllocFailure { launch: idx });
            return Err(LaunchFault::SharedAllocFailed { launch: idx });
        }
        if s.plan.launch_failures.contains(&idx) {
            s.log.push(InjectedFault::TransientLaunch { launch: idx });
            return Err(LaunchFault::Transient { launch: idx });
        }
        if let Some(&bit) = s.plan.bit_flips.get(&idx) {
            s.due.push(PendingFlip { word_seed: splitmix64(s.plan.seed ^ idx), bit });
            s.log.push(InjectedFault::BitFlip { launch: idx, bit });
        }
        Ok(())
    })
}

/// Drain the bit flips that became due since the last call. The caller
/// applies each to the device buffer holding the state under test.
pub fn take_due_flips() -> Vec<PendingFlip> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(|s| std::mem::take(&mut s.due)).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_means_no_faults() {
        assert_eq!(begin_launch(), Ok(()));
        assert!(take_due_flips().is_empty());
    }

    #[test]
    fn plan_delivers_scheduled_faults_in_order() {
        let plan = FaultPlan::new(7).fail_launch(1).flip_bit(2, 61).fail_shared_alloc(3);
        assert!(!plan.is_empty());
        let scope = FaultScope::install(plan);
        assert_eq!(begin_launch(), Ok(())); // launch 0
        assert_eq!(begin_launch(), Err(LaunchFault::Transient { launch: 1 }));
        assert_eq!(begin_launch(), Ok(())); // launch 2, queues the flip
        let flips = take_due_flips();
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].bit, 61);
        assert_eq!(flips[0].word_seed, splitmix64(7 ^ 2));
        assert!(take_due_flips().is_empty(), "flips are drained once");
        assert_eq!(begin_launch(), Err(LaunchFault::SharedAllocFailed { launch: 3 }));
        assert_eq!(
            scope.log(),
            vec![
                InjectedFault::TransientLaunch { launch: 1 },
                InjectedFault::BitFlip { launch: 2, bit: 61 },
                InjectedFault::SharedAllocFailure { launch: 3 },
            ]
        );
        assert_eq!(scope.launches(), 4);
    }

    #[test]
    fn dropping_the_scope_disarms_injection() {
        {
            let _scope = FaultScope::install(FaultPlan::new(0).fail_launch(0));
        }
        assert_eq!(begin_launch(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn scopes_do_not_nest() {
        let _a = FaultScope::install(FaultPlan::new(0));
        let _b = FaultScope::install(FaultPlan::new(1));
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn serve_faults_are_scheduled_and_ranked() {
        let plan = FaultPlan::new(1)
            .panic_batch(2)
            .stall_batch(5, Duration::from_millis(20))
            .poison_batch(7);
        assert!(plan.has_serve_faults());
        assert!(!plan.is_empty());
        assert_eq!(plan.serve_fault(0), None);
        assert_eq!(plan.serve_fault(2), Some(ServeFault::PanicWorker));
        assert_eq!(plan.serve_fault(5), Some(ServeFault::StallBatch(Duration::from_millis(20))));
        assert_eq!(plan.serve_fault(7), Some(ServeFault::PoisonResults));
        // A panic and a stall on one index: the panic outranks.
        let plan = FaultPlan::new(1).stall_batch(3, Duration::from_secs(1)).panic_batch(3);
        assert_eq!(plan.serve_fault(3), Some(ServeFault::PanicWorker));
        // Launch-fault-only plans report no serve faults.
        assert!(!FaultPlan::new(0).fail_launch(1).has_serve_faults());
    }

    #[test]
    fn swap_faults_are_scheduled_and_ranked() {
        let plan = FaultPlan::new(3)
            .panic_rebuild(0)
            .stall_rebuild(1, Duration::from_millis(40))
            .poison_publish(2);
        assert!(plan.has_swap_faults());
        assert!(!plan.is_empty());
        assert!(!plan.has_serve_faults(), "swap faults are not serve faults");
        assert_eq!(plan.swap_fault(0), Some(SwapFault::PanicRebuild));
        assert_eq!(plan.swap_fault(1), Some(SwapFault::StallRebuild(Duration::from_millis(40))));
        assert_eq!(plan.swap_fault(2), Some(SwapFault::PoisonPublish));
        assert_eq!(plan.swap_fault(3), None);
        // Stacked on one attempt: panic outranks stall outranks poison.
        let plan = FaultPlan::new(0)
            .poison_publish(5)
            .stall_rebuild(5, Duration::from_secs(1))
            .panic_rebuild(5);
        assert_eq!(plan.swap_fault(5), Some(SwapFault::PanicRebuild));
        // Serve-batch numbering and swap numbering are independent spaces.
        let plan = FaultPlan::new(0).panic_batch(4).poison_publish(4);
        assert_eq!(plan.serve_fault(4), Some(ServeFault::PanicWorker));
        assert_eq!(plan.swap_fault(4), Some(SwapFault::PoisonPublish));
    }

    #[test]
    fn swap_chaos_specs_parse_and_reject() {
        let plan =
            FaultPlan::parse_serve("rebuild-panic@0, rebuild-stall@1:40ms ,publish-poison@2")
                .unwrap();
        assert_eq!(plan.swap_fault(0), Some(SwapFault::PanicRebuild));
        assert_eq!(plan.swap_fault(1), Some(SwapFault::StallRebuild(Duration::from_millis(40))));
        assert_eq!(plan.swap_fault(2), Some(SwapFault::PoisonPublish));
        assert!(!plan.has_serve_faults());
        // Mixed serve + swap specs coexist.
        let plan = FaultPlan::parse_serve("panic@1,publish-poison@0").unwrap();
        assert_eq!(plan.serve_fault(1), Some(ServeFault::PanicWorker));
        assert_eq!(plan.swap_fault(0), Some(SwapFault::PoisonPublish));
        for bad in ["rebuild-panic", "rebuild-panic@x", "rebuild-stall@1", "publish-poison@"] {
            assert!(FaultPlan::parse_serve(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn chaos_specs_parse_and_reject() {
        let plan = FaultPlan::parse_serve("panic@1, stall@3:20ms ,poison@5").unwrap();
        assert_eq!(plan.serve_fault(1), Some(ServeFault::PanicWorker));
        assert_eq!(plan.serve_fault(3), Some(ServeFault::StallBatch(Duration::from_millis(20))));
        assert_eq!(plan.serve_fault(5), Some(ServeFault::PoisonResults));
        // Duration units: us, s, and the bare-milliseconds default.
        let plan = FaultPlan::parse_serve("stall@0:500us,stall@1:2s,stall@2:7").unwrap();
        assert_eq!(plan.serve_fault(0), Some(ServeFault::StallBatch(Duration::from_micros(500))));
        assert_eq!(plan.serve_fault(1), Some(ServeFault::StallBatch(Duration::from_secs(2))));
        assert_eq!(plan.serve_fault(2), Some(ServeFault::StallBatch(Duration::from_millis(7))));
        // An empty spec is a valid empty plan.
        assert!(FaultPlan::parse_serve("").unwrap().is_empty());
        for bad in ["panic", "panic@x", "stall@1", "stall@1:abcms", "fry@2", "panic@@2"] {
            assert!(FaultPlan::parse_serve(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn display_names_the_fault() {
        let t = LaunchFault::Transient { launch: 5 };
        assert!(t.to_string().contains("transient"));
        let s = LaunchFault::SharedAllocFailed { launch: 6 };
        assert!(s.to_string().contains("shared-memory"));
    }
}
