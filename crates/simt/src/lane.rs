//! Per-warp SIMD values: a 32-wide lane vector and an active-lane mask.

use crate::device::WARP_LANES;

/// A predicate over the 32 lanes of a warp, stored as a bitmask.
///
/// Bit `i` set means lane `i` participates in the instruction. Warp-centric
/// kernels thread a `Mask` through every operation, exactly like the implicit
/// active mask of real SIMT hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mask(pub u32);

impl Mask {
    /// All 32 lanes active.
    pub const FULL: Mask = Mask(u32::MAX);
    /// No lane active.
    pub const NONE: Mask = Mask(0);

    /// Mask with the first `n` lanes active (`n` is clamped to 32).
    pub fn first(n: usize) -> Mask {
        if n >= WARP_LANES {
            Mask::FULL
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// Mask built from a per-lane predicate.
    pub fn from_fn(mut f: impl FnMut(usize) -> bool) -> Mask {
        let mut bits = 0u32;
        for lane in 0..WARP_LANES {
            if f(lane) {
                bits |= 1 << lane;
            }
        }
        Mask(bits)
    }

    /// Is lane `lane` active?
    ///
    /// # Panics
    /// Panics when `lane >= 32` in every build profile: `1 << lane` wraps
    /// the shift amount in release builds, which would silently test the
    /// *wrong* lane's bit instead of faulting.
    #[inline]
    pub fn active(&self, lane: usize) -> bool {
        assert!(lane < WARP_LANES, "lane {lane} out of range for a {WARP_LANES}-lane warp");
        self.0 & (1 << lane) != 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no lane is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Lowest active lane index, if any.
    pub fn leader(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterator over active lane indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..WARP_LANES).filter(move |&l| self.active(l))
    }

    /// Intersection of two masks.
    #[inline]
    pub fn and(&self, other: Mask) -> Mask {
        Mask(self.0 & other.0)
    }

    /// Lanes active in `self` but not in `other`.
    #[inline]
    pub fn and_not(&self, other: Mask) -> Mask {
        Mask(self.0 & !other.0)
    }
}

/// A value replicated across the 32 lanes of a warp — the register file view
/// of one SIMT variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneVec<T>(pub [T; WARP_LANES]);

impl<T: Copy + Default> LaneVec<T> {
    /// All lanes hold `v`.
    pub fn splat(v: T) -> Self {
        LaneVec([v; WARP_LANES])
    }

    /// All lanes hold `T::default()`.
    pub fn zeroed() -> Self {
        LaneVec([T::default(); WARP_LANES])
    }

    /// Per-lane initialisation.
    pub fn from_fn(mut f: impl FnMut(usize) -> T) -> Self {
        let mut a = [T::default(); WARP_LANES];
        for (lane, slot) in a.iter_mut().enumerate() {
            *slot = f(lane);
        }
        LaneVec(a)
    }

    /// Value held by `lane`.
    #[inline]
    pub fn get(&self, lane: usize) -> T {
        self.0[lane]
    }

    /// Overwrite the value held by `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: T) {
        self.0[lane] = v;
    }

    /// Apply `f` lane-wise, producing a new lane vector.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> LaneVec<U> {
        LaneVec::from_fn(|l| f(self.0[l]))
    }

    /// Combine two lane vectors lane-wise.
    pub fn zip_map<U: Copy + Default, V: Copy + Default>(
        &self,
        other: &LaneVec<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> LaneVec<V> {
        LaneVec::from_fn(|l| f(self.0[l], other.0[l]))
    }

    /// Values of the active lanes, in lane order.
    pub fn active_values(&self, mask: Mask) -> Vec<T> {
        mask.iter().map(|l| self.0[l]).collect()
    }
}

/// The canonical lane-index vector `[0, 1, …, 31]`.
pub fn lane_ids() -> LaneVec<usize> {
    LaneVec::from_fn(|l| l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_first_clamps() {
        assert_eq!(Mask::first(0), Mask::NONE);
        assert_eq!(Mask::first(1).count(), 1);
        assert_eq!(Mask::first(32), Mask::FULL);
        assert_eq!(Mask::first(99), Mask::FULL);
    }

    #[test]
    fn mask_leader_is_lowest_active() {
        assert_eq!(Mask::NONE.leader(), None);
        assert_eq!(Mask::FULL.leader(), Some(0));
        assert_eq!(Mask(0b1000_0100).leader(), Some(2));
    }

    #[test]
    fn mask_iter_matches_active() {
        let m = Mask::from_fn(|l| l % 3 == 0);
        let lanes: Vec<_> = m.iter().collect();
        assert_eq!(lanes, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30]);
        assert_eq!(m.count(), lanes.len());
    }

    #[test]
    fn mask_set_ops() {
        let a = Mask::first(8);
        let b = Mask::from_fn(|l| l >= 4);
        assert_eq!(a.and(b), Mask::from_fn(|l| (4..8).contains(&l)));
        assert_eq!(a.and_not(b), Mask::first(4));
    }

    #[test]
    fn lanevec_roundtrip() {
        let mut v = LaneVec::<u32>::splat(7);
        assert_eq!(v.get(31), 7);
        v.set(3, 11);
        assert_eq!(v.get(3), 11);
        let doubled = v.map(|x| x * 2);
        assert_eq!(doubled.get(3), 22);
        assert_eq!(doubled.get(0), 14);
    }

    #[test]
    fn lanevec_zip_and_active_values() {
        let a = lane_ids();
        let b = LaneVec::<usize>::splat(100);
        let s = a.zip_map(&b, |x, y| x + y);
        assert_eq!(s.get(5), 105);
        assert_eq!(s.active_values(Mask::first(3)), vec![100, 101, 102]);
    }
}
