//! Hardware-counter style statistics collected while simulating a kernel.

use std::ops::{Add, AddAssign};

/// Counters accumulated during simulated kernel execution.
///
/// These mirror the profiler counters a CUDA developer would inspect
/// (`nvprof`/`ncu` style): warp instructions issued, global-memory
/// transactions, shared-memory bank-conflict replays, atomic serializations
/// and barrier counts. The w-KNNG evaluation uses them to explain *why* each
/// kernel variant wins in its regime (experiment E8 in `DESIGN.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Warp-level instructions issued (one per 32-lane SIMT operation).
    pub instructions: u64,
    /// Individual lane operations executed (active lanes only).
    pub lane_ops: u64,
    /// Lane slots that were predicated off while their warp issued an
    /// instruction. High values indicate branch divergence.
    pub inactive_lane_slots: u64,
    /// 32-byte global-memory load transactions after coalescing.
    pub global_load_transactions: u64,
    /// 32-byte global-memory store transactions after coalescing.
    pub global_store_transactions: u64,
    /// Total bytes moved to/from simulated DRAM (L2 misses × 32B).
    pub dram_bytes: u64,
    /// Global transactions served by the L2 cache.
    pub l2_hits: u64,
    /// Global transactions that missed L2 and went to DRAM.
    pub l2_misses: u64,
    /// Shared-memory accesses (warp-level).
    pub shared_accesses: u64,
    /// Extra shared-memory replays caused by bank conflicts.
    pub shared_bank_conflicts: u64,
    /// Atomic operations executed (per active lane).
    pub atomic_ops: u64,
    /// Lane-atomics that had to serialize behind another lane targeting the
    /// same address within one warp-level atomic instruction.
    pub atomic_serializations: u64,
    /// CAS operations that failed and were retried by the caller.
    pub atomic_retries: u64,
    /// Block-wide barriers executed.
    pub barriers: u64,
    /// Kernel launches merged into this record.
    pub launches: u64,
    /// Hazard events detected by the sanitizer during these launches.
    /// Always zero unless the `sanitize` feature is enabled and a
    /// `SanitizerScope` was installed.
    pub hazards: u64,
}

impl Stats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global transactions (loads + stores).
    pub fn global_transactions(&self) -> u64 {
        self.global_load_transactions + self.global_store_transactions
    }

    /// Fraction of issued lane slots that were predicated off, in `[0, 1)`.
    ///
    /// `0.0` means perfectly converged execution; values approaching `1.0`
    /// mean most of the machine was idle due to divergence.
    pub fn divergence_ratio(&self) -> f64 {
        let issued = self.lane_ops + self.inactive_lane_slots;
        if issued == 0 {
            0.0
        } else {
            self.inactive_lane_slots as f64 / issued as f64
        }
    }

    /// Average number of serialized extra rounds per atomic instruction.
    pub fn atomic_contention(&self) -> f64 {
        if self.atomic_ops == 0 {
            0.0
        } else {
            self.atomic_serializations as f64 / self.atomic_ops as f64
        }
    }
}

impl Add for Stats {
    type Output = Stats;
    fn add(mut self, rhs: Stats) -> Stats {
        self += rhs;
        self
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.instructions += rhs.instructions;
        self.lane_ops += rhs.lane_ops;
        self.inactive_lane_slots += rhs.inactive_lane_slots;
        self.global_load_transactions += rhs.global_load_transactions;
        self.global_store_transactions += rhs.global_store_transactions;
        self.dram_bytes += rhs.dram_bytes;
        self.l2_hits += rhs.l2_hits;
        self.l2_misses += rhs.l2_misses;
        self.shared_accesses += rhs.shared_accesses;
        self.shared_bank_conflicts += rhs.shared_bank_conflicts;
        self.atomic_ops += rhs.atomic_ops;
        self.atomic_serializations += rhs.atomic_serializations;
        self.atomic_retries += rhs.atomic_retries;
        self.barriers += rhs.barriers;
        self.launches += rhs.launches;
        self.hazards += rhs.hazards;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = Stats::new();
        assert_eq!(s.instructions, 0);
        assert_eq!(s.global_transactions(), 0);
        assert_eq!(s.divergence_ratio(), 0.0);
        assert_eq!(s.atomic_contention(), 0.0);
    }

    #[test]
    fn add_accumulates_every_field() {
        let mut a = Stats::new();
        a.instructions = 1;
        a.lane_ops = 2;
        a.inactive_lane_slots = 3;
        a.global_load_transactions = 4;
        a.global_store_transactions = 5;
        a.dram_bytes = 6;
        a.shared_accesses = 7;
        a.shared_bank_conflicts = 8;
        a.atomic_ops = 9;
        a.atomic_serializations = 10;
        a.atomic_retries = 11;
        a.barriers = 12;
        a.launches = 13;
        a.hazards = 14;
        let b = a;
        let c = a + b;
        assert_eq!(c.instructions, 2);
        assert_eq!(c.lane_ops, 4);
        assert_eq!(c.inactive_lane_slots, 6);
        assert_eq!(c.global_load_transactions, 8);
        assert_eq!(c.global_store_transactions, 10);
        assert_eq!(c.dram_bytes, 12);
        assert_eq!(c.shared_accesses, 14);
        assert_eq!(c.shared_bank_conflicts, 16);
        assert_eq!(c.atomic_ops, 18);
        assert_eq!(c.atomic_serializations, 20);
        assert_eq!(c.atomic_retries, 22);
        assert_eq!(c.barriers, 24);
        assert_eq!(c.launches, 26);
        assert_eq!(c.hazards, 28);
    }

    #[test]
    fn empty_launch_ratios_are_zero_not_nan() {
        // An empty launch leaves every denominator counter at zero; both
        // ratios must degrade to 0.0, never NaN (NaN poisons any aggregate
        // it is averaged into and breaks report sorting).
        let s = Stats::new();
        assert_eq!(s.lane_ops + s.inactive_lane_slots, 0);
        assert_eq!(s.divergence_ratio(), 0.0);
        assert!(!s.divergence_ratio().is_nan());
        assert_eq!(s.atomic_ops, 0);
        assert_eq!(s.atomic_contention(), 0.0);
        assert!(!s.atomic_contention().is_nan());
    }

    #[test]
    fn empty_launch_ratios_stay_finite_after_merging() {
        // Merging two empty records (e.g. a degraded pipeline where every
        // launch faulted) must also stay finite.
        let merged = Stats::new() + Stats::new();
        assert_eq!(merged.divergence_ratio(), 0.0);
        assert_eq!(merged.atomic_contention(), 0.0);
    }

    #[test]
    fn divergence_ratio_counts_inactive_share() {
        let s = Stats { lane_ops: 24, inactive_lane_slots: 8, ..Stats::default() };
        assert!((s.divergence_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn atomic_contention_is_serializations_per_op() {
        let s = Stats { atomic_ops: 10, atomic_serializations: 5, ..Stats::default() };
        assert!((s.atomic_contention() - 0.5).abs() < 1e-12);
    }
}
