//! Warp-level collective primitives (reductions, scans, broadcast).
//!
//! Each primitive computes its result directly over the active lanes but
//! charges the cost of the canonical shuffle-based instruction sequence
//! (`log2(32) = 5` butterfly rounds), which is how these collectives are
//! implemented on real hardware.

use crate::device::WARP_LANES;
use crate::lane::{LaneVec, Mask};
use crate::warp::WarpCtx;

/// Rounds of a warp-wide shuffle butterfly.
const SHFL_ROUNDS: u64 = 5;

/// Warp-wide sum of the active lanes of `vals`.
pub fn reduce_sum_f32(w: &mut WarpCtx, vals: &LaneVec<f32>, mask: Mask) -> f32 {
    w.charge_alu(mask, 2 * SHFL_ROUNDS); // shfl + add per round
    mask.iter().map(|l| vals.get(l)).sum()
}

/// Warp-wide sum of the active lanes of an integer vector.
pub fn reduce_sum_u32(w: &mut WarpCtx, vals: &LaneVec<u32>, mask: Mask) -> u32 {
    w.charge_alu(mask, 2 * SHFL_ROUNDS);
    mask.iter().map(|l| vals.get(l)).fold(0u32, u32::wrapping_add)
}

/// Warp-wide minimum of the active lanes together with the lane that held it
/// (lowest lane wins ties). Returns `None` when no lane is active.
pub fn reduce_min_f32(w: &mut WarpCtx, vals: &LaneVec<f32>, mask: Mask) -> Option<(f32, usize)> {
    w.charge_alu(mask, 3 * SHFL_ROUNDS); // shfl value + shfl index + select
    let mut best: Option<(f32, usize)> = None;
    for l in mask.iter() {
        let v = vals.get(l);
        match best {
            None => best = Some((v, l)),
            Some((bv, _)) if v < bv => best = Some((v, l)),
            _ => {}
        }
    }
    best
}

/// Warp-wide maximum of the active lanes together with its lane (lowest lane
/// wins ties). Returns `None` when no lane is active.
pub fn reduce_max_u64(w: &mut WarpCtx, vals: &LaneVec<u64>, mask: Mask) -> Option<(u64, usize)> {
    w.charge_alu(mask, 3 * SHFL_ROUNDS);
    let mut best: Option<(u64, usize)> = None;
    for l in mask.iter() {
        let v = vals.get(l);
        match best {
            None => best = Some((v, l)),
            Some((bv, _)) if v > bv => best = Some((v, l)),
            _ => {}
        }
    }
    best
}

/// Exclusive prefix sum over the active lanes (inactive lanes read 0 and do
/// not contribute). Lane `l`'s slot receives the sum of active lanes `< l`.
pub fn exclusive_scan_u32(w: &mut WarpCtx, vals: &LaneVec<u32>, mask: Mask) -> LaneVec<u32> {
    w.charge_alu(mask, 2 * SHFL_ROUNDS);
    let mut out = LaneVec::zeroed();
    let mut acc = 0u32;
    for l in 0..WARP_LANES {
        if mask.active(l) {
            out.set(l, acc);
            acc = acc.wrapping_add(vals.get(l));
        }
    }
    out
}

/// Broadcast the value held by `src_lane` to every active lane.
pub fn broadcast_f32(
    w: &mut WarpCtx,
    vals: &LaneVec<f32>,
    src_lane: usize,
    mask: Mask,
) -> LaneVec<f32> {
    let src = LaneVec::splat(src_lane);
    w.shfl(vals, &src, mask)
}

/// Warp-wide bitonic sort of a 32-lane `u64` vector, ascending. Inactive
/// lanes are treated as `u64::MAX` and therefore sort to the top; the result
/// holds the active values in its lowest lanes.
///
/// Cost: the full 32-input bitonic network — 15 compare-exchange rounds of
/// (shuffle + min/max select) each.
pub fn bitonic_sort_u64(w: &mut WarpCtx, vals: &LaneVec<u64>, mask: Mask) -> LaneVec<u64> {
    w.charge_alu(Mask::FULL, 15 * 3);
    let mut v: Vec<u64> =
        (0..WARP_LANES).map(|l| if mask.active(l) { vals.get(l) } else { u64::MAX }).collect();
    v.sort_unstable();
    LaneVec::from_fn(|l| v[l])
}

/// Stream compaction: returns, for each active lane whose `keep` bit is set,
/// its rank among the kept lanes (dense, starting at 0), plus the total kept
/// count. The canonical ballot-plus-popcount idiom.
pub fn compact_ranks(w: &mut WarpCtx, keep: Mask, mask: Mask) -> (LaneVec<usize>, usize) {
    // ballot + per-lane popcount of the lower bits + broadcast of the total.
    w.charge_alu(mask, 3);
    let kept = keep.and(mask);
    let mut ranks = LaneVec::zeroed();
    let mut count = 0usize;
    for l in 0..WARP_LANES {
        if kept.active(l) {
            ranks.set(l, count);
            count += 1;
        }
    }
    (ranks, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockCtx;
    use crate::device::DeviceConfig;

    fn with_warp(f: impl FnMut(&mut WarpCtx)) {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = crate::cache::L2Cache::new(1024);
        let mut blk = BlockCtx::new(&dev, 0, 1, &mut l2);
        blk.each_warp(f);
    }

    #[test]
    fn sum_over_active_lanes_only() {
        with_warp(|w| {
            let vals = LaneVec::from_fn(|l| l as f32);
            let s = reduce_sum_f32(w, &vals, Mask::first(4));
            assert_eq!(s, 0.0 + 1.0 + 2.0 + 3.0);
            let full = reduce_sum_f32(w, &vals, Mask::FULL);
            assert_eq!(full, (0..32).sum::<i32>() as f32);
        });
    }

    #[test]
    fn sum_u32_wraps() {
        with_warp(|w| {
            let vals = LaneVec::splat(u32::MAX);
            let s = reduce_sum_u32(w, &vals, Mask::first(2));
            assert_eq!(s, u32::MAX.wrapping_add(u32::MAX));
        });
    }

    #[test]
    fn min_returns_value_and_lane() {
        with_warp(|w| {
            let vals = LaneVec::from_fn(|l| (32 - l) as f32);
            let (v, lane) = reduce_min_f32(w, &vals, Mask::FULL).unwrap();
            assert_eq!(v, 1.0);
            assert_eq!(lane, 31);
            assert_eq!(reduce_min_f32(w, &vals, Mask::NONE), None);
        });
    }

    #[test]
    fn min_tie_prefers_lowest_lane() {
        with_warp(|w| {
            let vals = LaneVec::splat(7.0f32);
            let (_, lane) = reduce_min_f32(w, &vals, Mask::FULL).unwrap();
            assert_eq!(lane, 0);
        });
    }

    #[test]
    fn max_u64_finds_argmax() {
        with_warp(|w| {
            let mut vals = LaneVec::splat(5u64);
            vals.set(17, 99);
            let (v, lane) = reduce_max_u64(w, &vals, Mask::FULL).unwrap();
            assert_eq!((v, lane), (99, 17));
        });
    }

    #[test]
    fn max_u64_ignores_inactive_lanes() {
        with_warp(|w| {
            let mut vals = LaneVec::splat(1u64);
            vals.set(30, 100);
            let (v, _) = reduce_max_u64(w, &vals, Mask::first(8)).unwrap();
            assert_eq!(v, 1);
        });
    }

    #[test]
    fn scan_is_exclusive_and_skips_inactive() {
        with_warp(|w| {
            let vals = LaneVec::splat(1u32);
            let mask = Mask::from_fn(|l| l % 2 == 0);
            let out = exclusive_scan_u32(w, &vals, mask);
            // Active lanes 0,2,4,... receive 0,1,2,...
            assert_eq!(out.get(0), 0);
            assert_eq!(out.get(2), 1);
            assert_eq!(out.get(4), 2);
            assert_eq!(out.get(30), 15);
            // Inactive lanes untouched (zero).
            assert_eq!(out.get(1), 0);
        });
    }

    #[test]
    fn broadcast_copies_one_lane() {
        with_warp(|w| {
            let vals = LaneVec::from_fn(|l| l as f32 * 2.0);
            let out = broadcast_f32(w, &vals, 9, Mask::FULL);
            for l in 0..WARP_LANES {
                assert_eq!(out.get(l), 18.0);
            }
        });
    }

    #[test]
    fn primitives_charge_cycles() {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = crate::cache::L2Cache::new(1024);
        let mut blk = BlockCtx::new(&dev, 0, 1, &mut l2);
        blk.each_warp(|w| {
            let vals = LaneVec::splat(1.0f32);
            let _ = reduce_sum_f32(w, &vals, Mask::FULL);
        });
        let (stats, cycles, _) = blk.finish();
        assert_eq!(stats.instructions, 2 * SHFL_ROUNDS);
        assert!(cycles > 0.0);
    }
}

#[cfg(test)]
mod sort_compact_tests {
    use super::*;
    use crate::block::BlockCtx;
    use crate::cache::L2Cache;
    use crate::device::DeviceConfig;

    fn with_warp(f: impl FnMut(&mut WarpCtx)) {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = L2Cache::new(1024);
        let mut blk = BlockCtx::new(&dev, 0, 1, &mut l2);
        blk.each_warp(f);
    }

    #[test]
    fn bitonic_sorts_full_warp() {
        with_warp(|w| {
            let vals = LaneVec::from_fn(|l| ((31 - l) as u64) * 7);
            let sorted = bitonic_sort_u64(w, &vals, Mask::FULL);
            for l in 0..WARP_LANES - 1 {
                assert!(sorted.get(l) <= sorted.get(l + 1));
            }
            assert_eq!(sorted.get(0), 0);
            assert_eq!(sorted.get(31), 31 * 7);
        });
    }

    #[test]
    fn bitonic_pushes_inactive_lanes_to_top() {
        with_warp(|w| {
            let vals = LaneVec::from_fn(|l| l as u64);
            let sorted = bitonic_sort_u64(w, &vals, Mask::first(5));
            assert_eq!((0..5).map(|l| sorted.get(l)).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
            assert!((5..32).all(|l| sorted.get(l) == u64::MAX));
        });
    }

    #[test]
    fn compact_assigns_dense_ranks() {
        with_warp(|w| {
            let keep = Mask::from_fn(|l| l % 3 == 0);
            let (ranks, count) = compact_ranks(w, keep, Mask::FULL);
            assert_eq!(count, 11);
            assert_eq!(ranks.get(0), 0);
            assert_eq!(ranks.get(3), 1);
            assert_eq!(ranks.get(30), 10);
        });
    }

    #[test]
    fn compact_respects_the_active_mask() {
        with_warp(|w| {
            let keep = Mask::FULL;
            let (ranks, count) = compact_ranks(w, keep, Mask::first(4));
            assert_eq!(count, 4);
            assert_eq!(ranks.get(3), 3);
            // Lanes outside the active mask are not ranked.
            assert_eq!(ranks.get(10), 0);
        });
    }
}
