//! Simulated global (device) memory.

use std::cell::{Cell, Ref, RefCell, RefMut};

use crate::lane::{LaneVec, Mask};

/// Marker for plain-old-data element types that may live in device memory.
///
/// `SIZE`/`to_bits`/`from_bits` give the simulator a safe, allocation-free way
/// to move values through the byte-addressed shared-memory arena and to
/// compute byte addresses for the coalescing and bank-conflict models.
///
/// # Safety
/// Implementors must be `Copy`, `SIZE` must equal `size_of::<Self>()`, and
/// `from_bits(to_bits(v))` must reproduce `v` exactly.
pub unsafe trait Pod: Copy + Default + 'static {
    /// Element size in bytes (1, 2, 4 or 8).
    const SIZE: usize;
    /// Reinterpret the value as little-endian bits in a `u64`.
    fn to_bits64(self) -> u64;
    /// Inverse of [`Pod::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

macro_rules! impl_pod_int {
    ($t:ty, $size:expr) => {
        unsafe impl Pod for $t {
            const SIZE: usize = $size;
            fn to_bits64(self) -> u64 {
                self as u64
            }
            fn from_bits64(bits: u64) -> Self {
                bits as $t
            }
        }
    };
}

impl_pod_int!(u8, 1);
impl_pod_int!(u16, 2);
impl_pod_int!(u32, 4);
impl_pod_int!(u64, 8);

unsafe impl Pod for i32 {
    const SIZE: usize = 4;
    fn to_bits64(self) -> u64 {
        self as u32 as u64
    }
    fn from_bits64(bits: u64) -> Self {
        bits as u32 as i32
    }
}

unsafe impl Pod for i64 {
    const SIZE: usize = 8;
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

unsafe impl Pod for f32 {
    const SIZE: usize = 4;
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

unsafe impl Pod for f64 {
    const SIZE: usize = 8;
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// A linear allocation in simulated global memory.
///
/// Host code creates buffers, uploads data, launches kernels that read/write
/// them through [`crate::warp::WarpCtx`] accessors (which account coalescing
/// costs), then downloads results. Interior mutability mirrors the fact that
/// device memory is shared mutable state; the simulator executes blocks
/// sequentially and deterministically, so `RefCell` suffices and every data
/// race a real GPU would allow becomes a deterministic last-writer-wins.
#[derive(Debug)]
pub struct DeviceBuffer<T: Pod> {
    data: RefCell<Vec<T>>,
    /// Unique id used by the cost model to tell buffers apart when grouping
    /// lane addresses into memory transactions.
    id: u64,
    /// Optional human-readable name surfaced in sanitizer diagnostics.
    label: Cell<Option<&'static str>>,
}

fn next_buffer_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl<T: Pod> DeviceBuffer<T> {
    /// Allocate `len` zero-initialised elements.
    pub fn zeroed(len: usize) -> Self {
        DeviceBuffer {
            data: RefCell::new(vec![T::default(); len]),
            id: next_buffer_id(),
            label: Cell::new(None),
        }
    }

    /// Allocate and fill with `value`.
    pub fn filled(len: usize, value: T) -> Self {
        DeviceBuffer {
            data: RefCell::new(vec![value; len]),
            id: next_buffer_id(),
            label: Cell::new(None),
        }
    }

    /// Upload a host slice.
    pub fn from_slice(host: &[T]) -> Self {
        DeviceBuffer {
            data: RefCell::new(host.to_vec()),
            id: next_buffer_id(),
            label: Cell::new(None),
        }
    }

    /// Attach a human-readable name; sanitizer hazard reports print it next
    /// to the allocation id. Returns `self` for builder-style use.
    pub fn set_label(self, name: &'static str) -> Self {
        self.label.set(Some(name));
        self
    }

    /// The label attached with [`DeviceBuffer::set_label`], if any.
    pub fn label(&self) -> Option<&'static str> {
        self.label.get()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Identity used by the coalescing model.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Download the whole buffer to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.borrow().clone()
    }

    /// Host-side read of one element (no cost accounting — host transfers
    /// are outside the kernel cost model).
    pub fn read(&self, idx: usize) -> T {
        self.data.borrow()[idx]
    }

    /// Host-side write of one element.
    pub fn write(&self, idx: usize, v: T) {
        self.data.borrow_mut()[idx] = v;
    }

    /// Host-side bulk overwrite; `host.len()` must equal `self.len()`.
    pub fn copy_from_slice(&self, host: &[T]) {
        self.data.borrow_mut().copy_from_slice(host);
    }

    /// Flip one bit of the element at `idx`, modelling an uncorrected
    /// ECC-style memory upset. Used by the fault-injection harness; the flip
    /// is a plain bit operation with no cost accounting.
    ///
    /// # Panics
    /// Panics when `idx` is outside the buffer or `bit` is outside the
    /// element width — a silently wrapping flip would corrupt a *different*
    /// bit than the fault plan scheduled. Callers deriving positions from a
    /// seed must reduce them into range first.
    pub fn corrupt_bit(&self, idx: usize, bit: u32) {
        let mut data = self.data.borrow_mut();
        assert!(
            idx < data.len(),
            "corrupt_bit: element index {idx} out of bounds for a buffer of {} elements",
            data.len()
        );
        let width = T::SIZE * 8;
        assert!(
            (bit as usize) < width,
            "corrupt_bit: bit {bit} out of range for a {width}-bit element (T::SIZE * 8 = {width})"
        );
        let bits = data[idx].to_bits64() ^ (1u64 << bit);
        data[idx] = T::from_bits64(bits);
    }

    /// Assert every *active* lane's index is inside the buffer, identifying
    /// the operation, the faulting lane and the buffer's label in the panic.
    ///
    /// Called by [`crate::warp::WarpCtx`] before any cost is charged for a
    /// global access, so a faulting launch never pollutes the profiler
    /// counters with a half-accounted transaction. This is the simulator's
    /// equivalent of a CUDA illegal-address fault, and it fires in release
    /// builds too — an out-of-bounds active lane is a kernel bug, never a
    /// tolerable slow path.
    pub(crate) fn assert_lane_bounds(&self, op: &str, idx: &LaneVec<usize>, mask: Mask) {
        let len = self.data.borrow().len();
        for lane in mask.iter() {
            let i = idx.get(lane);
            assert!(
                i < len,
                "{op} out of bounds: lane {lane} addressed element {i} of `{}` (len {len})",
                self.label.get().unwrap_or("unlabeled buffer"),
            );
        }
    }

    /// Borrow the backing storage immutably (kernel-internal).
    pub(crate) fn borrow(&self) -> Ref<'_, Vec<T>> {
        self.data.borrow()
    }

    /// Borrow the backing storage mutably (kernel-internal).
    pub(crate) fn borrow_mut(&self) -> RefMut<'_, Vec<T>> {
        self.data.borrow_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_filled() {
        let z = DeviceBuffer::<f32>::zeroed(4);
        assert_eq!(z.to_vec(), vec![0.0; 4]);
        let f = DeviceBuffer::<u32>::filled(3, 9);
        assert_eq!(f.to_vec(), vec![9, 9, 9]);
        assert!(!f.is_empty());
        assert!(DeviceBuffer::<u32>::zeroed(0).is_empty());
    }

    #[test]
    fn upload_download_roundtrip() {
        let host = vec![1u64, 2, 3, 4, 5];
        let buf = DeviceBuffer::from_slice(&host);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.to_vec(), host);
    }

    #[test]
    fn host_read_write() {
        let buf = DeviceBuffer::<i32>::zeroed(2);
        buf.write(1, -7);
        assert_eq!(buf.read(1), -7);
        assert_eq!(buf.read(0), 0);
        buf.copy_from_slice(&[5, 6]);
        assert_eq!(buf.to_vec(), vec![5, 6]);
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit() {
        let buf = DeviceBuffer::<u64>::zeroed(4);
        buf.corrupt_bit(2, 61);
        assert_eq!(buf.read(2), 1u64 << 61);
        buf.corrupt_bit(2, 61);
        assert_eq!(buf.read(2), 0, "flipping twice restores the word");
        // The full in-range bit span of a narrow element is accepted.
        let small = DeviceBuffer::<u32>::zeroed(1);
        small.corrupt_bit(0, 31);
        assert_eq!(small.read(0), 1u32 << 31);
    }

    #[test]
    #[should_panic(expected = "bit 33 out of range for a 32-bit element")]
    fn corrupt_bit_rejects_out_of_width_bit() {
        // Regression: this used to silently wrap to bit 1 and flip the wrong
        // bit; the fault plan's intent must never be reinterpreted.
        let small = DeviceBuffer::<u32>::zeroed(1);
        small.corrupt_bit(0, 33);
    }

    #[test]
    #[should_panic(expected = "element index 4 out of bounds for a buffer of 4 elements")]
    fn corrupt_bit_rejects_out_of_bounds_index() {
        let buf = DeviceBuffer::<u64>::zeroed(4);
        buf.corrupt_bit(4, 0);
    }

    #[test]
    fn labels_attach_and_read_back() {
        let buf = DeviceBuffer::<u32>::zeroed(1);
        assert_eq!(buf.label(), None);
        let buf = buf.set_label("slots");
        assert_eq!(buf.label(), Some("slots"));
    }

    #[test]
    fn ids_are_unique() {
        let a = DeviceBuffer::<u8>::zeroed(1);
        let b = DeviceBuffer::<u8>::zeroed(1);
        assert_ne!(a.id(), b.id());
    }
}

#[cfg(test)]
mod pod_tests {
    use super::*;

    #[test]
    fn bits_roundtrip_all_types() {
        assert_eq!(u8::from_bits64(0xABu8.to_bits64()), 0xAB);
        assert_eq!(u16::from_bits64(0xBEEFu16.to_bits64()), 0xBEEF);
        assert_eq!(u32::from_bits64(0xDEADBEEFu32.to_bits64()), 0xDEADBEEF);
        assert_eq!(u64::from_bits64(u64::MAX.to_bits64()), u64::MAX);
        assert_eq!(i32::from_bits64((-42i32).to_bits64()), -42);
        assert_eq!(i64::from_bits64((-42i64).to_bits64()), -42);
        assert_eq!(f32::from_bits64(3.25f32.to_bits64()), 3.25);
        assert_eq!(f64::from_bits64((-0.5f64).to_bits64()), -0.5);
        // Negative zero and NaN payloads must survive bit transport.
        assert_eq!(f32::from_bits64((-0.0f32).to_bits64()).to_bits(), (-0.0f32).to_bits());
        let nan = f32::from_bits(0x7FC0_0001);
        assert_eq!(f32::from_bits64(nan.to_bits64()).to_bits(), nan.to_bits());
    }

    #[test]
    fn sizes_match_layout() {
        assert_eq!(<u8 as Pod>::SIZE, std::mem::size_of::<u8>());
        assert_eq!(<u16 as Pod>::SIZE, std::mem::size_of::<u16>());
        assert_eq!(<u32 as Pod>::SIZE, std::mem::size_of::<u32>());
        assert_eq!(<u64 as Pod>::SIZE, std::mem::size_of::<u64>());
        assert_eq!(<i32 as Pod>::SIZE, std::mem::size_of::<i32>());
        assert_eq!(<i64 as Pod>::SIZE, std::mem::size_of::<i64>());
        assert_eq!(<f32 as Pod>::SIZE, std::mem::size_of::<f32>());
        assert_eq!(<f64 as Pod>::SIZE, std::mem::size_of::<f64>());
    }
}
