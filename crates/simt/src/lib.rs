//! # wknng-simt — a deterministic SIMT execution simulator
//!
//! This crate is the hardware substrate of the w-KNNG reproduction. The
//! original system is a set of CUDA kernels; since no CUDA device (nor mature
//! Rust CUDA toolchain) is available, the kernels in `wknng-core` are written
//! against this simulator, which provides:
//!
//! * the **SIMT execution model**: 32-lane warps with explicit active masks,
//!   thread blocks with shared memory and barriers, grids of blocks
//!   ([`launch()`](launch()));
//! * the **architectural operations** warp-centric kernels rely on: coalesced
//!   global loads/stores, `shfl`/`ballot`, global atomics (`CAS`, `min`,
//!   `max`, `add`), shared-memory tiles ([`WarpCtx`]);
//! * a **cost model** that converts the execution trace into estimated device
//!   cycles: per-warp instruction issue, 32-byte-sector coalescing,
//!   shared-memory bank-conflict replays, same-address atomic serialization,
//!   block-to-SM occupancy scheduling and a DRAM bandwidth roofline
//!   ([`DeviceConfig`], [`LaunchReport`]);
//! * **profiler counters** ([`Stats`]) used by the evaluation to explain the
//!   behaviour of each kernel variant.
//!
//! Execution is sequential and fully deterministic: running the same kernel
//! twice produces bit-identical memory contents, counters and cycle counts.
//! Determinism is what makes the kernels unit-testable; the cost model, not
//! host time, represents the parallel machine.
//!
//! ```
//! use wknng_simt::{launch, lane_ids, DeviceConfig, DeviceBuffer, Mask};
//!
//! let dev = DeviceConfig::pascal_like();
//! let xs = DeviceBuffer::from_slice(&[1.0f32; 64]);
//! let ys = DeviceBuffer::<f32>::zeroed(64);
//! // Grid of 2 blocks x 1 warp: y[i] = 2 * x[i].
//! let report = launch(&dev, 2, 1, |blk| {
//!     let base = blk.block_idx * 32;
//!     blk.each_warp(|w| {
//!         let idx = w.math_idx(Mask::FULL, |l| base + l);
//!         let x = w.ld_global(&xs, &idx, Mask::FULL);
//!         let y = w.math(Mask::FULL, |l| 2.0 * x.get(l));
//!         w.st_global(&ys, &idx, &y, Mask::FULL);
//!     });
//! });
//! assert_eq!(ys.to_vec(), vec![2.0f32; 64]);
//! assert!(report.cycles > 0.0);
//! let _ = lane_ids();
//! ```

pub mod abstract_interp;
pub mod block;
pub mod cache;
pub mod device;
pub mod fault;
pub mod lane;
pub mod launch;
pub mod memory;
pub mod primitives;
pub mod report;
pub mod sanitizer;
pub mod shared;
pub mod stats;
pub mod warp;

pub use abstract_interp::{
    analyze, AbsBuf, AbsCtx, AbsIdx, AbsMask, AnalysisReport, IdxExpr, Obligation, ObligationClass,
    Status,
};
pub use block::BlockCtx;
pub use device::{DeviceConfig, SECTOR_BYTES, SHARED_BANKS, WARP_LANES};
pub use fault::{
    splitmix64, take_due_flips, FaultPlan, FaultScope, InjectedFault, LaunchFault, PendingFlip,
    ServeFault, SwapFault,
};
pub use lane::{lane_ids, LaneVec, Mask};
pub use launch::{launch, try_launch, LaunchReport};
pub use memory::{DeviceBuffer, Pod};
#[cfg(feature = "sanitize")]
pub use sanitizer::{launch_sanitized, SanitizerScope};
pub use sanitizer::{AccessKind, AccessSite, Hazard, HazardKind, HazardReport, Space};
pub use shared::SharedArray;
pub use stats::Stats;
pub use warp::WarpCtx;
