//! The thread-block execution context.

use crate::cache::L2Cache;
use crate::device::DeviceConfig;
use crate::memory::Pod;
use crate::shared::{SharedArray, SharedMem};
use crate::stats::Stats;
use crate::warp::WarpCtx;

/// Execution context of one thread block.
///
/// Kernels receive a `BlockCtx` per block. Block-level code alternates
/// per-warp phases ([`BlockCtx::each_warp`]) with barriers ([`BlockCtx::sync`]),
/// mirroring the `compute; __syncthreads(); compute;` structure of CUDA
/// kernels. Warps inside one `each_warp` phase execute independently (their
/// cycle counts advance separately and the block pays the maximum).
pub struct BlockCtx<'a> {
    /// Device being simulated.
    pub device: &'a DeviceConfig,
    /// Index of this block within the grid.
    pub block_idx: usize,
    /// Number of warps in this block.
    pub warps_per_block: usize,
    shared: SharedMem,
    stats: Stats,
    warp_cycles: Vec<f64>,
    atomic_log: Vec<(u64, u64)>,
    l2: &'a mut L2Cache,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        device: &'a DeviceConfig,
        block_idx: usize,
        warps_per_block: usize,
        l2: &'a mut L2Cache,
    ) -> Self {
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::block_begin(block_idx);
        BlockCtx {
            device,
            block_idx,
            warps_per_block,
            shared: SharedMem::new(device.shared_mem_bytes as usize),
            stats: Stats::new(),
            warp_cycles: vec![0.0; warps_per_block],
            atomic_log: Vec::new(),
            l2,
        }
    }

    /// Allocate a shared-memory array visible to every warp of the block.
    pub fn shared_alloc<T: Pod>(&self, len: usize) -> SharedArray<T> {
        self.shared.alloc(len)
    }

    /// Reset the shared-memory arena (reuse between independent phases).
    pub fn shared_reset(&self) {
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::shared_reset();
        self.shared.reset();
    }

    /// Run `f` once per warp of the block.
    pub fn each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx)) {
        for w in 0..self.warps_per_block {
            self.warp(w, &mut f);
        }
    }

    /// Run `f` for a single warp of the block.
    pub fn warp(&mut self, warp_in_block: usize, mut f: impl FnMut(&mut WarpCtx)) {
        assert!(warp_in_block < self.warps_per_block);
        let mut ctx = WarpCtx {
            device: self.device,
            block_idx: self.block_idx,
            warp_in_block,
            global_warp: self.block_idx * self.warps_per_block + warp_in_block,
            shared: &self.shared,
            stats: &mut self.stats,
            cycles: 0.0,
            atomic_log: &mut self.atomic_log,
            l2: self.l2,
        };
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::warp_begin();
        f(&mut ctx);
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::warp_end(self.block_idx, warp_in_block);
        let used = ctx.cycles;
        self.warp_cycles[warp_in_block] += used;
    }

    /// Block-wide barrier: all warps advance to the slowest warp's cycle
    /// count plus the barrier cost.
    pub fn sync(&mut self) {
        #[cfg(feature = "sanitize")]
        crate::sanitizer::hooks::barrier();
        self.stats.barriers += 1;
        let max =
            self.warp_cycles.iter().cloned().fold(0.0_f64, f64::max) + self.device.sync_cycles;
        for c in &mut self.warp_cycles {
            *c = max;
        }
    }

    /// Cycle count of the block so far (slowest warp).
    pub fn block_cycles(&self) -> f64 {
        self.warp_cycles.iter().cloned().fold(0.0_f64, f64::max)
    }

    pub(crate) fn finish(self) -> (Stats, f64, Vec<(u64, u64)>) {
        let cycles = self.block_cycles();
        (self.stats, cycles, self.atomic_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Mask;

    fn cache() -> L2Cache {
        L2Cache::new(1024)
    }

    #[test]
    fn warps_accumulate_independently_until_sync() {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = cache();
        let mut blk = BlockCtx::new(&dev, 0, 2, &mut l2);
        blk.warp(0, |w| {
            w.charge_alu(Mask::FULL, 10);
        });
        blk.warp(1, |w| {
            w.charge_alu(Mask::FULL, 4);
        });
        assert_eq!(blk.block_cycles(), 10.0);
        blk.sync();
        // Both warps now sit at 10 + sync cost.
        assert_eq!(blk.block_cycles(), 10.0 + dev.sync_cycles);
        blk.warp(1, |w| {
            w.charge_alu(Mask::FULL, 1);
        });
        assert_eq!(blk.block_cycles(), 11.0 + dev.sync_cycles);
    }

    #[test]
    fn finish_reports_stats_and_cycles() {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = cache();
        let mut blk = BlockCtx::new(&dev, 3, 1, &mut l2);
        blk.each_warp(|w| {
            assert_eq!(w.block_idx, 3);
            assert_eq!(w.global_warp, 3);
            w.charge_alu(Mask::first(16), 2);
        });
        let (stats, cycles, _) = blk.finish();
        assert_eq!(stats.instructions, 2);
        assert_eq!(stats.lane_ops, 32);
        assert_eq!(stats.inactive_lane_slots, 32);
        assert_eq!(cycles, 2.0);
    }

    #[test]
    fn shared_alloc_is_block_scoped() {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = cache();
        let blk = BlockCtx::new(&dev, 0, 1, &mut l2);
        let arr = blk.shared_alloc::<f32>(64);
        assert_eq!(arr.len(), 64);
        blk.shared_reset();
        let again = blk.shared_alloc::<f32>(64);
        assert_eq!(again.len(), 64);
    }

    #[test]
    #[should_panic]
    fn out_of_range_warp_panics() {
        let dev = DeviceConfig::test_tiny();
        let mut l2 = cache();
        let mut blk = BlockCtx::new(&dev, 0, 2, &mut l2);
        blk.warp(2, |_| {});
    }
}
