//! Symbolic (abstract) interpretation of warp-centric kernels.
//!
//! Where [`fn@crate::launch`] executes a kernel on *concrete* data and
//! [`crate::sanitizer`] observes the accesses of one concrete run, this
//! module runs a kernel's *access pattern* once with **abstract lanes**:
//! every index is an affine expression `a·lane + Σ cᵥ·v + d` whose
//! coefficients are polynomials over symbolic launch parameters
//! (`n`, `dim`, `k`, `m`, …) and whose bound variables `v` (warp ids, loop
//! counters, values loaded from declared-invariant buffers) carry symbolic
//! interval and stride-residue facts. On this domain the analyzer discharges
//! four obligation classes *for every launch shape in the declared ranges*:
//!
//! 1. **Coalescing** — each global load/store resolves into at most the
//!    declared number of 32-byte sectors (unit-stride/broadcast by default,
//!    `≤32` for declared gathers);
//! 2. **Bank conflicts** — each shared access is conflict-free (or has a
//!    proven bounded replay factor), using stride-residue facts such as
//!    "the tile row pitch is odd";
//! 3. **Bounds** — every index is within its buffer for *all* parameter
//!    valuations;
//! 4. **Barrier uniformity** — `sync_warp`/block barriers are reached under
//!    structurally uniform masks (no enclosing lane- or warp-divergent
//!    branch).
//!
//! The result is a structured [`AnalysisReport`]: one [`Obligation`] per
//! memory operation / barrier, `Proved` with the witness or `Unproven` with
//! the reason and the buffer label of the offending site.
//!
//! The [`IdxExpr`] trait is the **value-generic layer**: the index formulas
//! shared by the concrete kernels and their abstract models are written once,
//! generically, and type-check against both `usize` (concrete lanes) and
//! [`AbsIdx`] (abstract lanes).
//!
//! # Soundness model
//!
//! The proofs are conservative (interval + endpoint evaluation of
//! multilinear polynomials, affine-only expressions with `⊤` fallback):
//! everything *proved* holds for all valuations in the declared parameter
//! boxes, but the analyzer may fail to prove true facts. Data-dependent
//! values (bucket members, CSR offsets, unranked pair indices) enter the
//! domain as *declared-range opaque variables* — the declared invariants
//! (e.g. "members are point ids `< n`") are assumptions established by the
//! host-side upload code, not re-proved here. See DESIGN.md § Static
//! analysis for the full caveat list.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::device::{SECTOR_BYTES, WARP_LANES};

// ---------------------------------------------------------------------------
// Polynomials over symbolic launch parameters
// ---------------------------------------------------------------------------

/// Interned name of a symbolic launch parameter.
pub type SymName = &'static str;

/// A monomial: a sorted multiset of parameter names (empty = the constant 1).
type Monomial = Vec<SymName>;

/// A polynomial with integer coefficients over the symbolic parameters.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn konst(c: i64) -> Poly {
        let mut p = Poly::default();
        if c != 0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    /// The polynomial `name`.
    pub fn param(name: SymName) -> Poly {
        let mut p = Poly::default();
        p.terms.insert(vec![name], 1);
        p
    }

    fn insert(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let e = self.terms.entry(m).or_insert(0);
        *e += c;
        if *e == 0 {
            let m: Vec<SymName> = self.terms.iter().find(|(_, &v)| v == 0).unwrap().0.clone();
            self.terms.remove(&m);
        }
    }

    /// `self + o`.
    pub fn add(&self, o: &Poly) -> Poly {
        let mut r = self.clone();
        for (m, &c) in &o.terms {
            r.insert(m.clone(), c);
        }
        r
    }

    /// `self - o`.
    pub fn sub(&self, o: &Poly) -> Poly {
        let mut r = self.clone();
        for (m, &c) in &o.terms {
            r.insert(m.clone(), -c);
        }
        r
    }

    /// `self · o`.
    pub fn mul(&self, o: &Poly) -> Poly {
        let mut r = Poly::default();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &o.terms {
                let mut m = ma.clone();
                m.extend(mb.iter().copied());
                m.sort_unstable();
                r.insert(m, ca * cb);
            }
        }
        r
    }

    /// `self · c`.
    pub fn scale(&self, c: i64) -> Poly {
        let mut r = Poly::default();
        for (m, &v) in &self.terms {
            r.insert(m.clone(), v * c);
        }
        r
    }

    /// The constant value, if the polynomial has no parameters.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.terms.len() == 1 {
            if let Some(c) = self.terms.get(&Vec::new() as &Monomial) {
                return Some(*c);
            }
        }
        None
    }

    /// All parameters appearing in the polynomial.
    pub fn params(&self) -> BTreeSet<SymName> {
        self.terms.keys().flat_map(|m| m.iter().copied()).collect()
    }

    /// Degree of `name` in the polynomial.
    fn degree_of(&self, name: SymName) -> u32 {
        self.terms
            .keys()
            .map(|m| m.iter().filter(|&&s| s == name).count() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Substitute `name := with`. Requires degree ≤ 1 in `name` (the access
    /// formulas of warp-centric kernels are multilinear); returns `None`
    /// otherwise.
    fn subst(&self, name: SymName, with: &Poly) -> Option<Poly> {
        if self.degree_of(name) > 1 {
            return None;
        }
        let mut rest = Poly::default();
        let mut coeff = Poly::default(); // of the degree-1 part, name removed
        for (m, &c) in &self.terms {
            if let Some(pos) = m.iter().position(|&s| s == name) {
                let mut m2 = m.clone();
                m2.remove(pos);
                coeff.insert(m2, c);
            } else {
                rest.insert(m.clone(), c);
            }
        }
        Some(rest.add(&coeff.mul(with)))
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            let sign = if *c < 0 {
                "-"
            } else if first {
                ""
            } else {
                "+"
            };
            let mag = c.unsigned_abs();
            let name = if m.is_empty() { String::new() } else { m.join("·") };
            match (mag, name.is_empty()) {
                (1, false) => write!(f, "{sign}{name}")?,
                (_, false) => write!(f, "{sign}{mag}·{name}")?,
                (_, true) => write!(f, "{sign}{mag}")?,
            }
            first = false;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Affine expressions over bound variables and the lane id
// ---------------------------------------------------------------------------

/// Identifier of a bound variable registered with the analysis context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VarId(usize);

/// An affine expression `lane_coeff·lane + Σ coeffᵥ·v + konst`, with
/// polynomial coefficients over the symbolic parameters.
#[derive(Clone, Debug, Default)]
pub struct AffExpr {
    lane: Poly,
    terms: BTreeMap<VarId, Poly>,
    konst: Poly,
}

impl AffExpr {
    fn from_poly(p: Poly) -> AffExpr {
        AffExpr { konst: p, ..Default::default() }
    }

    fn from_var(v: VarId) -> AffExpr {
        let mut e = AffExpr::default();
        e.terms.insert(v, Poly::konst(1));
        e
    }

    fn add(&self, o: &AffExpr) -> AffExpr {
        let mut r = self.clone();
        r.lane = r.lane.add(&o.lane);
        r.konst = r.konst.add(&o.konst);
        for (v, c) in &o.terms {
            let e = r.terms.entry(*v).or_default();
            *e = e.add(c);
            if e.terms.is_empty() {
                r.terms.remove(v);
            }
        }
        r
    }

    fn sub(&self, o: &AffExpr) -> AffExpr {
        self.add(&o.scale_poly(&Poly::konst(-1)))
    }

    /// Multiply the whole expression by a parameter-only polynomial.
    fn scale_poly(&self, p: &Poly) -> AffExpr {
        let mut r =
            AffExpr { lane: self.lane.mul(p), terms: BTreeMap::new(), konst: self.konst.mul(p) };
        for (v, c) in &self.terms {
            let c = c.mul(p);
            if !c.terms.is_empty() {
                r.terms.insert(*v, c);
            }
        }
        r
    }

    /// True when the expression is a pure parameter polynomial (no lane, no
    /// bound variables).
    fn is_poly(&self) -> bool {
        self.lane.terms.is_empty() && self.terms.is_empty()
    }

    fn has_lane(&self) -> bool {
        !self.lane.terms.is_empty() || self.lane.as_const().map(|c| c != 0).unwrap_or(true)
    }
}

/// An abstract index value: an affine expression, or `Top` (no information —
/// every obligation over a `Top` index fails with "not affine").
#[derive(Clone, Debug)]
pub enum AbsIdx {
    /// Affine over lane / bound variables with polynomial coefficients.
    Expr(AffExpr),
    /// Unknown value; obligations over it are unprovable.
    Top,
}

impl AbsIdx {
    /// The constant zero.
    pub fn zero() -> AbsIdx {
        AbsIdx::Expr(AffExpr::default())
    }

    /// A parameter-free constant.
    pub fn konst(c: usize) -> AbsIdx {
        AbsIdx::Expr(AffExpr::from_poly(Poly::konst(c as i64)))
    }

    /// `self - o` (models like mask widths need subtraction; the concrete
    /// `usize` side never does, so this is not part of [`IdxExpr`]).
    pub fn sub(&self, o: &AbsIdx) -> AbsIdx {
        match (self, o) {
            (AbsIdx::Expr(a), AbsIdx::Expr(b)) => AbsIdx::Expr(a.sub(b)),
            _ => AbsIdx::Top,
        }
    }

    fn expr(&self) -> Option<&AffExpr> {
        match self {
            AbsIdx::Expr(e) => Some(e),
            AbsIdx::Top => None,
        }
    }
}

/// The value-generic layer: the index arithmetic shared by concrete kernels
/// (`usize` lanes) and abstract models ([`AbsIdx`] lanes). Index formulas
/// written against this trait type-check against both, so the analyzer and
/// the executable kernels cannot drift apart on the access-pattern algebra.
pub trait IdxExpr: Clone {
    /// Lift a constant.
    fn constant(c: usize) -> Self;
    /// Addition.
    fn add(&self, o: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, o: &Self) -> Self;
}

impl IdxExpr for usize {
    fn constant(c: usize) -> usize {
        c
    }
    fn add(&self, o: &usize) -> usize {
        self + o
    }
    fn mul(&self, o: &usize) -> usize {
        self * o
    }
}

impl IdxExpr for AbsIdx {
    fn constant(c: usize) -> AbsIdx {
        AbsIdx::konst(c)
    }

    fn add(&self, o: &AbsIdx) -> AbsIdx {
        match (self, o) {
            (AbsIdx::Expr(a), AbsIdx::Expr(b)) => AbsIdx::Expr(a.add(b)),
            _ => AbsIdx::Top,
        }
    }

    /// Products stay affine only when one side is a pure parameter
    /// polynomial (e.g. `p · dim`); a product of two variable-carrying
    /// expressions is `Top`.
    fn mul(&self, o: &AbsIdx) -> AbsIdx {
        match (self, o) {
            (AbsIdx::Expr(a), AbsIdx::Expr(b)) if a.is_poly() => {
                AbsIdx::Expr(b.scale_poly(&a.konst))
            }
            (AbsIdx::Expr(a), AbsIdx::Expr(b)) if b.is_poly() => {
                AbsIdx::Expr(a.scale_poly(&b.konst))
            }
            _ => AbsIdx::Top,
        }
    }
}

// ---------------------------------------------------------------------------
// Masks and scopes
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MaskKind {
    /// All 32 lanes.
    Full,
    /// A structurally convergent prefix: lane < each candidate width.
    /// Inclusive lane upper bounds (candidates; each is individually sound).
    First(Vec<AffExpr>),
    /// A data-dependent lane subset (fine for memory ops, fatal for syncs).
    Divergent(String),
}

/// Abstract active-lane mask.
#[derive(Clone, Debug)]
pub struct AbsMask {
    kind: MaskKind,
}

impl AbsMask {
    /// All lanes active.
    pub fn full() -> AbsMask {
        AbsMask { kind: MaskKind::Full }
    }

    /// Only lane 0 active (leader / `splat` accesses).
    pub fn single() -> AbsMask {
        AbsMask { kind: MaskKind::First(vec![AffExpr::from_poly(Poly::zero())]) }
    }

    /// Prefix mask of statically unknown width (e.g. a ballot-derived
    /// contiguous tail): structurally convergent, lane ≤ 31.
    pub fn prefix() -> AbsMask {
        AbsMask {
            kind: MaskKind::First(vec![AffExpr::from_poly(Poly::konst(WARP_LANES as i64 - 1))]),
        }
    }

    /// `Mask::first(min(widths...))`: the first `min(widths)` lanes. Each
    /// width yields an independently sound inclusive lane bound `width - 1`.
    /// Widths must not depend on the lane id.
    pub fn first_min(widths: &[AbsIdx]) -> AbsMask {
        let mut ubs = Vec::new();
        for w in widths {
            if let Some(e) = w.expr() {
                assert!(!e.has_lane(), "mask width cannot depend on the lane id");
                ubs.push(e.sub(&AffExpr::from_poly(Poly::konst(1))));
            }
        }
        assert!(!ubs.is_empty(), "mask needs at least one affine width");
        AbsMask { kind: MaskKind::First(ubs) }
    }

    /// A data-dependent lane subset (per-lane predicate); `desc` names the
    /// predicate in barrier diagnostics.
    pub fn divergent(desc: &str) -> AbsMask {
        AbsMask { kind: MaskKind::Divergent(desc.to_string()) }
    }

    /// Inclusive lane upper-bound candidates implied by the mask (the
    /// architectural bound 31 is always included).
    fn lane_ubs(&self) -> Vec<AffExpr> {
        let arch = AffExpr::from_poly(Poly::konst(WARP_LANES as i64 - 1));
        match &self.kind {
            MaskKind::Full | MaskKind::Divergent(_) => vec![arch],
            MaskKind::First(ubs) => {
                let mut v = ubs.clone();
                v.push(arch);
                v
            }
        }
    }
}

/// Structural classification of a control-flow scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scope {
    /// Condition uniform across the whole block (params / block id only).
    Uniform,
    /// Condition varies per warp (warp id) but not per lane.
    WarpVarying,
    /// Condition varies per lane (structural divergence).
    LaneVarying,
}

// ---------------------------------------------------------------------------
// Buffers, obligations, report
// ---------------------------------------------------------------------------

/// Address space of an analyzed buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BufSpace {
    Global,
    Shared,
}

/// Declaration of a device buffer visible to the abstract kernel: label
/// (matching [`crate::DeviceBuffer::set_label`]), symbolic element count and
/// element size in bytes.
#[derive(Clone, Debug)]
pub struct AbsBuf {
    label: &'static str,
    len: Poly,
    elem: usize,
    space: BufSpace,
}

/// The four statically discharged obligation classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObligationClass {
    /// Global accesses resolve into at most the declared sector count.
    Coalescing,
    /// Shared accesses are conflict-free / bounded-replay.
    BankConflict,
    /// Indices are in-bounds for all parameter valuations.
    Bounds,
    /// Barriers are reached under structurally uniform masks.
    Barrier,
}

impl fmt::Display for ObligationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObligationClass::Coalescing => "coalescing",
            ObligationClass::BankConflict => "bank-conflict",
            ObligationClass::Bounds => "bounds",
            ObligationClass::Barrier => "barrier",
        };
        write!(f, "{s}")
    }
}

/// Outcome of one obligation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// Holds for every launch shape in the declared ranges; the string is
    /// the proof witness.
    Proved(String),
    /// Could not be discharged; the string is the reason.
    Unproven(String),
}

/// One discharged (or failed) obligation at a specific kernel site.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// Obligation class.
    pub class: ObligationClass,
    /// Kernel-side location label (subroutine / phase / operation).
    pub site: String,
    /// Buffer label of the access (barriers have none).
    pub buffer: Option<&'static str>,
    /// Proved or unproven.
    pub status: Status,
}

impl Obligation {
    /// True when the obligation was discharged.
    pub fn proved(&self) -> bool {
        matches!(self.status, Status::Proved(_))
    }
}

/// Structured result of analyzing one kernel: every obligation the abstract
/// run generated, in program order.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Kernel name.
    pub kernel: String,
    /// All obligations, in the order the abstract kernel issued them.
    pub obligations: Vec<Obligation>,
}

impl AnalysisReport {
    /// True when every obligation was proved.
    pub fn all_proved(&self) -> bool {
        self.obligations.iter().all(|o| o.proved())
    }

    /// The obligations that could not be discharged.
    pub fn unproven(&self) -> Vec<&Obligation> {
        self.obligations.iter().filter(|o| !o.proved()).collect()
    }

    /// Number of obligations of `class`.
    pub fn count(&self, class: ObligationClass) -> usize {
        self.obligations.iter().filter(|o| o.class == class).count()
    }

    /// Human-readable rendering (stable — pinned by the golden-report test).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let (p, total) =
            (self.obligations.iter().filter(|o| o.proved()).count(), self.obligations.len());
        let verdict = if p == total { "all proved" } else { "UNPROVEN OBLIGATIONS" };
        out.push_str(&format!(
            "kernel `{}`: {p}/{total} obligations proved — {verdict}\n",
            self.kernel
        ));
        for o in &self.obligations {
            let buf = o.buffer.map(|b| format!(" [{b}]")).unwrap_or_default();
            let (tag, msg) = match &o.status {
                Status::Proved(w) => ("ok", w),
                Status::Unproven(r) => ("FAIL", r),
            };
            out.push_str(&format!("  {tag:4} {:13} {}{buf}: {msg}\n", o.class.to_string(), o.site));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The analysis context
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ParamSpec {
    name: SymName,
    lo: Poly,
    hi: Poly,
    /// Known residue: value ≡ r (mod q).
    residue: Option<(u64, u64)>,
}

#[derive(Clone, Debug)]
struct VarInfo {
    #[allow(dead_code)]
    name: String,
    lo: AffExpr,
    /// Inclusive upper-bound candidates (each individually sound); may
    /// reference earlier-declared variables only.
    his: Vec<AffExpr>,
    /// Takes a different value on each lane (per-lane loaded data): any
    /// index containing it is a gather regardless of its lane coefficient.
    lane_varying: bool,
}

/// Abstract execution context: mirrors the [`crate::WarpCtx`] /
/// [`crate::BlockCtx`] surface a kernel touches (loads, stores, atomics,
/// shared accesses, barriers, structured control flow), but over abstract
/// lanes. Obtained from [`analyze`].
pub struct AbsCtx {
    kernel: String,
    params: Vec<ParamSpec>,
    vars: Vec<VarInfo>,
    scopes: Vec<(Scope, String)>,
    obligations: Vec<Obligation>,
}

/// Run `model` over an abstract context and collect the report for `kernel`.
pub fn analyze(kernel: &str, model: impl FnOnce(&mut AbsCtx)) -> AnalysisReport {
    let mut cx = AbsCtx {
        kernel: kernel.to_string(),
        params: Vec::new(),
        vars: Vec::new(),
        scopes: Vec::new(),
        obligations: Vec::new(),
    };
    model(&mut cx);
    AnalysisReport { kernel: cx.kernel, obligations: cx.obligations }
}

impl AbsCtx {
    // ------------------------------------------------------------ declaring
    /// Declare a base launch parameter ranging over `[lo, hi]`.
    pub fn param(&mut self, name: SymName, lo: u64, hi: u64) -> AbsIdx {
        assert!(lo <= hi && self.params.iter().all(|p| p.name != name));
        self.params.push(ParamSpec {
            name,
            lo: Poly::konst(lo as i64),
            hi: Poly::konst(hi as i64),
            residue: None,
        });
        AbsIdx::Expr(AffExpr::from_poly(Poly::param(name)))
    }

    /// Declare a derived parameter whose bounds are polynomials over
    /// earlier-declared parameters (e.g. a bucket size `m ∈ [2, n]`).
    pub fn derived_param(&mut self, name: SymName, lo: &AbsIdx, hi: &AbsIdx) -> AbsIdx {
        self.derived_param_full(name, lo, hi, None)
    }

    /// Like [`AbsCtx::derived_param`], with a known residue `value ≡ r (mod
    /// q)` — the stride-residue domain (e.g. an odd tile pitch: `r=1, q=2`).
    pub fn derived_param_mod(
        &mut self,
        name: SymName,
        lo: &AbsIdx,
        hi: &AbsIdx,
        r: u64,
        q: u64,
    ) -> AbsIdx {
        self.derived_param_full(name, lo, hi, Some((r, q)))
    }

    fn derived_param_full(
        &mut self,
        name: SymName,
        lo: &AbsIdx,
        hi: &AbsIdx,
        residue: Option<(u64, u64)>,
    ) -> AbsIdx {
        let (lo, hi) = match (lo.expr(), hi.expr()) {
            (Some(a), Some(b)) if a.is_poly() && b.is_poly() => (a.konst.clone(), b.konst.clone()),
            _ => panic!("derived-parameter bounds must be parameter polynomials"),
        };
        assert!(self.params.iter().all(|p| p.name != name), "duplicate parameter {name}");
        self.params.push(ParamSpec { name, lo, hi, residue });
        AbsIdx::Expr(AffExpr::from_poly(Poly::param(name)))
    }

    /// The symbolic lane id (`0..32`, the abstract `threadIdx.x % 32`).
    pub fn lane(&self) -> AbsIdx {
        AbsIdx::Expr(AffExpr { lane: Poly::konst(1), ..Default::default() })
    }

    fn push_var(
        &mut self,
        name: &str,
        lo: &AbsIdx,
        his_exclusive: &[AbsIdx],
        lane_varying: bool,
    ) -> AbsIdx {
        let lo = lo.expr().cloned().unwrap_or_default();
        assert!(!lo.has_lane(), "variable bounds cannot depend on the lane id");
        let mut his = Vec::new();
        for h in his_exclusive {
            if let Some(e) = h.expr() {
                assert!(!e.has_lane(), "variable bounds cannot depend on the lane id");
                his.push(e.sub(&AffExpr::from_poly(Poly::konst(1))));
            }
        }
        assert!(!his.is_empty(), "variable needs at least one affine upper bound");
        let id = VarId(self.vars.len());
        self.vars.push(VarInfo { name: name.to_string(), lo, his, lane_varying });
        AbsIdx::Expr(AffExpr::from_var(id))
    }

    /// Declare a warp-uniform bound variable ranging over `[lo, hi)` — a
    /// guarded warp/block id or a loop counter. All iterations/valuations
    /// are analyzed at once.
    pub fn range_var(&mut self, name: &str, lo: &AbsIdx, hi_exclusive: &AbsIdx) -> AbsIdx {
        self.push_var(name, lo, std::slice::from_ref(hi_exclusive), false)
    }

    /// Like [`AbsCtx::range_var`] with several exclusive upper-bound
    /// candidates (`v < min(bounds...)`, each bound individually sound).
    pub fn range_var_min(&mut self, name: &str, lo: &AbsIdx, his_exclusive: &[AbsIdx]) -> AbsIdx {
        self.push_var(name, lo, his_exclusive, false)
    }

    /// Declare a warp-uniform *opaque* value in `[lo, hi)` — data loaded
    /// from a buffer whose content invariant is declared, not re-proved
    /// (e.g. a CSR offset, a bucket id).
    pub fn opaque(&mut self, name: &str, lo: &AbsIdx, hi_exclusive: &AbsIdx) -> AbsIdx {
        self.push_var(name, lo, std::slice::from_ref(hi_exclusive), false)
    }

    /// Declare a *per-lane* opaque value in `[lo, hi)` (each lane loaded its
    /// own): indices containing it are gathers whatever their lane
    /// coefficient.
    pub fn opaque_lanes(&mut self, name: &str, lo: &AbsIdx, hi_exclusive: &AbsIdx) -> AbsIdx {
        self.push_var(name, lo, std::slice::from_ref(hi_exclusive), true)
    }

    /// Declare a global buffer with `len` elements of `elem` bytes. The
    /// label should match the concrete [`crate::DeviceBuffer::set_label`].
    pub fn global_buf(&mut self, label: &'static str, len: &AbsIdx, elem: usize) -> AbsBuf {
        Self::mk_buf(label, len, elem, BufSpace::Global)
    }

    /// Declare a shared-memory array with `len` elements of `elem` bytes.
    pub fn shared_buf(&mut self, label: &'static str, len: &AbsIdx, elem: usize) -> AbsBuf {
        Self::mk_buf(label, len, elem, BufSpace::Shared)
    }

    fn mk_buf(label: &'static str, len: &AbsIdx, elem: usize, space: BufSpace) -> AbsBuf {
        let len = match len.expr() {
            Some(e) if e.is_poly() => e.konst.clone(),
            _ => panic!("buffer length must be a parameter polynomial"),
        };
        AbsBuf { label, len, elem, space }
    }

    // ----------------------------------------------------------- structure
    fn scoped(&mut self, scope: Scope, desc: &str, f: impl FnOnce(&mut AbsCtx)) {
        self.scopes.push((scope, desc.to_string()));
        f(self);
        self.scopes.pop();
    }

    /// A block-uniform branch/loop (condition over params / block id only).
    pub fn uniform(&mut self, desc: &str, f: impl FnOnce(&mut AbsCtx)) {
        self.scoped(Scope::Uniform, desc, f);
    }

    /// A warp-varying branch/loop (condition over the warp id): warp syncs
    /// inside stay provable, block barriers do not.
    pub fn warp_varying(&mut self, desc: &str, f: impl FnOnce(&mut AbsCtx)) {
        self.scoped(Scope::WarpVarying, desc, f);
    }

    /// A lane-varying branch (structural divergence): no barrier inside can
    /// be proved uniform.
    pub fn lane_varying(&mut self, desc: &str, f: impl FnOnce(&mut AbsCtx)) {
        self.scoped(Scope::LaneVarying, desc, f);
    }

    // ------------------------------------------------------------- barriers
    /// `__syncwarp`-style warp convergence point.
    pub fn sync_warp(&mut self, mask: &AbsMask, site: &str) {
        let status =
            if let Some((_, d)) = self.scopes.iter().find(|(s, _)| *s == Scope::LaneVarying) {
                Status::Unproven(format!("warp sync inside lane-divergent branch `{d}`"))
            } else if let MaskKind::Divergent(desc) = &mask.kind {
                Status::Unproven(format!("warp sync under data-dependent lane mask `{desc}`"))
            } else {
                Status::Proved("mask structurally uniform on every path".into())
            };
        self.obligations.push(Obligation {
            class: ObligationClass::Barrier,
            site: site.to_string(),
            buffer: None,
            status,
        });
    }

    /// `__syncthreads`-style block barrier.
    pub fn block_sync(&mut self, site: &str) {
        let status = if let Some((s, d)) =
            self.scopes.iter().find(|(s, _)| matches!(s, Scope::LaneVarying | Scope::WarpVarying))
        {
            let kind = if *s == Scope::LaneVarying { "lane" } else { "warp" };
            Status::Unproven(format!("block barrier inside {kind}-divergent branch `{d}`"))
        } else {
            Status::Proved("reached by every warp on every path".into())
        };
        self.obligations.push(Obligation {
            class: ObligationClass::Barrier,
            site: site.to_string(),
            buffer: None,
            status,
        });
    }

    // ------------------------------------------------------------- accesses
    /// Coalesced global load: obligations = in-bounds + minimal sector count.
    pub fn ld(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.access(buf, idx, mask, site, None);
    }

    /// Coalesced global store.
    pub fn st(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.access(buf, idx, mask, site, None);
    }

    /// Global atomic (bounds + coalescing obligations like a store).
    pub fn atomic(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.access(buf, idx, mask, site, None);
    }

    /// Declared gather load: the coalescing obligation is the *declared*
    /// bound of ≤ 32 sectors (one per lane) instead of the minimal count.
    pub fn ld_gather(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.access(buf, idx, mask, site, Some(WARP_LANES as u32));
    }

    /// Declared gather store/atomic.
    pub fn st_gather(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.access(buf, idx, mask, site, Some(WARP_LANES as u32));
    }

    /// Shared access: obligations = in-bounds + conflict-free (replay 1).
    pub fn sh(&mut self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask, site: &str) {
        self.shared_access(buf, idx, mask, site, 1);
    }

    /// Shared access with a declared replay-factor bound.
    pub fn sh_bounded(
        &mut self,
        buf: &AbsBuf,
        idx: &AbsIdx,
        mask: &AbsMask,
        site: &str,
        replay_bound: u64,
    ) {
        self.shared_access(buf, idx, mask, site, replay_bound);
    }

    fn push_ob(&mut self, class: ObligationClass, site: &str, buf: &AbsBuf, status: Status) {
        self.obligations.push(Obligation {
            class,
            site: site.to_string(),
            buffer: Some(buf.label),
            status,
        });
    }

    fn access(
        &mut self,
        buf: &AbsBuf,
        idx: &AbsIdx,
        mask: &AbsMask,
        site: &str,
        gather: Option<u32>,
    ) {
        assert_eq!(buf.space, BufSpace::Global, "ld/st/atomic need a global buffer");
        let bounds = self.bounds_status(buf, idx, mask);
        self.push_ob(ObligationClass::Bounds, site, buf, bounds);
        let coalesce = self.coalesce_status(buf, idx, gather);
        self.push_ob(ObligationClass::Coalescing, site, buf, coalesce);
    }

    fn shared_access(
        &mut self,
        buf: &AbsBuf,
        idx: &AbsIdx,
        mask: &AbsMask,
        site: &str,
        replay_bound: u64,
    ) {
        assert_eq!(buf.space, BufSpace::Shared, "sh needs a shared buffer");
        let bounds = self.bounds_status(buf, idx, mask);
        self.push_ob(ObligationClass::Bounds, site, buf, bounds);
        let bank = self.bank_status(buf, idx, replay_bound);
        self.push_ob(ObligationClass::BankConflict, site, buf, bank);
    }

    // ------------------------------------------------------------- proving
    /// True when `p ≥ 0` for all parameter valuations in the declared boxes.
    /// Parameters are eliminated last-declared-first by endpoint
    /// substitution (exact for multilinear polynomials over non-negative
    /// boxes; degree ≥ 2 in one parameter is rejected).
    fn prove_nonneg(&self, p: &Poly) -> bool {
        let present = p.params();
        let Some(spec) = self.params.iter().rev().find(|s| present.contains(s.name)) else {
            return p.as_const().map(|c| c >= 0).unwrap_or(false);
        };
        let (Some(at_lo), Some(at_hi)) =
            (p.subst(spec.name, &spec.lo), p.subst(spec.name, &spec.hi))
        else {
            return false; // degree ≥ 2: outside the multilinear fragment
        };
        self.prove_nonneg(&at_lo) && self.prove_nonneg(&at_hi)
    }

    fn sign(&self, p: &Poly) -> Option<bool> {
        // Some(true) = non-negative, Some(false) = non-positive.
        if self.prove_nonneg(p) {
            Some(true)
        } else if self.prove_nonneg(&p.scale(-1)) {
            Some(false)
        } else {
            None
        }
    }

    /// Residue of `p` modulo `m`, when derivable from the declared parameter
    /// residues.
    fn residue(&self, p: &Poly, m: u64) -> Option<u64> {
        let mi = m as i64;
        let mut acc: i64 = 0;
        for (mono, &c) in &p.terms {
            let mut term = c.rem_euclid(mi);
            for name in mono {
                let spec = self.params.iter().find(|s| s.name == *name)?;
                let r = match spec.residue {
                    Some((r, q)) if q % m == 0 => (r % m) as i64,
                    _ => match (spec.lo.as_const(), spec.hi.as_const()) {
                        (Some(lo), Some(hi)) if lo == hi => lo.rem_euclid(mi),
                        _ => return None,
                    },
                };
                term = (term * r).rem_euclid(mi);
            }
            acc = (acc + term).rem_euclid(mi);
        }
        Some(acc as u64)
    }

    /// Symbolic upper-bound candidates of `e` (each a parameter polynomial
    /// that dominates `e` for all valuations), using the mask's lane bounds
    /// and every variable's declared range.
    fn ub_candidates(&self, e: &AffExpr, mask: &AbsMask) -> Vec<Poly> {
        let mut cands = vec![e.clone()];
        // Lane elimination.
        cands = cands
            .into_iter()
            .flat_map(|c| {
                let coeff = c.lane.clone();
                if coeff.terms.is_empty() {
                    return vec![c];
                }
                let mut base = c.clone();
                base.lane = Poly::zero();
                match self.sign(&coeff) {
                    Some(true) => {
                        mask.lane_ubs().iter().map(|ub| base.add(&ub.scale_poly(&coeff))).collect()
                    }
                    Some(false) => vec![base], // lane ≥ 0: drop the term
                    None => Vec::new(),
                }
            })
            .collect();
        // Variable elimination, newest first (bounds reference older vars).
        while let Some(&v) = cands.iter().flat_map(|c| c.terms.keys()).max() {
            let info = &self.vars[v.0];
            cands = cands
                .into_iter()
                .flat_map(|c| {
                    let Some(coeff) = c.terms.get(&v).cloned() else { return vec![c] };
                    let mut base = c.clone();
                    base.terms.remove(&v);
                    match self.sign(&coeff) {
                        Some(true) => {
                            info.his.iter().map(|h| base.add(&h.scale_poly(&coeff))).collect()
                        }
                        Some(false) => vec![base.add(&info.lo.scale_poly(&coeff))],
                        None => Vec::new(),
                    }
                })
                .collect();
            if cands.is_empty() {
                break;
            }
        }
        cands.into_iter().filter(|c| c.is_poly()).map(|c| c.konst).collect()
    }

    /// Symbolic lower bound of `e` (lane and variables at their minima).
    fn lb(&self, e: &AffExpr) -> Option<Poly> {
        let mut cur = e.clone();
        if !cur.lane.terms.is_empty() {
            match self.sign(&cur.lane) {
                Some(true) => cur.lane = Poly::zero(), // lane ≥ 0
                Some(false) => {
                    let ub = AffExpr::from_poly(Poly::konst(WARP_LANES as i64 - 1));
                    let coeff = cur.lane.clone();
                    cur.lane = Poly::zero();
                    cur = cur.add(&ub.scale_poly(&coeff));
                }
                None => return None,
            }
        }
        while let Some(&v) = cur.terms.keys().max() {
            let info = self.vars[v.0].clone();
            let coeff = cur.terms.remove(&v).expect("present");
            match self.sign(&coeff) {
                Some(true) => cur = cur.add(&info.lo.scale_poly(&coeff)),
                Some(false) => {
                    // Minimum at the variable's maximum; any candidate works
                    // only if it is the true bound — use the first and stay
                    // sound by requiring its proof downstream.
                    let h = info.his.first()?;
                    cur = cur.add(&h.scale_poly(&coeff));
                }
                None => return None,
            }
        }
        Some(cur.konst)
    }

    fn bounds_status(&self, buf: &AbsBuf, idx: &AbsIdx, mask: &AbsMask) -> Status {
        let Some(e) = idx.expr() else {
            return Status::Unproven("index is not affine (⊤)".into());
        };
        let Some(lb) = self.lb(e) else {
            return Status::Unproven(
                "cannot establish a lower bound (coefficient sign unknown)".into(),
            );
        };
        if !self.prove_nonneg(&lb) {
            return Status::Unproven(format!("lower bound {lb} may be negative"));
        }
        let limit = buf.len.sub(&Poly::konst(1));
        for ub in self.ub_candidates(e, mask) {
            if self.prove_nonneg(&limit.sub(&ub)) {
                return Status::Proved(format!("0 ≤ index ≤ {ub} ≤ len-1 = {limit}"));
            }
        }
        Status::Unproven(format!("no upper-bound candidate fits len = {}", buf.len))
    }

    fn lane_varying_in(&self, e: &AffExpr) -> bool {
        e.terms.keys().any(|v| self.vars[v.0].lane_varying)
    }

    fn coalesce_status(&self, buf: &AbsBuf, idx: &AbsIdx, gather: Option<u32>) -> Status {
        let minimal = ((WARP_LANES - 1) * buf.elem + buf.elem - 1) / SECTOR_BYTES + 1;
        let Some(e) = idx.expr() else {
            return Status::Unproven("index is not affine (⊤)".into());
        };
        let per_lane = self.lane_varying_in(e);
        let coeff = e.lane.as_const();
        if !per_lane {
            match coeff {
                Some(0) => {
                    return Status::Proved("broadcast: 1 sector".into());
                }
                Some(c) if c > 0 => {
                    let span = (WARP_LANES - 1) * c as usize * buf.elem + buf.elem - 1;
                    let sectors = (span / SECTOR_BYTES + 1).min(WARP_LANES);
                    let allowed = gather.map(|g| g as usize).unwrap_or(minimal).max(minimal);
                    if sectors <= allowed {
                        return Status::Proved(format!(
                            "lane stride {c} × {}B → ≤{sectors} sectors (bound {allowed})",
                            buf.elem
                        ));
                    }
                    return Status::Unproven(format!(
                        "lane stride {c} × {}B spans {sectors} sectors (> {allowed} allowed)",
                        buf.elem
                    ));
                }
                _ => {}
            }
        }
        match gather {
            Some(g) => Status::Proved(format!("declared gather: ≤{g} sectors (one per lane)")),
            None => {
                if per_lane {
                    Status::Unproven("per-lane data-dependent addresses (undeclared gather)".into())
                } else {
                    Status::Unproven(format!(
                        "symbolic lane stride {} not provably unit (undeclared gather)",
                        e.lane
                    ))
                }
            }
        }
    }

    fn bank_status(&self, buf: &AbsBuf, idx: &AbsIdx, replay_bound: u64) -> Status {
        let Some(e) = idx.expr() else {
            return Status::Unproven("index is not affine (⊤)".into());
        };
        if self.lane_varying_in(e) {
            let worst = WARP_LANES as u64;
            if replay_bound >= worst {
                return Status::Proved(format!("declared bound: ≤{worst}-way replay"));
            }
            return Status::Unproven("per-lane data-dependent addresses (replay unbounded)".into());
        }
        // Word stride of consecutive lanes in 4-byte bank words.
        let byte_stride = e.lane.scale(buf.elem as i64);
        if let Some(b) = byte_stride.as_const() {
            let b = b.unsigned_abs();
            if b == 0 {
                return Status::Proved("broadcast: 1 replay".into());
            }
            if b % 4 != 0 {
                return Status::Unproven(format!("sub-word lane stride {b}B unsupported"));
            }
            let replay = gcd(b / 4, 32);
            if replay <= replay_bound {
                return Status::Proved(format!(
                    "word stride {} → gcd({}, 32) = {replay}-way ≤ bound {replay_bound}",
                    b / 4,
                    b / 4
                ));
            }
            return Status::Unproven(format!(
                "word stride {} → {replay}-way replay (> {replay_bound} allowed)",
                b / 4
            ));
        }
        // Symbolic stride: use the residue domain — an odd word stride hits
        // all 32 banks (gcd = 1).
        if buf.elem == 4 {
            match self.residue(&e.lane, 2) {
                Some(1) => {
                    return Status::Proved(format!(
                        "symbolic word stride {} proven odd → conflict-free",
                        e.lane
                    ));
                }
                Some(_) => {
                    return Status::Unproven(format!(
                        "symbolic word stride {} proven even → ≥2-way replay",
                        e.lane
                    ));
                }
                None => {}
            }
        }
        Status::Unproven(format!("symbolic lane stride {} has unknown bank residue", e.lane))
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(i: &AbsIdx) -> &AffExpr {
        i.expr().expect("affine")
    }

    #[test]
    fn poly_algebra_and_display() {
        let n = Poly::param("n");
        let d = Poly::param("dim");
        let p = n.mul(&d).sub(&Poly::konst(1));
        assert_eq!(p.to_string(), "-1+dim·n");
        assert_eq!(p.sub(&p), Poly::zero());
        assert_eq!(Poly::konst(3).mul(&Poly::konst(4)).as_const(), Some(12));
        assert_eq!(n.degree_of("n"), 1);
        assert_eq!(n.mul(&n).degree_of("n"), 2);
    }

    #[test]
    fn subst_is_linear_only() {
        let n = Poly::param("n");
        let sq = n.mul(&n);
        assert!(sq.subst("n", &Poly::konst(3)).is_none());
        let lin = n.scale(2).add(&Poly::konst(5));
        assert_eq!(lin.subst("n", &Poly::konst(3)).unwrap().as_const(), Some(11));
    }

    #[test]
    fn row_access_is_proved_in_bounds_and_coalesced() {
        // The warp_sq_l2 shape: idx = p·dim + c + lane, p < n, c ∈ [0, dim)
        // step 32, lane < min(dim - c, 32); buffer len n·dim.
        let report = analyze("row", |cx| {
            let n = cx.param("n", 1, 1 << 20);
            let dim = cx.param("dim", 1, 4096);
            let points = cx.global_buf("points", &n.mul(&dim), 4);
            let p = cx.range_var("p", &AbsIdx::zero(), &n);
            let c = cx.range_var("c", &AbsIdx::zero(), &dim);
            let mask = AbsMask::first_min(&[dim.sub(&c), AbsIdx::konst(32)]);
            let idx = p.mul(&dim).add(&c).add(&cx.lane());
            cx.ld(&points, &idx, &mask, "row chunk");
        });
        assert!(report.all_proved(), "{}", report.render());
        assert_eq!(report.count(ObligationClass::Bounds), 1);
        assert_eq!(report.count(ObligationClass::Coalescing), 1);
    }

    #[test]
    fn off_by_one_is_caught() {
        let report = analyze("oob", |cx| {
            let n = cx.param("n", 1, 1 << 20);
            let buf = cx.global_buf("buf", &n, 4);
            let p = cx.range_var("p", &AbsIdx::zero(), &n);
            cx.ld(&buf, &p.add(&AbsIdx::konst(1)), &AbsMask::single(), "one past");
        });
        let bad = report.unproven();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].class, ObligationClass::Bounds);
    }

    #[test]
    fn strided_load_fails_and_gather_declaration_passes() {
        let report = analyze("stride", |cx| {
            let n = cx.param("n", 64, 1 << 20);
            let buf = cx.global_buf("buf", &n, 4);
            let idx = cx.lane().mul(&AbsIdx::konst(2));
            cx.ld(&buf, &idx, &AbsMask::full(), "stride-2");
            cx.ld_gather(&buf, &idx, &AbsMask::full(), "declared");
        });
        let coal: Vec<_> =
            report.obligations.iter().filter(|o| o.class == ObligationClass::Coalescing).collect();
        assert!(!coal[0].proved(), "{}", report.render());
        assert!(coal[1].proved());
    }

    #[test]
    fn bank_conflicts_use_constant_and_residue_strides() {
        let report = analyze("bank", |cx| {
            let m = cx.param("m", 2, 512);
            // stride ∈ [m, m+1], odd (the padded tile pitch).
            let stride = cx.derived_param_mod("stride", &m, &m.add(&AbsIdx::konst(1)), 1, 2);
            let tile = cx.shared_buf("tile", &AbsIdx::konst(32).mul(&stride), 4);
            // Column read: idx = lane·stride (+ row in [0, m)): odd → clean.
            let row = cx.range_var("row", &AbsIdx::zero(), &m);
            cx.sh(&tile, &cx.lane().mul(&stride).add(&row), &AbsMask::full(), "column");
            // Unit stride: clean.
            cx.sh(&tile, &cx.lane(), &AbsMask::full(), "unit");
            // Stride 2: 2-way conflict.
            cx.sh(&tile, &cx.lane().mul(&AbsIdx::konst(2)), &AbsMask::full(), "even");
        });
        let bank: Vec<_> = report
            .obligations
            .iter()
            .filter(|o| o.class == ObligationClass::BankConflict)
            .collect();
        assert!(bank[0].proved(), "{}", report.render());
        assert!(bank[1].proved());
        assert!(!bank[2].proved());
    }

    #[test]
    fn barrier_uniformity_tracks_scopes() {
        let report = analyze("barriers", |cx| {
            cx.uniform("chunk loop", |cx| cx.block_sync("between phases"));
            cx.warp_varying("leader only", |cx| cx.block_sync("inside leader branch"));
            cx.lane_varying("lane < 16", |cx| cx.sync_warp(&AbsMask::full(), "divergent sync"));
            cx.sync_warp(&AbsMask::full(), "top-level sync");
        });
        let b: Vec<_> = report.obligations.iter().collect();
        assert!(b[0].proved());
        assert!(!b[1].proved());
        assert!(!b[2].proved());
        assert!(b[3].proved());
    }

    #[test]
    fn idx_expr_is_value_generic() {
        fn coord<V: IdxExpr>(row: &V, dim: &V, col: &V) -> V {
            row.mul(dim).add(col)
        }
        assert_eq!(coord(&3usize, &8, &2), 26);
        let sym = analyze("generic", |cx| {
            let n = cx.param("n", 1, 100);
            let dim = cx.param("dim", 1, 64);
            let buf = cx.global_buf("pts", &n.mul(&dim), 4);
            let p = cx.range_var("p", &AbsIdx::zero(), &n);
            let mask = AbsMask::first_min(&[dim.clone(), AbsIdx::konst(32)]);
            cx.ld(&buf, &coord(&p, &dim, &cx.lane()), &mask, "generic coord");
        });
        assert!(sym.all_proved(), "{}", sym.render());
    }

    #[test]
    fn top_poisons_every_obligation() {
        let report = analyze("top", |cx| {
            let n = cx.param("n", 1, 100);
            let buf = cx.global_buf("buf", &n, 4);
            let a = cx.range_var("a", &AbsIdx::zero(), &n);
            let top = a.mul(&a); // variable × variable → ⊤
            cx.ld(&buf, &top, &AbsMask::full(), "nonlinear");
        });
        assert_eq!(report.unproven().len(), 2); // bounds + coalescing
    }

    #[test]
    fn report_renders_stable_text() {
        let report = analyze("demo", |cx| {
            let n = cx.param("n", 1, 16);
            let buf = cx.global_buf("xs", &n, 4);
            let p = cx.range_var("p", &AbsIdx::zero(), &n);
            cx.ld(&buf, &p, &AbsMask::single(), "scalar read");
        });
        let text = report.render();
        assert!(text.contains("kernel `demo`: 2/2 obligations proved — all proved"), "{text}");
        assert!(text.contains("[xs]"));
    }
}
