//! Grid launch, block-to-SM scheduling and the roofline aggregation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::AddAssign;

use crate::block::BlockCtx;
use crate::cache::L2Cache;
use crate::device::DeviceConfig;
use crate::fault::{self, LaunchFault};
use crate::stats::Stats;

/// Result of simulating one kernel launch (or a merged sequence of them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchReport {
    /// Aggregated hardware counters.
    pub stats: Stats,
    /// Estimated device cycles for the launch: the maximum of the scheduled
    /// compute time, the DRAM-bandwidth roofline and the hot-sector atomic
    /// throughput bound.
    pub cycles: f64,
    /// Portion of `cycles` attributable to the bandwidth roofline (equal to
    /// `cycles` when the kernel is memory-bound).
    pub memory_cycles: f64,
    /// Portion of `cycles` attributable to the atomic hot-sector bound.
    pub atomic_cycles: f64,
    /// Atomics issued to the single most contended 32-byte sector (max over
    /// launches when reports are merged).
    pub atomic_hot_sector: u64,
    /// Cross-warp same-sector atomic conflicts across the launch:
    /// `Σ_sector (ops − 1)`.
    pub atomic_cross_conflicts: u64,
    /// Blocks launched.
    pub blocks: u64,
}

impl LaunchReport {
    /// Convert to milliseconds on `device`.
    pub fn ms(&self, device: &DeviceConfig) -> f64 {
        device.cycles_to_ms(self.cycles)
    }

    /// True when the bandwidth roofline, not compute, set the cycle count.
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles >= self.cycles
    }
}

impl AddAssign for LaunchReport {
    /// Sequential composition: a pipeline of launches takes the sum of their
    /// times and the union of their counters.
    fn add_assign(&mut self, rhs: LaunchReport) {
        self.stats += rhs.stats;
        self.cycles += rhs.cycles;
        self.memory_cycles += rhs.memory_cycles;
        self.atomic_cycles += rhs.atomic_cycles;
        self.atomic_hot_sector = self.atomic_hot_sector.max(rhs.atomic_hot_sector);
        self.atomic_cross_conflicts += rhs.atomic_cross_conflicts;
        self.blocks += rhs.blocks;
    }
}

/// Non-NaN f64 ordered wrapper for the scheduling heap.
#[derive(PartialEq, PartialOrd)]
struct Finish(f64);
impl Eq for Finish {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("cycle counts are never NaN")
    }
}

/// Greedy list-scheduling of per-block cycle counts onto the device's
/// concurrent block slots; returns the makespan.
fn schedule(block_cycles: &[f64], slots: u32) -> f64 {
    let slots = slots.max(1) as usize;
    if block_cycles.is_empty() {
        return 0.0;
    }
    let mut heap: BinaryHeap<Reverse<Finish>> =
        (0..slots.min(block_cycles.len())).map(|_| Reverse(Finish(0.0))).collect();
    let mut makespan = 0.0_f64;
    for &c in block_cycles {
        let Reverse(Finish(start)) = heap.pop().expect("heap sized > 0");
        let finish = start + c;
        makespan = makespan.max(finish);
        heap.push(Reverse(Finish(finish)));
    }
    makespan
}

/// Simulate a kernel launch of `blocks` thread blocks of `warps_per_block`
/// warps each. `kernel` runs once per block, in block order, deterministically.
///
/// The returned cycle estimate combines:
/// 1. the makespan of greedily scheduling the per-block cycle counts onto
///    `device.concurrent_blocks(warps_per_block)` slots, and
/// 2. a DRAM roofline, `dram_bytes / dram_bytes_per_cycle`,
///
/// taking the maximum — a memory-bound kernel is pinned to the roofline.
pub fn launch(
    device: &DeviceConfig,
    blocks: usize,
    warps_per_block: usize,
    kernel: impl FnMut(&mut BlockCtx),
) -> LaunchReport {
    simulate(device, blocks, warps_per_block, kernel)
}

/// Fault-aware variant of [`launch`]: consults the thread's installed
/// [`crate::fault::FaultScope`] (if any) before simulating. Each call consumes
/// one fault-aware launch index; a scheduled fault at that index makes the
/// launch fail *at entry*, with no side effects on device memory, mirroring a
/// CUDA launch error. Without an installed scope this is exactly [`launch`].
pub fn try_launch(
    device: &DeviceConfig,
    blocks: usize,
    warps_per_block: usize,
    kernel: impl FnMut(&mut BlockCtx),
) -> Result<LaunchReport, LaunchFault> {
    fault::begin_launch()?;
    Ok(simulate(device, blocks, warps_per_block, kernel))
}

fn simulate(
    device: &DeviceConfig,
    blocks: usize,
    warps_per_block: usize,
    mut kernel: impl FnMut(&mut BlockCtx),
) -> LaunchReport {
    assert!(warps_per_block > 0, "a block needs at least one warp");
    #[cfg(feature = "sanitize")]
    crate::sanitizer::hooks::launch_begin();
    let mut stats = Stats::new();
    let mut block_cycles = Vec::with_capacity(blocks);
    let mut sector_counts: std::collections::HashMap<(u64, u64), u64> =
        std::collections::HashMap::new();
    // Blocks are simulated sequentially but run concurrently on hardware,
    // sharing the L2; give each block its proportional share of the cache so
    // a kernel cannot pretend the whole L2 is private to one bucket.
    let resident = (device.concurrent_blocks(warps_per_block as u32) as usize).min(blocks.max(1));
    let l2_sectors = device.l2_bytes as usize / crate::device::SECTOR_BYTES / resident.max(1);
    let mut l2 = L2Cache::new(l2_sectors);
    for b in 0..blocks {
        let mut ctx = BlockCtx::new(device, b, warps_per_block, &mut l2);
        kernel(&mut ctx);
        let (s, c, log) = ctx.finish();
        stats += s;
        block_cycles.push(c);
        for key in log {
            *sector_counts.entry(key).or_insert(0) += 1;
        }
    }
    stats.launches = 1;
    #[cfg(feature = "sanitize")]
    {
        stats.hazards = crate::sanitizer::hooks::launch_end();
    }
    let slots = device.concurrent_blocks(warps_per_block as u32);
    let compute = schedule(&block_cycles, slots);
    let memory = stats.dram_bytes as f64 / device.dram_bytes_per_cycle;
    // Cross-warp atomic contention: a 32-byte sector serializes the atomics
    // that target it, device-wide, at roughly one per atomic_base cycles.
    let hot = sector_counts.values().copied().max().unwrap_or(0);
    let cross: u64 = sector_counts.values().map(|&c| c - 1).sum();
    let atomic_bound = hot as f64 * device.atomic_base_cycles;
    LaunchReport {
        stats,
        cycles: compute.max(memory).max(atomic_bound),
        memory_cycles: memory,
        atomic_cycles: atomic_bound,
        atomic_hot_sector: hot,
        atomic_cross_conflicts: cross,
        blocks: blocks as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Mask;

    #[test]
    fn schedule_single_slot_sums() {
        assert_eq!(schedule(&[3.0, 4.0, 5.0], 1), 12.0);
    }

    #[test]
    fn schedule_many_slots_takes_max() {
        assert_eq!(schedule(&[3.0, 4.0, 5.0], 8), 5.0);
    }

    #[test]
    fn schedule_balances_greedily() {
        // Two slots, blocks [4, 3, 3]: slot0=4, slot1=3+3=6.
        assert_eq!(schedule(&[4.0, 3.0, 3.0], 2), 6.0);
        assert_eq!(schedule(&[], 4), 0.0);
    }

    #[test]
    fn launch_runs_every_block_in_order() {
        let dev = DeviceConfig::test_tiny();
        let mut seen = Vec::new();
        let report = launch(&dev, 5, 2, |blk| {
            seen.push(blk.block_idx);
            blk.each_warp(|w| w.charge_alu(Mask::FULL, 1));
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.blocks, 5);
        assert_eq!(report.stats.instructions, 10);
        assert_eq!(report.stats.launches, 1);
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn roofline_binds_memory_heavy_kernels() {
        // A deliberately bandwidth-starved device: per-warp transaction cost
        // says 8 B/cycle/warp, but the device can only sink 4 B/cycle total,
        // so any occupancy > 1 warp pins the kernel to the DRAM roofline.
        let dev = DeviceConfig { dram_bytes_per_cycle: 4.0, ..DeviceConfig::test_tiny() };
        let buf = crate::memory::DeviceBuffer::<f32>::zeroed(1 << 16);
        let report = launch(&dev, 8, 1, |blk| {
            let base = blk.block_idx * 32 * 64;
            blk.each_warp(|w| {
                for i in 0..64usize {
                    let idx = crate::lane::LaneVec::from_fn(|l| base + i * 32 + l);
                    let _ = w.ld_global(&buf, &idx, Mask::FULL);
                }
            });
        });
        assert!(report.memory_bound());
        // 8 blocks x 64 fully-coalesced 128-byte loads = 4 sectors each.
        assert_eq!(report.stats.global_load_transactions, 8 * 64 * 4);
        assert_eq!(report.stats.dram_bytes, 8 * 64 * 4 * 32);
    }

    #[test]
    fn compute_bound_kernel_ignores_roofline() {
        let dev = DeviceConfig::test_tiny();
        let report = launch(&dev, 4, 1, |blk| {
            blk.each_warp(|w| w.charge_alu(Mask::FULL, 1000));
        });
        assert!(!report.memory_bound());
        assert_eq!(report.cycles, 1000.0); // 4 blocks fit in 8 slots
    }

    #[test]
    fn reports_compose_sequentially() {
        let dev = DeviceConfig::test_tiny();
        let mk = || {
            launch(&dev, 2, 1, |blk| {
                blk.each_warp(|w| w.charge_alu(Mask::FULL, 3));
            })
        };
        let a = mk();
        let mut total = a;
        total += mk();
        assert_eq!(total.cycles, 2.0 * a.cycles);
        assert_eq!(total.stats.instructions, 2 * a.stats.instructions);
        assert_eq!(total.stats.launches, 2);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warp_blocks_rejected() {
        let dev = DeviceConfig::test_tiny();
        let _ = launch(&dev, 1, 0, |_| {});
    }

    #[test]
    fn try_launch_without_scope_matches_launch() {
        let dev = DeviceConfig::test_tiny();
        let body = |blk: &mut BlockCtx| {
            blk.each_warp(|w| w.charge_alu(Mask::FULL, 7));
        };
        let plain = launch(&dev, 3, 2, body);
        let faulty = try_launch(&dev, 3, 2, body).expect("no scope installed");
        assert_eq!(plain, faulty);
    }

    #[test]
    fn try_launch_fails_at_entry_without_side_effects() {
        use crate::fault::{FaultPlan, FaultScope, LaunchFault};
        let dev = DeviceConfig::test_tiny();
        let buf = crate::memory::DeviceBuffer::<u32>::zeroed(32);
        let _scope = FaultScope::install(FaultPlan::new(1).fail_launch(0));
        let body = |blk: &mut BlockCtx| {
            blk.each_warp(|w| {
                let idx = w.math_idx(Mask::FULL, |l| l);
                let vals = w.math(Mask::FULL, |_| 1u32);
                w.st_global(&buf, &idx, &vals, Mask::FULL);
            });
        };
        assert_eq!(try_launch(&dev, 1, 1, body), Err(LaunchFault::Transient { launch: 0 }));
        assert_eq!(buf.to_vec(), vec![0u32; 32], "failed launch must not touch memory");
        // The retry consumes the next (clean) index and succeeds.
        assert!(try_launch(&dev, 1, 1, body).is_ok());
        assert_eq!(buf.to_vec(), vec![1u32; 32]);
    }

    #[test]
    fn plain_launch_ignores_installed_plan() {
        use crate::fault::{FaultPlan, FaultScope};
        let dev = DeviceConfig::test_tiny();
        let scope = FaultScope::install(FaultPlan::new(0).fail_launch(0));
        let report = launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| w.charge_alu(Mask::FULL, 1));
        });
        assert_eq!(report.blocks, 1);
        assert_eq!(scope.launches(), 0, "plain launch is not fault-aware");
    }
}
