//! Compute-sanitizer-style dynamic race & hazard detection.
//!
//! The simulator executes warps sequentially and deterministically, so a data
//! race never produces a nondeterministic result here — it silently becomes
//! "last writer wins". On real hardware the same kernel would corrupt its
//! k-NN sets. This module closes that gap: while a `SanitizerScope` is
//! installed, every global / shared access runs through a shadow state that
//! records *who* touched each element (block, warp, lane, barrier epoch,
//! atomicity) and reports the access patterns that are undefined on a GPU:
//!
//! * **global/shared races** — a non-atomic write that conflicts with another
//!   warp's (or block's) read or write with no intervening barrier
//!   ([`HazardKind::RaceWriteWrite`], [`HazardKind::RaceReadWrite`]); lanes of
//!   one store instruction writing *different* values to the same address are
//!   reported too (the hardware winner is unspecified);
//! * **shared-memory misuse** — out-of-bounds accesses
//!   ([`HazardKind::SharedOutOfBounds`], reported instead of crashing) and
//!   reads of bytes never written since the block started
//!   ([`HazardKind::SharedUninitRead`] — real shared memory is uninitialized,
//!   the simulator's zero-fill is a fiction);
//! * **barrier divergence** — lanes of one warp arriving at
//!   [`crate::warp::WarpCtx::sync_warp`] convergence points a different
//!   number of times ([`HazardKind::BarrierDivergence`]).
//!
//! ## Ordering model
//!
//! Two accesses conflict only when they are *concurrent*:
//!
//! * different blocks → always concurrent (no inter-block barrier exists);
//! * same block, different warps → concurrent iff they happen in the same
//!   barrier epoch (the count of [`crate::block::BlockCtx::sync`] calls);
//! * same warp → never concurrent (lanes execute in lockstep, instructions
//!   in program order).
//!
//! Atomic operations never conflict with each other. An atomic write is also
//! allowed to overlap a plain *read* from another warp — this approximates
//! synchronization-via-atomics and is exactly the pattern of the w-KNNG
//! atomic protocol (scan with plain loads, commit with `atomicCAS`, rescan on
//! a lost race). A plain *write* overlapping an atomic remains a hazard.
//! Known limitations are listed in `DESIGN.md` (§ Sanitizer).
//!
//! The tracking machinery is compiled only with the `sanitize` cargo feature,
//! so tier-1 builds pay nothing; the report types below are always available
//! so downstream code can name them unconditionally.

use std::fmt;

/// How an instruction touched memory (or a convergence point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Non-atomic load.
    Read,
    /// Non-atomic store.
    Write,
    /// Atomic read-modify-write (`CAS`/`min`/`max`/`add`).
    Atomic,
    /// Arrival at a warp-level sync point.
    Sync,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
            AccessKind::Sync => "sync",
        })
    }
}

/// One side of a hazard: which lane of which warp did what, and in which
/// barrier epoch of its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Block index within the grid.
    pub block: usize,
    /// Warp index within the block.
    pub warp: usize,
    /// Lane within the warp.
    pub lane: usize,
    /// Barrier epoch of the block when the access happened.
    pub epoch: u64,
    /// What the access was.
    pub kind: AccessKind,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by block {} / warp {} / lane {} (epoch {})",
            self.kind, self.block, self.warp, self.lane, self.epoch
        )
    }
}

/// The hazard taxonomy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Two concurrent writes (at least one non-atomic) to one element.
    RaceWriteWrite,
    /// A non-atomic write concurrent with a read of the same element.
    RaceReadWrite,
    /// A shared-memory access outside the array bounds.
    SharedOutOfBounds,
    /// A shared-memory read of bytes never written since the block began.
    SharedUninitRead,
    /// Lanes of one warp arrived at warp sync points unevenly.
    BarrierDivergence,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardKind::RaceWriteWrite => "race (write/write)",
            HazardKind::RaceReadWrite => "race (read/write)",
            HazardKind::SharedOutOfBounds => "shared out-of-bounds",
            HazardKind::SharedUninitRead => "shared uninitialized read",
            HazardKind::BarrierDivergence => "barrier divergence",
        })
    }
}

/// Which memory space a hazard lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// A [`crate::memory::DeviceBuffer`], identified by its allocation id and
    /// optional human label ([`crate::memory::DeviceBuffer::set_label`]).
    Global {
        /// Allocation id of the buffer.
        buffer: u64,
        /// Label attached with `set_label`, if any.
        label: Option<&'static str>,
    },
    /// The per-block shared-memory arena (addresses are byte offsets).
    Shared,
    /// Not a memory location: a warp convergence-point hazard.
    Barrier,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Global { buffer, label: Some(l) } => write!(f, "global '{l}' (buffer#{buffer})"),
            Space::Global { buffer, label: None } => write!(f, "global buffer#{buffer}"),
            Space::Shared => f.write_str("shared memory"),
            Space::Barrier => f.write_str("warp barrier"),
        }
    }
}

/// One detected hazard (the first occurrence of its `(kind, space)` class;
/// repeats are folded into [`Hazard::count`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Hazard {
    /// What went wrong.
    pub kind: HazardKind,
    /// Where (which buffer / shared memory / barrier).
    pub space: Space,
    /// Element index (global), byte offset (shared) or 0 (barrier).
    pub addr: usize,
    /// The earlier of the two conflicting accesses.
    pub first: AccessSite,
    /// The access that completed the hazard (diagnosis anchor).
    pub second: AccessSite,
    /// Occurrences folded into this record (≥ 1).
    pub count: u64,
    /// Free-form detail (values written, bounds, arrival counts, …).
    pub note: String,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}[{}]: {} conflicts with {}",
            self.kind, self.space, self.addr, self.second, self.first
        )?;
        if !self.note.is_empty() {
            write!(f, " — {}", self.note)?;
        }
        if self.count > 1 {
            write!(f, " (x{})", self.count)?;
        }
        Ok(())
    }
}

/// Structured result of a sanitized run: every distinct hazard class plus
/// total event and launch counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HazardReport {
    /// Distinct hazards (first occurrence each), capped at an internal limit.
    pub hazards: Vec<Hazard>,
    /// Total hazard events observed (including folded repeats).
    pub events: u64,
    /// Kernel launches observed while the scope was installed.
    pub launches: u64,
}

impl HazardReport {
    /// True when no hazard event was recorded.
    pub fn is_clean(&self) -> bool {
        self.events == 0
    }

    /// Multi-line human-readable rendering.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("sanitizer: clean ({} launches)", self.launches);
        }
        let mut s = format!(
            "sanitizer: {} hazard event(s) in {} class(es) across {} launch(es)",
            self.events,
            self.hazards.len(),
            self.launches
        );
        for h in &self.hazards {
            s.push_str("\n  ");
            s.push_str(&h.to_string());
        }
        s
    }
}

#[cfg(feature = "sanitize")]
pub use self::active::{launch_sanitized, SanitizerScope};

#[cfg(feature = "sanitize")]
pub(crate) use self::active as hooks;

#[cfg(feature = "sanitize")]
pub(crate) mod active {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::marker::PhantomData;

    use super::{AccessKind, AccessSite, Hazard, HazardKind, HazardReport, Space};
    use crate::block::BlockCtx;
    use crate::device::{DeviceConfig, WARP_LANES};
    use crate::lane::{LaneVec, Mask};
    use crate::launch::{launch, LaunchReport};

    /// Distinct hazard classes kept verbatim; further events only bump counts.
    const MAX_HAZARDS: usize = 256;

    /// Compact shadow record of one access.
    #[derive(Clone, Copy)]
    struct Acc {
        block: u32,
        warp: u32,
        lane: u8,
        epoch: u32,
        kind: AccessKind,
    }

    impl Acc {
        fn site(&self) -> AccessSite {
            AccessSite {
                block: self.block as usize,
                warp: self.warp as usize,
                lane: self.lane as usize,
                epoch: self.epoch as u64,
                kind: self.kind,
            }
        }

        fn same_thread(&self, block: usize, warp: usize) -> bool {
            self.block as usize == block && self.warp as usize == warp
        }

        /// Is this past access concurrent with a new access by
        /// `(block, warp)` in barrier epoch `epoch`? (See module docs.)
        fn concurrent_with(&self, block: usize, warp: usize, epoch: u64) -> bool {
            if self.block as usize != block {
                return true;
            }
            if self.warp as usize == warp {
                return false;
            }
            self.epoch as u64 == epoch
        }
    }

    /// Shadow cell of one element (global) or one byte (shared).
    #[derive(Clone, Copy, Default)]
    struct Cell {
        /// Generation tag: cells from a previous launch (global) or block
        /// (shared) are logically empty without an O(n) clear.
        gen: u64,
        /// Last non-atomic write.
        write: Option<Acc>,
        /// Last atomic write.
        atomic: Option<Acc>,
        /// Up to two recent reads from distinct (block, warp) threads.
        reads: [Option<Acc>; 2],
    }

    struct State {
        /// Per-buffer element shadows, keyed by allocation id.
        buffers: HashMap<u64, Vec<Cell>>,
        /// Per-byte shadow of the current block's shared arena.
        shared: Vec<Cell>,
        /// Bumped at every launch: global-shadow generation.
        launch_gen: u64,
        /// Bumped at every block begin and `shared_reset`: shared generation.
        block_gen: u64,
        /// Barrier epoch of the block currently executing.
        epoch: u64,
        /// Per-lane `sync_warp` arrival counts of the warp being executed.
        sync_counts: [u64; WARP_LANES],
        sync_used: bool,
        hazards: Vec<Hazard>,
        events: u64,
        events_at_launch: u64,
        launches: u64,
    }

    impl State {
        fn new() -> State {
            State {
                buffers: HashMap::new(),
                shared: Vec::new(),
                launch_gen: 0,
                block_gen: 0,
                epoch: 0,
                sync_counts: [0; WARP_LANES],
                sync_used: false,
                hazards: Vec::new(),
                events: 0,
                events_at_launch: 0,
                launches: 0,
            }
        }
    }

    thread_local! {
        static ACTIVE: RefCell<Option<State>> = const { RefCell::new(None) };
    }

    fn with<R: Default>(f: impl FnOnce(&mut State) -> R) -> R {
        ACTIVE.with(|a| a.borrow_mut().as_mut().map(f).unwrap_or_default())
    }

    /// RAII guard that arms hazard tracking on the current thread. All
    /// launches made while the scope lives are shadow-tracked; the report
    /// accumulates across launches (a pipeline is one logical run).
    ///
    /// `!Send` by construction: the shadow state is thread-local.
    pub struct SanitizerScope {
        _not_send: PhantomData<*const ()>,
    }

    impl SanitizerScope {
        /// Install the sanitizer on the current thread.
        ///
        /// # Panics
        /// Panics if a scope is already installed (scopes do not nest).
        pub fn install() -> SanitizerScope {
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                assert!(a.is_none(), "a SanitizerScope is already installed on this thread");
                *a = Some(State::new());
            });
            SanitizerScope { _not_send: PhantomData }
        }

        /// Snapshot the hazards recorded so far.
        pub fn report(&self) -> HazardReport {
            with(|s| HazardReport {
                hazards: s.hazards.clone(),
                events: s.events,
                launches: s.launches,
            })
        }
    }

    impl Drop for SanitizerScope {
        fn drop(&mut self) {
            ACTIVE.with(|a| *a.borrow_mut() = None);
        }
    }

    /// Convenience wrapper: run one launch under a fresh [`SanitizerScope`]
    /// and return both the launch report and the hazard report.
    ///
    /// # Panics
    /// Panics if a scope is already installed on this thread.
    pub fn launch_sanitized(
        device: &DeviceConfig,
        blocks: usize,
        warps_per_block: usize,
        kernel: impl FnMut(&mut BlockCtx),
    ) -> (LaunchReport, HazardReport) {
        let scope = SanitizerScope::install();
        let report = launch(device, blocks, warps_per_block, kernel);
        let hazards = scope.report();
        (report, hazards)
    }

    // ------------------------------------------------------------- recording

    fn record(
        s: &mut State,
        kind: HazardKind,
        space: Space,
        addr: usize,
        first: AccessSite,
        second: AccessSite,
        note: String,
    ) {
        s.events += 1;
        if let Some(h) = s.hazards.iter_mut().find(|h| h.kind == kind && h.space == space) {
            h.count += 1;
            return;
        }
        if s.hazards.len() < MAX_HAZARDS {
            s.hazards.push(Hazard { kind, space, addr, first, second, count: 1, note });
        }
    }

    fn cell_at(cells: &mut Vec<Cell>, idx: usize, gen: u64) -> &mut Cell {
        if cells.len() <= idx {
            cells.resize(idx + 1, Cell::default());
        }
        let c = &mut cells[idx];
        if c.gen != gen {
            *c = Cell { gen, ..Cell::default() };
        }
        c
    }

    /// Keep up to two reads from distinct threads (latest per thread).
    fn push_read(cell: &mut Cell, acc: Acc) {
        for slot in cell.reads.iter_mut() {
            match slot {
                Some(r) if r.block == acc.block && r.warp == acc.warp => {
                    *slot = Some(acc);
                    return;
                }
                None => {
                    *slot = Some(acc);
                    return;
                }
                _ => {}
            }
        }
        cell.reads[1] = Some(acc);
    }

    /// Check a new access against one shadow cell; returns the hazards to
    /// record as `(kind, prior)` pairs, then updates the cell.
    fn check_and_update(
        cell: &mut Cell,
        acc: Acc,
        block: usize,
        warp: usize,
        epoch: u64,
    ) -> Vec<(HazardKind, Acc)> {
        let mut found = Vec::new();
        match acc.kind {
            AccessKind::Read => {
                if let Some(w) = cell.write {
                    if w.concurrent_with(block, warp, epoch) {
                        found.push((HazardKind::RaceReadWrite, w));
                    }
                }
                // Atomic writes overlapping plain reads are allowed (module
                // docs: synchronization-via-atomics approximation).
                push_read(cell, acc);
            }
            AccessKind::Write => {
                if let Some(w) = cell.write {
                    if w.concurrent_with(block, warp, epoch) {
                        found.push((HazardKind::RaceWriteWrite, w));
                    }
                }
                if let Some(a) = cell.atomic {
                    if a.concurrent_with(block, warp, epoch) {
                        found.push((HazardKind::RaceWriteWrite, a));
                    }
                }
                for r in cell.reads.into_iter().flatten() {
                    if !r.same_thread(block, warp) && r.concurrent_with(block, warp, epoch) {
                        found.push((HazardKind::RaceReadWrite, r));
                    }
                }
                cell.write = Some(acc);
            }
            AccessKind::Atomic => {
                if let Some(w) = cell.write {
                    if w.concurrent_with(block, warp, epoch) {
                        found.push((HazardKind::RaceWriteWrite, w));
                    }
                }
                // Atomic/atomic and atomic/read overlaps are allowed.
                cell.atomic = Some(acc);
            }
            AccessKind::Sync => unreachable!("sync arrivals are not memory accesses"),
        }
        found
    }

    // ------------------------------------------------------ lifecycle hooks

    pub(crate) fn launch_begin() {
        with(|s| {
            s.launch_gen += 1;
            s.launches += 1;
            s.events_at_launch = s.events;
        });
    }

    /// Hazard events recorded since the matching [`launch_begin`].
    pub(crate) fn launch_end() -> u64 {
        with(|s| s.events - s.events_at_launch)
    }

    pub(crate) fn block_begin(_block_idx: usize) {
        with(|s| {
            s.block_gen += 1;
            s.epoch = 0;
        });
    }

    pub(crate) fn barrier() {
        with(|s| s.epoch += 1);
    }

    pub(crate) fn shared_reset() {
        // Repurposing the arena: the old contents are logically dead, so the
        // shadow (races *and* initialization) starts over.
        with(|s| s.block_gen += 1);
    }

    pub(crate) fn warp_begin() {
        with(|s| {
            s.sync_counts = [0; WARP_LANES];
            s.sync_used = false;
        });
    }

    /// Arrival of `mask`'s lanes at a [`crate::warp::WarpCtx::sync_warp`]
    /// convergence point.
    pub(crate) fn warp_sync(mask: Mask) {
        with(|s| {
            s.sync_used = true;
            for lane in mask.iter() {
                s.sync_counts[lane] += 1;
            }
        });
    }

    /// End of one warp invocation: every lane must have arrived at the same
    /// number of sync points, or the warp diverged around a barrier.
    pub(crate) fn warp_end(block: usize, warp: usize) {
        with(|s| {
            if !s.sync_used {
                return;
            }
            let min = *s.sync_counts.iter().min().expect("32 lanes");
            let max = *s.sync_counts.iter().max().expect("32 lanes");
            if min == max {
                return;
            }
            let lmin = s.sync_counts.iter().position(|&c| c == min).expect("present");
            let lmax = s.sync_counts.iter().position(|&c| c == max).expect("present");
            let epoch = s.epoch;
            let site =
                |lane: usize| AccessSite { block, warp, lane, epoch, kind: AccessKind::Sync };
            let note =
                format!("lane {lmax} arrived at {max} warp sync point(s), lane {lmin} at {min}");
            record(
                s,
                HazardKind::BarrierDivergence,
                Space::Barrier,
                0,
                site(lmax),
                site(lmin),
                note,
            );
        });
    }

    // --------------------------------------------------------- access hooks

    fn acc(block: usize, warp: usize, lane: usize, epoch: u64, kind: AccessKind) -> Acc {
        Acc { block: block as u32, warp: warp as u32, lane: lane as u8, epoch: epoch as u32, kind }
    }

    /// Shadow-track one warp-level global access. Out-of-range indices are
    /// skipped: the architectural access panics right after (global OOB is a
    /// hard fault, not a sanitizer diagnosis).
    #[allow(clippy::too_many_arguments)]
    fn global_access(
        id: u64,
        label: Option<&'static str>,
        len: usize,
        idx: &LaneVec<usize>,
        mask: Mask,
        block: usize,
        warp: usize,
        kind: AccessKind,
        vals: Option<&[u64; WARP_LANES]>,
    ) {
        with(|s| {
            let epoch = s.epoch;
            let gen = s.launch_gen;
            let space = Space::Global { buffer: id, label };
            // Per-instruction grouping: (element, winning lane, value).
            let mut groups: Vec<(usize, usize, u64)> = Vec::with_capacity(mask.count());
            for lane in mask.iter() {
                let e = idx.get(lane);
                if e >= len {
                    continue;
                }
                let v = vals.map(|b| b[lane]).unwrap_or(0);
                if let Some(g) = groups.iter_mut().find(|g| g.0 == e) {
                    if kind == AccessKind::Write && g.2 != v {
                        // Same store instruction, same address, different
                        // values: the hardware winner is unspecified.
                        let first = acc(block, warp, g.1, epoch, kind).site();
                        let second = acc(block, warp, lane, epoch, kind).site();
                        let note = format!(
                            "lanes {} and {lane} of one store wrote {:#x} vs {v:#x}",
                            g.1, g.2
                        );
                        record(s, HazardKind::RaceWriteWrite, space, e, first, second, note);
                    }
                    // Ascending lane order: the later lane wins, matching the
                    // simulator's same-address store resolution.
                    g.1 = lane;
                    g.2 = v;
                } else {
                    groups.push((e, lane, v));
                }
            }
            for &(e, lane, _) in &groups {
                let a = acc(block, warp, lane, epoch, kind);
                let found = {
                    let cells = s.buffers.entry(id).or_default();
                    check_and_update(cell_at(cells, e, gen), a, block, warp, epoch)
                };
                for (hk, prior) in found {
                    record(s, hk, space, e, prior.site(), a.site(), String::new());
                }
            }
        });
    }

    pub(crate) fn global_read(
        id: u64,
        label: Option<&'static str>,
        len: usize,
        idx: &LaneVec<usize>,
        mask: Mask,
        block: usize,
        warp: usize,
    ) {
        global_access(id, label, len, idx, mask, block, warp, AccessKind::Read, None);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn global_write(
        id: u64,
        label: Option<&'static str>,
        len: usize,
        idx: &LaneVec<usize>,
        vals: &[u64; WARP_LANES],
        mask: Mask,
        block: usize,
        warp: usize,
    ) {
        global_access(id, label, len, idx, mask, block, warp, AccessKind::Write, Some(vals));
    }

    pub(crate) fn global_atomic(
        id: u64,
        label: Option<&'static str>,
        len: usize,
        idx: &LaneVec<usize>,
        mask: Mask,
        block: usize,
        warp: usize,
    ) {
        global_access(id, label, len, idx, mask, block, warp, AccessKind::Atomic, None);
    }

    /// Shadow-track one warp-level shared access. Returns the mask with
    /// out-of-bounds lanes removed (they are reported, then dropped, so the
    /// kernel keeps running under diagnosis like `compute-sanitizer` does).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shared_access(
        kind: AccessKind,
        byte_offset: usize,
        elem_size: usize,
        len: usize,
        idx: &LaneVec<usize>,
        mask: Mask,
        vals: Option<&[u64; WARP_LANES]>,
        block: usize,
        warp: usize,
    ) -> Mask {
        let mut kept = mask;
        with(|s| {
            let epoch = s.epoch;
            let gen = s.block_gen;
            // Intra-instruction same-element conflicting writes, then the
            // per-byte shadow walk.
            let mut groups: Vec<(usize, usize, u64)> = Vec::with_capacity(mask.count());
            for lane in mask.iter() {
                let e = idx.get(lane);
                if e >= len {
                    let site = acc(block, warp, lane, epoch, kind).site();
                    let note =
                        format!("index {e} out of bounds for a shared array of {len} elements");
                    record(s, HazardKind::SharedOutOfBounds, Space::Shared, e, site, site, note);
                    kept = kept.and_not(Mask(1 << lane));
                    continue;
                }
                let v = vals.map(|b| b[lane]).unwrap_or(0);
                if let Some(g) = groups.iter_mut().find(|g| g.0 == e) {
                    if kind == AccessKind::Write && g.2 != v {
                        let first = acc(block, warp, g.1, epoch, kind).site();
                        let second = acc(block, warp, lane, epoch, kind).site();
                        let note = format!(
                            "lanes {} and {lane} of one store wrote {:#x} vs {v:#x}",
                            g.1, g.2
                        );
                        record(
                            s,
                            HazardKind::RaceWriteWrite,
                            Space::Shared,
                            byte_offset + e * elem_size,
                            first,
                            second,
                            note,
                        );
                    }
                    g.1 = lane;
                    g.2 = v;
                } else {
                    groups.push((e, lane, v));
                }
            }
            for &(e, lane, _) in &groups {
                let a = acc(block, warp, lane, epoch, kind);
                let base = byte_offset + e * elem_size;
                if kind == AccessKind::Read {
                    let uninit = (base..base + elem_size)
                        .any(|b| s.shared.get(b).is_none_or(|c| c.gen != gen || c.write.is_none()));
                    if uninit {
                        let note = format!(
                            "{elem_size}-byte read at arena offset {base} precedes any write in this block"
                        );
                        record(
                            s,
                            HazardKind::SharedUninitRead,
                            Space::Shared,
                            base,
                            a.site(),
                            a.site(),
                            note,
                        );
                    }
                }
                for b in base..base + elem_size {
                    let found =
                        check_and_update(cell_at(&mut s.shared, b, gen), a, block, warp, epoch);
                    for (hk, prior) in found {
                        record(s, hk, Space::Shared, b, prior.site(), a.site(), String::new());
                    }
                }
            }
        });
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(kind: AccessKind) -> AccessSite {
        AccessSite { block: 0, warp: 1, lane: 7, epoch: 0, kind }
    }

    #[test]
    fn report_renders_clean_and_dirty() {
        let clean = HazardReport { launches: 3, ..HazardReport::default() };
        assert!(clean.is_clean());
        assert!(clean.summary().contains("clean"));
        let dirty = HazardReport {
            hazards: vec![Hazard {
                kind: HazardKind::RaceWriteWrite,
                space: Space::Global { buffer: 9, label: Some("slots") },
                addr: 5,
                first: site(AccessKind::Write),
                second: site(AccessKind::Write),
                count: 3,
                note: String::new(),
            }],
            events: 3,
            launches: 1,
        };
        assert!(!dirty.is_clean());
        let s = dirty.summary();
        assert!(s.contains("race (write/write)"), "{s}");
        assert!(s.contains("'slots'"), "{s}");
        assert!(s.contains("(x3)"), "{s}");
    }

    #[test]
    fn display_names_every_kind_and_space() {
        for kind in [
            HazardKind::RaceWriteWrite,
            HazardKind::RaceReadWrite,
            HazardKind::SharedOutOfBounds,
            HazardKind::SharedUninitRead,
            HazardKind::BarrierDivergence,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        assert!(Space::Shared.to_string().contains("shared"));
        assert!(Space::Barrier.to_string().contains("barrier"));
        let s = site(AccessKind::Atomic).to_string();
        assert!(s.contains("warp 1") && s.contains("lane 7"), "{s}");
    }
}
