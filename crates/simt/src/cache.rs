//! A sector-granular L2 cache model (FIFO replacement).
//!
//! Every global-memory transaction consults the launch-wide cache: hits cost
//! [`crate::DeviceConfig::l2_hit_cycles`] and move no DRAM bytes; misses pay
//! the full transaction cost and count against the bandwidth roofline. FIFO
//! replacement is deliberately simple — the model only needs to separate
//! "small hot working set" (k-NN slots, bucket members, centroids) from
//! "streaming through a large array" (point coordinates at scale), which any
//! capacity-bounded policy does.

use std::collections::{HashMap, VecDeque};

/// One cached line is identified by `(buffer id, sector index)`.
pub type SectorKey = (u64, u64);

/// FIFO sector cache.
#[derive(Debug)]
pub struct L2Cache {
    resident: HashMap<SectorKey, ()>,
    order: VecDeque<SectorKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Cache with room for `capacity` sectors (0 disables caching: every
    /// access misses).
    pub fn new(capacity: usize) -> Self {
        L2Cache {
            resident: HashMap::with_capacity(capacity.min(1 << 20)),
            order: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one sector; returns `true` on a hit.
    pub fn access(&mut self, key: SectorKey) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if self.resident.contains_key(&key) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.order.len() == self.capacity {
            if let Some(victim) = self.order.pop_front() {
                self.resident.remove(&victim);
            }
        }
        self.order.push_back(key);
        self.resident.insert(key, ());
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = L2Cache::new(4);
        assert!(!c.access((1, 0)));
        assert!(c.access((1, 0)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_buffers_do_not_collide() {
        let mut c = L2Cache::new(4);
        assert!(!c.access((1, 0)));
        assert!(!c.access((2, 0)));
        assert!(c.access((1, 0)));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = L2Cache::new(2);
        c.access((0, 0));
        c.access((0, 1));
        c.access((0, 2)); // evicts (0,0)
        assert!(!c.access((0, 0)));
        // (0,1) was evicted by the re-insertion of (0,0).
        assert!(!c.access((0, 1)));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = L2Cache::new(0);
        assert!(!c.access((0, 0)));
        assert!(!c.access((0, 0)));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
    }
}
