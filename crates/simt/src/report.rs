//! Human-readable rendering of launch reports (profiler-style summary).

use crate::device::DeviceConfig;
use crate::launch::LaunchReport;

fn eng(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Render a profiler-style multi-line summary of `report` on `dev`.
///
/// ```
/// use wknng_simt::{launch, report::summary, DeviceConfig, Mask};
/// let dev = DeviceConfig::test_tiny();
/// let r = launch(&dev, 1, 1, |blk| blk.each_warp(|w| w.charge_alu(Mask::FULL, 10)));
/// let s = summary(&r, &dev);
/// assert!(s.contains("cycles"));
/// ```
pub fn summary(report: &LaunchReport, dev: &DeviceConfig) -> String {
    let s = &report.stats;
    let bound = if report.memory_bound() {
        "memory (DRAM roofline)"
    } else if report.atomic_cycles >= report.cycles {
        "atomics (hot-sector serialization)"
    } else {
        "compute (issue/latency)"
    };
    let l2_total = s.l2_hits + s.l2_misses;
    let l2_rate = if l2_total == 0 { 0.0 } else { 100.0 * s.l2_hits as f64 / l2_total as f64 };
    format!(
        "device: {}\n\
         cycles: {} ({:.3} ms) — bound by {}\n\
         launches {} | blocks {} | barriers {}\n\
         instructions {} | divergence {:.1}%\n\
         global tx {} (loads {} / stores {}) | L2 hit {:.1}% | DRAM {}B\n\
         shared accesses {} | bank conflicts {}\n\
         atomics {} | within-warp serializations {} | retries {} | hot sector {}\n\
         sanitizer hazards {}",
        dev.name,
        eng(report.cycles),
        report.ms(dev),
        bound,
        s.launches,
        report.blocks,
        s.barriers,
        eng(s.instructions as f64),
        100.0 * s.divergence_ratio(),
        eng(s.global_transactions() as f64),
        eng(s.global_load_transactions as f64),
        eng(s.global_store_transactions as f64),
        l2_rate,
        eng(s.dram_bytes as f64),
        eng(s.shared_accesses as f64),
        eng(s.shared_bank_conflicts as f64),
        eng(s.atomic_ops as f64),
        eng(s.atomic_serializations as f64),
        eng(s.atomic_retries as f64),
        report.atomic_hot_sector,
        s.hazards,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{LaneVec, Mask};
    use crate::launch::launch;
    use crate::memory::DeviceBuffer;

    #[test]
    fn summary_mentions_every_counter_class() {
        let dev = DeviceConfig::test_tiny();
        let buf = DeviceBuffer::<u64>::zeroed(32);
        let r = launch(&dev, 2, 1, |blk| {
            blk.each_warp(|w| {
                let idx = w.math_idx(Mask::FULL, |l| l);
                let vals = LaneVec::splat(7u64);
                let _ = w.atomic_max_u64(&buf, &idx, &vals, Mask::FULL);
            });
            blk.sync();
        });
        let s = summary(&r, &dev);
        for needle in [
            "cycles",
            "instructions",
            "atomics",
            "L2 hit",
            "bank conflicts",
            "bound by",
            "sanitizer hazards",
        ] {
            assert!(s.contains(needle), "missing '{needle}' in:\n{s}");
        }
    }

    #[test]
    fn engineering_units() {
        assert_eq!(eng(12.0), "12");
        assert_eq!(eng(1200.0), "1.2k");
        assert_eq!(eng(3.4e6), "3.40M");
        assert_eq!(eng(5.6e9), "5.60G");
    }
}
