//! Acceptance suite for the perf-trajectory orchestrator (`wknng bench`).
//!
//! * **Golden schema** — a real smoke-profile snapshot is serialized,
//!   volatile values (dates, commits, measurements) are masked, and the
//!   remaining skeleton — every JSON key, every job/metric name, unit,
//!   direction and kind — is pinned byte-for-byte against
//!   `tests/golden/bench_schema.json`. Renaming a metric, changing a unit,
//!   or touching the serialization shows up as a diff here and must be
//!   reviewed (trajectory files live across commits, so silent schema drift
//!   would orphan the history). Regenerate intentionally with
//!   `BLESS_BENCH=1 cargo test -p wknng-bench --test trajectory`.
//! * **End-to-end gate** — run the suite, persist/reload the snapshot, and
//!   check the regression verdicts: self-comparison passes, a perturbed
//!   deterministic metric blocks.

use std::path::PathBuf;

use wknng_bench::diff::DiffReport;
use wknng_bench::runner::run_suite;
use wknng_bench::snapshot::Snapshot;
use wknng_bench::suite::Profile;
use wknng_bench::RunConfig;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bench_schema.json");

/// Replace the value following `"key": ` (up to the first `stop` char) with
/// `mask`, leaving the rest of the line intact.
fn mask_after(line: &str, key: &str, stop: char, mask: &str) -> String {
    let pat = format!("\"{key}\": ");
    match line.find(&pat) {
        None => line.to_string(),
        Some(i) => {
            let start = i + pat.len();
            let rest = &line[start..];
            let end = rest.find(stop).unwrap_or(rest.len());
            format!("{}{mask}{}", &line[..start], &rest[end..])
        }
    }
}

/// The schema skeleton of a snapshot: its exact serialization with every
/// volatile value (date, commit, arch, fingerprint, measurements) masked.
fn schema_skeleton(snap: &Snapshot) -> String {
    snap.to_json()
        .lines()
        .map(|line| {
            let mut l = mask_after(line, "created_utc", ',', "<date>");
            l = mask_after(&l, "git_commit", ',', "<commit>");
            l = mask_after(&l, "arch", ',', "<arch>");
            l = mask_after(&l, "workload_fingerprint", ',', "<fingerprint>");
            l = mask_after(&l, "median", ',', "<num>");
            l = mask_after(&l, "mad", ',', "<num>");
            l = mask_after(&l, "samples", ']', "[..");
            l
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn smoke_snapshot() -> Snapshot {
    let cfg = RunConfig { repeats: 1, ..RunConfig::of(Profile::smoke()) };
    run_suite(&cfg).expect("smoke suite runs")
}

#[test]
fn golden_schema_and_regression_gate_end_to_end() {
    let snap = smoke_snapshot();

    // Golden schema skeleton.
    let got = schema_skeleton(&snap);
    if std::env::var_os("BLESS_BENCH").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
    } else {
        let want = std::fs::read_to_string(GOLDEN_PATH).expect(
            "golden file missing — run with BLESS_BENCH=1 to create \
             tests/golden/bench_schema.json",
        );
        assert_eq!(
            got, want,
            "snapshot schema drifted from the golden file; if the change is \
             intentional, re-bless with BLESS_BENCH=1 (and re-bless the committed \
             BENCH_*.json baseline, which carries the same schema)"
        );
    }

    // Persist / reload round trip through a real file.
    let mut path = PathBuf::from(std::env::temp_dir());
    path.push(format!("wknng-trajectory-{}.json", std::process::id()));
    snap.save(&path).expect("save snapshot");
    let loaded = Snapshot::load(&path).expect("load snapshot");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.metrics.len(), snap.metrics.len());
    assert_eq!(loaded.workload_fingerprint, snap.workload_fingerprint);

    // Self-comparison: everything flat, nothing blocking.
    let same = DiffReport::compare(&snap, &loaded, true);
    assert!(!same.is_blocking(), "{}", same.render_table());

    // Perturb one deterministic metric beyond its (exact) band: the gate
    // must block even without --strict.
    let mut worse = loaded;
    let m = worse
        .metrics
        .iter_mut()
        .find(|m| m.job == "device-cycles" && m.metric == "tiled_cycles")
        .expect("pinned metric exists");
    m.median *= 1.5;
    let report = DiffReport::compare(&snap, &worse, false);
    assert!(report.is_blocking(), "{}", report.render_table());
    let table = report.render_table();
    assert!(table.contains("tiled_cycles"), "{table}");
    assert!(table.contains("regressed"), "{table}");
}
