//! Criterion bench: RP-forest construction cost vs. trees and leaf size
//! (the forest phase of experiments E2/E7/E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wknng_data::DatasetSpec;
use wknng_forest::{build_forest, ForestParams, TreeParams};

fn bench_forest(c: &mut Criterion) {
    let vs = DatasetSpec::sift_like(2000).generate(1).vectors;
    let mut group = c.benchmark_group("forest_build");
    group.sample_size(10);
    for trees in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("trees", trees), &trees, |b, &t| {
            b.iter(|| {
                build_forest(
                    &vs,
                    ForestParams {
                        num_trees: t,
                        tree: TreeParams { leaf_size: 32, ..TreeParams::default() },
                    },
                    7,
                )
                .expect("valid")
            })
        });
    }
    for leaf in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("leaf", leaf), &leaf, |b, &l| {
            b.iter(|| {
                build_forest(
                    &vs,
                    ForestParams {
                        num_trees: 4,
                        tree: TreeParams { leaf_size: l, ..TreeParams::default() },
                    },
                    7,
                )
                .expect("valid")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
