//! Criterion bench: w-KNNG vs the baselines at comparable accuracy — the
//! wall-clock competitors of experiment E3a.

use criterion::{criterion_group, criterion_main, Criterion};
use wknng_baseline::{nn_descent, IvfFlat, IvfParams, NnDescentParams};
use wknng_core::WknngBuilder;
use wknng_data::{exact_knn, DatasetSpec, Metric};

fn bench_frontier(c: &mut Criterion) {
    let vs =
        DatasetSpec::Manifold { n: 2000, ambient_dim: 96, intrinsic_dim: 6 }.generate(3).vectors;
    let mut group = c.benchmark_group("frontier");
    group.sample_size(10);

    group.bench_function("wknng_t8_p2", |b| {
        b.iter(|| {
            WknngBuilder::new(10)
                .trees(8)
                .leaf_size(64)
                .exploration(2)
                .build_native(&vs)
                .expect("valid")
        })
    });

    group.bench_function("ivf_build_plus_knng_nprobe8", |b| {
        b.iter(|| {
            let ivf = IvfFlat::build(&vs, IvfParams { nlist: 45, train_iters: 8, seed: 5 });
            ivf.knng(&vs, 10, 8)
        })
    });

    group.bench_function("nn_descent_k10", |b| {
        b.iter(|| nn_descent(&vs, &NnDescentParams { k: 10, ..NnDescentParams::default() }))
    });

    group.bench_function("exact_brute_force", |b| b.iter(|| exact_knn(&vs, 10, Metric::SquaredL2)));

    group.finish();
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
