//! Criterion bench: the application-side costs built on the K-NN graph —
//! t-SNE affinities, graph search, graph extension.

use criterion::{criterion_group, criterion_main, Criterion};
use wknng_core::{extend_graph, search, SearchParams, WknngBuilder};
use wknng_data::DatasetSpec;
use wknng_tsne::{affinities_from_knng, embed, TsneParams};

fn bench_applications(c: &mut Criterion) {
    let vs =
        DatasetSpec::Manifold { n: 1000, ambient_dim: 48, intrinsic_dim: 5 }.generate(7).vectors;
    let (graph, _) = WknngBuilder::new(12)
        .trees(6)
        .leaf_size(32)
        .exploration(1)
        .seed(8)
        .build_native(&vs)
        .expect("valid");

    let mut group = c.benchmark_group("applications");
    group.sample_size(10);

    group.bench_function("tsne_affinities_n1000", |b| {
        b.iter(|| affinities_from_knng(&graph.lists, 8.0))
    });

    let aff = affinities_from_knng(&graph.lists, 8.0);
    group.bench_function("tsne_embed_20iters_n1000", |b| {
        b.iter(|| embed(&aff, &TsneParams { iters: 20, ..TsneParams::default() }))
    });

    let query: Vec<f32> = vs.row(500).iter().map(|v| v + 1e-3).collect();
    group.bench_function("graph_search_beam32", |b| {
        b.iter(|| search(&vs, &graph, &query, &SearchParams::default()))
    });

    let new =
        DatasetSpec::Manifold { n: 50, ambient_dim: 48, intrinsic_dim: 5 }.generate(9).vectors;
    group.bench_function("extend_graph_50_points", |b| {
        b.iter(|| extend_graph(&vs, &graph, &new, 0).expect("same dim"))
    });

    group.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
