//! Criterion bench: simulator throughput per pipeline phase — how fast the
//! host can *simulate* each device kernel (not the simulated device time;
//! that is the `reproduce` binary's metric).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wknng_core::kernels::{run_basic, run_tiled, DeviceState, TreeLayout};
use wknng_core::{KernelVariant, WknngBuilder};
use wknng_data::DatasetSpec;
use wknng_forest::{build_forest, ForestParams, TreeParams};
use wknng_simt::DeviceConfig;

fn bench_phases(c: &mut Criterion) {
    let vs = DatasetSpec::GaussianClusters { n: 256, dim: 32, clusters: 8, spread: 0.3 }
        .generate(4)
        .vectors;
    let dev = DeviceConfig::test_tiny();
    let forest = build_forest(
        &vs,
        ForestParams { num_trees: 1, tree: TreeParams { leaf_size: 32, ..TreeParams::default() } },
        9,
    )
    .expect("valid");
    let layout = TreeLayout::upload(&forest.trees[0], vs.len());

    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    group.bench_function("bucket_kernel_basic", |b| {
        b.iter(|| {
            let state = DeviceState::upload(&vs, 8);
            run_basic(&dev, &state, &layout).expect("no fault plan installed")
        })
    });
    group.bench_function("bucket_kernel_tiled", |b| {
        b.iter(|| {
            let state = DeviceState::upload(&vs, 8);
            run_tiled(&dev, &state, &layout).expect("no fault plan installed")
        })
    });
    for variant in KernelVariant::ALL {
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", variant.name()),
            &variant,
            |b, &v| {
                b.iter(|| {
                    WknngBuilder::new(8)
                        .trees(1)
                        .leaf_size(32)
                        .exploration(0)
                        .variant(v)
                        .build_device(&vs, &dev)
                        .expect("valid")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
