//! Criterion bench: native w-KNNG builds across the evaluation's main knobs
//! (K, trees, exploration) — the wall-clock side of experiments E2/E5/E9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wknng_core::WknngBuilder;
use wknng_data::DatasetSpec;

fn bench_builds(c: &mut Criterion) {
    let vs = DatasetSpec::sift_like(2000).generate(2).vectors;
    let mut group = c.benchmark_group("wknng_native");
    group.sample_size(10);

    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                WknngBuilder::new(k)
                    .trees(4)
                    .leaf_size(64)
                    .exploration(0)
                    .build_native(&vs)
                    .expect("valid")
            })
        });
    }
    for trees in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("trees", trees), &trees, |b, &t| {
            b.iter(|| {
                WknngBuilder::new(10)
                    .trees(t)
                    .leaf_size(32)
                    .exploration(0)
                    .build_native(&vs)
                    .expect("valid")
            })
        });
    }
    for explore in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::new("explore", explore), &explore, |b, &p| {
            b.iter(|| {
                WknngBuilder::new(10)
                    .trees(2)
                    .leaf_size(32)
                    .exploration(p)
                    .build_native(&vs)
                    .expect("valid")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
