//! Snapshot comparison and regression gating: classify every metric of a
//! new snapshot against a baseline as improved / flat / regressed relative
//! to its noise band, and decide whether the change is blocking.
//!
//! The band logic:
//!
//! * **Noisy** metrics (wall-clock): the band is the larger of
//!   `NOISE_MULTIPLIER × max(old MAD, new MAD)` and a relative floor of
//!   [`NOISY_REL_FLOOR`] of the baseline median — MAD alone underestimates
//!   noise at low repeat counts, and a few percent of wall-clock jitter is
//!   never signal. Noisy regressions block only in `--strict` mode (shared
//!   CI hardware adds machine-to-machine noise no per-run band absorbs).
//! * **Deterministic** metrics (recall at pinned seeds, simulated cycles):
//!   the band is float dust ([`DET_REL_EPS`] relative). Any real change is
//!   a real regression or improvement and always gates — *provided* both
//!   snapshots carry the same workload fingerprint. With different
//!   fingerprints (different RNG implementation / arch / toolchain) the
//!   workloads are not bit-identical, so deterministic metrics are reported
//!   as `incomparable` instead of gating falsely; the fix is to re-bless
//!   the baseline in the new environment (`BLESS_BENCH=1`, see
//!   EXPERIMENTS.md "Perf trajectory").
//!
//! A metric present in the baseline but missing from the new snapshot is
//! `removed` — blocking when it was gated, so a job can't silently drop a
//! regression by deleting its metric.

use crate::snapshot::{Direction, MetricKind, MetricRecord, Snapshot};
use crate::table::Table;

/// Band width in MADs for noisy metrics (≈ 2.7 σ for normal noise).
pub const NOISE_MULTIPLIER: f64 = 4.0;
/// Relative noise floor for noisy metrics (fraction of baseline median).
pub const NOISY_REL_FLOOR: f64 = 0.15;
/// Relative tolerance for deterministic metrics (float dust only).
pub const DET_REL_EPS: f64 = 1e-9;

/// Classification of one metric's change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Better than the baseline beyond the noise band.
    Improved,
    /// Within the noise band.
    Flat,
    /// Worse than the baseline beyond the noise band.
    Regressed,
    /// Not present in the baseline.
    New,
    /// Present in the baseline, missing from the new snapshot.
    Removed,
    /// Deterministic metric under mismatched workload fingerprints.
    Incomparable,
}

impl Verdict {
    /// Wire/render name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Flat => "flat",
            Verdict::Regressed => "regressed",
            Verdict::New => "new",
            Verdict::Removed => "removed",
            Verdict::Incomparable => "incomparable",
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Suite job id.
    pub job: String,
    /// Metric name.
    pub metric: String,
    /// Unit label.
    pub unit: String,
    /// Baseline median (None for `new` metrics).
    pub old: Option<f64>,
    /// New median (None for `removed` metrics).
    pub new: Option<f64>,
    /// The band the delta was judged against.
    pub band: f64,
    /// The classification.
    pub verdict: Verdict,
    /// Whether a regression in this metric blocks (exit nonzero).
    pub gated: bool,
}

impl MetricDiff {
    /// Signed relative change in percent, when both sides exist.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o.abs() * 100.0),
            _ => None,
        }
    }
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Baseline commit stamp.
    pub baseline_commit: String,
    /// New snapshot's commit stamp.
    pub new_commit: String,
    /// Whether the workload fingerprints matched (exact comparison valid).
    pub fingerprints_match: bool,
    /// Whether noisy metrics were gated too (`--strict`).
    pub strict: bool,
    /// Per-metric outcomes, in new-snapshot order then removals.
    pub diffs: Vec<MetricDiff>,
}

/// The band for a metric pair.
fn band_for(old: &MetricRecord, new: &MetricRecord) -> f64 {
    match old.kind {
        MetricKind::Deterministic => DET_REL_EPS * old.median.abs().max(1.0),
        MetricKind::Noisy => {
            (NOISE_MULTIPLIER * old.mad.max(new.mad)).max(NOISY_REL_FLOOR * old.median.abs())
        }
    }
}

/// Classify `delta = new − old` against `band` for `direction`.
fn classify(delta: f64, band: f64, direction: Direction) -> Verdict {
    if delta.abs() <= band {
        return Verdict::Flat;
    }
    let better = match direction {
        Direction::Higher => delta > 0.0,
        Direction::Lower => delta < 0.0,
    };
    if better {
        Verdict::Improved
    } else {
        Verdict::Regressed
    }
}

impl DiffReport {
    /// Compare `new` against the `baseline` snapshot.
    pub fn compare(baseline: &Snapshot, new: &Snapshot, strict: bool) -> DiffReport {
        let fingerprints_match = !baseline.workload_fingerprint.is_empty()
            && baseline.workload_fingerprint == new.workload_fingerprint;
        let mut diffs = Vec::new();
        for m in &new.metrics {
            let diff = match baseline.find(&m.job, &m.metric) {
                None => MetricDiff {
                    job: m.job.clone(),
                    metric: m.metric.clone(),
                    unit: m.unit.clone(),
                    old: None,
                    new: Some(m.median),
                    band: 0.0,
                    verdict: Verdict::New,
                    gated: false,
                },
                Some(old) => {
                    let deterministic = old.kind == MetricKind::Deterministic;
                    let (verdict, band) = if deterministic && !fingerprints_match {
                        (Verdict::Incomparable, 0.0)
                    } else {
                        let band = band_for(old, m);
                        (classify(m.median - old.median, band, old.direction), band)
                    };
                    MetricDiff {
                        job: m.job.clone(),
                        metric: m.metric.clone(),
                        unit: m.unit.clone(),
                        old: Some(old.median),
                        new: Some(m.median),
                        band,
                        verdict,
                        gated: verdict != Verdict::Incomparable && (deterministic || strict),
                    }
                }
            };
            diffs.push(diff);
        }
        for old in &baseline.metrics {
            if new.find(&old.job, &old.metric).is_none() {
                let deterministic = old.kind == MetricKind::Deterministic;
                diffs.push(MetricDiff {
                    job: old.job.clone(),
                    metric: old.metric.clone(),
                    unit: old.unit.clone(),
                    old: Some(old.median),
                    new: None,
                    band: 0.0,
                    verdict: Verdict::Removed,
                    gated: deterministic || strict,
                });
            }
        }
        DiffReport {
            baseline_commit: baseline.git_commit.clone(),
            new_commit: new.git_commit.clone(),
            fingerprints_match,
            strict,
            diffs,
        }
    }

    /// The gated regressions and removals — what makes the exit nonzero.
    pub fn blocking(&self) -> Vec<&MetricDiff> {
        self.diffs
            .iter()
            .filter(|d| d.gated && matches!(d.verdict, Verdict::Regressed | Verdict::Removed))
            .collect()
    }

    /// True when the comparison should fail the build.
    pub fn is_blocking(&self) -> bool {
        !self.blocking().is_empty()
    }

    /// Human-readable comparison table plus summary lines.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(
            format!(
                "bench compare: {} -> {}{}",
                &self.baseline_commit[..self.baseline_commit.len().min(12)],
                &self.new_commit[..self.new_commit.len().min(12)],
                if self.strict { " (strict)" } else { "" }
            )
            .as_str(),
            &["job", "metric", "old", "new", "delta", "band", "verdict", "gated"],
        );
        let num = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_else(|| "-".into());
        for d in &self.diffs {
            t.row(vec![
                d.job.clone(),
                d.metric.clone(),
                num(d.old),
                num(d.new),
                d.delta_pct().map(|p| format!("{p:+.1}%")).unwrap_or_else(|| "-".into()),
                format!("{:.4}", d.band),
                d.verdict.name().to_string(),
                if d.gated { "yes" } else { "no" }.to_string(),
            ]);
        }
        let mut out = t.render();
        if !self.fingerprints_match {
            out.push_str(
                "warning: workload fingerprints differ — the two snapshots were not produced\n\
                 from bit-identical generated datasets (different RNG implementation, arch or\n\
                 toolchain). Deterministic metrics are reported as `incomparable` and do not\n\
                 gate; re-bless the baseline in this environment (see EXPERIMENTS.md,\n\
                 \"Perf trajectory\").\n",
            );
        }
        let blocking = self.blocking();
        if blocking.is_empty() {
            out.push_str("verdict: no gated regression — trajectory accepted\n");
        } else {
            out.push_str(&format!(
                "verdict: {} gated regression(s): {}\n",
                blocking.len(),
                blocking
                    .iter()
                    .map(|d| format!("{}/{} ({})", d.job, d.metric, d.verdict.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (one diff object per line).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"baseline_commit\": \"{}\",\n", self.baseline_commit));
        out.push_str(&format!("  \"new_commit\": \"{}\",\n", self.new_commit));
        out.push_str(&format!("  \"fingerprints_match\": {},\n", self.fingerprints_match));
        out.push_str(&format!("  \"strict\": {},\n", self.strict));
        out.push_str(&format!("  \"blocking\": {},\n", self.is_blocking()));
        out.push_str("  \"diffs\": [\n");
        let num = |v: Option<f64>| v.map(|x| format!("{x}")).unwrap_or_else(|| "null".into());
        for (i, d) in self.diffs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"job\": \"{}\", \"metric\": \"{}\", \"old\": {}, \"new\": {}, \
                 \"band\": {}, \"verdict\": \"{}\", \"gated\": {}}}{}\n",
                d.job,
                d.metric,
                num(d.old),
                num(d.new),
                d.band,
                d.verdict.name(),
                d.gated,
                if i + 1 < self.diffs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SCHEMA_VERSION;

    fn snap(metrics: Vec<MetricRecord>) -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            created_utc: "2026-08-09".into(),
            git_commit: "cafebabe".into(),
            arch: "x86_64".into(),
            profile: "ci".into(),
            repeats: 3,
            workload_fingerprint: "aaaaaaaaaaaaaaaa".into(),
            metrics,
        }
    }

    fn noisy(job: &str, metric: &str, median: f64, mad: f64) -> MetricRecord {
        MetricRecord {
            job: job.into(),
            metric: metric.into(),
            unit: "us".into(),
            direction: Direction::Lower,
            kind: MetricKind::Noisy,
            median,
            mad,
            samples: vec![median],
        }
    }

    fn det(job: &str, metric: &str, median: f64) -> MetricRecord {
        MetricRecord {
            job: job.into(),
            metric: metric.into(),
            unit: "recall".into(),
            direction: Direction::Higher,
            kind: MetricKind::Deterministic,
            median,
            mad: 0.0,
            samples: vec![median],
        }
    }

    fn verdict_of(report: &DiffReport, job: &str, metric: &str) -> Verdict {
        report
            .diffs
            .iter()
            .find(|d| d.job == job && d.metric == metric)
            .unwrap_or_else(|| panic!("no diff for {job}/{metric}"))
            .verdict
    }

    #[test]
    fn noisy_classification_at_the_band_edges() {
        // Band = max(4 * max(1, 1), 0.15 * 100) = 15 (lower is better).
        let old = snap(vec![noisy("j", "m", 100.0, 1.0)]);
        let cases = [
            (115.0, Verdict::Flat),       // exactly on the band edge
            (115.01, Verdict::Regressed), // just beyond
            (85.0, Verdict::Flat),        // improvement edge
            (84.99, Verdict::Improved),   // just beyond
            (100.0, Verdict::Flat),
        ];
        for (new_median, want) in cases {
            let new = snap(vec![noisy("j", "m", new_median, 1.0)]);
            let r = DiffReport::compare(&old, &new, false);
            assert_eq!(verdict_of(&r, "j", "m"), want, "median {new_median}");
            // Noisy metrics never block without --strict.
            assert!(!r.is_blocking(), "median {new_median}");
        }
        // With --strict the same regression blocks.
        let new = snap(vec![noisy("j", "m", 120.0, 1.0)]);
        assert!(DiffReport::compare(&old, &new, true).is_blocking());
    }

    #[test]
    fn mad_widens_the_band_beyond_the_relative_floor() {
        // Band = max(4 * 10, 0.15 * 100) = 40: a +30 swing is noise here.
        let old = snap(vec![noisy("j", "m", 100.0, 10.0)]);
        let new = snap(vec![noisy("j", "m", 130.0, 10.0)]);
        let r = DiffReport::compare(&old, &new, true);
        assert_eq!(verdict_of(&r, "j", "m"), Verdict::Flat);
        // The *new* snapshot's MAD also counts (noise can appear later).
        let old = snap(vec![noisy("j", "m", 100.0, 0.0)]);
        let new = snap(vec![noisy("j", "m", 130.0, 10.0)]);
        let r = DiffReport::compare(&old, &new, true);
        assert_eq!(verdict_of(&r, "j", "m"), Verdict::Flat);
    }

    #[test]
    fn deterministic_regressions_always_gate() {
        let old = snap(vec![det("f", "recall", 0.90)]);
        let new = snap(vec![det("f", "recall", 0.89)]);
        let r = DiffReport::compare(&old, &new, false);
        assert_eq!(verdict_of(&r, "f", "recall"), Verdict::Regressed);
        assert!(r.is_blocking(), "deterministic regressions gate without --strict");
        // Bit-identical is flat; a genuine improvement is improved.
        let same = DiffReport::compare(&old, &snap(vec![det("f", "recall", 0.90)]), false);
        assert_eq!(verdict_of(&same, "f", "recall"), Verdict::Flat);
        assert!(!same.is_blocking());
        let up = DiffReport::compare(&old, &snap(vec![det("f", "recall", 0.95)]), false);
        assert_eq!(verdict_of(&up, "f", "recall"), Verdict::Improved);
    }

    #[test]
    fn empty_baseline_marks_everything_new_and_passes() {
        let old = snap(vec![]);
        let new = snap(vec![det("f", "recall", 0.9), noisy("j", "m", 100.0, 1.0)]);
        let r = DiffReport::compare(&old, &new, true);
        assert!(r.diffs.iter().all(|d| d.verdict == Verdict::New));
        assert!(!r.is_blocking(), "a first trajectory point can never regress");
        let rendered = r.render_table();
        assert!(rendered.contains("trajectory accepted"), "{rendered}");
    }

    #[test]
    fn removed_gated_metrics_block() {
        let old = snap(vec![det("f", "recall", 0.9), noisy("j", "m", 100.0, 1.0)]);
        let new = snap(vec![noisy("j", "m", 100.0, 1.0)]);
        let r = DiffReport::compare(&old, &new, false);
        assert_eq!(verdict_of(&r, "f", "recall"), Verdict::Removed);
        assert!(r.is_blocking(), "dropping a gated metric must not pass silently");
        // Dropping a noisy metric without --strict is reported, not gated.
        let new = snap(vec![det("f", "recall", 0.9)]);
        let r = DiffReport::compare(&old, &new, false);
        assert_eq!(verdict_of(&r, "j", "m"), Verdict::Removed);
        assert!(!r.is_blocking());
    }

    #[test]
    fn fingerprint_mismatch_downgrades_deterministic_to_incomparable() {
        let old = snap(vec![det("f", "recall", 0.90), noisy("j", "m", 100.0, 1.0)]);
        let mut new = snap(vec![det("f", "recall", 0.50), noisy("j", "m", 130.0, 1.0)]);
        new.workload_fingerprint = "bbbbbbbbbbbbbbbb".into();
        let r = DiffReport::compare(&old, &new, false);
        assert_eq!(verdict_of(&r, "f", "recall"), Verdict::Incomparable);
        assert!(!r.is_blocking(), "a workload change is not a perf regression");
        let rendered = r.render_table();
        assert!(rendered.contains("fingerprints differ"), "{rendered}");
        // Noisy metrics still compare (wall-clock is never exact anyway) —
        // and still gate under --strict.
        let strict = DiffReport::compare(&old, &new, true);
        assert_eq!(verdict_of(&strict, "j", "m"), Verdict::Regressed);
        assert!(strict.is_blocking());
    }

    #[test]
    fn render_json_is_parseable_and_names_the_verdicts() {
        let old = snap(vec![det("f", "recall", 0.9)]);
        let new = snap(vec![det("f", "recall", 0.5), noisy("j", "m", 10.0, 0.1)]);
        let r = DiffReport::compare(&old, &new, false);
        let text = r.render_json();
        let v = crate::snapshot::json::parse(&text).expect("machine output parses");
        let obj = v.as_obj().unwrap();
        assert!(obj
            .iter()
            .any(|(k, v)| k == "blocking" && *v == crate::snapshot::json::Value::Bool(true)));
        assert!(text.contains("\"verdict\": \"regressed\""), "{text}");
        assert!(text.contains("\"verdict\": \"new\""), "{text}");
        assert!(text.contains("\"old\": null"), "{text}");
    }
}
