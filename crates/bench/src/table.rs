//! Plain-text table rendering for experiment output (paper-style rows).

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a cycle count in engineering units.
pub fn cyc(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(cyc(500.0), "500");
        assert_eq!(cyc(1500.0), "1.5k");
        assert_eq!(cyc(2_500_000.0), "2.50M");
        assert_eq!(cyc(3.2e9), "3.20G");
    }
}
