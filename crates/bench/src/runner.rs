//! The suite orchestrator: repeat every pinned job enough to estimate its
//! noise, summarize each metric (median + MAD), and assemble the stamped
//! [`Snapshot`] the trajectory persists.

use crate::measure::Summary;
use crate::snapshot::{
    git_commit, utc_date_string, workload_fingerprint, MetricRecord, Snapshot, SCHEMA_VERSION,
};
use crate::suite::{find_job, JobSpec, Profile, SUITE};
use crate::table::Table;

/// Configuration of one suite run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Workload sizes.
    pub profile: Profile,
    /// Repeats per job (≥ 1; noise bands need ≥ 2 to be meaningful).
    pub repeats: usize,
    /// Restrict to these job ids (None = the whole suite).
    pub jobs: Option<Vec<String>>,
    /// Per-job progress callback (job id), for CLI feedback.
    pub progress: Option<fn(&str)>,
}

impl RunConfig {
    /// The default run of `profile`: whole suite, profile-default repeats.
    pub fn of(profile: Profile) -> RunConfig {
        let repeats = profile.default_repeats;
        RunConfig { profile, repeats, jobs: None, progress: None }
    }
}

/// Resolve the job selection, rejecting unknown ids with the known list.
fn select_jobs(cfg: &RunConfig) -> Result<Vec<&'static JobSpec>, String> {
    match &cfg.jobs {
        None => Ok(SUITE.iter().collect()),
        Some(ids) => ids
            .iter()
            .map(|id| {
                find_job(id).ok_or_else(|| {
                    let known: Vec<&str> = SUITE.iter().map(|j| j.id).collect();
                    format!("unknown suite job '{id}' (known: {})", known.join(", "))
                })
            })
            .collect(),
    }
}

/// Run the suite and assemble the stamped snapshot.
pub fn run_suite(cfg: &RunConfig) -> Result<Snapshot, String> {
    if cfg.repeats == 0 {
        return Err("--repeats must be at least 1".to_string());
    }
    let jobs = select_jobs(cfg)?;
    let mut metrics = Vec::new();
    for job in jobs {
        if let Some(progress) = cfg.progress {
            progress(job.id);
        }
        // One samples row per metric, one column per repeat.
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.repeats); job.metrics.len()];
        for _ in 0..cfg.repeats {
            let got = (job.run)(&cfg.profile);
            if got.len() != job.metrics.len() {
                return Err(format!(
                    "suite job '{}' emitted {} samples for {} declared metrics",
                    job.id,
                    got.len(),
                    job.metrics.len()
                ));
            }
            for (row, v) in samples.iter_mut().zip(got) {
                row.push(v);
            }
        }
        for (spec, row) in job.metrics.iter().zip(samples) {
            metrics.push(MetricRecord::from_summary(
                job.id,
                spec.name,
                spec.unit,
                spec.direction,
                spec.kind,
                Summary::from_samples(row),
            ));
        }
    }
    Ok(Snapshot {
        schema_version: SCHEMA_VERSION,
        created_utc: utc_date_string(),
        git_commit: git_commit(),
        arch: std::env::consts::ARCH.to_string(),
        profile: cfg.profile.name.to_string(),
        repeats: cfg.repeats,
        workload_fingerprint: workload_fingerprint(),
        metrics,
    })
}

/// Human-readable rendering of a snapshot's metrics.
pub fn render_snapshot(snap: &Snapshot) -> String {
    let mut t = Table::new(
        format!(
            "bench suite ({} profile, {} repeats, commit {})",
            snap.profile,
            snap.repeats,
            &snap.git_commit[..snap.git_commit.len().min(12)]
        )
        .as_str(),
        &["job", "metric", "median", "mad", "unit", "kind"],
    );
    for m in &snap.metrics {
        t.row(vec![
            m.job.clone(),
            m.metric.clone(),
            format!("{:.4}", m.median),
            format!("{:.4}", m.mad),
            m.unit.clone(),
            m.kind.name().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MetricKind;

    #[test]
    fn smoke_suite_produces_a_complete_stamped_snapshot() {
        let cfg = RunConfig { jobs: None, repeats: 2, ..RunConfig::of(Profile::smoke()) };
        let snap = run_suite(&cfg).expect("suite runs");
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert_eq!(snap.profile, "smoke");
        assert_eq!(snap.repeats, 2);
        assert_eq!(snap.workload_fingerprint.len(), 16);
        // Every declared metric of every job is present, with all samples.
        let declared: usize = SUITE.iter().map(|j| j.metrics.len()).sum();
        assert_eq!(snap.metrics.len(), declared);
        for m in &snap.metrics {
            assert_eq!(m.samples.len(), 2, "{}/{}", m.job, m.metric);
            if m.kind == MetricKind::Deterministic {
                assert_eq!(m.mad, 0.0, "{}/{} must repeat exactly", m.job, m.metric);
            }
        }
        let rendered = render_snapshot(&snap);
        assert!(rendered.contains("device-cycles"), "{rendered}");
        assert!(rendered.contains("recall_at_10"), "{rendered}");
    }

    #[test]
    fn job_selection_rejects_unknown_ids() {
        let mut cfg = RunConfig::of(Profile::smoke());
        cfg.jobs = Some(vec!["device-cycles".into(), "nope".into()]);
        let err = run_suite(&cfg).unwrap_err();
        assert!(err.contains("unknown suite job 'nope'"), "{err}");
        assert!(err.contains("build-native"), "error must list known jobs: {err}");
        cfg.jobs = Some(vec!["device-cycles".into()]);
        cfg.repeats = 2;
        let snap = run_suite(&cfg).expect("single-job run");
        assert!(snap.metrics.iter().all(|m| m.job == "device-cycles"));
        assert_eq!(snap.metrics.len(), 4);
        cfg.repeats = 0;
        assert!(run_suite(&cfg).is_err());
    }
}
