//! Schema-versioned benchmark snapshots: the on-disk `BENCH_<date>.json`
//! trajectory points the regression gate diffs.
//!
//! A [`Snapshot`] records one run of the pinned suite — every metric's
//! median, MAD noise estimate and raw samples — stamped with the schema
//! version, UTC date, git commit, target arch and a *workload fingerprint*
//! (a hash of a canonical generated dataset). The fingerprint is what makes
//! cross-snapshot comparison honest: deterministic metrics (recall,
//! simulated cycles) are only exact-compared when both snapshots were
//! produced from bit-identical workloads — a different `rand`
//! implementation, arch or toolchain changes the generated points and would
//! otherwise masquerade as a perf change.
//!
//! The container this repo builds in has no serde, so serialization is a
//! small hand-rolled JSON emitter plus a recursive-descent parser covering
//! exactly the subset the emitter produces (objects, arrays, strings,
//! finite numbers, booleans). The schema is pinned by a golden-file test
//! (`BLESS_BENCH=1` to re-bless after an intentional change).

use std::fmt;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use wknng_data::DatasetSpec;

use crate::measure::Summary;

/// Version of the `BENCH_*.json` schema this build reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, recall).
    Higher,
    /// Smaller is better (latency, cycles, build time).
    Lower,
}

impl Direction {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "higher" => Ok(Direction::Higher),
            "lower" => Ok(Direction::Lower),
            other => Err(format!("unknown direction '{other}'")),
        }
    }
}

/// How a metric responds to repetition — and therefore how it is gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Bit-identical on every repeat of the same workload (recall at fixed
    /// seeds, simulated device cycles). Any change beyond float dust is a
    /// real change; always gated when workload fingerprints match.
    Deterministic,
    /// Wall-clock measurements that vary run to run (latency, throughput).
    /// Compared against a MAD-derived noise band; gated only in strict
    /// mode, because shared CI hardware adds noise no band fully absorbs.
    Noisy,
}

impl MetricKind {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Deterministic => "deterministic",
            MetricKind::Noisy => "noisy",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<MetricKind, String> {
        match s {
            "deterministic" => Ok(MetricKind::Deterministic),
            "noisy" => Ok(MetricKind::Noisy),
            other => Err(format!("unknown metric kind '{other}'")),
        }
    }
}

/// One measured metric of one suite job.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Suite job id (e.g. `device-cycles`).
    pub job: String,
    /// Metric name within the job (e.g. `tiled_cycles`).
    pub metric: String,
    /// Unit label for rendering (e.g. `us`, `cycles`, `recall`).
    pub unit: String,
    /// Which way "better" points.
    pub direction: Direction,
    /// Deterministic or noisy (see [`MetricKind`]).
    pub kind: MetricKind,
    /// Median across repeats.
    pub median: f64,
    /// Median absolute deviation across repeats.
    pub mad: f64,
    /// Raw samples, in measurement order.
    pub samples: Vec<f64>,
}

impl MetricRecord {
    /// Build a record from a repeat summary.
    pub fn from_summary(
        job: &str,
        metric: &str,
        unit: &str,
        direction: Direction,
        kind: MetricKind,
        summary: Summary,
    ) -> MetricRecord {
        MetricRecord {
            job: job.to_string(),
            metric: metric.to_string(),
            unit: unit.to_string(),
            direction,
            kind,
            median: summary.median,
            mad: summary.mad,
            samples: summary.samples,
        }
    }
}

/// One persisted trajectory point: a full run of the pinned suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema version (readers reject versions they do not know).
    pub schema_version: u64,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub created_utc: String,
    /// `git rev-parse HEAD` at run time, or `unknown`.
    pub git_commit: String,
    /// `std::env::consts::ARCH` of the producing build.
    pub arch: String,
    /// Suite profile name (`ci`, `full`, `smoke`).
    pub profile: String,
    /// Repeats per job.
    pub repeats: usize,
    /// Hash of a canonical generated dataset; exact-comparison guard.
    pub workload_fingerprint: String,
    /// Every measured metric.
    pub metrics: Vec<MetricRecord>,
}

impl Snapshot {
    /// `BENCH_<date>.json` — the conventional filename for this snapshot.
    pub fn default_filename(&self) -> String {
        format!("BENCH_{}.json", self.created_utc)
    }

    /// Look up a metric by job and name.
    pub fn find(&self, job: &str, metric: &str) -> Option<&MetricRecord> {
        self.metrics.iter().find(|m| m.job == job && m.metric == metric)
    }

    /// Serialize to the pinned JSON schema (one metric object per line, so
    /// line-oriented tools can address individual metrics).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"created_utc\": {},\n", jstr(&self.created_utc)));
        out.push_str(&format!("  \"git_commit\": {},\n", jstr(&self.git_commit)));
        out.push_str(&format!("  \"arch\": {},\n", jstr(&self.arch)));
        out.push_str(&format!("  \"profile\": {},\n", jstr(&self.profile)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"workload_fingerprint\": {},\n",
            jstr(&self.workload_fingerprint)
        ));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let samples: Vec<String> = m.samples.iter().map(|s| jnum(*s)).collect();
            out.push_str(&format!(
                "    {{\"job\": {}, \"metric\": {}, \"unit\": {}, \"direction\": {}, \
                 \"kind\": {}, \"median\": {}, \"mad\": {}, \"samples\": [{}]}}{}\n",
                jstr(&m.job),
                jstr(&m.metric),
                jstr(&m.unit),
                jstr(m.direction.name()),
                jstr(m.kind.name()),
                jnum(m.median),
                jnum(m.mad),
                samples.join(", "),
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a snapshot, rejecting unknown schema versions.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("snapshot: top level must be an object")?;
        let schema_version = get_num(obj, "schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema version {schema_version} is not the supported {SCHEMA_VERSION}"
            ));
        }
        let mut metrics = Vec::new();
        for (i, m) in get(obj, "metrics")?
            .as_arr()
            .ok_or("snapshot: 'metrics' must be an array")?
            .iter()
            .enumerate()
        {
            let mo = m.as_obj().ok_or_else(|| format!("metric #{i}: not an object"))?;
            let samples = get(mo, "samples")?
                .as_arr()
                .ok_or_else(|| format!("metric #{i}: 'samples' must be an array"))?
                .iter()
                .map(|s| s.as_num().ok_or_else(|| format!("metric #{i}: non-numeric sample")))
                .collect::<Result<Vec<f64>, String>>()?;
            metrics.push(MetricRecord {
                job: get_str(mo, "job")?,
                metric: get_str(mo, "metric")?,
                unit: get_str(mo, "unit")?,
                direction: Direction::parse(&get_str(mo, "direction")?)?,
                kind: MetricKind::parse(&get_str(mo, "kind")?)?,
                median: get_num(mo, "median")?,
                mad: get_num(mo, "mad")?,
                samples,
            });
        }
        Ok(Snapshot {
            schema_version,
            created_utc: get_str(obj, "created_utc")?,
            git_commit: get_str(obj, "git_commit")?,
            arch: get_str(obj, "arch")?,
            profile: get_str(obj, "profile")?,
            repeats: get_num(obj, "repeats")? as usize,
            workload_fingerprint: get_str(obj, "workload_fingerprint")?,
            metrics,
        })
    }

    /// Write the snapshot to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Load a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no external clock
/// crates; the system epoch is the only time source).
pub fn utc_date_string() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to civil (proleptic Gregorian) date — Howard Hinnant's
/// `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// `git rev-parse HEAD` of the working directory, or `"unknown"` when git
/// is unavailable (e.g. a source tarball).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// FNV-1a hash of a canonical generated dataset's bit pattern. Two builds
/// agree on this exactly when their dataset generation (RNG implementation,
/// float behavior) is bit-identical — the precondition for exact-comparing
/// deterministic metrics across snapshots.
pub fn workload_fingerprint() -> String {
    let ds = DatasetSpec::Manifold { n: 64, ambient_dim: 8, intrinsic_dim: 3 }.generate(0xF17E);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in ds.vectors.as_flat() {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// JSON-escape and quote a string.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a number for JSON (non-finite values have no JSON spelling; they
/// are clamped to 0, which a measured metric never legitimately produces).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| format!("field '{key}' must be a string"))
}

fn get_num(obj: &[(String, json::Value)], key: &str) -> Result<f64, String> {
    get(obj, key)?.as_num().ok_or_else(|| format!("field '{key}' must be a number"))
}

/// Minimal JSON: exactly the subset the snapshot emitter produces, parsed
/// by recursive descent. Key order is preserved (objects are association
/// lists), which keeps golden-file comparisons byte-stable.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (always carried as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as an order-preserving association list.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The array payload, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The object payload, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match string(b, pos)? {
                        Value::Str(s) => s,
                        _ => unreachable!(),
                    };
                    expect(b, pos, b':')?;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => number(b, pos),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out)
                        .map(Value::Str)
                        .map_err(|_| "invalid UTF-8 in string".to_string())
                }
                b'\\' => {
                    let esc = b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| {
                                    std::str::from_utf8(h).map_err(|_| "non-ASCII \\u escape")
                                })
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            *pos += 4;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.extend_from_slice(ch.to_string().as_bytes());
                        }
                        other => return Err(format!("unknown escape '\\{}'", *other as char)),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot {} (commit {}, profile {}, {} metrics)",
            self.created_utc,
            &self.git_commit[..self.git_commit.len().min(12)],
            self.profile,
            self.metrics.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            created_utc: "2026-08-09".into(),
            git_commit: "deadbeef".into(),
            arch: "x86_64".into(),
            profile: "ci".into(),
            repeats: 3,
            workload_fingerprint: "00ff00ff00ff00ff".into(),
            metrics: vec![
                MetricRecord {
                    job: "build-native".into(),
                    metric: "build_ms".into(),
                    unit: "ms".into(),
                    direction: Direction::Lower,
                    kind: MetricKind::Noisy,
                    median: 12.5,
                    mad: 0.25,
                    samples: vec![12.25, 12.5, 13.0],
                },
                MetricRecord {
                    job: "device-cycles".into(),
                    metric: "tiled_cycles".into(),
                    unit: "cycles".into(),
                    direction: Direction::Lower,
                    kind: MetricKind::Deterministic,
                    median: 1_000_000.0,
                    mad: 0.0,
                    samples: vec![1_000_000.0, 1_000_000.0],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample_snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("own output parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text =
            sample_snapshot().to_json().replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = Snapshot::from_json(&text).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn malformed_json_is_a_clean_error() {
        for bad in ["", "{", "{\"a\": }", "[1, 2", "{\"a\": 1} trailing", "\"unterminated"] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_scalars() {
        let v = json::parse(
            r#"{"s": "a\"b\\c\nd", "t": true, "f": false, "z": null, "n": [1, -2.5, 1e3]}"#,
        )
        .unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("a\"b\\c\nd"));
        assert_eq!(obj[1].1, json::Value::Bool(true));
        assert_eq!(obj[3].1, json::Value::Null);
        let arr = obj[4].1.as_arr().unwrap();
        assert_eq!(arr[2].as_num(), Some(1000.0));
    }

    #[test]
    fn civil_date_math() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap-adjacent
        assert_eq!(civil_from_days(20_674), (2026, 8, 9));
        let today = utc_date_string();
        assert_eq!(today.len(), 10);
        assert_eq!(&today[4..5], "-");
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        let a = workload_fingerprint();
        assert_eq!(a, workload_fingerprint());
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn default_filename_uses_the_date() {
        assert_eq!(sample_snapshot().default_filename(), "BENCH_2026-08-09.json");
    }
}
