//! # wknng-bench — the benchmark harness of the w-KNNG evaluation
//!
//! Two layers:
//!
//! * **Experiments** (`experiments::REGISTRY`, e1–e21): one module per
//!   table/figure of the reconstructed evaluation (index in `DESIGN.md`,
//!   claimed-vs-measured in `EXPERIMENTS.md`). Runnable through the
//!   `reproduce` binary or `wknng bench --only <ids>`:
//!
//!   ```text
//!   cargo run --release -p wknng-bench --bin reproduce            # all
//!   cargo run --release -p wknng-bench --bin reproduce -- e3 e4  # subset
//!   cargo run --release -p wknng-bench --bin reproduce -- --quick all
//!   ```
//!
//! * **Trajectory orchestrator** (`suite`/`runner`/`measure`/`snapshot`/
//!   `diff`): a pinned suite of perf jobs repeated to estimate noise,
//!   persisted as schema-versioned `BENCH_<date>.json` snapshots, and
//!   diffed against a baseline with a regression gate (`wknng bench`,
//!   `wknng bench --compare old.json`).
//!
//! Criterion micro-benchmarks live under `benches/` (forest construction,
//! native build variants, baselines, phase costs).

pub mod diff;
pub mod experiments;
pub mod measure;
pub mod plot;
pub mod runner;
pub mod snapshot;
pub mod suite;
pub mod table;

pub use diff::DiffReport;
pub use experiments::{run, Scale, REGISTRY};
pub use runner::{render_snapshot, run_suite, RunConfig};
pub use snapshot::Snapshot;
pub use suite::Profile;
