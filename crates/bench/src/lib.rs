//! # wknng-bench — the benchmark harness of the w-KNNG evaluation
//!
//! One module per experiment (tables/figures of the reconstructed
//! evaluation, see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! claimed-vs-measured). Everything is runnable through the `reproduce`
//! binary:
//!
//! ```text
//! cargo run --release -p wknng-bench --bin reproduce            # all experiments
//! cargo run --release -p wknng-bench --bin reproduce -- e3 e4  # a subset
//! cargo run --release -p wknng-bench --bin reproduce -- --quick all
//! ```
//!
//! Criterion micro-benchmarks live under `benches/` (forest construction,
//! native build variants, baselines, phase costs).

pub mod experiments;
pub mod plot;
pub mod table;

pub use experiments::{run, Scale, ALL_IDS};
