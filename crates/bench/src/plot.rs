//! ASCII figure rendering: line charts for the evaluation's figure-style
//! results (recall curves, scaling curves, crossover plots).

/// A named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.to_string(), points }
    }
}

const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render series as an ASCII scatter/line chart of `width × height`
/// characters (plus axes). `log_x`/`log_y` switch the axes to log₂ scale
/// (points with non-positive coordinates are dropped on log axes).
#[allow(clippy::too_many_arguments)]
pub fn render(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
) -> String {
    let tx = |v: f64| if log_x { v.log2() } else { v };
    let ty = |v: f64| if log_y { v.log2() } else { v };
    let pts: Vec<(usize, f64, f64)> = series
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.points
                .iter()
                .filter(|&&(x, y)| (!log_x || x > 0.0) && (!log_y || y > 0.0))
                .map(move |&(x, y)| (si, tx(x), ty(y)))
        })
        .collect();
    let mut out = format!("-- {title} --\n");
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for &(si, x, y) in &pts {
        let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy;
        let cell = &mut grid[row][cx.min(width - 1)];
        // Later series overwrite; overlaps show the later glyph.
        *cell = GLYPHS[si % GLYPHS.len()];
    }
    let unscale_y = |v: f64| if log_y { v.exp2() } else { v };
    let unscale_x = |v: f64| if log_x { v.exp2() } else { v };
    for (r, row) in grid.iter().enumerate() {
        let yv = unscale_y(y1 - (y1 - y0) * r as f64 / (height - 1) as f64);
        let line: String = row.iter().collect();
        out.push_str(&format!("{yv:>10.3} |{line}|\n"));
    }
    out.push_str(&format!(
        "{:>10} +{}+\n{:>10}  {:<w$}{:>w2$}\n",
        "",
        "-".repeat(width),
        "",
        format!("{:.3}", unscale_x(x0)),
        format!("{:.3} ({x_label})", unscale_x(x1)),
        w = width / 2,
        w2 = width - width / 2,
    ));
    out.push_str(&format!("{:>10}  y: {y_label} | ", ""));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{} = {}  ", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series_on_the_diagonal() {
        let s = Series::new("line", (0..10).map(|i| (i as f64, i as f64)).collect());
        let out = render("t", "x", "y", &[s], 20, 10, false, false);
        assert!(out.contains("-- t --"));
        assert!(out.contains("* = line"));
        // Top row holds the max, bottom row the min.
        let rows: Vec<&str> = out.lines().collect();
        assert!(rows[1].trim_start().starts_with('9'));
        assert!(rows[10].trim_start().starts_with('0'));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let out = render("t", "x", "y", &[a, b], 16, 8, false, false);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("o = b"));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let s = Series::new("s", vec![(0.0, 5.0), (1.0, 10.0), (1024.0, 100.0)]);
        let out = render("t", "x", "y", &[s], 16, 6, true, true);
        assert!(out.contains("1024"));
        assert!(!out.contains("(no data)"));
    }

    #[test]
    fn empty_series_render_gracefully() {
        let out = render("t", "x", "y", &[], 10, 5, false, false);
        assert!(out.contains("(no data)"));
        let s = Series::new("s", vec![]);
        let out = render("t", "x", "y", &[s], 10, 5, false, false);
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn constant_series_do_not_divide_by_zero() {
        let s = Series::new("flat", vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        let out = render("t", "x", "y", &[s], 12, 5, false, false);
        assert!(out.contains("flat"));
    }
}
