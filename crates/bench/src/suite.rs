//! The pinned benchmark suite: the fixed set of jobs whose metrics form the
//! repo's perf trajectory (`BENCH_<date>.json`, see [`crate::snapshot`]).
//!
//! Six jobs cover the claims the ROADMAP tracks:
//!
//! * `build-native` — native (rayon) end-to-end build wall-clock and
//!   throughput, plus the recall it buys at pinned parameters;
//! * `build-native-simd` — the same pinned build run with the scalar
//!   kernel pinned, with the dispatched (AVX2 where available) kernel, and
//!   with PQ-ADC quantization, reporting the kernel speedup and the recall
//!   each mode buys;
//! * `serve-load` — closed-loop serving p50/p99 and throughput through the
//!   batching engine;
//! * `recall-frontier` — recall@10 at three pinned (trees, exploration)
//!   operating points (the frontier's anchor points, deterministic);
//! * `device-cycles` — simulated device cycles for the basic/atomic/tiled
//!   build kernels and the batched beam-search kernel (deterministic);
//! * `recovery-time` — warm-start wall-clock from a durable data dir with a
//!   pinned checkpoint + WAL-tail shape, plus the deterministic replay
//!   counts behind it.
//!
//! Every job is pure in its [`Profile`]: same profile, same code, same RNG
//! implementation ⇒ identical deterministic metrics. Wall-clock metrics are
//! tagged [`MetricKind::Noisy`] and judged against MAD noise bands instead.

use std::time::Duration;

use wknng_core::{recall, KernelVariant, QuantMode, SearchIndex, SearchParams, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, KernelMode, KernelModeGuard, Metric, VectorSet};
use wknng_serve::{DurabilityPolicy, MutatePolicy, ServeConfig, ServeEngine, ServeIndex};
use wknng_simt::DeviceConfig;

use crate::measure::{percentile, replay, timed};
use crate::snapshot::{Direction, MetricKind};

/// Workload sizes for one suite run. Pinned: changing a profile invalidates
/// every baseline produced under it (the diff tool compares profiles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Profile name recorded in the snapshot (`ci`, `full`, `smoke`).
    pub name: &'static str,
    /// Points in the build/frontier datasets.
    pub n: usize,
    /// Out-of-sample queries for the serving job.
    pub nq: usize,
    /// Points in the simulated-device workload (kept small: the simulator
    /// is cycle-accurate, not fast).
    pub sim_n: usize,
    /// Default repeats per job when `--repeats` is not given.
    pub default_repeats: usize,
}

impl Profile {
    /// The CI profile: small enough for a shared runner, big enough that
    /// recall and latency are meaningful.
    pub fn ci() -> Profile {
        Profile { name: "ci", n: 2000, nq: 400, sim_n: 256, default_repeats: 3 }
    }

    /// The full profile for local trend tracking.
    pub fn full() -> Profile {
        Profile { name: "full", n: 8000, nq: 1000, sim_n: 512, default_repeats: 5 }
    }

    /// A seconds-scale profile for the test suite.
    pub fn smoke() -> Profile {
        Profile { name: "smoke", n: 300, nq: 60, sim_n: 96, default_repeats: 2 }
    }

    /// Look up a profile by name.
    pub fn from_name(name: &str) -> Result<Profile, String> {
        match name {
            "ci" => Ok(Profile::ci()),
            "full" => Ok(Profile::full()),
            "smoke" => Ok(Profile::smoke()),
            other => Err(format!("unknown profile '{other}' (ci|full|smoke)")),
        }
    }
}

/// Static description of one metric a job emits.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Metric name within the job.
    pub name: &'static str,
    /// Unit label.
    pub unit: &'static str,
    /// Which way "better" points.
    pub direction: Direction,
    /// Deterministic or noisy.
    pub kind: MetricKind,
}

/// One suite job: an id, the metrics it emits, and a runner returning one
/// sample per metric (same order as `metrics`).
pub struct JobSpec {
    /// Job id (stable across code states — the diff key).
    pub id: &'static str,
    /// One-line description for `wknng bench --list`.
    pub title: &'static str,
    /// The metrics this job emits.
    pub metrics: &'static [MetricSpec],
    /// Produce one sample per metric.
    pub run: fn(&Profile) -> Vec<f64>,
}

/// The pinned suite, in execution order.
pub const SUITE: &[JobSpec] = &[
    JobSpec {
        id: "build-native",
        title: "native build wall-clock, throughput and recall at pinned params",
        metrics: &[
            MetricSpec {
                name: "build_ms",
                unit: "ms",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "throughput_kpps",
                unit: "kpoints/s",
                direction: Direction::Higher,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "recall_at_10",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
        ],
        run: run_build_native,
    },
    JobSpec {
        id: "build-native-simd",
        title: "pinned build under scalar / dispatched SIMD / PQ-ADC kernels",
        metrics: &[
            MetricSpec {
                name: "scalar_build_ms",
                unit: "ms",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "simd_build_ms",
                unit: "ms",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "simd_speedup",
                unit: "x",
                direction: Direction::Higher,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "pq_build_ms",
                unit: "ms",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "recall_simd",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "recall_pq",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
        ],
        run: run_build_native_simd,
    },
    JobSpec {
        id: "serve-load",
        title: "closed-loop serving latency and throughput (2 shards, batch 16)",
        metrics: &[
            MetricSpec {
                name: "p50_us",
                unit: "us",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "p99_us",
                unit: "us",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "qps",
                unit: "q/s",
                direction: Direction::Higher,
                kind: MetricKind::Noisy,
            },
        ],
        run: run_serve_load,
    },
    JobSpec {
        id: "recall-frontier",
        title: "recall@10 at pinned frontier operating points (T,P)",
        metrics: &[
            MetricSpec {
                name: "recall_t2_p0",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "recall_t8_p1",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "recall_t8_p3",
                unit: "recall",
                direction: Direction::Higher,
                kind: MetricKind::Deterministic,
            },
        ],
        run: run_recall_frontier,
    },
    JobSpec {
        id: "device-cycles",
        title: "simulated device cycles: basic/atomic/tiled builds + beam search",
        metrics: &[
            MetricSpec {
                name: "basic_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "atomic_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "tiled_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "beam_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
        ],
        run: run_device_cycles,
    },
    JobSpec {
        id: "recovery-time",
        title: "warm-start recovery from a pinned checkpoint + WAL-tail shape",
        metrics: &[
            MetricSpec {
                name: "recovery_ms",
                unit: "ms",
                direction: Direction::Lower,
                kind: MetricKind::Noisy,
            },
            MetricSpec {
                name: "replayed_ops",
                unit: "ops",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
            MetricSpec {
                name: "wal_tail_kb",
                unit: "KiB",
                direction: Direction::Lower,
                kind: MetricKind::Deterministic,
            },
        ],
        run: run_recovery_time,
    },
];

/// Look up a suite job by id.
pub fn find_job(id: &str) -> Option<&'static JobSpec> {
    SUITE.iter().find(|j| j.id == id)
}

/// The pinned build/serve dataset: an (n + nq)-point manifold split into
/// index points and out-of-sample queries.
fn split_dataset(n: usize, nq: usize, dim: usize, seed: u64) -> (VectorSet, VectorSet) {
    let all =
        DatasetSpec::Manifold { n: n + nq, ambient_dim: dim, intrinsic_dim: 4 }.generate(seed);
    let flat = all.vectors.as_flat();
    let vs = VectorSet::new(flat[..n * dim].to_vec(), dim).expect("well-formed split");
    let qs = VectorSet::new(flat[n * dim..].to_vec(), dim).expect("well-formed split");
    (vs, qs)
}

fn run_build_native(p: &Profile) -> Vec<f64> {
    let dim = 32;
    let k = 10;
    let (vs, _) = split_dataset(p.n, 0, dim, 0xB01D);
    let ((graph, _), ms) = timed(|| {
        WknngBuilder::new(k)
            .trees(8)
            .leaf_size(32)
            .exploration(1)
            .seed(1)
            .build_native(&vs)
            .expect("valid build")
    });
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    let r = recall(&graph.lists, &truth);
    vec![ms, p.n as f64 / ms, r]
}

/// The `build-native` workload repeated under three distance-evaluation
/// modes: scalar kernel pinned, dispatched kernel (AVX2+FMA where the host
/// supports it), and PQ-ADC (m=8) candidate generation. The recall metrics
/// are deterministic for a fixed host kernel; the speedup is the suite's
/// record of what the SIMD path buys end-to-end on this machine.
fn run_build_native_simd(p: &Profile) -> Vec<f64> {
    let dim = 32;
    let k = 10;
    let (vs, _) = split_dataset(p.n, 0, dim, 0xB01D);
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    let builder = WknngBuilder::new(k).trees(8).leaf_size(32).exploration(1).seed(1);
    let scalar_ms = {
        let _pin = KernelModeGuard::pin(KernelMode::ForceScalar);
        let (_, ms) = timed(|| builder.build_native(&vs).expect("valid build"));
        ms
    };
    let ((g_simd, _), simd_ms) = timed(|| builder.build_native(&vs).expect("valid build"));
    let ((g_pq, _), pq_ms) =
        timed(|| builder.quant(QuantMode::Pq { m: 8 }).build_native(&vs).expect("valid build"));
    vec![
        scalar_ms,
        simd_ms,
        scalar_ms / simd_ms,
        pq_ms,
        recall(&g_simd.lists, &truth),
        recall(&g_pq.lists, &truth),
    ]
}

fn run_serve_load(p: &Profile) -> Vec<f64> {
    let dim = 16;
    let (vs, qs) = split_dataset(p.n, p.nq, dim, 0x5E47);
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(1)
        .seed(2)
        .build_native(&vs)
        .expect("valid build");
    let index = ServeIndex::from_parts(vs, graph.lists).expect("index matches vectors");
    let engine = ServeEngine::start(
        index,
        ServeConfig {
            shards: 2,
            batch_size: 16,
            linger: Duration::from_micros(200),
            queue_capacity: 8192,
            params: SearchParams::default(),
            ..ServeConfig::default()
        },
    )
    .expect("valid config");
    let served = replay(&engine, &qs);
    let report = engine.shutdown();
    assert_eq!(served, qs.len(), "every query must be answered");
    vec![
        report.latency_p(50.0).as_secs_f64() * 1e6,
        report.latency_p(99.0).as_secs_f64() * 1e6,
        report.throughput_qps,
    ]
}

fn run_recall_frontier(p: &Profile) -> Vec<f64> {
    let dim = 64;
    let k = 10;
    let (vs, _) = split_dataset(p.n, 0, dim, 0xF407);
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    [(2usize, 0usize), (8, 1), (8, 3)]
        .iter()
        .map(|&(trees, explore)| {
            let (g, _) = WknngBuilder::new(k)
                .trees(trees)
                .leaf_size(64)
                .exploration(explore)
                .seed(3)
                .build_native(&vs)
                .expect("valid build");
            recall(&g.lists, &truth)
        })
        .collect()
}

fn run_device_cycles(p: &Profile) -> Vec<f64> {
    let dim = 32;
    let k = 8;
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n: p.sim_n, dim, clusters: 8, spread: 0.3 }
        .generate(0xD3C5);
    let mut out = Vec::with_capacity(4);
    let mut basic_lists = Vec::new();
    for variant in [KernelVariant::Basic, KernelVariant::Atomic, KernelVariant::Tiled] {
        let (g, reports) = WknngBuilder::new(k)
            .trees(2)
            .leaf_size(32)
            .exploration(1)
            .variant(variant)
            .seed(4)
            .build_device(&ds.vectors, &dev)
            .expect("valid build");
        out.push(reports.total().cycles);
        if matches!(variant, KernelVariant::Basic) {
            basic_lists = g.lists;
        }
    }
    let queries = DatasetSpec::UniformCube { n: 32, dim }.generate(0xBEA0).vectors;
    let params = SearchParams { k, beam: 32, entries: 2, metric: Metric::SquaredL2 };
    let ix = SearchIndex::upload(&ds.vectors, &basic_lists);
    let batch = wknng_core::run_search_batch(&dev, &ix, &queries, &params).expect("clean launch");
    out.push(batch.report.cycles);
    out
}

/// Cold-start a durable engine, journal a pinned mutation workload sized to
/// the profile (two sealed checkpoints, two batches left in the WAL tail),
/// then measure the warm start: wall-clock to load the checkpoint, replay
/// the tail through the extender, and publish. The replay counts and the
/// tail's byte size are deterministic; only the wall-clock is noisy.
fn run_recovery_time(p: &Profile) -> Vec<f64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static RUN: AtomicU64 = AtomicU64::new(0);
    let dim = 16;
    let (vs, _) = split_dataset(p.n, 0, dim, 0x4EC0);
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(1)
        .seed(5)
        .build_native(&vs)
        .expect("valid build");
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "wknng-bench-recovery-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = || ServeConfig {
        mutate: Some(MutatePolicy::default()),
        durability: Some(DurabilityPolicy { checkpoint_every: 3, ..DurabilityPolicy::at(&dir) }),
        ..ServeConfig::default()
    };
    let index = ServeIndex::from_parts(vs, graph.lists).expect("index matches vectors");
    let engine = ServeEngine::start(index, cfg()).expect("valid config");
    let batch = (p.n / 50).max(4);
    let fresh = DatasetSpec::Manifold { n: 4 * batch, ambient_dim: dim, intrinsic_dim: 4 }
        .generate(0x4EC1)
        .vectors;
    for b in 0..4 {
        let rows: Vec<Vec<f32>> =
            (b * batch..(b + 1) * batch).map(|i| fresh.row(i).to_vec()).collect();
        let points = VectorSet::new(rows.concat(), dim).expect("well-formed batch");
        engine.insert(points).expect("mutator running").wait().expect("insert journals");
        engine
            .delete(vec![(b * 3) as u32, (b * 3 + 1) as u32])
            .expect("mutator running")
            .wait()
            .expect("delete journals");
    }
    engine.shutdown();
    let tail_bytes = std::fs::metadata(wknng_serve::wal_path(&dir)).map(|m| m.len()).unwrap_or(0);
    let ((engine, info), ms) =
        timed(|| ServeEngine::recover(cfg()).expect("clean directory recovers"));
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    vec![ms, info.replayed_ops as f64, tail_bytes as f64 / 1024.0]
}

/// Exercised only so the shared percentile helper is provably the one the
/// suite's latency numbers would flow through if a job ever needed raw
/// per-query latencies (the serve report computes its own today).
#[allow(dead_code)]
fn latency_percentile_us(latencies: &[Duration], p: f64) -> f64 {
    let us: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    percentile(&us, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_job_emits_its_declared_metrics() {
        let p = Profile::smoke();
        for job in SUITE {
            let samples = (job.run)(&p);
            assert_eq!(
                samples.len(),
                job.metrics.len(),
                "job {} emitted {} samples for {} metrics",
                job.id,
                samples.len(),
                job.metrics.len()
            );
            assert!(samples.iter().all(|s| s.is_finite()), "job {} non-finite", job.id);
        }
    }

    #[test]
    fn deterministic_jobs_repeat_bit_identically() {
        let p = Profile::smoke();
        for id in ["recall-frontier", "device-cycles"] {
            let job = find_job(id).expect("pinned job");
            let a = (job.run)(&p);
            let b = (job.run)(&p);
            assert_eq!(a, b, "job {id} must be deterministic");
        }
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(Profile::from_name("ci").unwrap(), Profile::ci());
        assert_eq!(Profile::from_name("full").unwrap(), Profile::full());
        assert_eq!(Profile::from_name("smoke").unwrap(), Profile::smoke());
        assert!(Profile::from_name("warp9").is_err());
        assert!(find_job("no-such-job").is_none());
    }
}
