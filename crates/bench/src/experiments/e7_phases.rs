//! E7 — pipeline phase breakdown (forest / bucket all-pairs / exploration).

use wknng_core::WknngBuilder;
use wknng_data::DatasetSpec;
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::table::{cyc, f3, Table};

/// Break down the native wall clock and the simulated device cycles.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();

    // Native breakdown.
    let n = scale.pick(2000, 500);
    let ds = DatasetSpec::sift_like(n).generate(71);
    let (_, timings) = WknngBuilder::new(10)
        .trees(4)
        .leaf_size(48)
        .exploration(1)
        .seed(8)
        .build_native(&ds.vectors)
        .expect("valid params");
    let total = timings.total_ms().max(1e-9);
    let mut t = Table::new(
        format!("E7a: native phase breakdown on {} (T=4, P=1, leaf=48)", ds.name).as_str(),
        &["phase", "ms", "share"],
    );
    for (name, ms) in [
        ("forest", timings.forest_ms),
        ("bucket all-pairs", timings.bucket_ms),
        ("exploration", timings.explore_ms),
    ] {
        t.row(vec![name.into(), f3(ms), format!("{:.1}%", 100.0 * ms / total)]);
    }
    t.row(vec!["total".into(), f3(total), "100.0%".into()]);
    out.push_str(&t.render());

    // Device breakdown.
    let n = scale.pick(512, 192);
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim: 128, clusters: 8, spread: 0.3 }.generate(72);
    let (_, reports) = WknngBuilder::new(8)
        .trees(2)
        .leaf_size(32)
        .exploration(1)
        .seed(8)
        .build_device(&ds.vectors, &dev)
        .expect("valid params");
    let total = reports.total().cycles.max(1e-9);
    let mut t = Table::new(
        format!("E7b: simulated phase breakdown (n={n}, d=128, tiled)").as_str(),
        &["phase", "cycles", "share"],
    );
    for (name, c) in [
        ("forest", reports.forest.cycles),
        ("bucket all-pairs", reports.bucket.cycles),
        ("exploration", reports.explore.cycles),
    ] {
        t.row(vec![name.into(), cyc(c), format!("{:.1}%", 100.0 * c / total)]);
    }
    t.row(vec!["total".into(), cyc(total), "100.0%".into()]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_total() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E7a"));
        assert!(out.contains("E7b"));
        assert!(out.contains("bucket all-pairs"));
        assert!(out.contains("100.0%"));
    }
}
