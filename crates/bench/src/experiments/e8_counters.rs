//! E8 — hardware-counter ablation: *why* each warp-centric variant behaves
//! the way it does.

use wknng_core::{KernelVariant, WknngBuilder};
use wknng_data::DatasetSpec;
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::table::{cyc, Table};

/// Compare the bucket-phase profiler counters of the three variants on one
/// fixed workload.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(512, 160);
    let dim = 64;
    let k = 8;
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim, clusters: 8, spread: 0.3 }.generate(81);

    let mut t = Table::new(
        format!("E8: bucket-phase device counters (n={n}, d={dim}, k={k}, leaf=32, T=2)").as_str(),
        &[
            "counter",
            KernelVariant::Basic.name(),
            KernelVariant::Atomic.name(),
            KernelVariant::Tiled.name(),
        ],
    );

    let reports: Vec<_> = KernelVariant::ALL
        .iter()
        .map(|&variant| {
            let (_, reports) = WknngBuilder::new(k)
                .trees(2)
                .leaf_size(32)
                .exploration(0)
                .variant(variant)
                .seed(10)
                .build_device(&ds.vectors, &dev)
                .expect("valid params");
            reports.bucket
        })
        .collect();

    let row = |name: &str, f: &dyn Fn(&wknng_simt::LaunchReport) -> String| -> Vec<String> {
        let mut cells = vec![name.to_string()];
        cells.extend(reports.iter().map(f));
        cells
    };
    t.row(row("cycles", &|r| cyc(r.cycles)));
    t.row(row("warp instructions", &|r| cyc(r.stats.instructions as f64)));
    t.row(row("divergence", &|r| format!("{:.1}%", 100.0 * r.stats.divergence_ratio())));
    t.row(row("global load tx", &|r| cyc(r.stats.global_load_transactions as f64)));
    t.row(row("global store tx", &|r| cyc(r.stats.global_store_transactions as f64)));
    t.row(row("DRAM bytes", &|r| cyc(r.stats.dram_bytes as f64)));
    t.row(row("L2 hit rate", &|r| {
        let total = r.stats.l2_hits + r.stats.l2_misses;
        if total == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * r.stats.l2_hits as f64 / total as f64)
        }
    }));
    t.row(row("shared accesses", &|r| cyc(r.stats.shared_accesses as f64)));
    t.row(row("bank conflicts", &|r| cyc(r.stats.shared_bank_conflicts as f64)));
    t.row(row("barriers", &|r| r.stats.barriers.to_string()));
    t.row(row("atomic ops", &|r| cyc(r.stats.atomic_ops as f64)));
    t.row(row("atomic hot sector", &|r| r.atomic_hot_sector.to_string()));
    t.row(row("atomic cross conflicts", &|r| cyc(r.atomic_cross_conflicts as f64)));
    t.row(row("memory bound", &|r| if r.memory_bound() { "yes" } else { "no" }.into()));

    let mut out = t.render();
    out.push_str(
        "reading: basic re-reads every coordinate row once per pair (max DRAM traffic);\n\
         atomic computes each pair once on its own lane — fewest instructions, but its\n\
         per-lane gathers multiply transactions and lean on L2, and its inserts pay\n\
         atomic contention; tiled converts global traffic into shared-memory accesses\n\
         and barriers. Dimensionality decides which trade wins (see E4).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_show_the_expected_signature() {
        let out = run(Scale { quick: true });
        assert!(out.contains("atomic ops"));
        assert!(out.contains("bank conflicts"));
        // All three variant columns present.
        assert!(out.contains("w-knng-basic"));
        assert!(out.contains("w-knng-atomic"));
        assert!(out.contains("w-knng-tiled"));
    }
}
