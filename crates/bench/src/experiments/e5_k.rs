//! E5 — effect of the neighbor count K on build cost and recall.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

use crate::experiments::{timed, Scale};
use crate::table::{cyc, f3, Table};

/// Sweep K natively (wall clock) and on the device (cycles).
pub fn run(scale: Scale) -> String {
    let mut out = String::new();

    // Native sweep.
    let n = scale.pick(3000, 600);
    let ds = DatasetSpec::sift_like(n).generate(51);
    let ks: Vec<usize> = if scale.quick { vec![4, 16, 64] } else { vec![4, 8, 16, 32, 64] };
    let kmax = *ks.iter().max().expect("nonempty");
    let truth_full = exact_knn(&ds.vectors, kmax, Metric::SquaredL2);
    let mut t = Table::new(
        format!("E5a: native build vs K on {} (T=4, P=1, leaf=64)", ds.name).as_str(),
        &["k", "build-ms", "recall@k"],
    );
    for &k in &ks {
        let ((g, _), ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(4)
                .leaf_size(64)
                .exploration(1)
                .seed(4)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        let truth: Vec<_> =
            truth_full.iter().map(|l| l.iter().take(k).copied().collect::<Vec<_>>()).collect();
        t.row(vec![k.to_string(), f3(ms), f3(recall(&g.lists, &truth))]);
    }
    out.push_str(&t.render());

    // Device sweep.
    let n = scale.pick(512, 160);
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim: 64, clusters: 8, spread: 0.3 }.generate(52);
    let mut t = Table::new(
        format!("E5b: simulated cycles vs K (n={n}, d=64, tiled, T=2)").as_str(),
        &["k", "cycles", "sim-ms"],
    );
    let ks: Vec<usize> = if scale.quick { vec![4, 16] } else { vec![4, 8, 16, 32] };
    for &k in &ks {
        let (_, reports) = WknngBuilder::new(k)
            .trees(2)
            .leaf_size(32)
            .exploration(0)
            .seed(4)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        let total = reports.total();
        t.row(vec![k.to_string(), cyc(total.cycles), f3(total.ms(&dev))]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_tables() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E5a"));
        assert!(out.contains("E5b"));
    }
}
