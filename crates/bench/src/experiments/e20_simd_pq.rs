//! E20 (extension) — SIMD distance kernels and PQ-ADC quantization.
//!
//! The raw-speed ablation: the same native build run with the scalar oracle
//! kernel, with the dispatched AVX2 kernel, and over PQ asymmetric code
//! distances (ADC), on a SIFT-like 128-dimensional set. The distance loop is
//! the traffic the paper identifies as the build's dominant cost, so this
//! table is where kernel-level wins (or losses) become end-to-end numbers:
//! build wall-clock + throughput, recall@10 against exact ground truth, and
//! the per-point footprint of the coordinates the loop reads.
//!
//! A second table replays an out-of-sample query load through the serving
//! engine with each kernel mode pinned, since `search_lists` dispatches
//! through the same kernel.

use std::time::Duration;

use wknng_core::{recall, QuantMode, SearchParams, WknngBuilder};
use wknng_data::{exact_knn, kernel, DatasetSpec, KernelMode, KernelModeGuard, Metric, VectorSet};
use wknng_serve::{ServeConfig, ServeEngine, ServeIndex};

use crate::experiments::Scale;
use crate::measure::{replay, timed};
use crate::table::{f3, Table};

/// Scalar vs SIMD vs PQ-ADC builds + kernel-pinned serve replays.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 400);
    let nq = scale.pick(400, 60);
    let k = 10;
    let ds = DatasetSpec::sift_like(n + nq).generate(201);
    let dim = ds.vectors.dim();
    let flat = ds.vectors.as_flat();
    let vs = VectorSet::new(flat[..n * dim].to_vec(), dim).expect("well-formed split");
    let qs = VectorSet::new(flat[n * dim..].to_vec(), dim).expect("well-formed split");
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    let builder = WknngBuilder::new(k).trees(8).leaf_size(32).exploration(1).seed(20);

    let mut out = String::new();
    let mut t = Table::new(
        format!("E20: distance-kernel ablation, sift-like n={n} dim={dim} (T=8, P=1, k={k})")
            .as_str(),
        &["kernel", "build ms", "kpoints/s", "recall@10", "coord B/point"],
    );
    let mut build = |label: &str, pin: Option<KernelMode>, quant: QuantMode| {
        let _guard = pin.map(KernelModeGuard::pin);
        let ((g, _), ms) = timed(|| builder.quant(quant).build_native(&vs).expect("valid params"));
        let bytes = match quant {
            QuantMode::None => 4 * dim,
            QuantMode::Sq8 => dim,
            QuantMode::Pq { m } => m.min(dim),
        };
        t.row(vec![
            label.to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", n as f64 / ms),
            f3(recall(&g.lists, &truth)),
            bytes.to_string(),
        ]);
        g
    };
    build("scalar (pinned)", Some(KernelMode::ForceScalar), QuantMode::None);
    let g_simd = build(kernel().name(), None, QuantMode::None);
    build("pq-adc m=8", None, QuantMode::Pq { m: 8 });
    build("pq-adc m=16", None, QuantMode::Pq { m: 16 });
    out.push_str(&t.render());

    // Serve replay over the dispatched-kernel graph, search kernel pinned
    // per row. Latencies are wall-clock — read them as trends, not gates.
    let mut t = Table::new(
        format!("E20b: serve replay, {nq} out-of-sample queries (2 shards, batch 16)").as_str(),
        &["search kernel", "p50 us", "p99 us", "qps"],
    );
    for (label, pin) in
        [("scalar (pinned)", Some(KernelMode::ForceScalar)), (kernel().name(), None)]
    {
        let _guard = pin.map(KernelModeGuard::pin);
        let index = ServeIndex::from_parts(vs.clone(), g_simd.lists.clone())
            .expect("index matches vectors");
        let engine = ServeEngine::start(
            index,
            ServeConfig {
                shards: 2,
                batch_size: 16,
                linger: Duration::from_micros(200),
                queue_capacity: 8192,
                params: SearchParams::default(),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let served = replay(&engine, &qs);
        let report = engine.shutdown();
        assert_eq!(served, qs.len(), "every query must be answered");
        t.row(vec![
            label.to_string(),
            format!("{:.0}", report.latency_p(50.0).as_secs_f64() * 1e6),
            format!("{:.0}", report.latency_p(99.0).as_secs_f64() * 1e6),
            format!("{:.0}", report.throughput_qps),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_kernel_rows() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E20"));
        assert!(out.contains("scalar (pinned)"));
        assert!(out.contains("pq-adc m=8"));
        assert!(out.contains("pq-adc m=16"));
        assert!(out.contains("E20b"));
        // Recall columns: scalar and simd rows must essentially agree; pq
        // rows are bounded below.
        let recalls: Vec<f64> = out
            .lines()
            .filter(|l| l.contains("scalar (pinned)") || l.contains("avx2") || l.contains("pq-adc"))
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                // E20b rows have 4 data columns ending in qps; build rows
                // end with the footprint integer — pick rows whose last
                // column parses as the small footprint.
                let last: usize = cols.last()?.parse().ok()?;
                if last <= 4 * 128 {
                    cols[cols.len() - 2].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(recalls.len() >= 3, "expected build rows with recall, got {recalls:?}");
        let scalar = recalls[0];
        for r in &recalls {
            assert!(*r >= scalar - 0.25, "a kernel mode collapsed recall: {recalls:?}");
        }
    }
}
