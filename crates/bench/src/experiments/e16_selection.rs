//! E16 (extension) — k-selection ablation: WarpSelect vs slot-insert for the
//! exhaustive (FAISS-Flat-style) scan.
//!
//! FAISS's GPU brute force owes much of its speed to WarpSelect (per-lane
//! thread queues + threshold + warp merges) rather than offering every
//! candidate to a shared k-NN structure. This ablation shows where each
//! selection strategy pays.

use wknng_baseline::{brute_force_device, brute_force_warpselect};
use wknng_data::DatasetSpec;
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::table::{cyc, Table};

/// Sweep dimensionality for both exhaustive-scan selection strategies.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(384, 128);
    let k = 8;
    // A bandwidth-rich sibling of the scaled device: exhaustive scans are
    // DRAM-bound otherwise and the selection strategy would be invisible
    // (FAISS avoids that bound with a GEMM-style distance decomposition this
    // repo does not model).
    let dev = DeviceConfig { dram_bytes_per_cycle: 160.0, ..DeviceConfig::scaled_gpu() };
    let dims: Vec<usize> = if scale.quick { vec![8, 64] } else { vec![4, 8, 16, 32, 64, 128] };
    let mut t = Table::new(
        format!("E16: exact-scan k-selection ablation (n={n}, k={k}, bandwidth-rich device)")
            .as_str(),
        &["dim", "slot-insert", "warp-select", "cycle-speedup", "instr-ratio"],
    );
    for &dim in &dims {
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 8, spread: 0.3 }
            .generate(161)
            .vectors;
        let (ga, ra) = brute_force_device(&vs, k, &dev);
        let (gb, rb) = brute_force_warpselect(&vs, k, &dev);
        // Both are exact: identical graphs.
        assert_eq!(
            ga.iter().map(|l| l.iter().map(|nb| nb.index).collect::<Vec<_>>()).collect::<Vec<_>>(),
            gb.iter().map(|l| l.iter().map(|nb| nb.index).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        t.row(vec![
            dim.to_string(),
            cyc(ra.cycles),
            cyc(rb.cycles),
            format!("{:.2}x", ra.cycles / rb.cycles),
            format!("{:.2}x", ra.stats.instructions as f64 / rb.stats.instructions as f64),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "reading: warp-select retires one candidate per lane per step instead of one per\n\
         warp — a large instruction saving while distances are cheap; at high\n\
         dimensionality per-lane gather loads erode the advantage (cf. the atomic\n\
         bucket kernel), and on a bandwidth-starved device both strategies pin to the\n\
         same DRAM roofline.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ablation_renders_with_speedups() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E16"));
        assert!(out.contains("warp-select"));
        assert!(out.contains('x'));
    }
}
