//! E12 (extension) — projection ablation: dense Gaussian vs sparse-sign
//! split directions.
//!
//! Sparse projections (Achlioptas) make the forest phase cheaper; the
//! question is how much split quality (recall) they give up.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_forest::ProjectionKind;

use crate::experiments::{timed, Scale};
use crate::table::{f3, Table};

/// Sweep projection kinds at fixed forest parameters.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 500);
    let k = 10;
    let ds = DatasetSpec::sift_like(n).generate(121);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);
    let kinds = [
        ("dense-gaussian", ProjectionKind::DenseGaussian),
        ("sparse-50%", ProjectionKind::SparseSign { density: 0.5 }),
        ("sparse-10%", ProjectionKind::SparseSign { density: 0.1 }),
        ("sparse-3%", ProjectionKind::SparseSign { density: 0.03 }),
    ];
    let mut t = Table::new(
        format!("E12: projection ablation on {} (T=4, P=0, leaf=32, k={k})", ds.name).as_str(),
        &["projection", "recall@k", "forest-ms", "total-ms"],
    );
    for (name, kind) in kinds {
        let ((g, timings), ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(4)
                .leaf_size(32)
                .exploration(0)
                .projection(kind)
                .seed(12)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        t.row(vec![name.into(), f3(recall(&g.lists, &truth)), f3(timings.forest_ms), f3(ms)]);
    }
    let mut out = t.render();
    out.push_str(
        "reading: sign projections match dense Gaussian recall at lower forest cost on\n\
         clustered data (splits need only separate clusters); sparsity only starts to\n\
         hurt when so few coordinates are sampled that splits stop correlating with\n\
         the data's principal directions.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_renders_and_dense_is_not_worst() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E12"));
        assert!(out.contains("dense-gaussian"));
        assert!(out.contains("sparse-3%"));
    }
}
