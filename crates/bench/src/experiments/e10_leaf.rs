//! E10 — leaf (bucket) size sensitivity.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

use crate::experiments::{timed, Scale};
use crate::table::{cyc, f3, Table};

/// Sweep the RP-tree leaf size; bigger buckets mean more all-pairs work but
/// higher recall per tree.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();

    let n = scale.pick(2000, 500);
    let k = 10;
    let ds = DatasetSpec::sift_like(n).generate(101);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);
    let leaves: Vec<usize> = if scale.quick { vec![16, 64] } else { vec![16, 32, 64, 128, 256] };
    let mut t = Table::new(
        format!("E10a: native leaf-size sweep on {} (T=4, P=0)", ds.name).as_str(),
        &["leaf", "recall@k", "build-ms"],
    );
    for &leaf in &leaves {
        let ((g, _), ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(4)
                .leaf_size(leaf)
                .exploration(0)
                .seed(14)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        t.row(vec![leaf.to_string(), f3(recall(&g.lists, &truth)), f3(ms)]);
    }
    out.push_str(&t.render());

    let n = scale.pick(384, 128);
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim: 64, clusters: 8, spread: 0.3 }.generate(102);
    let truth = exact_knn(&ds.vectors, 8, Metric::SquaredL2);
    let leaves: Vec<usize> = if scale.quick { vec![16, 64] } else { vec![8, 16, 32, 64, 128] };
    let mut t = Table::new(
        format!("E10b: device leaf-size sweep (n={n}, d=64, tiled, T=2)").as_str(),
        &["leaf", "recall@k", "cycles"],
    );
    for &leaf in &leaves {
        let (g, reports) = WknngBuilder::new(8)
            .trees(2)
            .leaf_size(leaf)
            .exploration(0)
            .seed(14)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        t.row(vec![leaf.to_string(), f3(recall(&g.lists, &truth)), cyc(reports.total().cycles)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_sweep_renders_and_bigger_leaves_help_recall() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E10a"));
        assert!(out.contains("E10b"));
        // Parse first table: recall at leaf 64 >= recall at leaf 16.
        let lines: Vec<&str> = out.lines().collect();
        let first_rows: Vec<&&str> = lines.iter().skip(3).take(2).collect();
        let rec = |l: &str| -> f64 { l.split_whitespace().nth(1).unwrap().parse().unwrap() };
        assert!(rec(first_rows[1]) >= rec(first_rows[0]), "{out}");
    }
}
