//! E14 (extension) — device sensitivity: the same workload across simulated
//! device classes.
//!
//! Shows which pipeline phases are bandwidth-sensitive vs compute-sensitive:
//! a bandwidth-rich device accelerates the memory-bound variants far more
//! than the compute-bound tiled kernel.

use wknng_core::{KernelVariant, WknngBuilder};
use wknng_data::DatasetSpec;
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::table::{cyc, f3, Table};

/// Run each variant on each device preset.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(512, 160);
    let dim = 64;
    let k = 8;
    let ds = DatasetSpec::GaussianClusters { n, dim, clusters: 8, spread: 0.3 }.generate(141);
    // A bandwidth-doubled sibling of the scaled device isolates the memory
    // roofline's contribution.
    let scaled = DeviceConfig::scaled_gpu();
    let wide = DeviceConfig {
        name: "scaled-gpu-2x-bw (2 SM, 40 B/cycle)",
        dram_bytes_per_cycle: scaled.dram_bytes_per_cycle * 2.0,
        ..scaled.clone()
    };
    let devices = [scaled, wide];

    let mut t = Table::new(
        format!("E14: device sensitivity (n={n}, d={dim}, k={k}, leaf=32, T=2, bucket phase)")
            .as_str(),
        &["device", "variant", "cycles", "sim-ms", "memory-bound"],
    );
    for dev in &devices {
        for variant in KernelVariant::ALL {
            let (_, reports) = WknngBuilder::new(k)
                .trees(2)
                .leaf_size(32)
                .exploration(0)
                .variant(variant)
                .seed(14)
                .build_device(&ds.vectors, dev)
                .expect("valid params");
            let b = reports.bucket;
            t.row(vec![
                dev.name.into(),
                variant.name().into(),
                cyc(b.cycles),
                f3(b.ms(dev)),
                if b.memory_bound() { "yes" } else { "no" }.into(),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "reading: doubling DRAM bandwidth helps the memory-bound basic/atomic kernels\n\
         and leaves the compute-bound tiled kernel nearly unchanged — the signature\n\
         of its shared-memory staging.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_helps_memory_bound_variants_more() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E14"));
        assert!(out.contains("2x-bw"));
        // Six rows: 2 devices x 3 variants.
        assert_eq!(out.lines().filter(|l| l.contains("w-knng-")).count(), 6);
    }
}
