//! E19 (extension) — live mutation under load: recall and tail latency
//! before, during, and after replacing 10% of the index.
//!
//! E17/E18 serve an immutable index; this experiment swaps it live. A
//! sustained closed-loop query stream runs through three windows: `before`
//! (the untouched epoch-0 index), `during` (the mutator deletes 10% of the
//! points and inserts as many fresh ones, publishing one epoch per batch
//! while the stream is in flight), and `after` (the fully replaced index).
//! Every answer names the epoch it was served from; recall@10 is scored
//! against exact ground truth over the *live points of that same epoch*, so
//! the metric is meaningful mid-swap — an answer from epoch 2 is judged by
//! epoch 2's ground truth, not by a moving target. Served p50/p99 come from
//! the per-query latencies the engine stamps on each answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wknng_core::{SearchParams, WknngBuilder};
use wknng_data::{sq_l2, DatasetSpec, VectorSet};
use wknng_serve::{
    Epoch, MutatePolicy, QueryResult, ServeConfig, ServeEngine, ServeError, ServeIndex,
};

use crate::experiments::Scale;
use crate::measure::percentile;
use crate::table::Table;

/// Submit every query `passes` times (burst per pass), wait all answers.
fn window_load(
    engine: &ServeEngine,
    queries: &VectorSet,
    passes: usize,
) -> Vec<(usize, QueryResult)> {
    let mut out = Vec::with_capacity(queries.len() * passes);
    for _ in 0..passes {
        let tickets: Vec<_> = (0..queries.len())
            .map(|q| (q, engine.submit(queries.row(q).to_vec()).expect("replay submit")))
            .collect();
        for (q, t) in tickets {
            out.push((q, t.wait().expect("replay query")));
        }
    }
    out
}

/// Recall@10 of the window's answers, each scored against exact ground
/// truth over the live points of the epoch that served it.
fn window_recall(
    answers: &[(usize, QueryResult)],
    epochs: &HashMap<u64, Arc<Epoch>>,
    queries: &VectorSet,
    k: usize,
) -> f64 {
    let mut truth: HashMap<(u64, usize), Vec<u32>> = HashMap::new();
    let (mut hits, mut total) = (0usize, 0usize);
    for (q, res) in answers {
        let epoch = &epochs[&res.epoch];
        let exact = truth.entry((res.epoch, *q)).or_insert_with(|| {
            let query = queries.row(*q);
            let mut d: Vec<(f32, u32)> = (0..epoch.len())
                .filter(|&i| !epoch.deleted[i])
                .map(|i| (sq_l2(query, epoch.vectors.row(i)), i as u32))
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            d.truncate(k);
            d.into_iter().map(|(_, i)| i).collect()
        });
        hits += res.neighbors.iter().filter(|nb| exact.contains(&nb.index)).count();
        total += k;
    }
    hits as f64 / total.max(1) as f64
}

/// Percentile of the answers' served latencies, in microseconds.
fn latency_p(answers: &[(usize, QueryResult)], p: f64) -> f64 {
    let us: Vec<f64> = answers.iter().map(|(_, r)| r.latency.as_secs_f64() * 1e6).collect();
    percentile(&us, p)
}

/// Replace 10% of the index under a sustained query stream; report recall
/// and tail latency per window.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(3000, 300);
    let nq = scale.pick(200, 40);
    let dim = 16;
    let all = DatasetSpec::Manifold { n: n + nq, ambient_dim: dim, intrinsic_dim: 3 }
        .generate(191)
        .vectors;
    let vs = VectorSet::new(all.as_flat()[..n * dim].to_vec(), dim).expect("well-formed split");
    let queries =
        VectorSet::new(all.as_flat()[n * dim..].to_vec(), dim).expect("well-formed split");
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(2)
        .seed(192)
        .build_native(&vs)
        .expect("valid build");
    let replaced = n / 10;
    let fresh = DatasetSpec::Manifold { n: replaced, ambient_dim: dim, intrinsic_dim: 3 }
        .generate(193)
        .vectors;

    let index = ServeIndex::from_parts(vs, graph.lists).expect("index matches vectors");
    let engine = Arc::new(
        ServeEngine::start(
            index,
            ServeConfig {
                shards: 2,
                batch_size: 16,
                linger: Duration::from_micros(100),
                queue_capacity: 65536,
                params: SearchParams::default(),
                mutate: Some(MutatePolicy::default()),
                ..ServeConfig::default()
            },
        )
        .expect("valid config"),
    );
    let k = SearchParams::default().k;
    let mut epochs: HashMap<u64, Arc<Epoch>> = HashMap::new();
    epochs.insert(0, engine.pin_epoch());

    // Window 1 — before: the untouched epoch-0 index.
    let before = window_load(&engine, &queries, scale.pick(4, 2));

    // Window 2 — during: a free-running stream straddles the swaps.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut answers = Vec::new();
            let mut q = 0usize;
            while !stop.load(Ordering::Relaxed) {
                match engine.submit(queries.row(q % queries.len()).to_vec()) {
                    Ok(t) => answers.push((q % queries.len(), t.wait().expect("in-swap query"))),
                    Err(ServeError::Overloaded { .. }) => {
                        std::thread::sleep(Duration::from_micros(100))
                    }
                    Err(e) => panic!("in-swap submit failed: {e}"),
                }
                q += 1;
            }
            answers
        })
    };
    // Replace 10%: two delete batches, two insert batches, one epoch each.
    let half = replaced / 2;
    for ids in [(0..half as u32).collect::<Vec<_>>(), (half as u32..replaced as u32).collect()] {
        let o = engine.delete(ids).expect("mutator running").wait().expect("delete publishes");
        epochs.insert(o.epoch, engine.find_epoch(o.epoch).expect("just published"));
    }
    for range in [0..half, half..replaced] {
        let rows: Vec<Vec<f32>> = range.map(|i| fresh.row(i).to_vec()).collect();
        let batch = VectorSet::from_rows(&rows).expect("well-formed batch");
        let o = engine.insert(batch).expect("mutator running").wait().expect("insert publishes");
        epochs.insert(o.epoch, engine.find_epoch(o.epoch).expect("just published"));
    }
    stop.store(true, Ordering::Relaxed);
    let during = load.join().expect("load thread survived");

    // Window 3 — after: the fully replaced index (epoch 4).
    let after = window_load(&engine, &queries, scale.pick(4, 2));

    let swaps_in = |answers: &[(usize, QueryResult)]| {
        let mut ids: Vec<u64> = answers.iter().map(|(_, r)| r.epoch).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    let mut t = Table::new(
        format!(
            "E19: live mutation under load (n={n}, {nq} queries, k={k}, 2 shards, \
             {replaced} points deleted + {replaced} inserted across 4 epochs)"
        )
        .as_str(),
        &["window", "answers", "epochs-seen", "recall@10", "p50-us", "p99-us"],
    );
    for (name, answers) in [("before", &before), ("during", &during), ("after", &after)] {
        t.row(vec![
            name.to_string(),
            answers.len().to_string(),
            swaps_in(answers).to_string(),
            format!("{:.3}", window_recall(answers, &epochs, &queries, k)),
            format!("{:.0}", latency_p(answers, 50.0)),
            format!("{:.0}", latency_p(answers, 99.0)),
        ]);
    }
    let engine = Arc::into_inner(engine).expect("load thread released its handle");
    let report = engine.shutdown();
    let mut out = t.render();
    out.push_str(&format!(
        "engine totals: epoch {} / {} mutations applied / {} swaps / swap p99 pause {} us\n\
         reading: each answer is scored against the ground truth of its own epoch, so\n\
         `during` measures mid-swap quality, not drift against a moving target. The\n\
         `during` window's epochs-seen > 1 shows answers straddling live publishes;\n\
         recall holds because insertion searches the live graph and locally refines,\n\
         and deletes patch orphaned reverse edges before the epoch goes live. The\n\
         publish pause is the only serving-path cost of a swap — an arc swap behind\n\
         a mutex, microseconds against a millisecond-scale p99.\n",
        report.epoch, report.mutations_applied, report.swaps, report.swap_p99_pause_us
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_sweep_renders_all_windows() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E19"), "{out}");
        for w in ["before", "during", "after"] {
            assert!(out.lines().any(|l| l.contains(w)), "missing window {w}: {out}");
        }
        assert!(out.contains("4 swaps"), "{out}");
    }
}
