//! E15 (extension) — SQ8 scalar-quantization ablation.
//!
//! The paper's constraint is that high-dimensional coordinates and k-NN sets
//! live in global memory; 8-bit coordinate codes cut that footprint (and the
//! bucket kernels' dominant traffic) 4×. This experiment measures what the
//! rounding costs: the graph is built over quantized coordinates and scored
//! against the *exact* graph of the original data.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric, QuantizedSet};
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::table::{cyc, f3, Table};

/// Build on original vs quantized coordinates; score both against exact
/// ground truth of the original data.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 500);
    let k = 10;
    let mut out = String::new();
    let mut t = Table::new(
        format!("E15: SQ8 quantization ablation (T=8, P=1, leaf=32, k={k})").as_str(),
        &["dataset", "coordinates", "recall@k", "footprint"],
    );
    for spec in
        [DatasetSpec::sift_like(n), DatasetSpec::Manifold { n, ambient_dim: 96, intrinsic_dim: 6 }]
    {
        let ds = spec.generate(151);
        let vs = &ds.vectors;
        let truth = exact_knn(vs, k, Metric::SquaredL2);
        let builder = WknngBuilder::new(k).trees(8).leaf_size(32).exploration(1).seed(15);

        let (g_full, _) = builder.build_native(vs).expect("valid params");
        t.row(vec![
            ds.name.clone(),
            "f32".into(),
            f3(recall(&g_full.lists, &truth)),
            format!("{} KiB", vs.as_flat().len() * 4 / 1024),
        ]);

        let q = QuantizedSet::quantize(vs).expect("valid set");
        let decoded = q.decode();
        let (g_q, _) = builder.build_native(&decoded).expect("valid params");
        t.row(vec![
            ds.name.clone(),
            "sq8".into(),
            f3(recall(&g_q.lists, &truth)),
            format!("{} KiB", q.code_bytes() / 1024),
        ]);
    }
    out.push_str(&t.render());

    // Device-side traffic: what the 4x footprint means for the tiled kernel
    // (modelled by shrinking the coordinate element size to one byte via a
    // quarter-dimensional proxy set carrying the same bucket structure).
    let dev = DeviceConfig::scaled_gpu();
    let n = scale.pick(512, 160);
    let ds = DatasetSpec::GaussianClusters { n, dim: 64, clusters: 8, spread: 0.3 }.generate(152);
    let (_, full) = WknngBuilder::new(8)
        .trees(2)
        .leaf_size(32)
        .exploration(0)
        .seed(15)
        .build_device(&ds.vectors, &dev)
        .expect("valid params");
    out.push_str(&format!(
        "device context: the f32 bucket phase moves {} DRAM bytes; SQ8 coordinates\n\
         would cut the coordinate share of that traffic 4x (codes are 1 byte), which\n\
         E8 shows is the dominant term for the basic/atomic kernels.\n",
        cyc(full.bucket.stats.dram_bytes as f64),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_recall_stays_close_to_full_precision() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E15"));
        assert!(out.contains("sq8"));
        // Parse recall pairs: rows alternate f32 / sq8.
        let recalls: Vec<f64> = out
            .lines()
            .filter(|l| l.trim_end().ends_with("KiB"))
            .map(|l| {
                // Row shape: <dataset> <coords> <recall> <footprint> KiB
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols[2].parse().unwrap()
            })
            .collect();
        assert_eq!(recalls.len(), 4);
        for pair in recalls.chunks(2) {
            assert!(
                pair[1] >= pair[0] - 0.05,
                "sq8 recall {} dropped too far below f32 {}",
                pair[1],
                pair[0]
            );
        }
    }
}
