//! E21 (extension) — durability ablation: checkpoint cadence vs write-path
//! overhead and warm-start recovery time.
//!
//! The crash-consistency design (DESIGN.md "Durability & recovery") leaves
//! one tunable: `checkpoint_every`, the number of acknowledged mutation
//! batches between sealed snapshots. A small cadence pays snapshot writes on
//! the mutation path and recovers almost instantly (the WAL tail is short);
//! a large cadence — or none at all — journals cheaply but must replay every
//! logged batch through the graph extender on warm start. This experiment
//! runs the *same* pinned mutation workload under a sweep of cadences, then
//! measures a cold `ServeEngine::recover` for each resulting directory:
//! checkpoints sealed, bytes left in the WAL tail, batches replayed, and the
//! recovery wall-clock. Recovered state is identical across rows by the
//! crash-matrix acceptance suite (`tests/durability.rs`); only the journal
//! shape and the time to rebuild it differ.

use wknng_core::WknngBuilder;
use wknng_data::{DatasetSpec, VectorSet};
use wknng_serve::{
    fsck, wal_path, DurabilityPolicy, MutatePolicy, ServeConfig, ServeEngine, ServeIndex,
};

use crate::experiments::Scale;
use crate::measure::timed;
use crate::table::Table;

/// Run the pinned workload under one cadence; return (checkpoints sealed,
/// WAL tail bytes, replayed batches, recovery ms).
fn one_cadence(
    vs: &VectorSet,
    lists: &[Vec<wknng_data::Neighbor>],
    fresh: &VectorSet,
    batches: usize,
    batch: usize,
    cadence: u64,
    dir: &std::path::Path,
) -> (u64, u64, u64, f64) {
    std::fs::remove_dir_all(dir).ok();
    let cfg = || ServeConfig {
        mutate: Some(MutatePolicy::default()),
        durability: Some(DurabilityPolicy {
            checkpoint_every: cadence,
            ..DurabilityPolicy::at(dir)
        }),
        ..ServeConfig::default()
    };
    let index = ServeIndex::from_parts(vs.clone(), lists.to_vec()).expect("index matches vectors");
    let engine = ServeEngine::start(index, cfg()).expect("valid config");
    let dim = vs.dim();
    for b in 0..batches {
        let rows: Vec<f32> = fresh.as_flat()[b * batch * dim..(b + 1) * batch * dim].to_vec();
        let points = VectorSet::new(rows, dim).expect("well-formed batch");
        engine.insert(points).expect("mutator running").wait().expect("insert journals");
    }
    let report = engine.shutdown();
    let tail = std::fs::metadata(wal_path(dir)).map(|m| m.len()).unwrap_or(0);
    let ((engine, info), ms) = timed(|| ServeEngine::recover(cfg()).expect("clean dir recovers"));
    engine.shutdown();
    assert!(fsck(dir).is_clean(), "post-recovery dir must verify clean");
    std::fs::remove_dir_all(dir).ok();
    (report.checkpoints, tail, info.replayed_ops, ms)
}

/// Sweep checkpoint cadence over a pinned mutation workload; report the
/// journal shape and warm-start cost each cadence leaves behind.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 250);
    let batches = scale.pick(12, 6);
    let batch = scale.pick(40, 10);
    let dim = 16;
    let vs = DatasetSpec::Manifold { n, ambient_dim: dim, intrinsic_dim: 3 }.generate(211).vectors;
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(1)
        .seed(212)
        .build_native(&vs)
        .expect("valid build");
    let fresh = DatasetSpec::Manifold { n: batches * batch, ambient_dim: dim, intrinsic_dim: 3 }
        .generate(213)
        .vectors;

    let mut dir = std::env::temp_dir();
    dir.push(format!("wknng-e21-{}", std::process::id()));
    // Cadence 0 never checkpoints: recovery is pure WAL replay from the
    // cold-start generation — the upper bound of the sweep. Cadence 5 does
    // not divide the batch count, leaving a partial WAL tail to replay —
    // the realistic case, since crashes don't wait for checkpoints.
    let cadences: &[u64] = &[0, 1, 5, batches as u64];
    let mut t = Table::new(
        format!(
            "E21: checkpoint cadence vs recovery ({n} base points, {batches} insert batches \
             of {batch}, fsync always)"
        )
        .as_str(),
        &["checkpoint-every", "checkpoints", "wal-tail-KiB", "replayed", "recovery-ms"],
    );
    for &cadence in cadences {
        let (ckpts, tail, replayed, ms) =
            one_cadence(&vs, &graph.lists, &fresh, batches, batch, cadence, &dir);
        t.row(vec![
            if cadence == 0 { "never".to_string() } else { cadence.to_string() },
            ckpts.to_string(),
            format!("{:.1}", tail as f64 / 1024.0),
            replayed.to_string(),
            format!("{ms:.1}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "reading: every row recovers the same index (the crash-matrix suite proves\n\
         bit-identical replay); the cadence only trades mutation-path snapshot cost\n\
         against warm-start replay. `never` is the replay-everything upper bound;\n\
         cadence 1 snapshots after every batch and restarts from the checkpoint\n\
         alone. The tail bytes are what fsck would scan and what a crash could\n\
         tear; replayed batches re-run insertion search + local refinement, so\n\
         recovery time scales with tail length, not index size.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_sweep_renders_every_cadence_row() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E21"), "{out}");
        assert!(out.contains("recovery-ms"), "{out}");
        // One row per swept cadence, including the replay-everything bound.
        assert!(out.lines().any(|l| l.contains("never")), "{out}");
        for cadence in ["1", "5", "6"] {
            assert!(
                out.lines().any(|l| l.split_whitespace().next() == Some(cadence)),
                "missing cadence {cadence}: {out}"
            );
        }
    }
}
