//! E9 — effect of the neighbors-of-neighbors exploration depth.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

use crate::experiments::{timed, Scale};
use crate::plot::{render, Series};
use crate::table::{cyc, f3, Table};

/// Sweep exploration iterations; report recall and cost on both backends.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();

    let n = scale.pick(2000, 500);
    let k = 10;
    let ds = DatasetSpec::sift_like(n).generate(91);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);
    let iters: Vec<usize> = if scale.quick { vec![0, 1, 2] } else { vec![0, 1, 2, 3, 4] };
    let mut t = Table::new(
        format!("E9a: native exploration sweep on {} (T=2, leaf=32)", ds.name).as_str(),
        &["explore-iters", "recall@k", "total-ms", "explore-ms"],
    );
    let mut curve = Vec::new();
    for &p in &iters {
        let ((g, timings), ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(2)
                .leaf_size(32)
                .exploration(p)
                .seed(12)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        let r = recall(&g.lists, &truth);
        curve.push((p as f64, r));
        t.row(vec![p.to_string(), f3(r), f3(ms), f3(timings.explore_ms)]);
    }
    out.push_str(&t.render());
    out.push_str(&render(
        "Figure E9: recall vs exploration rounds (diminishing returns)",
        "rounds",
        "recall@k",
        &[Series::new("w-KNNG T=2", curve)],
        40,
        10,
        false,
        false,
    ));

    let n = scale.pick(384, 128);
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim: 32, clusters: 8, spread: 0.3 }.generate(92);
    let truth = exact_knn(&ds.vectors, 8, Metric::SquaredL2);
    let mut t = Table::new(
        format!("E9b: device exploration sweep (n={n}, d=32, tiled, T=2)").as_str(),
        &["explore-iters", "recall@k", "cycles"],
    );
    for p in 0..=2usize {
        let (g, reports) = WknngBuilder::new(8)
            .trees(2)
            .leaf_size(24)
            .exploration(p)
            .seed(12)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        t.row(vec![p.to_string(), f3(recall(&g.lists, &truth)), cyc(reports.total().cycles)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_sweep_renders() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E9a"));
        assert!(out.contains("E9b"));
        assert!(out.contains("explore-iters"));
    }
}
