//! E17 (extension) — serving-engine sweep: batch size × shard count.
//!
//! The build experiments (E1–E16) measure graph *construction*; this one
//! measures the other half of the ROADMAP's north star — answering a query
//! stream against a built graph. An out-of-sample stream is replayed
//! through [`wknng_serve::ServeEngine`] at each operating point and the
//! engine's own [`wknng_serve::ServeReport`] supplies the numbers: batching
//! amortises per-batch overhead (larger `batch` → higher throughput, higher
//! p95), sharding adds parallelism until the queue, not the workers, is the
//! bottleneck.

use std::time::Duration;

use wknng_core::{SearchParams, WknngBuilder};
use wknng_data::{DatasetSpec, VectorSet};
use wknng_serve::{ServeConfig, ServeEngine, ServeIndex};

use crate::experiments::Scale;
use crate::measure::replay;
use crate::table::{f3, Table};

/// Sweep batch size × shard count over one index and query stream.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(4000, 300);
    let nq = scale.pick(1000, 60);
    let dim = 16;
    let all = DatasetSpec::Manifold { n: n + nq, ambient_dim: dim, intrinsic_dim: 3 }
        .generate(171)
        .vectors;
    let vs = VectorSet::new(all.as_flat()[..n * dim].to_vec(), dim).expect("well-formed split");
    let queries =
        VectorSet::new(all.as_flat()[n * dim..].to_vec(), dim).expect("well-formed split");
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(2)
        .seed(172)
        .build_native(&vs)
        .expect("valid build");

    let shard_counts: Vec<usize> = if scale.quick { vec![1, 2] } else { vec![1, 2, 4] };
    let batch_sizes: Vec<usize> = if scale.quick { vec![1, 16] } else { vec![1, 8, 32, 128] };
    let mut t = Table::new(
        format!("E17: serving sweep (n={n}, {nq} out-of-sample queries, k=10)").as_str(),
        &["shards", "batch", "qps", "p50-us", "p95-us", "mean-batch", "evals/q"],
    );
    for &shards in &shard_counts {
        for &batch in &batch_sizes {
            let index = ServeIndex::from_parts(vs.clone(), graph.lists.clone())
                .expect("index matches vectors");
            let engine = ServeEngine::start(
                index,
                ServeConfig {
                    shards,
                    batch_size: batch,
                    linger: Duration::from_micros(200),
                    queue_capacity: 4096,
                    params: SearchParams::default(),
                    ..ServeConfig::default()
                },
            )
            .expect("valid config");
            let served = replay(&engine, &queries);
            let report = engine.shutdown();
            assert_eq!(served, nq, "every query must be answered");
            t.row(vec![
                shards.to_string(),
                batch.to_string(),
                format!("{:.0}", report.throughput_qps),
                format!("{:.0}", report.latency_p(50.0).as_secs_f64() * 1e6),
                format!("{:.0}", report.latency_p(95.0).as_secs_f64() * 1e6),
                f3(report.mean_batch),
                format!("{:.0}", report.mean_distance_evals),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "reading: throughput is wall-clock (host threads), latency is per-query\n\
         submit-to-answer; batch=1 minimises p50 while large batches trade queueing\n\
         delay for coalescing — the same latency/throughput frontier a GPU server\n\
         rides when packing one query per warp. evals/q is identical everywhere:\n\
         batching never changes the answers, only the schedule.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_sweep_renders_all_operating_points() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E17"));
        assert!(out.contains("qps"));
        // 2 shard counts x 2 batch sizes, plus title/header/reading lines.
        assert!(out.lines().filter(|l| l.starts_with(|c: char| c.is_ascii_digit())).count() >= 4);
    }
}
