//! E2 — recall as a function of the number of RP trees.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_forest::{build_forest, pair_coverage, ForestParams, TreeParams};

use crate::experiments::{timed, Scale};
use crate::plot::{render, Series};
use crate::table::{f3, Table};

/// Sweep T for two datasets at fixed leaf size, no exploration.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 400);
    let k = 10.min(n / 4);
    let specs = [DatasetSpec::sift_like(n), DatasetSpec::UniformCube { n, dim: 16 }];
    let trees = if scale.quick { vec![1, 4, 16] } else { vec![1, 2, 4, 8, 16] };

    let mut t = Table::new(
        "E2: recall vs number of trees (leaf=32, no exploration)",
        &["dataset", "trees", "recall@k", "pair-coverage", "build-ms"],
    );
    let mut curves: Vec<Series> = Vec::new();
    for spec in specs {
        let ds = spec.generate(11);
        let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);
        let mut curve = Vec::new();
        for &tr in &trees {
            let ((g, _), ms) = timed(|| {
                WknngBuilder::new(k)
                    .trees(tr)
                    .leaf_size(32)
                    .exploration(0)
                    .seed(2)
                    .build_native(&ds.vectors)
                    .expect("valid params")
            });
            let r = recall(&g.lists, &truth);
            curve.push((tr as f64, r));
            // The forest's pair coverage upper-bounds what the bucket phase
            // alone can recall.
            let forest = build_forest(
                &ds.vectors,
                ForestParams {
                    num_trees: tr,
                    tree: TreeParams { leaf_size: 32, ..TreeParams::default() },
                },
                2,
            )
            .expect("valid");
            let cov = pair_coverage(&forest, ds.vectors.len());
            t.row(vec![ds.name.clone(), tr.to_string(), f3(r), f3(cov), f3(ms)]);
        }
        curves.push(Series::new(&ds.name, curve));
    }
    let mut out = t.render();
    out.push_str(&render(
        "Figure E2: recall@k vs number of trees",
        "trees (log2)",
        "recall@k",
        &curves,
        44,
        12,
        true,
        false,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_grows_with_trees() {
        let out = run(Scale { quick: true });
        // Extract the recall column for the first dataset and check
        // monotone (non-strict) growth.
        let recalls: Vec<f64> = out
            .lines()
            .skip(3)
            .take(3)
            .map(|l| {
                // Row shape: <dataset> <trees> <recall> <coverage> <ms>
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols[2].parse().unwrap()
            })
            .collect();
        assert_eq!(recalls.len(), 3);
        assert!(recalls[2] >= recalls[0], "{recalls:?}");
    }
}
