//! E6 — scaling with the number of points N.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

use crate::experiments::{timed, Scale};
use crate::plot::{render, Series};
use crate::table::{cyc, f3, Table};

/// Sweep N at fixed dimensionality; report native build time against the
/// exact-graph time, and simulated device cycles.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    let k = 10;
    let sizes: Vec<usize> =
        if scale.quick { vec![500, 1000, 2000] } else { vec![1000, 2000, 4000, 8000] };

    let mut t = Table::new(
        "E6a: native scaling with N (d=32, k=10, T=4, P=1, leaf=64)",
        &["n", "build-ms", "exact-ms", "ratio", "recall@k"],
    );
    let mut build_curve = Vec::new();
    let mut exact_curve = Vec::new();
    for &n in &sizes {
        let ds =
            DatasetSpec::GaussianClusters { n, dim: 32, clusters: 16, spread: 0.3 }.generate(61);
        let ((g, _), build_ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(4)
                .leaf_size(64)
                .exploration(1)
                .seed(6)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        let (truth, exact_ms) = timed(|| exact_knn(&ds.vectors, k, Metric::SquaredL2));
        build_curve.push((n as f64, build_ms));
        exact_curve.push((n as f64, exact_ms));
        t.row(vec![
            n.to_string(),
            f3(build_ms),
            f3(exact_ms),
            format!("{:.1}x", exact_ms / build_ms),
            f3(recall(&g.lists, &truth)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&render(
        "Figure E6: build time vs N (log-log) — near-linear vs quadratic",
        "n (log2)",
        "ms (log2)",
        &[Series::new("w-KNNG", build_curve), Series::new("exact brute", exact_curve)],
        48,
        12,
        true,
        true,
    ));

    let dev = DeviceConfig::scaled_gpu();
    let sizes: Vec<usize> =
        if scale.quick { vec![128, 256, 512] } else { vec![128, 256, 512, 1024] };
    let mut t = Table::new(
        "E6b: simulated cycles with N (d=64, k=8, tiled, T=2)",
        &["n", "cycles", "cycles/point"],
    );
    for &n in &sizes {
        let ds =
            DatasetSpec::GaussianClusters { n, dim: 64, clusters: 8, spread: 0.3 }.generate(62);
        let (_, reports) = WknngBuilder::new(8)
            .trees(2)
            .leaf_size(32)
            .exploration(0)
            .seed(6)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        let c = reports.total().cycles;
        t.row(vec![n.to_string(), cyc(c), cyc(c / n as f64)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_tables_render() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E6a"));
        assert!(out.contains("E6b"));
        assert!(out.contains("ratio"));
    }
}
