//! E1 — dataset inventory (the evaluation's "Table 1").

use wknng_data::DatasetSpec;

use crate::experiments::Scale;
use crate::table::{f3, Table};

/// The dataset roster used across the evaluation, at the evaluation's
/// standard size.
pub fn roster(scale: Scale) -> Vec<DatasetSpec> {
    let n = scale.pick(2000, 400);
    vec![
        DatasetSpec::mnist_like(n),
        DatasetSpec::sift_like(n),
        DatasetSpec::UniformCube { n, dim: 16 },
        DatasetSpec::HypersphereShell { n, dim: 64 },
        DatasetSpec::Manifold { n, ambient_dim: 256, intrinsic_dim: 8 },
    ]
}

/// Render the inventory with basic geometric statistics.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "E1: dataset inventory (synthetic stand-ins, see DESIGN.md)",
        &["dataset", "n", "dim", "mean-norm", "role"],
    );
    let roles = [
        "MNIST-like: high-d, few clusters",
        "SIFT-like: mid-d, many clusters",
        "structureless worst case",
        "cosine-normalised embeddings",
        "low intrinsic dim in high ambient",
    ];
    for (spec, role) in roster(scale).into_iter().zip(roles) {
        let ds = spec.generate(1);
        let mean_norm: f64 = ds.vectors.rows().map(|r| wknng_data::norm(r) as f64).sum::<f64>()
            / ds.vectors.len() as f64;
        t.row(vec![
            ds.name.clone(),
            ds.vectors.len().to_string(),
            ds.vectors.dim().to_string(),
            f3(mean_norm),
            role.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_lists_five_datasets() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E1"));
        assert_eq!(out.matches('\n').count(), 8); // title + header + rule + 5 rows
        assert!(out.contains("sphere"));
        assert!(out.contains("manifold8"));
    }
}
