//! E13 (extension) — exploration-mode ablation: full neighbors-of-neighbors
//! join vs the NN-descent-style incremental join.

use wknng_core::{recall, ExplorationMode, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};

use crate::experiments::Scale;
use crate::table::{f3, Table};

/// Sweep rounds for both exploration modes on one dataset.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(2000, 500);
    let k = 10;
    let ds = DatasetSpec::sift_like(n).generate(131);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);
    let iters: Vec<usize> = if scale.quick { vec![1, 2] } else { vec![1, 2, 3, 4] };

    let mut t = Table::new(
        format!("E13: exploration mode ablation on {} (T=2, leaf=32, k={k})", ds.name).as_str(),
        &["rounds", "mode", "recall@k", "explore-ms"],
    );
    for &p in &iters {
        for (name, mode) in
            [("full", ExplorationMode::Full), ("incremental", ExplorationMode::Incremental)]
        {
            let (g, timings) = WknngBuilder::new(k)
                .trees(2)
                .leaf_size(32)
                .exploration(p)
                .exploration_mode(mode)
                .seed(13)
                .build_native(&ds.vectors)
                .expect("valid params");
            t.row(vec![
                p.to_string(),
                name.into(),
                f3(recall(&g.lists, &truth)),
                f3(timings.explore_ms),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "reading: round 1 is identical by construction; on later rounds the\n\
         incremental join skips already-examined paths, trading a little recall\n\
         per round for a shrinking amount of work (it converges when no list\n\
         changes).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_appear_per_round() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E13"));
        assert!(out.matches("incremental").count() >= 2);
        assert!(out.matches(" full").count() >= 2);
    }
}
