//! E3 — the headline experiment: time-vs-recall frontier of w-KNNG against
//! the FAISS stand-ins (IVF-Flat and brute force), on both axes:
//!
//! * wall-clock milliseconds, native backends of both methods;
//! * simulated device cycles, warp-centric kernels of both methods.
//!
//! The paper's claim: up to 639% (6.39×) faster than FAISS at equivalent
//! approximate-K-NNG accuracy.

use wknng_baseline::{
    brute_force_device, brute_force_warpselect, ivf_knng_device, nn_descent, Hnsw, HnswParams,
    IvfFlat, IvfParams, NnDescentParams,
};
use wknng_core::{recall, KernelVariant, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

use crate::experiments::{speedup_at_matched_recall, timed, OperatingPoint, Scale};
use crate::table::{cyc, f3, Table};

/// The w-KNNG configurations swept on the frontier: (trees, exploration).
const WKNNG_CONFIGS: [(usize, usize); 6] = [(2, 0), (4, 1), (8, 1), (8, 2), (8, 3), (16, 3)];

/// Native wall-clock frontier.
fn native_frontier(scale: Scale, out: &mut String) {
    let n = scale.pick(3000, 600);
    let k = 10;
    // Low-intrinsic-dimension manifold data: the geometry of real feature
    // embeddings (the paper's motivating workloads), where coarse-quantizer
    // cells do not align with neighborhoods.
    let ds = DatasetSpec::Manifold { n, ambient_dim: 128, intrinsic_dim: 6 }.generate(31);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);

    let mut ours: Vec<OperatingPoint> = Vec::new();
    let mut t = Table::new(
        format!("E3a: native wall-clock frontier on {} (k={k})", ds.name).as_str(),
        &["method", "config", "ms", "recall@k"],
    );
    for (trees, explore) in WKNNG_CONFIGS {
        let ((g, _), ms) = timed(|| {
            WknngBuilder::new(k)
                .trees(trees)
                .leaf_size(64)
                .exploration(explore)
                .seed(3)
                .build_native(&ds.vectors)
                .expect("valid params")
        });
        let r = recall(&g.lists, &truth);
        ours.push(OperatingPoint { label: format!("T={trees},P={explore}"), cost: ms, recall: r });
        t.row(vec!["w-KNNG".into(), format!("T={trees},P={explore}"), f3(ms), f3(r)]);
    }

    let nlist = (n as f64).sqrt() as usize;
    let (ivf, train_ms) =
        timed(|| IvfFlat::build(&ds.vectors, IvfParams { nlist, train_iters: 8, seed: 5 }));
    let mut base: Vec<OperatingPoint> = Vec::new();
    for nprobe in [1usize, 2, 4, 8, 16, 32, nlist] {
        let (lists, ms) = timed(|| ivf.knng(&ds.vectors, k, nprobe));
        let r = recall(&lists, &truth);
        let cost = train_ms + ms;
        base.push(OperatingPoint { label: format!("nprobe={nprobe}"), cost, recall: r });
        t.row(vec!["IVF-Flat".into(), format!("nlist={nlist},nprobe={nprobe}"), f3(cost), f3(r)]);
    }
    // Context rows: the other K-NNG construction families.
    let ((hnsw_lists, hnsw_build_ms), hnsw_knng_ms) = timed(|| {
        let (index, build_ms) =
            timed(|| Hnsw::build(&ds.vectors, HnswParams { m: 12, ..HnswParams::default() }));
        (index.knng(&ds.vectors, k, 64), build_ms)
    });
    t.row(vec![
        "HNSW".into(),
        "M=12,ef=64".into(),
        f3(hnsw_build_ms + hnsw_knng_ms),
        f3(recall(&hnsw_lists, &truth)),
    ]);
    let ((nd_lists, _), nd_ms) =
        timed(|| nn_descent(&ds.vectors, &NnDescentParams { k, ..NnDescentParams::default() }));
    t.row(vec!["NN-descent".into(), "default".into(), f3(nd_ms), f3(recall(&nd_lists, &truth))]);
    let (_, brute_ms) = timed(|| exact_knn(&ds.vectors, k, Metric::SquaredL2));
    t.row(vec!["brute".into(), "exact".into(), f3(brute_ms), "1.000".into()]);
    out.push_str(&t.render());

    let mut s = Table::new(
        "E3a: speedup over IVF-Flat at matched recall (tolerance 0.01)",
        &["w-KNNG config", "speedup"],
    );
    let matched = speedup_at_matched_recall(&ours, &base, 0.01);
    for (label, sp) in &matched {
        s.row(vec![label.clone(), sp.map(|v| format!("{v:.2}x")).unwrap_or_else(|| "-".into())]);
    }
    out.push_str(&s.render());
    if let Some(best) = matched
        .iter()
        .filter_map(|(_, sp)| *sp)
        .fold(None, |a: Option<f64>, v| Some(a.map_or(v, |x| x.max(v))))
    {
        out.push_str(&format!("headline: up to {best:.2}x faster than IVF-Flat at equivalent accuracy (paper: up to 6.39x)\n"));
    }
}

/// Simulated-device cycle frontier.
fn device_frontier(scale: Scale, out: &mut String) {
    let n = scale.pick(768, 224);
    let k = 8;
    let dim = 96;
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::Manifold { n, ambient_dim: dim, intrinsic_dim: 6 }.generate(33);
    let truth = exact_knn(&ds.vectors, k, Metric::SquaredL2);

    let mut t = Table::new(
        format!("E3b: simulated device-cycle frontier (n={n}, d={dim}, k={k}, {})", dev.name)
            .as_str(),
        &["method", "config", "cycles", "sim-ms", "recall@k"],
    );
    let mut ours = Vec::new();
    for (variant, trees, explore) in [
        (KernelVariant::Tiled, 2, 0),
        (KernelVariant::Tiled, 4, 1),
        (KernelVariant::Tiled, 8, 2),
        (KernelVariant::Tiled, 8, 3),
        (KernelVariant::Atomic, 4, 1),
        (KernelVariant::Basic, 4, 1),
    ] {
        let (g, reports) = WknngBuilder::new(k)
            .trees(trees)
            .leaf_size(32)
            .exploration(explore)
            .variant(variant)
            .seed(7)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        let total = reports.total();
        let r = recall(&g.lists, &truth);
        let label = format!("{},T={trees},P={explore}", variant.name());
        ours.push(OperatingPoint { label: label.clone(), cost: total.cycles, recall: r });
        t.row(vec!["w-KNNG".into(), label, cyc(total.cycles), f3(total.ms(&dev)), f3(r)]);
    }

    let nlist = 32.min(n / 8).max(2);
    // Train the coarse quantizer on the same simulated device. Its cost is
    // reported as its own row rather than folded into every operating point:
    // at paper scale (10^6 points) training amortizes to noise, and folding
    // it in at this scaled-down n would overstate w-KNNG's advantage.
    let (quantizer, train_report) =
        wknng_baseline::train_kmeans_device(&ds.vectors, nlist, 8, 5, &dev);
    let ivf = IvfFlat::from_quantizer(quantizer);
    t.row(vec![
        "IVF-Flat".into(),
        format!("train nlist={nlist} (amortized)"),
        cyc(train_report.cycles),
        f3(train_report.ms(&dev)),
        "-".into(),
    ]);
    let mut base = Vec::new();
    let probes: Vec<usize> =
        if scale.quick { vec![1, 4, nlist] } else { vec![1, 2, 4, 8, 16, nlist] };
    for nprobe in probes {
        let (lists, report) = ivf_knng_device(&ds.vectors, &ivf, k, nprobe, &dev);
        let r = recall(&lists, &truth);
        base.push(OperatingPoint {
            label: format!("nprobe={nprobe}"),
            cost: report.cycles,
            recall: r,
        });
        t.row(vec![
            "IVF-Flat".into(),
            format!("nlist={nlist},nprobe={nprobe}"),
            cyc(report.cycles),
            f3(report.ms(&dev)),
            f3(r),
        ]);
    }
    let (lists, report) = brute_force_device(&ds.vectors, k, &dev);
    t.row(vec![
        "brute".into(),
        "exact (slot insert)".into(),
        cyc(report.cycles),
        f3(report.ms(&dev)),
        f3(recall(&lists, &truth)),
    ]);
    let (lists, report) = brute_force_warpselect(&ds.vectors, k, &dev);
    t.row(vec![
        "brute".into(),
        "exact (warp-select)".into(),
        cyc(report.cycles),
        f3(report.ms(&dev)),
        f3(recall(&lists, &truth)),
    ]);
    out.push_str(&t.render());

    let mut s = Table::new(
        "E3b: device-cycle speedup over IVF-Flat at matched recall (tolerance 0.01)",
        &["w-KNNG config", "speedup"],
    );
    let matched = speedup_at_matched_recall(&ours, &base, 0.01);
    for (label, sp) in &matched {
        s.row(vec![label.clone(), sp.map(|v| format!("{v:.2}x")).unwrap_or_else(|| "-".into())]);
    }
    out.push_str(&s.render());
    if let Some(best) = matched
        .iter()
        .filter_map(|(_, sp)| *sp)
        .fold(None, |a: Option<f64>, v| Some(a.map_or(v, |x| x.max(v))))
    {
        out.push_str(&format!("headline: up to {best:.2}x faster than IVF-Flat at equivalent accuracy (paper: up to 6.39x)\n"));
    }
}

/// Run both frontier tables.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    native_frontier(scale, &mut out);
    device_frontier(scale, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_produces_both_tables() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E3a"));
        assert!(out.contains("E3b"));
        assert!(out.contains("w-KNNG"));
        assert!(out.contains("IVF-Flat"));
        assert!(out.contains("speedup"));
    }
}
