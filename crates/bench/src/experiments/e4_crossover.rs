//! E4 — the dimensionality crossover between the atomic and tiled variants.
//!
//! Abstract claim: "w-KNNG atomic is more successful when applied to a
//! smaller number of dimensions, while the tiled w-KNNG approach was
//! successful in general scenarios for higher dimensional points."
//! This experiment sweeps the ambient dimension at fixed n/k/leaf and
//! reports the **bucket-phase** simulated cycles of each variant (the
//! variants share the forest and exploration phases).

use wknng_core::{KernelVariant, WknngBuilder};
use wknng_data::DatasetSpec;
use wknng_simt::DeviceConfig;

use crate::experiments::Scale;
use crate::plot::{render, Series};
use crate::table::{cyc, Table};

/// Bucket-phase cycles per variant for one dimensionality.
pub fn bucket_cycles(n: usize, dim: usize, k: usize) -> [(KernelVariant, f64); 3] {
    let dev = DeviceConfig::scaled_gpu();
    let ds = DatasetSpec::GaussianClusters { n, dim, clusters: 8, spread: 0.3 }.generate(41);
    KernelVariant::ALL.map(|variant| {
        let (_, reports) = WknngBuilder::new(k)
            .trees(2)
            .leaf_size(32)
            .exploration(0)
            .variant(variant)
            .seed(9)
            .build_device(&ds.vectors, &dev)
            .expect("valid params");
        (variant, reports.bucket.cycles)
    })
}

/// Sweep dimensionality and report the per-variant cycle counts.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(640, 192);
    let k = 8;
    let dims: Vec<usize> =
        if scale.quick { vec![4, 32, 128] } else { vec![4, 8, 16, 32, 64, 128, 256] };

    let mut t = Table::new(
        format!("E4: bucket-phase cycles vs dimensionality (n={n}, k={k}, leaf=32, T=2)").as_str(),
        &["dim", "basic", "atomic", "tiled", "winner"],
    );
    let mut crossover: Option<usize> = None;
    let mut prev_atomic_wins = None;
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for &dim in &dims {
        let cycles = bucket_cycles(n, dim, k);
        let winner = cycles
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("three variants")
            .0;
        let atomic = cycles.iter().find(|(v, _)| *v == KernelVariant::Atomic).unwrap().1;
        let tiled = cycles.iter().find(|(v, _)| *v == KernelVariant::Tiled).unwrap().1;
        let basic = cycles.iter().find(|(v, _)| *v == KernelVariant::Basic).unwrap().1;
        let atomic_wins = atomic < tiled;
        if let Some(prev) = prev_atomic_wins {
            if prev && !atomic_wins && crossover.is_none() {
                crossover = Some(dim);
            }
        }
        prev_atomic_wins = Some(atomic_wins);
        curves[0].push((dim as f64, basic));
        curves[1].push((dim as f64, atomic));
        curves[2].push((dim as f64, tiled));
        t.row(vec![
            dim.to_string(),
            cyc(basic),
            cyc(atomic),
            cyc(tiled),
            winner.name().to_string(),
        ]);
    }
    let mut out = t.render();
    let series: Vec<Series> = ["basic", "atomic", "tiled"]
        .iter()
        .zip(&curves)
        .map(|(name, c)| Series::new(name, c.clone()))
        .collect();
    out.push_str(&render(
        "Figure E4: bucket-phase cycles vs dimensionality (log-log)",
        "dim (log2)",
        "cycles (log2)",
        &series,
        48,
        14,
        true,
        true,
    ));
    match crossover {
        Some(d) => out.push_str(&format!(
            "atomic->tiled crossover at dim ~{d} (atomic wins below, tiled above)\n"
        )),
        None => out.push_str("no atomic->tiled crossover inside the swept range\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_beats_basic_at_high_dim() {
        let cycles = bucket_cycles(128, 128, 4);
        let basic = cycles.iter().find(|(v, _)| *v == KernelVariant::Basic).unwrap().1;
        let tiled = cycles.iter().find(|(v, _)| *v == KernelVariant::Tiled).unwrap().1;
        assert!(tiled < basic, "tiled ({tiled}) must beat basic ({basic}) at dim 128");
    }
}
