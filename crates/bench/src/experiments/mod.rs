//! The experiment suite: one module per table/figure of the evaluation
//! (experiment index in `DESIGN.md`; claimed-vs-measured in
//! `EXPERIMENTS.md`).

pub mod e10_leaf;
pub mod e11_difficulty;
pub mod e12_projections;
pub mod e13_explore_mode;
pub mod e14_devices;
pub mod e15_quant;
pub mod e16_selection;
pub mod e17_serve;
pub mod e18_overload;
pub mod e19_mutation;
pub mod e1_datasets;
pub mod e2_trees;
pub mod e3_frontier;
pub mod e4_crossover;
pub mod e5_k;
pub mod e6_scaling;
pub mod e7_phases;
pub mod e8_counters;
pub mod e9_explore;

use std::time::Instant;

/// Workload scale selector: `quick` shrinks every experiment to smoke-test
/// size (used by integration tests and `reproduce --quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Run the reduced-size variant.
    pub quick: bool,
}

impl Scale {
    /// Pick `full` or `quick` according to the scale.
    pub fn pick(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Run `f`, returning its value and wall-clock milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

/// A measured operating point of some method.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Configuration label (e.g. "T=8,P=1" or "nprobe=4").
    pub label: String,
    /// Cost (wall-clock ms or simulated cycles — one axis per table).
    pub cost: f64,
    /// Recall@K achieved.
    pub recall: f64,
}

/// For each of `ours`, the speedup over the cheapest `baseline` point of at
/// least (almost) the same recall; `None` when the baseline never reaches
/// that recall.
///
/// This is the paper's headline metric: "X% faster than FAISS at equivalent
/// accuracy".
pub fn speedup_at_matched_recall(
    ours: &[OperatingPoint],
    baseline: &[OperatingPoint],
    tolerance: f64,
) -> Vec<(String, Option<f64>)> {
    ours.iter()
        .map(|op| {
            let best = baseline
                .iter()
                .filter(|b| b.recall + tolerance >= op.recall)
                .map(|b| b.cost)
                .fold(f64::INFINITY, f64::min);
            let s = if best.is_finite() { Some(best / op.cost) } else { None };
            (op.label.clone(), s)
        })
        .collect()
}

/// All experiment ids, in order. E1–E10 reconstruct the paper's evaluation;
/// E11–E19 are extension ablations and systems studies documented in
/// `DESIGN.md`.
pub const ALL_IDS: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19",
];

/// Dispatch an experiment by id; returns the rendered report.
pub fn run(id: &str, scale: Scale) -> Option<String> {
    match id {
        "e1" => Some(e1_datasets::run(scale)),
        "e2" => Some(e2_trees::run(scale)),
        "e3" => Some(e3_frontier::run(scale)),
        "e4" => Some(e4_crossover::run(scale)),
        "e5" => Some(e5_k::run(scale)),
        "e6" => Some(e6_scaling::run(scale)),
        "e7" => Some(e7_phases::run(scale)),
        "e8" => Some(e8_counters::run(scale)),
        "e9" => Some(e9_explore::run(scale)),
        "e10" => Some(e10_leaf::run(scale)),
        "e11" => Some(e11_difficulty::run(scale)),
        "e12" => Some(e12_projections::run(scale)),
        "e13" => Some(e13_explore_mode::run(scale)),
        "e14" => Some(e14_devices::run(scale)),
        "e15" => Some(e15_quant::run(scale)),
        "e16" => Some(e16_selection::run(scale)),
        "e17" => Some(e17_serve::run(scale)),
        "e18" => Some(e18_overload::run(scale)),
        "e19" => Some(e19_mutation::run(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_sizes() {
        assert_eq!(Scale { quick: true }.pick(100, 10), 10);
        assert_eq!(Scale { quick: false }.pick(100, 10), 100);
    }

    #[test]
    fn timed_measures_something() {
        let (v, ms) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(ms >= 0.0);
    }

    #[test]
    fn matched_recall_speedup_logic() {
        let ours = vec![
            OperatingPoint { label: "a".into(), cost: 10.0, recall: 0.9 },
            OperatingPoint { label: "b".into(), cost: 5.0, recall: 0.99 },
        ];
        let base = vec![
            OperatingPoint { label: "p1".into(), cost: 30.0, recall: 0.91 },
            OperatingPoint { label: "p2".into(), cost: 60.0, recall: 0.95 },
        ];
        let s = speedup_at_matched_recall(&ours, &base, 0.0);
        assert_eq!(s[0].0, "a");
        assert_eq!(s[0].1, Some(3.0)); // 30 / 10: p1 already matches 0.9
        assert_eq!(s[1].1, None); // baseline never reaches 0.99
                                  // With a generous tolerance the 0.95 baseline counts for 0.99.
        let s = speedup_at_matched_recall(&ours, &base, 0.05);
        assert_eq!(s[1].1, Some(12.0)); // 60 / 5
    }

    #[test]
    fn dispatch_rejects_unknown_ids() {
        assert!(run("nope", Scale { quick: true }).is_none());
    }
}
