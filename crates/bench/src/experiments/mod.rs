//! The experiment suite: one module per table/figure of the evaluation
//! (experiment index in `DESIGN.md`; claimed-vs-measured in
//! `EXPERIMENTS.md`).
//!
//! Every experiment is described by a [`REGISTRY`] entry — id, title, swept
//! parameters and emitted metrics — and dispatched through it (`wknng bench
//! --list` renders the registry; `--only` selects by id). The shared
//! timing/percentile helpers live in [`crate::measure`]; the re-exports
//! here are the compatibility spelling the experiment modules use.

pub mod e10_leaf;
pub mod e11_difficulty;
pub mod e12_projections;
pub mod e13_explore_mode;
pub mod e14_devices;
pub mod e15_quant;
pub mod e16_selection;
pub mod e17_serve;
pub mod e18_overload;
pub mod e19_mutation;
pub mod e1_datasets;
pub mod e20_simd_pq;
pub mod e21_recovery;
pub mod e2_trees;
pub mod e3_frontier;
pub mod e4_crossover;
pub mod e5_k;
pub mod e6_scaling;
pub mod e7_phases;
pub mod e8_counters;
pub mod e9_explore;

pub use crate::measure::timed;

/// Workload scale selector: `quick` shrinks every experiment to smoke-test
/// size (used by integration tests and `reproduce --quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Run the reduced-size variant.
    pub quick: bool,
}

impl Scale {
    /// Pick `full` or `quick` according to the scale.
    pub fn pick(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A measured operating point of some method.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Configuration label (e.g. "T=8,P=1" or "nprobe=4").
    pub label: String,
    /// Cost (wall-clock ms or simulated cycles — one axis per table).
    pub cost: f64,
    /// Recall@K achieved.
    pub recall: f64,
}

/// For each of `ours`, the speedup over the cheapest `baseline` point of at
/// least (almost) the same recall; `None` when the baseline never reaches
/// that recall.
///
/// This is the paper's headline metric: "X% faster than FAISS at equivalent
/// accuracy".
pub fn speedup_at_matched_recall(
    ours: &[OperatingPoint],
    baseline: &[OperatingPoint],
    tolerance: f64,
) -> Vec<(String, Option<f64>)> {
    ours.iter()
        .map(|op| {
            let best = baseline
                .iter()
                .filter(|b| b.recall + tolerance >= op.recall)
                .map(|b| b.cost)
                .fold(f64::INFINITY, f64::min);
            let s = if best.is_finite() { Some(best / op.cost) } else { None };
            (op.label.clone(), s)
        })
        .collect()
}

/// Machine-readable description of one experiment: what it is, what it
/// sweeps, and which metrics its report emits.
pub struct ExperimentInfo {
    /// Stable id (`e1` … `e21`).
    pub id: &'static str,
    /// One-line title (the table/figure it reconstructs).
    pub title: &'static str,
    /// Headline swept parameters.
    pub params: &'static str,
    /// Metric columns the rendered report emits.
    pub metrics: &'static [&'static str],
    /// Render the experiment's report.
    pub run: fn(Scale) -> String,
}

/// Every experiment, in id order. E1–E10 reconstruct the paper's
/// evaluation; E11–E21 are extension ablations and systems studies
/// documented in `DESIGN.md`.
pub const REGISTRY: &[ExperimentInfo] = &[
    ExperimentInfo {
        id: "e1",
        title: "dataset inventory (Table 1)",
        params: "dataset kind",
        metrics: &["n", "dim", "intrinsic-dim", "mean-nn-dist"],
        run: e1_datasets::run,
    },
    ExperimentInfo {
        id: "e2",
        title: "recall vs number of RP trees",
        params: "trees",
        metrics: &["ms", "recall@k"],
        run: e2_trees::run,
    },
    ExperimentInfo {
        id: "e3",
        title: "time-vs-recall frontier vs FAISS stand-ins (headline)",
        params: "trees x exploration; nprobe",
        metrics: &["ms", "cycles", "recall@k", "speedup"],
        run: e3_frontier::run,
    },
    ExperimentInfo {
        id: "e4",
        title: "atomic/tiled dimensionality crossover",
        params: "dim",
        metrics: &["cycles", "sim-ms"],
        run: e4_crossover::run,
    },
    ExperimentInfo {
        id: "e5",
        title: "neighbor count K vs build cost and recall",
        params: "k",
        metrics: &["ms", "recall@k"],
        run: e5_k::run,
    },
    ExperimentInfo {
        id: "e6",
        title: "scaling with the number of points N",
        params: "n",
        metrics: &["ms", "ms/point", "recall@k"],
        run: e6_scaling::run,
    },
    ExperimentInfo {
        id: "e7",
        title: "pipeline phase breakdown",
        params: "phase",
        metrics: &["ms", "cycles", "share"],
        run: e7_phases::run,
    },
    ExperimentInfo {
        id: "e8",
        title: "hardware-counter ablation of the warp-centric variants",
        params: "variant",
        metrics: &["cycles", "dram-bytes", "atomics", "divergence"],
        run: e8_counters::run,
    },
    ExperimentInfo {
        id: "e9",
        title: "neighbors-of-neighbors exploration depth",
        params: "exploration",
        metrics: &["ms", "recall@k"],
        run: e9_explore::run,
    },
    ExperimentInfo {
        id: "e10",
        title: "leaf (bucket) size sensitivity",
        params: "leaf",
        metrics: &["ms", "recall@k"],
        run: e10_leaf::run,
    },
    ExperimentInfo {
        id: "e11",
        title: "dataset difficulty vs achieved recall",
        params: "dataset kind",
        metrics: &["intrinsic-dim", "hubness", "recall@k"],
        run: e11_difficulty::run,
    },
    ExperimentInfo {
        id: "e12",
        title: "projection ablation: dense Gaussian vs sparse sign",
        params: "projection",
        metrics: &["ms", "recall@k"],
        run: e12_projections::run,
    },
    ExperimentInfo {
        id: "e13",
        title: "exploration-mode ablation: full join vs incremental",
        params: "mode",
        metrics: &["ms", "evals", "recall@k"],
        run: e13_explore_mode::run,
    },
    ExperimentInfo {
        id: "e14",
        title: "device sensitivity across simulated device classes",
        params: "device x variant",
        metrics: &["cycles", "sim-ms", "memory-bound"],
        run: e14_devices::run,
    },
    ExperimentInfo {
        id: "e15",
        title: "SQ8 scalar-quantization ablation",
        params: "quantization",
        metrics: &["ms", "recall@k", "bytes/point"],
        run: e15_quant::run,
    },
    ExperimentInfo {
        id: "e16",
        title: "k-selection ablation: WarpSelect vs slot-insert",
        params: "selection",
        metrics: &["cycles", "sim-ms"],
        run: e16_selection::run,
    },
    ExperimentInfo {
        id: "e17",
        title: "serving-engine sweep: batch size x shard count",
        params: "shards x batch",
        metrics: &["qps", "p50-us", "p95-us", "evals/q"],
        run: e17_serve::run,
    },
    ExperimentInfo {
        id: "e18",
        title: "overload sweep: tail latency with/without shedding",
        params: "offered-load x policy",
        metrics: &["served", "shed", "p50-us", "p99-us", "qps"],
        run: e18_overload::run,
    },
    ExperimentInfo {
        id: "e19",
        title: "live mutation under load: 10% replacement across epochs",
        params: "window",
        metrics: &["recall@10", "p50-us", "p99-us", "epochs-seen"],
        run: e19_mutation::run,
    },
    ExperimentInfo {
        id: "e20",
        title: "distance-kernel ablation: scalar vs SIMD vs PQ-ADC",
        params: "kernel x quantization",
        metrics: &["build-ms", "kpoints/s", "recall@10", "coord-B/point", "p50-us", "p99-us"],
        run: e20_simd_pq::run,
    },
    ExperimentInfo {
        id: "e21",
        title: "durability ablation: checkpoint cadence vs recovery time",
        params: "checkpoint-every",
        metrics: &["checkpoints", "wal-tail-KiB", "replayed", "recovery-ms"],
        run: e21_recovery::run,
    },
];

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<&'static ExperimentInfo> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// All experiment ids, in registry order.
pub fn all_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id).collect()
}

/// Dispatch an experiment by id; returns the rendered report.
pub fn run(id: &str, scale: Scale) -> Option<String> {
    find(id).map(|e| (e.run)(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_sizes() {
        assert_eq!(Scale { quick: true }.pick(100, 10), 10);
        assert_eq!(Scale { quick: false }.pick(100, 10), 100);
    }

    #[test]
    fn matched_recall_speedup_logic() {
        let ours = vec![
            OperatingPoint { label: "a".into(), cost: 10.0, recall: 0.9 },
            OperatingPoint { label: "b".into(), cost: 5.0, recall: 0.99 },
        ];
        let base = vec![
            OperatingPoint { label: "p1".into(), cost: 30.0, recall: 0.91 },
            OperatingPoint { label: "p2".into(), cost: 60.0, recall: 0.95 },
        ];
        let s = speedup_at_matched_recall(&ours, &base, 0.0);
        assert_eq!(s[0].0, "a");
        assert_eq!(s[0].1, Some(3.0)); // 30 / 10: p1 already matches 0.9
        assert_eq!(s[1].1, None); // baseline never reaches 0.99
                                  // With a generous tolerance the 0.95 baseline counts for 0.99.
        let s = speedup_at_matched_recall(&ours, &base, 0.05);
        assert_eq!(s[1].1, Some(12.0)); // 60 / 5
    }

    #[test]
    fn registry_covers_e1_through_e21_in_order() {
        assert_eq!(REGISTRY.len(), 21);
        for (i, e) in REGISTRY.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1), "registry out of order at #{i}");
            assert!(!e.title.is_empty());
            assert!(!e.metrics.is_empty(), "{} declares no metrics", e.id);
        }
        assert_eq!(all_ids().first(), Some(&"e1"));
        assert_eq!(all_ids().last(), Some(&"e21"));
    }

    #[test]
    fn dispatch_goes_through_the_registry() {
        assert!(run("nope", Scale { quick: true }).is_none());
        assert!(find("e14").is_some());
        // A registry-dispatched run renders the experiment's own table.
        let out = run("e14", Scale { quick: true }).expect("known id");
        assert!(out.contains("E14"), "{out}");
    }
}
