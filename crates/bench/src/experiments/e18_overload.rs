//! E18 (extension) — overload sweep: tail latency with and without the
//! adaptive shedding controller.
//!
//! E17 measures the engine inside its capacity envelope; this experiment
//! straddles it. Per-query service time is first calibrated with a short
//! sequential run, then the stream is offered **open-loop** (arrivals on a
//! fixed schedule, never waiting for answers — the arrival pattern real
//! traffic has) at `multiplier ×` the measured capacity of the single
//! shard. At 0.5× the queue never stands and all modes coincide; at 4× the
//! queue stands for the whole run — the sustained-overload regime the
//! controller exists for. Three policies are compared: `none` (drain
//! everything, tail latency unbounded), `shed` (CoDel-style sojourn
//! shedding, `brownout_tiers = 0` so served answers are bit-identical), and
//! `brownout+shed` (walk the degraded-params ladder first, then shed). The
//! engine's own report supplies every number.

use std::time::{Duration, Instant};

use wknng_core::{SearchParams, WknngBuilder};
use wknng_data::{DatasetSpec, VectorSet};
use wknng_serve::{ServeConfig, ServeEngine, ServeError, ServeIndex, ShedPolicy, Ticket};

use crate::experiments::Scale;
use crate::table::Table;

/// Sweep offered-load multiplier × shedding policy over one index.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(3000, 300);
    let nq = scale.pick(400, 50);
    let dim = 16;
    let all = DatasetSpec::Manifold { n: n + nq, ambient_dim: dim, intrinsic_dim: 3 }
        .generate(181)
        .vectors;
    let vs = VectorSet::new(all.as_flat()[..n * dim].to_vec(), dim).expect("well-formed split");
    let queries =
        VectorSet::new(all.as_flat()[n * dim..].to_vec(), dim).expect("well-formed split");
    let (graph, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(32)
        .exploration(2)
        .seed(182)
        .build_native(&vs)
        .expect("valid build");

    let base_cfg = || ServeConfig {
        shards: 1,
        batch_size: 8,
        linger: Duration::from_micros(100),
        queue_capacity: 65536,
        params: SearchParams::default(),
        ..ServeConfig::default()
    };

    // Calibrate the shard's *batched* service rate: burst-submit a probe
    // load and divide by the drain time. (A closed-loop probe would charge
    // the linger wait to every query and overestimate service time — the
    // capacity that matters is the batching engine's, not a lone query's.)
    let service = {
        let index =
            ServeIndex::from_parts(vs.clone(), graph.lists.clone()).expect("index matches vectors");
        let engine = ServeEngine::start(index, base_cfg()).expect("valid config");
        let probes = queries.len();
        let t0 = Instant::now();
        let tickets: Vec<Ticket> = (0..probes)
            .map(|q| engine.submit(queries.row(q).to_vec()).expect("calibration submit"))
            .collect();
        for t in tickets {
            t.wait().expect("calibration query");
        }
        let s = t0.elapsed() / probes as u32;
        engine.shutdown();
        s
    };

    let policy = |tiers: u8| ShedPolicy {
        target: Duration::from_millis(1),
        window: Duration::from_millis(4),
        brownout_tiers: tiers,
        shed_factor: 4,
    };
    let modes: [(&str, Option<ShedPolicy>); 3] =
        [("none", None), ("shed", Some(policy(0))), ("brownout+shed", Some(policy(2)))];
    let multipliers: &[f64] = if scale.quick { &[4.0] } else { &[0.5, 4.0] };

    let mut t = Table::new(
        format!(
            "E18: overload sweep (n={n}, {nq}-query stream x4, 1 shard, k=10, \
             calibrated service {:.0} us/query)",
            service.as_secs_f64() * 1e6
        )
        .as_str(),
        &["offered", "mode", "served", "shed", "brownout-b", "p50-us", "p99-us", "qps"],
    );
    for &mult in multipliers {
        // Open-loop arrival schedule: the i-th query is due at i × interval,
        // regardless of how the engine is keeping up.
        let interval = service.div_f64(mult);
        let total = queries.len() * 4;
        for (name, shed) in &modes {
            let index = ServeIndex::from_parts(vs.clone(), graph.lists.clone())
                .expect("index matches vectors");
            let engine = ServeEngine::start(index, ServeConfig { shed: *shed, ..base_cfg() })
                .expect("valid config");
            let mut tickets: Vec<Ticket> = Vec::with_capacity(total);
            let t0 = Instant::now();
            for i in 0..total {
                let due = t0 + interval.mul_f64(i as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                match engine.submit(queries.row(i % queries.len()).to_vec()) {
                    Ok(tk) => tickets.push(tk),
                    // The queue is sized to hold the whole schedule; a
                    // rejection would mean the sweep is mis-sized.
                    Err(e) => panic!("replay failed: {e}"),
                }
            }
            for tk in tickets {
                match tk.wait() {
                    Ok(_) | Err(ServeError::Shed) => {}
                    Err(e) => panic!("unexpected outcome under overload: {e}"),
                }
            }
            let report = engine.shutdown();
            t.row(vec![
                format!("{mult}x"),
                (*name).to_string(),
                report.served.to_string(),
                report.shed.to_string(),
                report.brownout_batches.to_string(),
                format!("{:.0}", report.latency_p(50.0).as_secs_f64() * 1e6),
                format!("{:.0}", report.latency_p(99.0).as_secs_f64() * 1e6),
                format!("{:.0}", report.throughput_qps),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "reading: latency percentiles cover *served* queries. At 0.5x the queue\n\
         never stands and the three modes coincide — an idle controller is free.\n\
         At 4x the `none` row's p99 is the whole drain time (every query pays the\n\
         full backlog), `shed` holds served-query p99 near the sojourn bound by\n\
         refusing the over-age tail (served answers stay bit-identical), and\n\
         `brownout+shed` first narrows the beam (brownout-b batches) to serve\n\
         more of the load at slightly lower per-query cost before shedding.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_sweep_renders_all_modes() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E18"));
        assert!(out.contains("none"));
        assert!(out.contains("brownout+shed"));
        // 1 multiplier x 3 modes of data rows.
        assert!(out.lines().filter(|l| l.contains("4x")).count() >= 3);
    }
}
