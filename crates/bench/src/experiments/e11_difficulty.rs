//! E11 (extension) — dataset difficulty: geometry statistics vs achieved
//! recall at fixed parameters.
//!
//! RP-forest methods exploit low *intrinsic* dimensionality; this table puts
//! the Levina–Bickel estimate next to the recall a fixed configuration
//! reaches on each dataset, making the difficulty ordering visible.

use wknng_core::{recall, WknngBuilder};
use wknng_data::{exact_knn, intrinsic_dim_mle, mean_nn_distance, DatasetSpec, Metric};

use crate::experiments::Scale;
use crate::table::{f3, Table};

/// Compute difficulty statistics and fixed-parameter recall per dataset.
pub fn run(scale: Scale) -> String {
    let n = scale.pick(1200, 300);
    let k = 10.min(n / 4);
    let specs = [
        DatasetSpec::GaussianClusters { n, dim: 64, clusters: 8, spread: 0.2 },
        DatasetSpec::Manifold { n, ambient_dim: 64, intrinsic_dim: 4 },
        DatasetSpec::Manifold { n, ambient_dim: 64, intrinsic_dim: 12 },
        DatasetSpec::HypersphereShell { n, dim: 64 },
        DatasetSpec::UniformCube { n, dim: 16 },
    ];
    let mut t = Table::new(
        format!("E11: dataset difficulty vs recall (fixed T=4, P=1, leaf=32, k={k})").as_str(),
        &["dataset", "ambient-d", "intrinsic-d(MLE)", "mean-nn-dist", "recall@k"],
    );
    for spec in specs {
        let ds = spec.generate(111);
        let vs = &ds.vectors;
        let id = intrinsic_dim_mle(vs, 12, scale.pick(150, 60));
        let nn = mean_nn_distance(vs, scale.pick(150, 60));
        let truth = exact_knn(vs, k, Metric::SquaredL2);
        let (g, _) = WknngBuilder::new(k)
            .trees(4)
            .leaf_size(32)
            .exploration(1)
            .seed(8)
            .build_native(vs)
            .expect("valid params");
        t.row(vec![
            ds.name.clone(),
            vs.dim().to_string(),
            format!("{id:.1}"),
            format!("{nn:.3}"),
            f3(recall(&g.lists, &truth)),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "reading: recall tracks intrinsic, not ambient, dimensionality — the geometric\n\
         reason RP-forest methods work on real feature embeddings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_table_renders() {
        let out = run(Scale { quick: true });
        assert!(out.contains("E11"));
        assert!(out.contains("intrinsic-d"));
        assert_eq!(out.lines().filter(|l| l.contains("(n=")).count(), 5);
    }
}
