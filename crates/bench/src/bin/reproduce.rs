//! Regenerate the tables and figures of the w-KNNG evaluation.
//!
//! Usage:
//! ```text
//! reproduce [--quick] [all | e1 e2 ... e10]
//! ```
//! With no experiment ids, runs everything. `--quick` shrinks workloads to
//! smoke-test size.

use std::time::Instant;

use wknng_bench::experiments::{all_ids, run, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let mut ids: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with('-') && a != "all")
        .map(|a| a.to_lowercase())
        .collect();
    if ids.is_empty() {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }
    let scale = Scale { quick };

    println!("w-KNNG evaluation reproduction ({} mode)\n", if quick { "quick" } else { "full" });
    let mut failed = false;
    for id in &ids {
        let t0 = Instant::now();
        match run(id, scale) {
            Some(report) => {
                println!("{report}");
                println!("[{} finished in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (known: {})", all_ids().join(", "));
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
