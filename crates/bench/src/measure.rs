//! Shared measurement primitives: wall-clock timing, percentile/median/MAD
//! math, repetition with warmup, and the overload-tolerant serve replay.
//!
//! This module is the *single source of truth* for the statistics every
//! experiment and suite job reports — the percentile convention, the robust
//! noise estimate, and the warmup/repetition protocol live here and nowhere
//! else (the experiments used to carry private copies).

use std::time::{Duration, Instant};

use wknng_data::VectorSet;
use wknng_serve::{ServeEngine, ServeError, Ticket};

/// Run `f`, returning its value and wall-clock milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

/// The p-th percentile of `values` (0 < p ≤ 100), by the nearest-rank
/// convention the serving reports use: the smallest value with at least
/// `⌈len · p/100⌉` values at or below it. Empty input yields 0.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * p / 100.0).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

/// Median (50th percentile, nearest-rank).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Median absolute deviation from the median — the robust spread estimate
/// the regression gate builds its noise bands from. Zero for deterministic
/// (repeat-identical) samples.
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = median(values);
    let dev: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&dev)
}

/// Robust summary of repeated samples of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Median of the samples.
    pub median: f64,
    /// Median absolute deviation of the samples.
    pub mad: f64,
    /// The raw samples, in measurement order.
    pub samples: Vec<f64>,
}

impl Summary {
    /// Summarize `samples` (median + MAD).
    pub fn from_samples(samples: Vec<f64>) -> Summary {
        Summary { median: median(&samples), mad: mad(&samples), samples }
    }
}

/// Run `f` `warmup` times discarding the results, then `repeats` more times
/// collecting each run's wall-clock milliseconds.
pub fn repeat_ms(warmup: usize, repeats: usize, mut f: impl FnMut()) -> Summary {
    for _ in 0..warmup {
        f();
    }
    let samples: Vec<f64> = (0..repeats).map(|_| timed(&mut f).1).collect();
    Summary::from_samples(samples)
}

/// Replay every query through `engine` (closed loop), backing off briefly on
/// transient overload; returns the number of successfully answered queries.
pub fn replay(engine: &ServeEngine, queries: &VectorSet) -> usize {
    let mut tickets: Vec<Ticket> = Vec::with_capacity(queries.len());
    for q in 0..queries.len() {
        loop {
            match engine.submit(queries.row(q).to_vec()) {
                Ok(t) => break tickets.push(t),
                Err(ServeError::Overloaded { .. }) => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => panic!("replay failed: {e}"),
            }
        }
    }
    tickets.into_iter().filter_map(|t| t.wait().ok()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, ms) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(ms >= 0.0);
    }

    #[test]
    fn percentile_nearest_rank_convention() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 50.0), 2.0); // ceil(4*0.5)=2nd of sorted
        assert_eq!(percentile(&v, 75.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 1.0), 1.0); // index clamps to the minimum
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[1.0, 9.0, 5.0]), 5.0);
        // Deviations from 5: [4, 4, 0] -> median 4.
        assert_eq!(mad(&[1.0, 9.0, 5.0]), 4.0);
        // Repeat-identical samples have zero spread.
        assert_eq!(mad(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(mad(&[]), 0.0);
    }

    #[test]
    fn summary_and_repeat_protocol() {
        let s = Summary::from_samples(vec![2.0, 4.0, 100.0]);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.mad, 2.0, "MAD shrugs off the outlier");
        let mut calls = 0usize;
        let r = repeat_ms(2, 3, || calls += 1);
        assert_eq!(calls, 5, "warmup runs are executed but not sampled");
        assert_eq!(r.samples.len(), 3);
        assert!(r.median >= 0.0);
    }
}
