//! Property tests for distances, packing, the exact-KNN oracle, and the
//! mutation WAL's torn-tail recovery contract.

use proptest::prelude::*;
use wknng_data::{
    exact_knn, read_wal, sort_neighbors, sq_l2, FsyncPolicy, Metric, Neighbor, VectorSet, WalOp,
    WalWriter, WAL_FRAME_OVERHEAD, WAL_HEADER_LEN,
};

fn naive_sq_l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_l2_matches_naive(len in 1usize..70, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let got = sq_l2(&a, &b) as f64;
        let want = naive_sq_l2(&a, &b);
        prop_assert!((got - want).abs() <= 1e-3 * (1.0 + want), "{got} vs {want}");
    }

    #[test]
    fn pack_order_matches_key_order(
        d1 in 0.0f32..1e30, i1 in any::<u32>(),
        d2 in 0.0f32..1e30, i2 in any::<u32>(),
    ) {
        let a = Neighbor::new(i1, d1);
        let b = Neighbor::new(i2, d2);
        let key_cmp = a.key().partial_cmp(&b.key()).unwrap();
        let pack_cmp = a.pack().cmp(&b.pack());
        prop_assert_eq!(key_cmp, pack_cmp);
    }

    #[test]
    fn exact_knn_matches_full_sort(n in 2usize..30, dim in 1usize..6, k in 1usize..8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let vs = VectorSet::new(data, dim).unwrap();
        let got = exact_knn(&vs, k, Metric::SquaredL2);
        for (i, row) in got.iter().enumerate() {
            let mut all: Vec<Neighbor> = (0..n)
                .filter(|&j| j != i)
                .map(|j| Neighbor::new(j as u32, sq_l2(vs.row(i), vs.row(j))))
                .collect();
            sort_neighbors(&mut all);
            all.truncate(k.min(n - 1));
            prop_assert_eq!(row, &all, "point {}", i);
        }
    }

    /// Truncating a WAL at *any* byte — a torn write, mid-frame, mid-header,
    /// even inside the file header's tail — recovers exactly the longest
    /// prefix of whole valid frames, reports the torn remainder's size, and
    /// reopening for append resumes at the right sequence number. This is
    /// the crash-consistency contract the serve layer's recovery builds on.
    #[test]
    fn wal_truncated_at_any_byte_recovers_the_valid_prefix(
        shapes in prop::collection::vec((0u8..2, 0usize..5, 1usize..4), 1..6),
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let ops: Vec<WalOp> = shapes
            .iter()
            .map(|&(tag, n, dim)| {
                if tag == 0 {
                    let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    WalOp::Insert(VectorSet::new(data, dim).unwrap())
                } else {
                    WalOp::Delete((0..n as u32).collect())
                }
            })
            .collect();
        let payload_len = |op: &WalOp| -> u64 {
            match op {
                WalOp::Insert(vs) => 1 + 4 + 4 + (vs.len() * vs.dim() * 4) as u64,
                WalOp::Delete(ids) => 1 + 4 + ids.len() as u64 * 4,
            }
        };

        let mut path = std::env::temp_dir();
        path.push(format!("wknng-proptest-torn-{}-{seed:016x}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        let mut wal = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        for (i, op) in ops.iter().enumerate() {
            prop_assert_eq!(wal.append(op).unwrap(), i as u64);
        }
        drop(wal);

        // Cut the file at an arbitrary byte at or past the header.
        let full = std::fs::read(&path).unwrap();
        let cut = WAL_HEADER_LEN as usize
            + ((full.len() - WAL_HEADER_LEN as usize) as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        // Expected: the longest whole-frame prefix fitting in `cut` bytes.
        let mut end = WAL_HEADER_LEN;
        let mut survivors = 0usize;
        for op in &ops {
            let next = end + WAL_FRAME_OVERHEAD + payload_len(op);
            if next <= cut as u64 {
                end = next;
                survivors += 1;
            } else {
                break;
            }
        }

        let scan = read_wal(&path).unwrap();
        prop_assert_eq!(scan.records.len(), survivors);
        prop_assert_eq!(scan.valid_len, end);
        prop_assert_eq!(scan.torn_bytes, cut as u64 - end);
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.op, &ops[i]);
        }

        // Reopening repairs the tail and resumes the sequence correctly.
        let (mut wal, reopened) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(reopened.records.len(), survivors);
        prop_assert_eq!(wal.next_seq(), survivors as u64);
        let extra = WalOp::Delete(vec![7]);
        prop_assert_eq!(wal.append(&extra).unwrap(), survivors as u64);
        drop(wal);
        let after = read_wal(&path).unwrap();
        prop_assert_eq!(after.records.len(), survivors + 1);
        prop_assert_eq!(after.torn_bytes, 0);
        prop_assert_eq!(&after.records.last().unwrap().op, &extra);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gather_matches_row_lookup(n in 1usize..20, dim in 1usize..5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let vs = VectorSet::new(data, dim).unwrap();
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let g = vs.gather(&idx);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(pos), vs.row(i));
        }
    }
}
