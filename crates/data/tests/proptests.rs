//! Property tests for distances, packing and the exact-KNN oracle.

use proptest::prelude::*;
use wknng_data::{exact_knn, sort_neighbors, sq_l2, Metric, Neighbor, VectorSet};

fn naive_sq_l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_l2_matches_naive(len in 1usize..70, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let got = sq_l2(&a, &b) as f64;
        let want = naive_sq_l2(&a, &b);
        prop_assert!((got - want).abs() <= 1e-3 * (1.0 + want), "{got} vs {want}");
    }

    #[test]
    fn pack_order_matches_key_order(
        d1 in 0.0f32..1e30, i1 in any::<u32>(),
        d2 in 0.0f32..1e30, i2 in any::<u32>(),
    ) {
        let a = Neighbor::new(i1, d1);
        let b = Neighbor::new(i2, d2);
        let key_cmp = a.key().partial_cmp(&b.key()).unwrap();
        let pack_cmp = a.pack().cmp(&b.pack());
        prop_assert_eq!(key_cmp, pack_cmp);
    }

    #[test]
    fn exact_knn_matches_full_sort(n in 2usize..30, dim in 1usize..6, k in 1usize..8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let vs = VectorSet::new(data, dim).unwrap();
        let got = exact_knn(&vs, k, Metric::SquaredL2);
        for (i, row) in got.iter().enumerate() {
            let mut all: Vec<Neighbor> = (0..n)
                .filter(|&j| j != i)
                .map(|j| Neighbor::new(j as u32, sq_l2(vs.row(i), vs.row(j))))
                .collect();
            sort_neighbors(&mut all);
            all.truncate(k.min(n - 1));
            prop_assert_eq!(row, &all, "point {}", i);
        }
    }

    #[test]
    fn gather_matches_row_lookup(n in 1usize..20, dim in 1usize..5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let vs = VectorSet::new(data, dim).unwrap();
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let g = vs.gather(&idx);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(pos), vs.row(i));
        }
    }
}
