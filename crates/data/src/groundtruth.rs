//! Exact K-NN ground truth, used to score every approximate method.

use rayon::prelude::*;

use crate::dist::Metric;
use crate::neighbor::{sort_neighbors, Neighbor};
use crate::vecs::VectorSet;

/// Exact K-nearest-neighbor lists for every point (self excluded), each
/// sorted ascending by `(dist, index)`.
///
/// O(n² d) brute force, parallelised over query points; this is the oracle
/// the recall metric compares against, so it must be exact.
pub fn exact_knn(vs: &VectorSet, k: usize, metric: Metric) -> Vec<Vec<Neighbor>> {
    let n = vs.len();
    let k = k.min(n.saturating_sub(1));
    (0..n)
        .into_par_iter()
        .map(|i| {
            let qi = vs.row(i);
            let mut all: Vec<Neighbor> = (0..n)
                .filter(|&j| j != i)
                .map(|j| Neighbor::new(j as u32, metric.eval(qi, vs.row(j))))
                .collect();
            if all.len() > k {
                all.select_nth_unstable_by(k - 1, |a, b| {
                    a.key().partial_cmp(&b.key()).expect("finite distances")
                });
                all.truncate(k);
            }
            sort_neighbors(&mut all);
            all
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> VectorSet {
        // Four collinear points at 0, 1, 3, 7.
        VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![3.0], vec![7.0]]).unwrap()
    }

    #[test]
    fn exact_knn_on_a_line() {
        let vs = grid4();
        let g = exact_knn(&vs, 2, Metric::SquaredL2);
        assert_eq!(g[0].iter().map(|n| n.index).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g[1].iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g[2].iter().map(|n| n.index).collect::<Vec<_>>(), vec![1, 0]);
        assert_eq!(g[3].iter().map(|n| n.index).collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(g[0][0].dist, 1.0);
        assert_eq!(g[0][1].dist, 9.0);
    }

    #[test]
    fn lists_are_sorted_and_self_free() {
        let vs = crate::synth::DatasetSpec::UniformCube { n: 40, dim: 5 }.generate(3).vectors;
        let g = exact_knn(&vs, 6, Metric::SquaredL2);
        for (i, list) in g.iter().enumerate() {
            assert_eq!(list.len(), 6);
            for w in list.windows(2) {
                assert!(w[0].key() <= w[1].key());
            }
            assert!(list.iter().all(|n| n.index as usize != i));
        }
    }

    #[test]
    fn k_is_clamped_to_n_minus_one() {
        let vs = grid4();
        let g = exact_knn(&vs, 99, Metric::SquaredL2);
        assert!(g.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn single_point_has_empty_list() {
        let vs = VectorSet::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let g = exact_knn(&vs, 5, Metric::SquaredL2);
        assert_eq!(g.len(), 1);
        assert!(g[0].is_empty());
    }

    #[test]
    fn works_with_other_metrics() {
        let vs = VectorSet::from_rows(&[vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]]).unwrap();
        let g = exact_knn(&vs, 1, Metric::Cosine);
        assert_eq!(g[0][0].index, 1); // most cosine-similar to point 0
    }
}
