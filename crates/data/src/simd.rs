//! Explicitly vectorized distance kernels behind the [`DistanceKernel`]
//! trait.
//!
//! The native (rayon) backend is the repo's wall-clock story, and its inner
//! loop is the distance evaluation: one query row against many candidate
//! rows, exactly the shape the beam kernel's 8-wide blocked accumulation
//! models on the simulated device. This module gives the host that loop in
//! three forms:
//!
//! * [`ScalarKernel`] — the **oracle**: delegates to [`crate::sq_l2`] /
//!   [`crate::dot`], the 8-wide blocked scalar loops every differential
//!   test is judged against. Also the portable fallback on targets without
//!   detected SIMD.
//! * [`SimdKernel`] — `x86_64` AVX2+FMA kernels (runtime-detected, 8-lane
//!   vectors, 4 independent accumulators = an effective 32-wide block that
//!   hides FMA latency), falling back to the scalar oracle anywhere else.
//! * [`DistanceKernel::eval_many`] — the cache-blocked one-query-vs-many
//!   form the builder's bucket pass and the graph search dispatch through:
//!   the query row stays hot in L1 while candidate rows stream past.
//!
//! # Choosing a kernel
//!
//! Call sites take [`kernel()`], which resolves once per call from the
//! process-wide [`KernelMode`]:
//!
//! * `Auto` (default) — SIMD when the CPU has it, scalar otherwise;
//! * `ForceScalar` — the oracle, everywhere (what the `simd-oracle` CI job
//!   pins to prove the fallback cannot rot);
//! * compile with the `force-scalar` cargo feature and the SIMD paths are
//!   not even compiled in — `Auto` then *is* the scalar oracle.
//!
//! # Numerics
//!
//! The AVX2 kernels reassociate the reduction (4 × 8 partial sums, combined
//! pairwise, scalar tail) while the oracle folds 8 partial sums in index
//! order. The two are therefore **not bit-identical**; they agree within a
//! ULP-scaled tolerance proved by `tests/simd_oracle.rs` across every tail
//! length. Code that needs bit-stable distances (ground truth, the
//! regression-gated deterministic bench metrics) keeps calling the scalar
//! entry points directly.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::dist::{dot as scalar_dot, sq_l2 as scalar_sq_l2, Metric};
use crate::vecs::VectorSet;

/// Process-wide kernel selection policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Runtime-detected SIMD when available, scalar oracle otherwise.
    #[default]
    Auto,
    /// The scalar oracle everywhere (differential-test + fallback-CI mode).
    ForceScalar,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide kernel mode. Takes effect on the next [`kernel()`]
/// call; safe to flip at any time (tests and the bench suite's
/// scalar-vs-SIMD jobs do). Returns the previous mode.
pub fn set_kernel_mode(mode: KernelMode) -> KernelMode {
    let prev = KERNEL_MODE.swap(mode as u8, Ordering::Relaxed);
    if prev == KernelMode::ForceScalar as u8 {
        KernelMode::ForceScalar
    } else {
        KernelMode::Auto
    }
}

/// The current process-wide kernel mode.
pub fn kernel_mode() -> KernelMode {
    if KERNEL_MODE.load(Ordering::Relaxed) == KernelMode::ForceScalar as u8 {
        KernelMode::ForceScalar
    } else {
        KernelMode::Auto
    }
}

/// RAII guard that pins the kernel mode for a scope and restores the
/// previous mode on drop — how tests and bench jobs run a forced-scalar
/// section without leaking the override.
///
/// Guards nest: each one restores exactly the mode it observed, so
/// lexically scoped (LIFO-dropped) pins always unwind to the outer state.
/// Dropping guards out of LIFO order restores whatever each guard saw at
/// construction — don't hold them across overlapping, non-nested scopes.
#[must_use = "the mode is un-pinned the moment the guard drops; bind it to a named local"]
pub struct KernelModeGuard {
    prev: KernelMode,
}

impl KernelModeGuard {
    /// Pin `mode` until the guard drops.
    pub fn pin(mode: KernelMode) -> KernelModeGuard {
        KernelModeGuard { prev: set_kernel_mode(mode) }
    }

    /// The mode this guard will restore on drop.
    pub fn restores_to(&self) -> KernelMode {
        self.prev
    }
}

impl Drop for KernelModeGuard {
    fn drop(&mut self) {
        set_kernel_mode(self.prev);
    }
}

/// A host distance kernel: the scalar oracle or a vectorized implementation
/// proven equivalent to it.
pub trait DistanceKernel: Sync {
    /// Kernel name for reports (`"scalar"`, `"avx2+fma"`).
    fn name(&self) -> &'static str;

    /// Squared Euclidean distance.
    fn sq_l2(&self, a: &[f32], b: &[f32]) -> f32;

    /// Inner product.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// Evaluate `metric` between two equal-length slices.
    fn eval(&self, metric: Metric, a: &[f32], b: &[f32]) -> f32 {
        match metric {
            Metric::SquaredL2 => self.sq_l2(a, b),
            Metric::NegativeDot => -self.dot(a, b),
            Metric::Cosine => {
                let na = self.dot(a, a).sqrt();
                let nb = self.dot(b, b).sqrt();
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                1.0 - self.dot(a, b) / (na * nb)
            }
        }
    }

    /// One query against many indexed rows, cache-blocked: `out[i] =
    /// metric(query, vs.row(ids[i]))`. `out` is cleared and refilled — the
    /// caller keeps one scratch buffer per thread so the hot loop never
    /// allocates.
    fn eval_many(
        &self,
        metric: Metric,
        query: &[f32],
        vs: &VectorSet,
        ids: &[u32],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(ids.iter().map(|&q| self.eval(metric, query, vs.row(q as usize))));
    }
}

/// The scalar oracle: [`crate::sq_l2`] / [`crate::dot`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl DistanceKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn sq_l2(&self, a: &[f32], b: &[f32]) -> f32 {
        scalar_sq_l2(a, b)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        scalar_dot(a, b)
    }
}

/// The vectorized kernel: AVX2+FMA on `x86_64` CPUs that have it, the
/// scalar oracle otherwise (and always, under the `force-scalar` feature).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdKernel;

impl DistanceKernel for SimdKernel {
    fn name(&self) -> &'static str {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        if x86::avx2_available() {
            return "avx2+fma";
        }
        "scalar"
    }

    fn sq_l2(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_l2 over slices of different lengths");
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        if x86::avx2_available() {
            // SAFETY: AVX2+FMA presence was runtime-checked above; the
            // slices were length-checked.
            return unsafe { x86::sq_l2_avx2(a, b) };
        }
        scalar_sq_l2(a, b)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot over slices of different lengths");
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        if x86::avx2_available() {
            // SAFETY: AVX2+FMA presence was runtime-checked above; the
            // slices were length-checked.
            return unsafe { x86::dot_avx2(a, b) };
        }
        scalar_dot(a, b)
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
static SIMD: SimdKernel = SimdKernel;

/// The active kernel under the current [`KernelMode`]. Resolution is one
/// relaxed atomic load; hot loops may still hoist the returned reference
/// out of the loop.
pub fn kernel() -> &'static dyn DistanceKernel {
    match kernel_mode() {
        KernelMode::Auto => &SIMD,
        KernelMode::ForceScalar => &SCALAR,
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod x86 {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = available, 2 = unavailable.
    static AVX2: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub fn avx2_available() -> bool {
        match AVX2.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let ok =
                    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
                AVX2.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
                ok
            }
        }
    }

    use core::arch::x86_64::*;

    /// Horizontal sum of one 8-lane register, pairwise (lane 0+4, 1+5, …).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(s)
    }

    /// Squared L2 over 32-float blocks: 4 independent 8-lane FMA
    /// accumulators (hides the 4-cycle FMA latency), an 8-wide cleanup
    /// loop, then a scalar tail for `len % 8` — the tail order matches the
    /// scalar oracle's remainder loop exactly.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `a.len() == b.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq_l2_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
            let d2 =
                _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 16)), _mm256_loadu_ps(pb.add(i + 16)));
            let d3 =
                _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 24)), _mm256_loadu_ps(pb.add(i + 24)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += 32;
        }
        while i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// Inner product, same blocking as [`sq_l2_avx2`].
    ///
    /// # Safety
    /// Requires AVX2+FMA and `a.len() == b.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
        while i < n {
            sum += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_row(len: usize, seed: u64) -> Vec<f32> {
        // Deterministic, allocation-light pseudo-random floats in [-1, 1).
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    /// Tolerance scaled like a ULP bound: reassociating a sum of `n` terms
    /// each of magnitude ≤ `m` perturbs it by at most `n · m · ε` up to a
    /// small constant; use 8ε slack per term.
    fn tol(n: usize, magnitude: f32) -> f32 {
        8.0 * f32::EPSILON * n as f32 * magnitude.max(1.0)
    }

    #[test]
    fn simd_matches_oracle_across_tails() {
        let simd = SimdKernel;
        for dim in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96, 127, 257] {
            let a = pseudo_row(dim, dim as u64);
            let b = pseudo_row(dim, dim as u64 + 1000);
            let (got, want) = (simd.sq_l2(&a, &b), scalar_sq_l2(&a, &b));
            assert!((got - want).abs() <= tol(dim, want), "sq_l2 dim {dim}: {got} vs {want}");
            let (got, want) = (simd.dot(&a, &b), scalar_dot(&a, &b));
            assert!((got - want).abs() <= tol(dim, want.abs()), "dot dim {dim}: {got} vs {want}");
        }
    }

    // One test covers both the plain and the nested guard so the global
    // KERNEL_MODE is only ever manipulated from a single test thread.
    #[test]
    fn mode_guard_restores_and_nests_lifo() {
        assert_eq!(kernel_mode(), KernelMode::Auto);
        {
            let _g = KernelModeGuard::pin(KernelMode::ForceScalar);
            assert_eq!(kernel_mode(), KernelMode::ForceScalar);
            assert_eq!(kernel().name(), "scalar");
        }
        assert_eq!(kernel_mode(), KernelMode::Auto);
        // Nested pins: each level restores exactly the mode it observed,
        // so the stack unwinds Auto <- ForceScalar <- Auto <- ForceScalar.
        {
            let outer = KernelModeGuard::pin(KernelMode::ForceScalar);
            assert_eq!(outer.restores_to(), KernelMode::Auto);
            {
                let middle = KernelModeGuard::pin(KernelMode::Auto);
                assert_eq!(middle.restores_to(), KernelMode::ForceScalar);
                assert_eq!(kernel_mode(), KernelMode::Auto);
                {
                    let inner = KernelModeGuard::pin(KernelMode::ForceScalar);
                    assert_eq!(inner.restores_to(), KernelMode::Auto);
                    assert_eq!(kernel_mode(), KernelMode::ForceScalar);
                    // Re-pinning the mode already in force must still
                    // round-trip (prev == pinned is not a special case).
                    let same = KernelModeGuard::pin(KernelMode::ForceScalar);
                    assert_eq!(same.restores_to(), KernelMode::ForceScalar);
                    drop(same);
                    assert_eq!(kernel_mode(), KernelMode::ForceScalar);
                }
                assert_eq!(kernel_mode(), KernelMode::Auto, "inner pin must unwind one level");
            }
            assert_eq!(kernel_mode(), KernelMode::ForceScalar, "middle pin must unwind one level");
        }
        assert_eq!(kernel_mode(), KernelMode::Auto, "the full stack must unwind to Auto");
    }

    #[test]
    fn eval_dispatches_every_metric() {
        let simd = SimdKernel;
        let scalar = ScalarKernel;
        let a = pseudo_row(40, 7);
        let b = pseudo_row(40, 8);
        for metric in [Metric::SquaredL2, Metric::NegativeDot, Metric::Cosine] {
            let (got, want) = (simd.eval(metric, &a, &b), scalar.eval(metric, &a, &b));
            assert!((got - want).abs() <= 1e-5 * (1.0 + want.abs()), "{metric:?}: {got} vs {want}");
            // The trait default must agree with Metric::eval (the oracle).
            let reference = metric.eval(&a, &b);
            assert!((want - reference).abs() <= 1e-6 * (1.0 + reference.abs()));
        }
    }

    #[test]
    fn eval_many_matches_pointwise_eval() {
        let vs = VectorSet::from_rows(&[
            pseudo_row(33, 1),
            pseudo_row(33, 2),
            pseudo_row(33, 3),
            pseudo_row(33, 4),
        ])
        .unwrap();
        let q = pseudo_row(33, 9);
        let ids = [3u32, 0, 2];
        let mut out = Vec::new();
        kernel().eval_many(Metric::SquaredL2, &q, &vs, &ids, &mut out);
        assert_eq!(out.len(), 3);
        for (i, &id) in ids.iter().enumerate() {
            let want = kernel().eval(Metric::SquaredL2, &q, vs.row(id as usize));
            assert_eq!(out[i], want);
        }
    }

    #[test]
    fn zero_length_slices_are_zero() {
        let simd = SimdKernel;
        assert_eq!(simd.sq_l2(&[], &[]), 0.0);
        assert_eq!(simd.dot(&[], &[]), 0.0);
    }
}
