//! SQ8 scalar quantization: 8-bit codes per coordinate, FAISS-`SQ8`-style.
//!
//! High-dimensional point sets are global-memory-resident (the paper's core
//! constraint); quantizing coordinates to one byte cuts that footprint and
//! traffic 4×. This module provides the codec and the direct code-domain
//! distance; the quantization ablation (experiment E15) measures what the
//! rounding costs in K-NNG recall.

use crate::error::DataError;
use crate::vecs::VectorSet;

/// An SQ8-quantized point set: per-dimension affine codec
/// `value ≈ min[d] + code · step[d]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSet {
    codes: Vec<u8>,
    mins: Vec<f32>,
    steps: Vec<f32>,
    n: usize,
    dim: usize,
}

impl QuantizedSet {
    /// Quantize `vs` with per-dimension min/max calibration.
    pub fn quantize(vs: &VectorSet) -> Result<Self, DataError> {
        let (n, dim) = (vs.len(), vs.dim());
        if dim == 0 {
            return Err(DataError::ZeroDimension);
        }
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for row in vs.rows() {
            for (d, &v) in row.iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        if n == 0 {
            mins.iter_mut().for_each(|m| *m = 0.0);
            maxs.iter_mut().for_each(|m| *m = 0.0);
        }
        // The range is computed in f64: `hi - lo` in f32 overflows to +inf
        // when a dimension spans more than f32::MAX (e.g. ±2e38, both
        // finite), and an infinite step poisons the codec — every code
        // collapses to 0 and `sq_l2_codes`/`decode` produce NaN via
        // `0 × inf`. The f64 difference is exact for any two finite f32s,
        // and the divided step always converts back to a finite f32.
        let steps: Vec<f32> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| (((hi as f64 - lo as f64) / 255.0) as f32).max(0.0))
            .collect();
        let mut codes = Vec::with_capacity(n * dim);
        for row in vs.rows() {
            for (d, &v) in row.iter().enumerate() {
                let code = if steps[d] == 0.0 {
                    0.0
                } else {
                    ((v - mins[d]) / steps[d]).round().clamp(0.0, 255.0)
                };
                codes.push(code as u8);
            }
        }
        Ok(QuantizedSet { codes, mins, steps, n, dim })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Code row of point `i`.
    pub fn codes(&self, i: usize) -> &[u8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Bytes used by the codes (the device-resident footprint).
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Squared L2 distance computed directly in the code domain:
    /// `Σ ((a_d − b_d) · step_d)²`. Exactly the distance a `u8` device
    /// kernel would produce.
    pub fn sq_l2_codes(&self, a: usize, b: usize) -> f32 {
        let (ca, cb) = (self.codes(a), self.codes(b));
        let mut acc = 0.0f32;
        for d in 0..self.dim {
            let diff = (ca[d] as i32 - cb[d] as i32) as f32 * self.steps[d];
            acc += diff * diff;
        }
        acc
    }

    /// Decode the whole set back to `f32` (for feeding quantized coordinates
    /// through the standard build pipeline).
    pub fn decode(&self) -> VectorSet {
        let mut data = Vec::with_capacity(self.n * self.dim);
        for i in 0..self.n {
            for (d, &c) in self.codes(i).iter().enumerate() {
                // The affine decode runs in f64: `255 · step` can exceed
                // f32::MAX even when the decoded value itself is a plain
                // finite f32 (a dimension spanning ±2e38), and an infinite
                // intermediate would fail the finiteness validation below.
                data.push((self.mins[d] as f64 + c as f64 * self.steps[d] as f64) as f32);
            }
        }
        VectorSet::new(data, self.dim).expect("decoded values are finite")
    }

    /// Worst-case absolute rounding error per dimension (`step/2`).
    pub fn max_error(&self) -> f32 {
        self.steps.iter().fold(0.0f32, |a, &s| a.max(s / 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sq_l2;
    use crate::synth::DatasetSpec;

    #[test]
    fn roundtrip_error_is_bounded_by_step() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 6 }.generate(1).vectors;
        let q = QuantizedSet::quantize(&vs).unwrap();
        let back = q.decode();
        for i in 0..50 {
            for (a, b) in vs.row(i).iter().zip(back.row(i)) {
                assert!((a - b).abs() <= q.max_error() + 1e-6);
            }
        }
        assert_eq!(q.code_bytes(), 50 * 6);
        assert_eq!(q.code_bytes() * 4, vs.as_flat().len() * 4); // 4x smaller than f32
    }

    #[test]
    fn code_distance_approximates_true_distance() {
        let vs = DatasetSpec::GaussianClusters { n: 60, dim: 16, clusters: 4, spread: 0.3 }
            .generate(2)
            .vectors;
        let q = QuantizedSet::quantize(&vs).unwrap();
        for (a, b) in [(0usize, 1usize), (5, 40), (59, 3)] {
            let exact = sq_l2(vs.row(a), vs.row(b));
            let coded = q.sq_l2_codes(a, b);
            assert!(
                (exact - coded).abs() <= 0.05 * (1.0 + exact),
                "pair ({a},{b}): {exact} vs {coded}"
            );
        }
    }

    #[test]
    fn code_distance_equals_decoded_distance() {
        let vs = DatasetSpec::UniformCube { n: 30, dim: 5 }.generate(3).vectors;
        let q = QuantizedSet::quantize(&vs).unwrap();
        let dec = q.decode();
        for (a, b) in [(0usize, 29usize), (10, 11)] {
            let coded = q.sq_l2_codes(a, b);
            let decoded = sq_l2(dec.row(a), dec.row(b));
            assert!((coded - decoded).abs() <= 1e-3 * (1.0 + coded));
        }
    }

    #[test]
    fn constant_dimension_quantizes_to_zero_step() {
        let vs = VectorSet::from_rows(&[vec![3.0, 1.0], vec![3.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        assert!(q.sq_l2_codes(0, 1) > 0.0);
        // The constant dimension contributes nothing.
        let dec = q.decode();
        assert!(dec.rows().all(|r| (r[0] - 3.0).abs() < 1e-6));
    }

    #[test]
    fn all_zero_codes_have_zero_distance() {
        // A constant set quantizes every point to code 0 in every
        // dimension; the code-domain distance must be exactly zero, not an
        // accumulation of step artifacts.
        let vs = VectorSet::from_rows(&vec![vec![2.5, -1.0, 0.0]; 4]).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                assert!(q.codes(a).iter().all(|&c| c == 0));
                assert_eq!(q.sq_l2_codes(a, b), 0.0);
            }
        }
    }

    #[test]
    fn saturating_extremes_span_the_full_code_range() {
        // Two points pinned at the calibration min/max must land on codes 0
        // and 255, and their code distance must recover the span.
        let vs = VectorSet::from_rows(&[vec![-4.0, 10.0], vec![4.0, 20.0]]).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        assert_eq!(q.codes(0), &[0, 0]);
        assert_eq!(q.codes(1), &[255, 255]);
        let want = 8.0f32.powi(2) + 10.0f32.powi(2);
        let got = q.sq_l2_codes(0, 1);
        assert!((got - want).abs() <= 1e-3 * want, "{got} vs {want}");
    }

    #[test]
    fn single_dimension_roundtrips() {
        let vs = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![0.5]]).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        assert_eq!(q.dim(), 1);
        let d01 = q.sq_l2_codes(0, 1);
        assert!((d01 - 1.0).abs() <= 1e-3, "{d01}");
        assert!(q.sq_l2_codes(2, 2) == 0.0);
        let dec = q.decode();
        assert!((dec.row(2)[0] - 0.5).abs() <= q.max_error() + 1e-6);
    }

    #[test]
    fn huge_ranges_do_not_overflow_the_step() {
        // Regression: with a dimension spanning more than f32::MAX (here
        // ±2e38, both finite), `(hi - lo) / 255.0` evaluated in f32
        // overflowed to +inf; every code collapsed to 0, and both
        // `sq_l2_codes` and `decode` returned NaN (`0 × inf`) — `decode`
        // then panicked inside VectorSet validation. The step is now
        // derived through f64 and stays finite, and decode runs its affine
        // map in f64 so representable values cannot overflow en route.
        let vs = VectorSet::from_rows(&[vec![-2.0e38], vec![2.0e38]]).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        assert_eq!(q.codes(0), &[0]);
        assert_eq!(q.codes(1), &[255]);
        let d = q.sq_l2_codes(0, 1);
        // The true squared distance (4e38)² overflows f32, so +inf is the
        // faithful answer — what must never appear is NaN.
        assert!(!d.is_nan(), "code distance must not be NaN");
        assert_eq!(d, sq_l2(vs.row(0), vs.row(1)), "code distance mirrors the exact kernel");
        let dec = q.decode();
        assert!(dec.row(0)[0].is_finite() && dec.row(1)[0].is_finite());
        assert!((dec.row(1)[0] - 2.0e38).abs() <= q.max_error() * 2.0);
    }

    #[test]
    fn empty_set_is_fine() {
        let vs = VectorSet::new(vec![], 4).unwrap();
        let q = QuantizedSet::quantize(&vs).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.decode().len(), 0);
    }
}
