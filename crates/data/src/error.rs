//! Typed errors for dataset construction and validation.

use std::fmt;

/// Errors produced while building or validating vector sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The dimensionality was zero.
    ZeroDimension,
    /// The flat buffer length is not a multiple of the dimensionality.
    RaggedBuffer {
        /// Buffer length supplied.
        len: usize,
        /// Dimensionality supplied.
        dim: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinite {
        /// Point index containing the offending value.
        point: usize,
        /// Coordinate index within the point.
        coord: usize,
    },
    /// A quantizer was asked to train on an empty point set.
    EmptyTrainingSet,
    /// Two vector sets that must agree on dimensionality do not.
    DimMismatch {
        /// Dimensionality supplied.
        got: usize,
        /// Dimensionality required.
        want: usize,
    },
    /// An I/O wrapper error (message form, to stay `PartialEq`).
    Io(String),
    /// A file had the wrong magic number or a corrupt header.
    Format(String),
    /// A file ended before its header-declared payload length.
    Truncated {
        /// Payload bytes the header promised.
        expected: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The payload checksum does not match the header — the file's bytes
    /// were corrupted after writing.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// A deterministic crash point injected by [`crate::crash::CrashPlan`]
    /// fired: the writer stopped exactly where a killed process would,
    /// leaving the on-disk state for recovery to repair.
    Crash(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ZeroDimension => write!(f, "vector sets need dimensionality >= 1"),
            DataError::RaggedBuffer { len, dim } => {
                write!(f, "buffer of {len} floats is not a multiple of dim {dim}")
            }
            DataError::NonFinite { point, coord } => {
                write!(f, "non-finite coordinate at point {point}, coord {coord}")
            }
            DataError::EmptyTrainingSet => {
                write!(f, "quantizer training needs at least one point")
            }
            DataError::DimMismatch { got, want } => {
                write!(f, "dimensionality mismatch: got dim {got}, want dim {want}")
            }
            DataError::Io(m) => write!(f, "i/o error: {m}"),
            DataError::Format(m) => write!(f, "format error: {m}"),
            DataError::Truncated { expected, got } => {
                write!(f, "truncated file: expected {expected} payload bytes, got {got}")
            }
            DataError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            DataError::Crash(m) => write!(f, "injected crash: {m}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DataError::ZeroDimension.to_string().contains("dimensionality"));
        assert!(DataError::RaggedBuffer { len: 7, dim: 3 }.to_string().contains("7"));
        assert!(DataError::NonFinite { point: 2, coord: 5 }.to_string().contains("point 2"));
        let d = DataError::DimMismatch { got: 4, want: 8 };
        assert!(d.to_string().contains("got dim 4"));
        assert!(d.to_string().contains("want dim 8"));
        assert!(DataError::Format("bad magic".into()).to_string().contains("bad magic"));
        let t = DataError::Truncated { expected: 100, got: 40 };
        assert!(t.to_string().contains("expected 100"));
        assert!(t.to_string().contains("got 40"));
        let c = DataError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(c.to_string().contains("checksum mismatch"));
        let k = DataError::Crash("killed before rename 0".into());
        assert!(k.to_string().contains("injected crash"));
        assert!(k.to_string().contains("rename 0"));
    }

    #[test]
    fn io_errors_convert() {
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
