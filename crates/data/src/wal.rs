//! Write-ahead log and checkpoint manifest for durable index mutation.
//!
//! The serve layer applies mutations in memory and publishes them through
//! epoch swaps; this module is what makes an acknowledged mutation survive
//! the process. The contract has three parts:
//!
//! * **WAL** — an append-only log of mutation batches. Each record is
//!   length-prefixed, carries a monotonically increasing sequence number,
//!   and is covered by an FNV-1a 64 checksum over `seq || payload`. A
//!   record is only acknowledged after it is appended (and fsynced, per
//!   [`FsyncPolicy`]).
//! * **Torn-tail tolerance** — a crash mid-append leaves a prefix of the
//!   final frame. [`read_wal`] accepts every complete, checksum-valid
//!   record and truncates at the first bad byte; only an unacknowledged
//!   record can live in the torn tail, so truncation never loses an ack.
//!   Anything *behind* a valid record that fails to parse (duplicate or
//!   non-contiguous sequence, undecodable payload with a valid checksum)
//!   is real corruption and a hard error, not a torn tail.
//! * **Checkpoint manifest** — a tiny checksummed file written *last*
//!   (atomically) when an epoch is checkpointed. It records which WAL
//!   sequence the checkpoint absorbed (`wal_next_seq`) plus the tombstone
//!   bitmap, so recovery = load checkpoint, replay records with
//!   `seq >= wal_next_seq`, publish.
//!
//! On-disk WAL layout (all little-endian):
//!
//! ```text
//! "WKWL" u32 | version u32                          -- file header
//! [ payload_len u32 | seq u64 | fnv1a64(seq||payload) u64 | payload ]*
//! ```
//!
//! Crash points from an installed [`crate::crash::CrashScope`] are
//! consumed inside [`WalWriter::append`] (one index per append) and inside
//! every [`crate::io::atomic_write`] the checkpoint path performs.

use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

use crate::crash::{self, AppendCrash};
use crate::error::DataError;
use crate::io::{atomic_write, fnv1a64, read_u32, read_u64, write_u32, write_u64};
use crate::vecs::VectorSet;

const WAL_MAGIC: u32 = 0x574B_574C; // "WKWL"
const WAL_VERSION: u32 = 1;
/// Bytes of file header before the first record.
pub const WAL_HEADER_LEN: u64 = 8;
/// Frame bytes before the payload: len u32 + seq u64 + checksum u64.
pub const WAL_FRAME_OVERHEAD: u64 = 20;

const MANIFEST_MAGIC: u32 = 0x574B_4D46; // "WKMF"
const MANIFEST_VERSION: u32 = 1;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Fsync-on-commit policy for the WAL.
///
/// `Always` fsyncs after every appended record before the mutation is
/// acknowledged — an acked mutation survives power loss. `Never` leaves
/// flushing to the OS: cheaper, survives process crashes (the page cache
/// persists) but not power loss. The crash harness's kill-before-fsync
/// point models exactly the window `Never` leaves open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync every record before acknowledging it.
    #[default]
    Always,
    /// Let the OS flush when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parse `always` / `never` (the CLI surface).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy `{other}` (want always|never)")),
        }
    }
}

/// One logged mutation batch. Mirrors the serve layer's `MutationOp`;
/// it lives here so the log format has no dependency on serve types.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Append these vectors to the index.
    Insert(VectorSet),
    /// Tombstone these point ids.
    Delete(Vec<u32>),
}

impl WalOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::Insert(vs) => {
                out.push(OP_INSERT);
                out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                out.extend_from_slice(&(vs.dim() as u32).to_le_bytes());
                for &v in vs.as_flat() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            WalOp::Delete(ids) => {
                out.push(OP_DELETE);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for &id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<WalOp, DataError> {
        let bad = |m: &str| DataError::Format(format!("wal record payload: {m}"));
        let (&tag, mut rest) = payload.split_first().ok_or_else(|| bad("empty"))?;
        let take_u32 = |rest: &mut &[u8]| -> Result<u32, DataError> {
            if rest.len() < 4 {
                return Err(bad("short field"));
            }
            let (head, tail) = rest.split_at(4);
            *rest = tail;
            Ok(u32::from_le_bytes(head.try_into().unwrap()))
        };
        match tag {
            OP_INSERT => {
                let n = take_u32(&mut rest)? as usize;
                let dim = take_u32(&mut rest)? as usize;
                if rest.len() != n * dim * 4 {
                    return Err(bad("insert body length disagrees with its shape"));
                }
                let mut data = Vec::with_capacity(n * dim);
                for chunk in rest.chunks_exact(4) {
                    data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
                }
                Ok(WalOp::Insert(VectorSet::new(data, dim)?))
            }
            OP_DELETE => {
                let count = take_u32(&mut rest)? as usize;
                if rest.len() != count * 4 {
                    return Err(bad("delete body length disagrees with its count"));
                }
                let ids = rest
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Ok(WalOp::Delete(ids))
            }
            _ => Err(bad("unknown op tag")),
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// The logged mutation batch.
    pub op: WalOp,
}

/// The result of scanning a WAL file tolerantly.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every complete, checksum-valid record, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid record (the length the
    /// file should be truncated to).
    pub valid_len: u64,
    /// Bytes of torn tail discarded after `valid_len`.
    pub torn_bytes: u64,
}

fn frame_bytes(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::new();
    op.encode(&mut payload);
    let mut sum_input = Vec::with_capacity(8 + payload.len());
    sum_input.extend_from_slice(&seq.to_le_bytes());
    sum_input.extend_from_slice(&payload);
    let mut frame = Vec::with_capacity(WAL_FRAME_OVERHEAD as usize + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&fnv1a64(&sum_input).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Scan a WAL file, tolerating a torn tail.
///
/// Returns every complete, checksum-valid record and the byte offset the
/// file should be truncated to. A corrupt *interior* (duplicate or
/// non-contiguous sequence numbers behind a valid checksum, undecodable
/// payload) is a hard [`DataError::Format`] — that is not what a crash
/// leaves behind. A missing or mangled file header is likewise hard.
pub fn read_wal(path: &Path) -> Result<WalScan, DataError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(DataError::Format(format!("{} is shorter than a wal header", path.display())));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != WAL_MAGIC {
        return Err(DataError::Format(format!("{} is not a WKWL wal file", path.display())));
    }
    if version != WAL_VERSION {
        return Err(DataError::Format(format!(
            "{}: unsupported wal version {version}",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    // A frame cut off anywhere — header or payload — is a torn tail, not an
    // error; the loop simply stops at the last whole valid frame.
    while let Some(head) = bytes.get(off..off + WAL_FRAME_OVERHEAD as usize) {
        let payload_len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(head[4..12].try_into().unwrap());
        let expected_sum = u64::from_le_bytes(head[12..20].try_into().unwrap());
        let body_start = off + WAL_FRAME_OVERHEAD as usize;
        let Some(payload) = bytes.get(body_start..body_start + payload_len) else {
            break; // torn payload
        };
        let mut sum_input = Vec::with_capacity(8 + payload_len);
        sum_input.extend_from_slice(&seq.to_le_bytes());
        sum_input.extend_from_slice(payload);
        if fnv1a64(&sum_input) != expected_sum {
            break; // torn or bit-flipped tail record
        }
        // Past the checksum the record is authoritative: structural problems
        // here are corruption, not a crash artifact.
        if let Some(last) = records.last() {
            let last: &WalRecord = last;
            if seq != last.seq + 1 {
                return Err(DataError::Format(format!(
                    "{}: record sequence jumps from {} to {seq} (duplicate or gap)",
                    path.display(),
                    last.seq
                )));
            }
        }
        let op = WalOp::decode(payload)?;
        records.push(WalRecord { seq, op });
        off = body_start + payload_len;
    }
    Ok(WalScan { records, valid_len: off as u64, torn_bytes: (bytes.len() - off) as u64 })
}

/// Append handle for a WAL file.
///
/// The writer assigns sequence numbers itself (monotonic, starting where
/// the existing log left off) and honours the [`FsyncPolicy`] on every
/// append. When a [`crate::crash::CrashScope`] is armed on the calling
/// thread, each append consumes one crash index and an injected crash
/// leaves the file exactly as a killed process would.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_seq: u64,
    appends: u64,
    bytes_appended: u64,
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file), write
    /// and fsync its header.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<WalWriter, DataError> {
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        let mut file = std::fs::File::create(path)?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            next_seq: 0,
            appends: 0,
            bytes_appended: 0,
        })
    }

    /// Open an existing WAL, repairing a torn tail: the file is physically
    /// truncated to the last valid record and the writer positioned after
    /// it. Returns the scan so the caller can replay the surviving records.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(WalWriter, WalScan), DataError> {
        let scan = read_wal(path)?;
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        if scan.torn_bytes > 0 {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        file.seek(std::io::SeekFrom::End(0))?;
        let next_seq = scan.records.last().map(|r| r.seq + 1).unwrap_or(0);
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                policy,
                next_seq,
                appends: 0,
                bytes_appended: 0,
            },
            scan,
        ))
    }

    /// Append one mutation batch; returns its sequence number once the
    /// record is durable per the fsync policy. An injected crash writes
    /// the same bytes a dying process would (nothing, half a frame, or a
    /// torn prefix) and surfaces [`DataError::Crash`] — the writer must
    /// then be abandoned, exactly like a dead process.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, DataError> {
        let seq = self.next_seq;
        let frame = frame_bytes(seq, op);
        match crash::next_append_crash() {
            Some(AppendCrash::BeforeFsync) => {
                // The write sat in the page cache and the machine died
                // before the fsync: nothing reaches the file.
                return Err(DataError::Crash(format!("killed before fsync of wal seq {seq}")));
            }
            Some(AppendCrash::MidAppend) => {
                self.file.write_all(&frame[..frame.len() / 2])?;
                self.file.sync_all()?;
                return Err(DataError::Crash(format!("killed mid-append of wal seq {seq}")));
            }
            Some(AppendCrash::TornAt(n)) => {
                let n = (n as usize).min(frame.len());
                self.file.write_all(&frame[..n])?;
                self.file.sync_all()?;
                return Err(DataError::Crash(format!("killed after {n} bytes of wal seq {seq}")));
            }
            None => {}
        }
        self.file.write_all(&frame)?;
        if self.policy == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        self.next_seq += 1;
        self.appends += 1;
        self.bytes_appended += frame.len() as u64;
        Ok(seq)
    }

    /// Explicitly fsync the log (a no-op risk-wise under `Always`).
    pub fn sync(&mut self) -> Result<(), DataError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Drop every record with `seq < keep_from` by atomically rewriting
    /// the log with the surviving tail. Called after a checkpoint absorbs
    /// the prefix; consumes one rename crash index. Sequence numbering
    /// continues unchanged.
    pub fn prune(&mut self, keep_from: u64) -> Result<(), DataError> {
        let scan = read_wal(&self.path)?;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for rec in scan.records.iter().filter(|r| r.seq >= keep_from) {
            bytes.extend_from_slice(&frame_bytes(rec.seq, &rec.op));
        }
        atomic_write(&self.path, &bytes)?;
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }

    /// Raise the next sequence number to at least `seq`. Recovery calls
    /// this with the checkpoint manifest's WAL position: a fully pruned log
    /// reopens with no records to infer numbering from, and fresh appends
    /// must never reuse sequence numbers a sealed manifest already covers
    /// (replay would silently skip them).
    pub fn resume_from(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Successful appends through this writer.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Frame bytes successfully appended through this writer.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The checkpoint manifest: written last (atomically) when an epoch is
/// checkpointed, it is what makes a checkpoint generation *valid*.
///
/// Layout: `"WKMF" u32 | version u32 | payload_len u64 | fnv1a64 u64 |
/// payload`, where the payload is `generation u64 | epoch_id u64 |
/// wal_next_seq u64 | slots u64 | tombstone bitmap (1 byte per slot)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// The checkpoint generation this manifest seals.
    pub generation: u64,
    /// The epoch id that was checkpointed (informational).
    pub epoch_id: u64,
    /// First WAL sequence NOT absorbed by this checkpoint: recovery
    /// replays records with `seq >= wal_next_seq`.
    pub wal_next_seq: u64,
    /// Per-slot tombstone flags for the (uncompacted) checkpointed epoch.
    pub deleted: Vec<bool>,
}

impl CheckpointManifest {
    /// Atomically write the manifest to `path` (consumes one rename crash
    /// index).
    pub fn save(&self, path: &Path) -> Result<(), DataError> {
        let mut payload = Vec::with_capacity(32 + self.deleted.len());
        write_u64(&mut payload, self.generation)?;
        write_u64(&mut payload, self.epoch_id)?;
        write_u64(&mut payload, self.wal_next_seq)?;
        write_u64(&mut payload, self.deleted.len() as u64)?;
        payload.extend(self.deleted.iter().map(|&d| d as u8));
        let mut file = Vec::with_capacity(24 + payload.len());
        write_u32(&mut file, MANIFEST_MAGIC)?;
        write_u32(&mut file, MANIFEST_VERSION)?;
        write_u64(&mut file, payload.len() as u64)?;
        write_u64(&mut file, fnv1a64(&payload))?;
        file.extend_from_slice(&payload);
        atomic_write(path, &file)
    }

    /// Load and verify a manifest.
    pub fn load(path: &Path) -> Result<CheckpointManifest, DataError> {
        let bytes = std::fs::read(path)?;
        let mut r = bytes.as_slice();
        let magic = read_u32(&mut r)?;
        if magic != MANIFEST_MAGIC {
            return Err(DataError::Format(format!("{} is not a WKMF manifest", path.display())));
        }
        let version = read_u32(&mut r)?;
        if version != MANIFEST_VERSION {
            return Err(DataError::Format(format!(
                "{}: unsupported manifest version {version}",
                path.display()
            )));
        }
        let expected_len = read_u64(&mut r)?;
        let expected_sum = read_u64(&mut r)?;
        if (r.len() as u64) < expected_len {
            return Err(DataError::Truncated { expected: expected_len, got: r.len() as u64 });
        }
        if r.len() as u64 > expected_len {
            return Err(DataError::Format(format!(
                "{} has trailing bytes after its payload",
                path.display()
            )));
        }
        let actual_sum = fnv1a64(r);
        if actual_sum != expected_sum {
            return Err(DataError::ChecksumMismatch { expected: expected_sum, actual: actual_sum });
        }
        let generation = read_u64(&mut r)?;
        let epoch_id = read_u64(&mut r)?;
        let wal_next_seq = read_u64(&mut r)?;
        let slots = read_u64(&mut r)? as usize;
        if r.len() != slots {
            return Err(DataError::Format(format!(
                "{}: bitmap holds {} slots, header says {slots}",
                path.display(),
                r.len()
            )));
        }
        let deleted = r.iter().map(|&b| b != 0).collect();
        Ok(CheckpointManifest { generation, epoch_id, wal_next_seq, deleted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{CrashPlan, CrashScope};
    use crate::synth::DatasetSpec;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-wal-test-{name}-{}", std::process::id()));
        p
    }

    fn sample_ops() -> Vec<WalOp> {
        let vs = DatasetSpec::UniformCube { n: 3, dim: 4 }.generate(11).vectors;
        vec![WalOp::Insert(vs), WalOp::Delete(vec![0, 2]), WalOp::Delete(vec![])]
    }

    #[test]
    fn empty_log_scans_to_zero_records() {
        let p = tmp("empty");
        WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        let scan = read_wal(&p).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
        assert_eq!(scan.torn_bytes, 0);
        let (w, scan) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(w.next_seq(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn append_and_scan_roundtrip_with_sequence_numbers() {
        let p = tmp("roundtrip");
        let ops = sample_ops();
        let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(w.append(op).unwrap(), i as u64);
        }
        assert_eq!(w.appends(), 3);
        assert!(w.bytes_appended() > 0);
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 3);
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.op, ops[i]);
        }
        assert_eq!(scan.torn_bytes, 0);
        // Reopening continues the sequence.
        let (mut w, _) = WalWriter::open(&p, FsyncPolicy::Never).unwrap();
        assert_eq!(w.next_seq(), 3);
        assert_eq!(w.append(&ops[1]).unwrap(), 3);
        assert_eq!(read_wal(&p).unwrap().records.len(), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_at_every_byte_offset_recovers_the_prefix() {
        // Write 3 records, then truncate the file at every byte offset
        // inside the final frame: the scan must always return the first 2
        // records and report the remainder as torn.
        let p = tmp("torn");
        let ops = sample_ops();
        let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        drop(w);
        let full = std::fs::read(&p).unwrap();
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.valid_len as usize, full.len());
        // Find where record 2's frame starts by scanning a 2-record log.
        let p2 = tmp("torn-prefix");
        let mut w2 = WalWriter::create(&p2, FsyncPolicy::Always).unwrap();
        w2.append(&ops[0]).unwrap();
        w2.append(&ops[1]).unwrap();
        drop(w2);
        let two_len = std::fs::read(&p2).unwrap().len();
        std::fs::remove_file(&p2).ok();

        for cut in two_len..full.len() {
            std::fs::write(&p, &full[..cut]).unwrap();
            let scan = read_wal(&p).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, two_len, "cut at {cut}");
            assert_eq!(scan.torn_bytes as usize, cut - two_len, "cut at {cut}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn opening_a_torn_log_physically_repairs_it() {
        let p = tmp("repair");
        let ops = sample_ops();
        let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        w.append(&ops[0]).unwrap();
        w.append(&ops[1]).unwrap();
        drop(w);
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 5]).unwrap();
        let (mut w, scan) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, full.len() as u64 - 5 - scan.valid_len);
        assert_eq!(w.next_seq(), 1);
        // The torn bytes are gone from disk and appends continue cleanly.
        assert_eq!(std::fs::metadata(&p).unwrap().len(), scan.valid_len);
        w.append(&ops[1]).unwrap();
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].seq, 1);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn duplicate_or_gapped_sequences_are_hard_errors() {
        let p = tmp("dup");
        let ops = sample_ops();
        // Hand-craft: header + seq 0 + seq 0 again (duplicate).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&frame_bytes(0, &ops[1]));
        bytes.extend_from_slice(&frame_bytes(0, &ops[2]));
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read_wal(&p), Err(DataError::Format(_))));
        // Gap: seq 0 then seq 2.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&frame_bytes(0, &ops[1]));
        bytes.extend_from_slice(&frame_bytes(2, &ops[2]));
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read_wal(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mangled_headers_are_hard_errors() {
        let p = tmp("header");
        std::fs::write(&p, [0u8; 4]).unwrap();
        assert!(matches!(read_wal(&p), Err(DataError::Format(_))));
        std::fs::write(&p, [0u8; 16]).unwrap();
        assert!(matches!(read_wal(&p), Err(DataError::Format(_))));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&99u32.to_le_bytes()); // bad version
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read_wal(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn prune_keeps_the_tail_and_the_numbering() {
        let p = tmp("prune");
        let ops = sample_ops();
        let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        w.prune(2).unwrap();
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 2);
        // Appends continue at seq 3 and the log stays contiguous.
        assert_eq!(w.append(&ops[0]).unwrap(), 3);
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].seq, 3);
        // Prune past everything leaves an empty-but-valid log.
        w.prune(100).unwrap();
        assert!(read_wal(&p).unwrap().records.is_empty());
        assert_eq!(w.append(&ops[0]).unwrap(), 4);
        assert_eq!(read_wal(&p).unwrap().records[0].seq, 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopening_a_fully_pruned_log_resumes_from_the_manifest_position() {
        let p = tmp("resume");
        let ops = sample_ops();
        let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        // A checkpoint at seq 3 prunes everything; a later reopen has no
        // records to infer the numbering from...
        w.prune(3).unwrap();
        drop(w);
        let (mut w, scan) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(w.next_seq(), 0, "a bare reopen cannot know the position");
        // ...so recovery resumes it from the manifest. Appends then continue
        // past every sequence a sealed checkpoint covers.
        w.resume_from(3);
        assert_eq!(w.append(&ops[0]).unwrap(), 3);
        // resume_from never lowers the numbering.
        w.resume_from(1);
        assert_eq!(w.next_seq(), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn injected_append_crashes_leave_a_recoverable_file() {
        let ops = sample_ops();
        // Kill before fsync: the record vanishes entirely.
        let p = tmp("crash-prefsync");
        {
            let _scope = CrashScope::install(CrashPlan::new().kill_before_fsync(1));
            let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
            w.append(&ops[0]).unwrap();
            assert!(matches!(w.append(&ops[1]), Err(DataError::Crash(_))));
            assert_eq!(w.appends(), 1);
        }
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&p).ok();

        // Kill mid-append: half a frame survives as a torn tail.
        let p = tmp("crash-midappend");
        {
            let _scope = CrashScope::install(CrashPlan::new().kill_mid_append(1));
            let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
            w.append(&ops[0]).unwrap();
            assert!(matches!(w.append(&ops[1]), Err(DataError::Crash(_))));
        }
        let scan = read_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        std::fs::remove_file(&p).ok();

        // Torn at an exact byte count.
        let p = tmp("crash-torn");
        {
            let _scope = CrashScope::install(CrashPlan::new().torn_write(0, 7));
            let mut w = WalWriter::create(&p, FsyncPolicy::Always).unwrap();
            assert!(matches!(w.append(&ops[0]), Err(DataError::Crash(_))));
        }
        let scan = read_wal(&p).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_bytes, 7);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fsync_policy_parses_and_never_still_persists_in_process() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
        let p = tmp("nofsync");
        let mut w = WalWriter::create(&p, FsyncPolicy::Never).unwrap();
        w.append(&WalOp::Delete(vec![1, 2, 3])).unwrap();
        drop(w);
        assert_eq!(read_wal(&p).unwrap().records.len(), 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn manifest_roundtrips_and_detects_corruption() {
        let p = tmp("manifest");
        let m = CheckpointManifest {
            generation: 3,
            epoch_id: 17,
            wal_next_seq: 42,
            deleted: vec![false, true, false, false, true],
        };
        m.save(&p).unwrap();
        assert_eq!(CheckpointManifest::load(&p).unwrap(), m);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(CheckpointManifest::load(&p), Err(DataError::ChecksumMismatch { .. })));
        std::fs::write(&p, [0u8; 40]).unwrap();
        assert!(matches!(CheckpointManifest::load(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }
}
