//! Lloyd's k-means — the shared clustering substrate.
//!
//! Lives in the data crate so both consumers sit above it in the dependency
//! graph: the IVF-Flat baseline's coarse quantizer
//! (`wknng_baseline::kmeans` re-exports this module verbatim) and the
//! product-quantization codebook training in [`crate::pq`], which runs one
//! k-means per subspace.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::dist::sq_l2;
use crate::vecs::VectorSet;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Row-major `nlist × dim` centroids.
    pub centroids: Vec<f32>,
    /// Dimensionality.
    pub dim: usize,
    /// Number of centroids.
    pub nlist: usize,
    /// Cluster assignment of every training point.
    pub assignment: Vec<u32>,
    /// Iterations actually executed.
    pub iterations: usize,
}

impl Kmeans {
    /// Centroid `c` as a slice.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the centroid nearest to `row`.
    pub fn nearest(&self, row: &[f32]) -> usize {
        let mut best = (f32::INFINITY, 0usize);
        for c in 0..self.nlist {
            let d = sq_l2(row, self.centroid(c));
            if d < best.0 {
                best = (d, c);
            }
        }
        best.1
    }
}

/// Train `nlist` centroids with Lloyd iterations (k-means++-style seeding
/// simplified to distinct random picks, which FAISS also defaults to for
/// coarse quantizers). Deterministic in `seed`.
pub fn train_kmeans(vs: &VectorSet, nlist: usize, max_iters: usize, seed: u64) -> Kmeans {
    let n = vs.len();
    let dim = vs.dim();
    let nlist = nlist.clamp(1, n.max(1));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D);

    // Distinct random initial centers.
    let mut picks: Vec<usize> = Vec::with_capacity(nlist);
    while picks.len() < nlist {
        let c = rng.gen_range(0..n);
        if !picks.contains(&c) {
            picks.push(c);
        }
    }
    let mut centroids: Vec<f32> = picks.iter().flat_map(|&p| vs.row(p).iter().copied()).collect();
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;

    for _ in 0..max_iters {
        iterations += 1;
        // Assign.
        let next: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|p| {
                let row = vs.row(p);
                let mut best = (f32::INFINITY, 0u32);
                for c in 0..nlist {
                    let d = sq_l2(row, &centroids[c * dim..(c + 1) * dim]);
                    if d < best.0 {
                        best = (d, c as u32);
                    }
                }
                best.1
            })
            .collect();
        let changed = next.iter().zip(&assignment).filter(|(a, b)| a != b).count();
        assignment = next;

        // Update.
        let mut sums = vec![0.0f64; nlist * dim];
        let mut counts = vec![0usize; nlist];
        for (p, &c) in assignment.iter().enumerate() {
            counts[c as usize] += 1;
            let row = vs.row(p);
            for (j, &v) in row.iter().enumerate() {
                sums[c as usize * dim + j] += v as f64;
            }
        }
        for c in 0..nlist {
            if counts[c] == 0 {
                // Re-seed an empty cluster with a random point (standard fix).
                let p = rng.gen_range(0..n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(vs.row(p));
            } else {
                for j in 0..dim {
                    centroids[c * dim + j] = (sums[c * dim + j] / counts[c] as f64) as f32;
                }
            }
        }
        if changed == 0 {
            break;
        }
    }

    Kmeans { centroids, dim, nlist, assignment, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    #[test]
    fn separable_blobs_are_recovered() {
        // Two blobs far apart: k-means with k=2 must split them.
        let mut rows = Vec::new();
        for i in 0..40 {
            let off = if i < 20 { 0.0 } else { 50.0 };
            rows.push(vec![off + (i % 20) as f32 * 0.01, off]);
        }
        let vs = VectorSet::from_rows(&rows).unwrap();
        let km = train_kmeans(&vs, 2, 20, 7);
        let a = km.assignment[0];
        assert!(km.assignment[..20].iter().all(|&c| c == a));
        assert!(km.assignment[20..].iter().all(|&c| c != a));
    }

    #[test]
    fn deterministic_and_bounded() {
        let vs = DatasetSpec::UniformCube { n: 60, dim: 5 }.generate(2).vectors;
        let a = train_kmeans(&vs, 8, 10, 3);
        let b = train_kmeans(&vs, 8, 10, 3);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignment, b.assignment);
        assert!(a.iterations <= 10);
        assert_eq!(a.nlist, 8);
    }

    #[test]
    fn nlist_clamped_to_n() {
        let vs = DatasetSpec::UniformCube { n: 5, dim: 2 }.generate(1).vectors;
        let km = train_kmeans(&vs, 100, 5, 0);
        assert_eq!(km.nlist, 5);
    }

    #[test]
    fn nearest_agrees_with_assignment_post_convergence() {
        let vs = DatasetSpec::GaussianClusters { n: 90, dim: 4, clusters: 3, spread: 0.05 }
            .generate(4)
            .vectors;
        let km = train_kmeans(&vs, 3, 50, 5);
        for p in 0..vs.len() {
            assert_eq!(km.nearest(vs.row(p)) as u32, km.assignment[p]);
        }
    }
}
