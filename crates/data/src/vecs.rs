//! Dense row-major vector sets — the point collections a K-NNG is built over.

use crate::error::DataError;

/// An `n × d` set of `f32` points stored row-major in one flat allocation
/// (the layout GPU kernels and cache-friendly CPU loops both want).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    data: Vec<f32>,
    n: usize,
    dim: usize,
}

impl VectorSet {
    /// Build from a flat row-major buffer. Validates shape and finiteness.
    pub fn new(data: Vec<f32>, dim: usize) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::ZeroDimension);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(DataError::RaggedBuffer { len: data.len(), dim });
        }
        for (i, v) in data.iter().enumerate() {
            if !v.is_finite() {
                return Err(DataError::NonFinite { point: i / dim, coord: i % dim });
            }
        }
        let n = data.len() / dim;
        Ok(VectorSet { data, n, dim })
    }

    /// Build from explicit rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, DataError> {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            if r.len() != dim {
                return Err(DataError::RaggedBuffer { len: r.len(), dim });
            }
            data.extend_from_slice(r);
        }
        VectorSet::new(data, dim.max(1))
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of every point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterator over rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Append every row of `rows` to `self` in place — O(rows), no clone of
    /// the existing points. Both sets must agree on dimensionality (an empty
    /// `self` adopts nothing: its `dim` was fixed at construction).
    pub fn append(&mut self, rows: &VectorSet) -> Result<(), DataError> {
        if rows.dim != self.dim {
            return Err(DataError::DimMismatch { got: rows.dim, want: self.dim });
        }
        self.data.extend_from_slice(&rows.data);
        self.n += rows.n;
        Ok(())
    }

    /// A new set containing the given rows of `self`, in order.
    pub fn gather(&self, indices: &[usize]) -> VectorSet {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        VectorSet { data, n: indices.len(), dim: self.dim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        assert_eq!(VectorSet::new(vec![1.0; 6], 0).unwrap_err(), DataError::ZeroDimension);
        assert_eq!(
            VectorSet::new(vec![1.0; 7], 3).unwrap_err(),
            DataError::RaggedBuffer { len: 7, dim: 3 }
        );
        let vs = VectorSet::new(vec![1.0; 6], 3).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.dim(), 3);
    }

    #[test]
    fn new_rejects_non_finite() {
        let mut data = vec![0.0f32; 6];
        data[4] = f32::NAN;
        assert_eq!(
            VectorSet::new(data, 3).unwrap_err(),
            DataError::NonFinite { point: 1, coord: 1 }
        );
        let mut data = vec![0.0f32; 4];
        data[0] = f32::INFINITY;
        assert_eq!(
            VectorSet::new(data, 2).unwrap_err(),
            DataError::NonFinite { point: 0, coord: 0 }
        );
    }

    #[test]
    fn from_rows_and_row_access() {
        let vs = VectorSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(vs.row(0), &[1.0, 2.0]);
        assert_eq!(vs.row(1), &[3.0, 4.0]);
        assert_eq!(vs.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<_> = vs.rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = VectorSet::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, DataError::RaggedBuffer { .. }));
    }

    #[test]
    fn empty_set_is_fine() {
        let vs = VectorSet::new(vec![], 5).unwrap();
        assert!(vs.is_empty());
        assert_eq!(vs.dim(), 5);
    }

    #[test]
    fn append_extends_in_place_and_checks_dim() {
        let mut vs = VectorSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let more = VectorSet::from_rows(&[vec![5.0, 6.0]]).unwrap();
        vs.append(&more).unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs.row(2), &[5.0, 6.0]);
        let wrong = VectorSet::new(vec![0.0; 3], 3).unwrap();
        assert_eq!(vs.append(&wrong).unwrap_err(), DataError::DimMismatch { got: 3, want: 2 });
        assert_eq!(vs.len(), 3, "failed append leaves the set untouched");
        // Appending an empty set of the right dim is a no-op.
        vs.append(&VectorSet::new(vec![], 2).unwrap()).unwrap();
        assert_eq!(vs.len(), 3);
    }

    #[test]
    fn gather_picks_rows_in_order() {
        let vs = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let g = vs.gather(&[3, 1, 1]);
        assert_eq!(g.as_flat(), &[3.0, 1.0, 1.0]);
        assert_eq!(g.len(), 3);
    }
}
