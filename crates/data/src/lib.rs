//! # wknng-data — point sets, generators, distances and ground truth
//!
//! Data substrate for the w-KNNG reproduction:
//!
//! * [`VectorSet`] — dense row-major `n × d` point sets with validation;
//! * [`DatasetSpec`] — seeded synthetic generators standing in for the
//!   paper's real datasets (see `DESIGN.md` for the substitution argument);
//! * [`Metric`] and the distance kernels ([`sq_l2`], [`dot`],
//!   [`cosine_distance`]);
//! * [`Neighbor`] — the shared K-NNG edge record with its packed `u64`
//!   representation used by the GPU kernels;
//! * [`exact_knn`] — the brute-force oracle that recall is measured against;
//! * binary persistence ([`io`]) for caching ground truth between runs;
//! * durability primitives ([`wal`]) — the mutation write-ahead log and
//!   checkpoint manifest behind crash-consistent serving — and the
//!   deterministic crash-point injection harness ([`crash`]) that proves
//!   them.
//!
//! ```
//! use wknng_data::{exact_knn, DatasetSpec, Metric};
//!
//! let ds = DatasetSpec::sift_like(200).generate(42);
//! let truth = exact_knn(&ds.vectors, 10, Metric::SquaredL2);
//! assert_eq!(truth.len(), 200);
//! assert_eq!(truth[0].len(), 10);
//! ```

pub mod crash;
pub mod dist;
pub mod error;
pub mod groundtruth;
pub mod io;
pub mod kmeans;
pub mod neighbor;
pub mod pq;
pub mod quant;
pub mod simd;
pub mod stats;
pub mod synth;
pub mod texmex;
pub mod vecs;
pub mod wal;

pub use crash::{AppendCrash, CrashPlan, CrashScope};
pub use dist::{cosine_distance, dot, norm, sq_l2, Metric};
pub use error::DataError;
pub use groundtruth::exact_knn;
pub use kmeans::{train_kmeans, Kmeans};
pub use neighbor::{sort_neighbors, Neighbor};
pub use pq::{AdcTable, PqCodebook, PqCodes, PqParams};
pub use quant::QuantizedSet;
pub use simd::{
    kernel, kernel_mode, set_kernel_mode, DistanceKernel, KernelMode, KernelModeGuard,
    ScalarKernel, SimdKernel,
};
pub use stats::{intrinsic_dim_mle, mean_nn_distance};
pub use synth::{normal, Dataset, DatasetSpec};
pub use vecs::VectorSet;
pub use wal::{
    read_wal, CheckpointManifest, FsyncPolicy, WalOp, WalRecord, WalScan, WalWriter,
    WAL_FRAME_OVERHEAD, WAL_HEADER_LEN,
};
