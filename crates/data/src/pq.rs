//! Product quantization (PQ) with asymmetric-distance (ADC) lookup tables.
//!
//! SQ8 ([`crate::quant`]) rounds every coordinate to one byte — 4× smaller,
//! but the footprint still grows with `dim`. PQ goes much further: the
//! vector is split into `m` subspaces, each subspace is k-means-clustered
//! into ≤256 centroids (reusing [`crate::kmeans`]), and a point is stored
//! as the `m` centroid ids of its subvectors — **`m` bytes per point**,
//! independent of `dim`. A 128-dim point at `m = 8` shrinks 512 → 8 bytes:
//! the layout that makes millions of vectors per shard a memory-footprint
//! non-event, and the playbook of "Large-Scale Approximate k-NN Graph
//! Construction on GPU" (PAPERS.md).
//!
//! Distances come from the **ADC** (asymmetric distance computation) side:
//! a full-precision query is compared against quantized points by first
//! tabulating, per subspace, its squared distance to all centroids — an
//! [`AdcTable`] of `m × ks` floats — after which each point's distance is
//! `m` table lookups and adds, no coordinate arithmetic at all. By
//! construction the ADC distance **equals** the exact squared L2 distance
//! between the query and the *decoded* point (up to float reassociation):
//! the differential tests pin exactly that identity, plus the triangle
//! bound `|‖q−x‖ − ‖q−x̂‖| ≤ ‖x−x̂‖` against the unquantized point.
//!
//! Odd dimensionalities need no padding: when `m ∤ dim` the first
//! `dim mod m` subspaces are one dimension wider, so every coordinate
//! belongs to exactly one subspace and tails cannot drift.

use crate::dist::sq_l2;
use crate::error::DataError;
use crate::kmeans::train_kmeans;
use crate::vecs::VectorSet;

/// Training-time parameters of a PQ codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqParams {
    /// Subquantizers (bytes per encoded point). Clamped to `dim` at
    /// training time — a subspace cannot be narrower than one dimension.
    pub m: usize,
    /// Lloyd iterations per subspace codebook.
    pub train_iters: usize,
    /// Most training points used per subspace k-means (a deterministic
    /// stride-sample of the set); `0` trains on everything.
    pub train_sample: usize,
    /// Seed for the per-subspace k-means runs.
    pub seed: u64,
}

impl Default for PqParams {
    fn default() -> Self {
        PqParams { m: 8, train_iters: 12, train_sample: 4096, seed: 0x9A11 }
    }
}

/// Centroids per subspace at 8-bit codes (fewer when the training set is
/// smaller).
pub const PQ_KS: usize = 256;

/// A trained PQ codebook: per-subspace centroid tables.
#[derive(Debug, Clone, PartialEq)]
pub struct PqCodebook {
    dim: usize,
    m: usize,
    ks: usize,
    /// Subspace boundaries: subspace `s` covers dims `starts[s]..starts[s+1]`.
    starts: Vec<usize>,
    /// Flat centroid storage; subspace `s`, centroid `j` lives at
    /// `cent_off[s] + j · width(s)`.
    cent_off: Vec<usize>,
    centroids: Vec<f32>,
}

impl PqCodebook {
    /// Train a codebook on `vs`. Deterministic in `params.seed`.
    pub fn train(vs: &VectorSet, params: &PqParams) -> Result<PqCodebook, DataError> {
        let dim = vs.dim();
        if dim == 0 {
            return Err(DataError::ZeroDimension);
        }
        if vs.is_empty() {
            return Err(DataError::EmptyTrainingSet);
        }
        let m = params.m.clamp(1, dim);

        // Deterministic stride sample of the training points.
        let train: VectorSet = if params.train_sample != 0 && vs.len() > params.train_sample {
            let step = vs.len().div_ceil(params.train_sample);
            let ids: Vec<usize> = (0..vs.len()).step_by(step).collect();
            vs.gather(&ids)
        } else {
            vs.clone()
        };
        let ks = PQ_KS.min(train.len());

        // First `dim mod m` subspaces get the extra dimension.
        let (base, extra) = (dim / m, dim % m);
        let mut starts = Vec::with_capacity(m + 1);
        let mut at = 0usize;
        starts.push(0);
        for s in 0..m {
            at += base + usize::from(s < extra);
            starts.push(at);
        }

        let mut cent_off = Vec::with_capacity(m + 1);
        let mut centroids = Vec::new();
        for s in 0..m {
            cent_off.push(centroids.len());
            let width = starts[s + 1] - starts[s];
            let sub: Vec<f32> = train
                .rows()
                .flat_map(|row| row[starts[s]..starts[s + 1]].iter().copied())
                .collect();
            let sub = VectorSet::new(sub, width).expect("subspace rows stay finite");
            let km = train_kmeans(&sub, ks, params.train_iters, params.seed ^ (s as u64) << 32);
            debug_assert_eq!(km.nlist, ks);
            centroids.extend_from_slice(&km.centroids);
        }
        cent_off.push(centroids.len());
        Ok(PqCodebook { dim, m, ks, starts, cent_off, centroids })
    }

    /// Dimensionality of the vectors this codebook encodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Subquantizers (= bytes per encoded point).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Centroids per subspace.
    pub fn ks(&self) -> usize {
        self.ks
    }

    /// Bytes held by the centroid tables (amortized across all points).
    pub fn table_bytes(&self) -> usize {
        self.centroids.len() * std::mem::size_of::<f32>()
    }

    /// Centroid `j` of subspace `s`.
    pub fn centroid(&self, s: usize, j: usize) -> &[f32] {
        let width = self.starts[s + 1] - self.starts[s];
        let at = self.cent_off[s] + j * width;
        &self.centroids[at..at + width]
    }

    /// Encode one row (must match the trained dimensionality).
    pub fn encode_row(&self, row: &[f32]) -> Vec<u8> {
        assert_eq!(row.len(), self.dim, "encode_row over the wrong dimensionality");
        (0..self.m)
            .map(|s| {
                let sub = &row[self.starts[s]..self.starts[s + 1]];
                let mut best = (f32::INFINITY, 0usize);
                for j in 0..self.ks {
                    let d = sq_l2(sub, self.centroid(s, j));
                    if d < best.0 {
                        best = (d, j);
                    }
                }
                best.1 as u8
            })
            .collect()
    }

    /// Encode a whole set into packed codes.
    pub fn encode(&self, vs: &VectorSet) -> Result<PqCodes, DataError> {
        if vs.dim() != self.dim {
            return Err(DataError::DimMismatch { got: vs.dim(), want: self.dim });
        }
        let mut codes = Vec::with_capacity(vs.len() * self.m);
        for row in vs.rows() {
            codes.extend_from_slice(&self.encode_row(row));
        }
        Ok(PqCodes { codes, n: vs.len(), m: self.m })
    }

    /// Decode one code row back to the centroid concatenation `x̂`.
    pub fn decode_row(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "decode_row over the wrong code width");
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.centroid(s, c as usize));
        }
        out
    }

    /// Decode a whole code set (the test oracle for the ADC identity).
    pub fn decode(&self, codes: &PqCodes) -> VectorSet {
        let mut flat = Vec::with_capacity(codes.len() * self.dim);
        for i in 0..codes.len() {
            flat.extend_from_slice(&self.decode_row(codes.row(i)));
        }
        VectorSet::new(flat, self.dim).expect("centroids are finite")
    }

    /// Build the per-query ADC lookup table (`m × ks` squared distances).
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        assert_eq!(query.len(), self.dim, "adc_table over the wrong dimensionality");
        let mut lut = Vec::with_capacity(self.m * self.ks);
        for s in 0..self.m {
            let sub = &query[self.starts[s]..self.starts[s + 1]];
            for j in 0..self.ks {
                lut.push(sq_l2(sub, self.centroid(s, j)));
            }
        }
        AdcTable { m: self.m, ks: self.ks, lut }
    }
}

/// Packed PQ codes: `m` bytes per point, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqCodes {
    codes: Vec<u8>,
    n: usize,
    m: usize,
}

impl PqCodes {
    /// Number of encoded points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are encoded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code row of point `i`.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.m..(i + 1) * self.m]
    }

    /// Bytes per encoded point — the figure that sizes a shard.
    pub fn bytes_per_point(&self) -> usize {
        self.m
    }

    /// Total bytes held by the codes.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }
}

/// A per-query ADC lookup table: squared distance from the query's
/// subvectors to every centroid of every subspace. Built once per query
/// ([`PqCodebook::adc_table`]), then each candidate costs `m` lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcTable {
    m: usize,
    ks: usize,
    lut: Vec<f32>,
}

impl AdcTable {
    /// ADC squared distance from the tabulated query to one code row.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        // 4-way unrolled gather-accumulate: the whole table is small enough
        // to sit in L1/L2, so the adds are the only latency chain worth
        // breaking up.
        let mut acc = [0.0f32; 4];
        let chunks = self.m / 4;
        for c in 0..chunks {
            for (u, a) in acc.iter_mut().enumerate() {
                let s = c * 4 + u;
                *a += self.lut[s * self.ks + code[s] as usize];
            }
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for (s, &b) in code.iter().enumerate().take(self.m).skip(chunks * 4) {
            sum += self.lut[s * self.ks + b as usize];
        }
        sum
    }

    /// ADC distance of every row in `codes`, appended into `out` (cleared
    /// first) — the blocked form the builder's bucket pass uses.
    pub fn distances(&self, codes: &PqCodes, ids: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(ids.iter().map(|&i| self.distance(codes.row(i as usize))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn trained(n: usize, dim: usize, m: usize) -> (VectorSet, PqCodebook, PqCodes) {
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 5, spread: 0.4 }
            .generate(dim as u64 + m as u64)
            .vectors;
        let params = PqParams { m, train_iters: 6, ..PqParams::default() };
        let cb = PqCodebook::train(&vs, &params).unwrap();
        let codes = cb.encode(&vs).unwrap();
        (vs, cb, codes)
    }

    #[test]
    fn adc_equals_decode_then_l2() {
        // The core ADC identity: table-summed distance == sq_l2 against the
        // decoded point, up to reassociation.
        for (dim, m) in [(16usize, 4usize), (13, 4), (7, 3), (32, 8)] {
            let (vs, cb, codes) = trained(80, dim, m);
            let dec = cb.decode(&codes);
            let q = vs.row(0).to_vec();
            let t = cb.adc_table(&q);
            for i in 0..vs.len() {
                let adc = t.distance(codes.row(i));
                let exact = sq_l2(&q, dec.row(i));
                assert!(
                    (adc - exact).abs() <= 1e-4 * (1.0 + exact),
                    "dim {dim} m {m} point {i}: adc {adc} vs decoded {exact}"
                );
            }
        }
    }

    #[test]
    fn uneven_subspaces_cover_every_dimension() {
        // dim = 13, m = 4 -> widths 4,3,3,3; decode must reproduce within
        // quantization error and never mix coordinates across subspaces.
        let (vs, cb, codes) = trained(120, 13, 4);
        let dec = cb.decode(&codes);
        assert_eq!(dec.dim(), 13);
        // Encoding the decoded points is a fixpoint: x̂ is its own nearest
        // centroid tuple.
        let recodes = cb.encode(&dec).unwrap();
        for i in 0..vs.len() {
            assert_eq!(codes.row(i), recodes.row(i), "decode/encode not a fixpoint at {i}");
        }
    }

    #[test]
    fn footprint_is_m_bytes_per_point() {
        let (vs, cb, codes) = trained(50, 32, 8);
        assert_eq!(codes.bytes_per_point(), 8);
        assert_eq!(codes.code_bytes(), 50 * 8);
        assert!(cb.table_bytes() > 0);
        assert_eq!(vs.as_flat().len() * 4, 50 * 32 * 4); // f32 baseline 16x larger
    }

    #[test]
    fn tiny_training_sets_shrink_ks() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 6 }.generate(3).vectors;
        let cb = PqCodebook::train(&vs, &PqParams { m: 2, ..PqParams::default() }).unwrap();
        assert_eq!(cb.ks(), 10);
        let codes = cb.encode(&vs).unwrap();
        assert!(codes.row(4).iter().all(|&c| (c as usize) < cb.ks()));
    }

    #[test]
    fn m_larger_than_dim_clamps() {
        let vs = DatasetSpec::UniformCube { n: 40, dim: 3 }.generate(5).vectors;
        let cb = PqCodebook::train(&vs, &PqParams { m: 16, ..PqParams::default() }).unwrap();
        assert_eq!(cb.m(), 3);
        let codes = cb.encode(&vs).unwrap();
        assert_eq!(codes.bytes_per_point(), 3);
    }

    #[test]
    fn typed_errors_on_bad_inputs() {
        let empty = VectorSet::new(vec![], 4).unwrap();
        assert_eq!(
            PqCodebook::train(&empty, &PqParams::default()),
            Err(DataError::EmptyTrainingSet)
        );
        let vs = DatasetSpec::UniformCube { n: 20, dim: 4 }.generate(1).vectors;
        let cb = PqCodebook::train(&vs, &PqParams::default()).unwrap();
        let other = DatasetSpec::UniformCube { n: 5, dim: 7 }.generate(1).vectors;
        assert_eq!(cb.encode(&other), Err(DataError::DimMismatch { got: 7, want: 4 }));
    }

    #[test]
    fn training_is_deterministic() {
        let vs = DatasetSpec::GaussianClusters { n: 100, dim: 12, clusters: 4, spread: 0.3 }
            .generate(9)
            .vectors;
        let p = PqParams { m: 4, train_iters: 5, ..PqParams::default() };
        let a = PqCodebook::train(&vs, &p).unwrap();
        let b = PqCodebook::train(&vs, &p).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.encode(&vs).unwrap(), b.encode(&vs).unwrap());
    }
}
