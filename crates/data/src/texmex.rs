//! Readers/writers for the TexMex vector formats (`.fvecs`, `.bvecs`,
//! `.ivecs`) used by the standard ANN benchmark datasets (SIFT1M, GIST1M,
//! Deep1B, …) — the data the original paper evaluates on. With these, a
//! downstream user points the library at the real files; this repository's
//! experiments use the synthetic generators because no downloads are
//! available offline (see `DESIGN.md`).
//!
//! Format: every vector is `dim: i32 (LE)` followed by `dim` components —
//! `f32` for `.fvecs`, `u8` for `.bvecs`, `i32` for `.ivecs` (ground-truth
//! id lists).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::DataError;
use crate::vecs::VectorSet;

fn read_i32(r: &mut impl Read) -> Result<Option<i32>, DataError> {
    let mut b = [0u8; 4];
    match r.read_exact(&mut b) {
        Ok(()) => Ok(Some(i32::from_le_bytes(b))),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn check_dim(dim: i32, path: &Path) -> Result<usize, DataError> {
    if dim <= 0 || dim > 1_000_000 {
        return Err(DataError::Format(format!(
            "{}: implausible vector dimension {dim}",
            path.display()
        )));
    }
    Ok(dim as usize)
}

/// Load an `.fvecs` file. `limit` caps the number of vectors read
/// (`None` = all) — the standard way to work with a prefix of SIFT1M.
pub fn load_fvecs(path: &Path, limit: Option<usize>) -> Result<VectorSet, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    let mut dim0: Option<usize> = None;
    let mut count = 0usize;
    while let Some(d) = read_i32(&mut r)? {
        let dim = check_dim(d, path)?;
        match dim0 {
            None => dim0 = Some(dim),
            Some(d0) if d0 != dim => {
                return Err(DataError::Format(format!(
                    "{}: vector {count} has dim {dim}, expected {d0}",
                    path.display()
                )))
            }
            _ => {}
        }
        let mut buf = vec![0u8; dim * 4];
        r.read_exact(&mut buf)?;
        for c in buf.chunks_exact(4) {
            data.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        count += 1;
        if limit.is_some_and(|l| count >= l) {
            break;
        }
    }
    VectorSet::new(data, dim0.unwrap_or(1))
}

/// Load a `.bvecs` file (byte components, e.g. SIFT descriptors), widening
/// to `f32`.
pub fn load_bvecs(path: &Path, limit: Option<usize>) -> Result<VectorSet, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    let mut dim0: Option<usize> = None;
    let mut count = 0usize;
    while let Some(d) = read_i32(&mut r)? {
        let dim = check_dim(d, path)?;
        match dim0 {
            None => dim0 = Some(dim),
            Some(d0) if d0 != dim => {
                return Err(DataError::Format(format!(
                    "{}: vector {count} has dim {dim}, expected {d0}",
                    path.display()
                )))
            }
            _ => {}
        }
        let mut buf = vec![0u8; dim];
        r.read_exact(&mut buf)?;
        data.extend(buf.iter().map(|&b| b as f32));
        count += 1;
        if limit.is_some_and(|l| count >= l) {
            break;
        }
    }
    VectorSet::new(data, dim0.unwrap_or(1))
}

/// Load an `.ivecs` file as id lists (the TexMex ground-truth format).
pub fn load_ivecs(path: &Path, limit: Option<usize>) -> Result<Vec<Vec<u32>>, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut lists = Vec::new();
    while let Some(d) = read_i32(&mut r)? {
        let dim = check_dim(d, path)?;
        let mut list = Vec::with_capacity(dim);
        for _ in 0..dim {
            let v = read_i32(&mut r)?.ok_or_else(|| {
                DataError::Format(format!("{}: truncated ivecs record", path.display()))
            })?;
            if v < 0 {
                return Err(DataError::Format(format!(
                    "{}: negative id {v} in ivecs",
                    path.display()
                )));
            }
            list.push(v as u32);
        }
        lists.push(list);
        if limit.is_some_and(|l| lists.len() >= l) {
            break;
        }
    }
    Ok(lists)
}

/// Write a [`VectorSet`] as `.fvecs` (round-trip/testing and interop).
pub fn save_fvecs(vs: &VectorSet, path: &Path) -> Result<(), DataError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for row in vs.rows() {
        w.write_all(&(vs.dim() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-texmex-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn fvecs_roundtrip_and_limit() {
        let vs = DatasetSpec::UniformCube { n: 9, dim: 5 }.generate(1).vectors;
        let p = tmp("rt.fvecs");
        save_fvecs(&vs, &p).unwrap();
        let back = load_fvecs(&p, None).unwrap();
        assert_eq!(back, vs);
        let first3 = load_fvecs(&p, Some(3)).unwrap();
        assert_eq!(first3.len(), 3);
        assert_eq!(first3.row(2), vs.row(2));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bvecs_reads_byte_vectors() {
        let p = tmp("b.bvecs");
        let mut bytes = Vec::new();
        for v in [[1u8, 2, 3], [200, 0, 255]] {
            bytes.extend((3i32).to_le_bytes());
            bytes.extend(v);
        }
        std::fs::write(&p, &bytes).unwrap();
        let vs = load_bvecs(&p, None).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(vs.row(1), &[200.0, 0.0, 255.0]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ivecs_reads_ground_truth_lists() {
        let p = tmp("g.ivecs");
        let mut bytes = Vec::new();
        for list in [vec![5i32, 2, 9], vec![0i32, 1, 4]] {
            bytes.extend((list.len() as i32).to_le_bytes());
            for v in list {
                bytes.extend(v.to_le_bytes());
            }
        }
        std::fs::write(&p, &bytes).unwrap();
        let lists = load_ivecs(&p, None).unwrap();
        assert_eq!(lists, vec![vec![5, 2, 9], vec![0, 1, 4]]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let p = tmp("bad.fvecs");
        // Implausible dimension header.
        std::fs::write(&p, (-5i32).to_le_bytes()).unwrap();
        assert!(matches!(load_fvecs(&p, None), Err(DataError::Format(_))));
        // Truncated payload.
        let mut bytes = Vec::new();
        bytes.extend((4i32).to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        assert!(load_fvecs(&p, None).is_err());
        // Ragged dimensions.
        let mut bytes = Vec::new();
        bytes.extend((1i32).to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend((2i32).to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_fvecs(&p, None), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_loads_as_empty_set() {
        let p = tmp("empty.fvecs");
        std::fs::write(&p, []).unwrap();
        let vs = load_fvecs(&p, None).unwrap();
        assert!(vs.is_empty());
        assert!(load_ivecs(&p, None).unwrap().is_empty());
        std::fs::remove_file(&p).ok();
    }
}
