//! Deterministic crash-point injection for the durability writers.
//!
//! A [`CrashPlan`] schedules process-death points inside the write-ahead-log
//! and checkpoint write paths the same way [`wknng-simt`'s `FaultPlan`]
//! schedules device and serve faults: every schedule is keyed by a
//! deterministic operation index (the Nth WAL append, the Nth atomic
//! rename), so a test that arms a plan observes exactly the same crash on
//! every run.
//!
//! "Crashing" in-process means the writer stops at the injected point,
//! leaving the file system in exactly the state a killed process would —
//! a missing record (killed before the fsync made it durable), a torn
//! record prefix (killed mid-`write`), or an orphaned `<path>.tmp` beside
//! an untouched original (killed before the atomic rename). The writer
//! then surfaces [`DataError::Crash`] so the caller can halt the way a
//! dead process halts, and the test re-opens the directory through the
//! recovery path.
//!
//! Plans are installed per thread with [`CrashScope`] (RAII, non-nesting,
//! `!Send`), mirroring `FaultScope`: the hooks are consulted by
//! [`crate::wal::WalWriter::append`] and [`crate::io::atomic_write`], and
//! are inert when no scope is installed.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;

use crate::error::DataError;

/// A deterministic schedule of crash points for the durability writers.
///
/// Indices count operations per installed scope: `append` indices count
/// [`crate::wal::WalWriter::append`] calls, `rename` indices count
/// [`crate::io::atomic_write`] calls (each checkpoint performs several —
/// vectors, lists, manifest — in that order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Appends that die after buffering but before anything reaches the
    /// file: the record is lost wholesale (the kill-before-fsync worst
    /// case — the page cache never made it to the platter).
    kill_before_fsync: BTreeSet<u64>,
    /// Appends that die halfway through the frame `write`.
    kill_mid_append: BTreeSet<u64>,
    /// Appends that die after exactly N bytes of the frame were written.
    torn_writes: BTreeMap<u64, u64>,
    /// Atomic renames that die after the temp file is written and synced
    /// but before the rename — the original survives, `<path>.tmp` is
    /// orphaned.
    kill_renames: BTreeSet<u64>,
}

/// How an injected crash mutilates one WAL append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendCrash {
    /// Nothing reaches the file; the record is lost.
    BeforeFsync,
    /// Half the frame reaches the file.
    MidAppend,
    /// Exactly this many bytes of the frame reach the file.
    TornAt(u64),
}

impl CrashPlan {
    /// An empty plan (no crashes).
    pub fn new() -> CrashPlan {
        CrashPlan::default()
    }

    /// True when no crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.kill_before_fsync.is_empty()
            && self.kill_mid_append.is_empty()
            && self.torn_writes.is_empty()
            && self.kill_renames.is_empty()
    }

    /// Kill the process before append `index`'s fsync: the record is lost.
    pub fn kill_before_fsync(mut self, index: u64) -> CrashPlan {
        self.kill_before_fsync.insert(index);
        self
    }

    /// Kill the process halfway through append `index`'s frame write.
    pub fn kill_mid_append(mut self, index: u64) -> CrashPlan {
        self.kill_mid_append.insert(index);
        self
    }

    /// Kill the process after exactly `at_byte` bytes of append `index`'s
    /// frame were written (`at_byte` past the frame length behaves like a
    /// completed write that died before acknowledging).
    pub fn torn_write(mut self, index: u64, at_byte: u64) -> CrashPlan {
        self.torn_writes.insert(index, at_byte);
        self
    }

    /// Kill the process before atomic rename `index`: the temp file is
    /// orphaned, the destination untouched.
    pub fn kill_rename(mut self, index: u64) -> CrashPlan {
        self.kill_renames.insert(index);
        self
    }

    /// The crash scheduled for append `index`, if any. When several kinds
    /// stack on one index the most destructive wins:
    /// before-fsync > mid-append > torn-at-byte.
    pub fn append_crash(&self, index: u64) -> Option<AppendCrash> {
        if self.kill_before_fsync.contains(&index) {
            Some(AppendCrash::BeforeFsync)
        } else if self.kill_mid_append.contains(&index) {
            Some(AppendCrash::MidAppend)
        } else {
            self.torn_writes.get(&index).map(|&n| AppendCrash::TornAt(n))
        }
    }

    /// True when atomic rename `index` is scheduled to die.
    pub fn rename_crash(&self, index: u64) -> bool {
        self.kill_renames.contains(&index)
    }

    /// Parse a comma-separated crash spec, the CLI surface of the harness:
    ///
    /// * `pre-fsync@I` — kill before append I's fsync;
    /// * `mid-append@I` — kill halfway through append I's write;
    /// * `torn@I:N` — kill after N bytes of append I's frame;
    /// * `rename@I` — kill before atomic rename I.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let mut plan = CrashPlan::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("crash spec `{part}` is missing `@index`"))?;
            let index = |s: &str| {
                s.parse::<u64>().map_err(|_| format!("crash spec `{part}`: bad index `{s}`"))
            };
            plan = match kind {
                "pre-fsync" => plan.kill_before_fsync(index(rest)?),
                "mid-append" => plan.kill_mid_append(index(rest)?),
                "torn" => {
                    let (i, n) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("crash spec `{part}` needs `torn@index:byte`"))?;
                    plan.torn_write(index(i)?, index(n)?)
                }
                "rename" => plan.kill_rename(index(rest)?),
                other => return Err(format!("unknown crash kind `{other}` in `{part}`")),
            };
        }
        Ok(plan)
    }
}

/// Per-thread injection state: the plan plus the operation counters the
/// schedules are addressed by.
struct CrashState {
    plan: CrashPlan,
    next_append: u64,
    next_rename: u64,
    fired: Vec<String>,
}

thread_local! {
    static ACTIVE: RefCell<Option<CrashState>> = const { RefCell::new(None) };
}

/// RAII installation of a [`CrashPlan`] on the current thread. While the
/// scope lives, every [`crate::wal::WalWriter::append`] and
/// [`crate::io::atomic_write`] on this thread consults the plan. Scopes do
/// not nest, and the guard is `!Send` (the state is thread-local).
pub struct CrashScope {
    _not_send: PhantomData<*const ()>,
}

impl CrashScope {
    /// Install `plan` for the current thread. Panics if a scope is already
    /// installed (crash plans do not nest).
    pub fn install(plan: CrashPlan) -> CrashScope {
        ACTIVE.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(slot.is_none(), "a CrashScope is already installed on this thread");
            *slot = Some(CrashState { plan, next_append: 0, next_rename: 0, fired: Vec::new() });
        });
        CrashScope { _not_send: PhantomData }
    }

    /// Descriptions of every crash the scope has injected so far.
    pub fn fired(&self) -> Vec<String> {
        ACTIVE.with(|slot| slot.borrow().as_ref().map(|s| s.fired.clone()).unwrap_or_default())
    }
}

impl Drop for CrashScope {
    fn drop(&mut self) {
        ACTIVE.with(|slot| slot.borrow_mut().take());
    }
}

/// Consume one append index; the writer calls this once per append.
pub(crate) fn next_append_crash() -> Option<AppendCrash> {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let state = slot.as_mut()?;
        let idx = state.next_append;
        state.next_append += 1;
        let crash = state.plan.append_crash(idx);
        if let Some(c) = crash {
            state.fired.push(format!("append {idx}: {c:?}"));
        }
        crash
    })
}

/// Consume one rename index; [`crate::io::atomic_write`] calls this once
/// per replacement, *after* the temp file is durable but *before* the
/// rename. An `Err` models the process dying at that instant.
pub(crate) fn next_rename_crash(target: &std::path::Path) -> Result<(), DataError> {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return Ok(());
        };
        let idx = state.next_rename;
        state.next_rename += 1;
        if state.plan.rename_crash(idx) {
            state.fired.push(format!("rename {idx}: {}", target.display()));
            return Err(DataError::Crash(format!(
                "killed before rename {idx} ({})",
                target.display()
            )));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = CrashPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.append_crash(0), None);
        assert!(!plan.rename_crash(0));
        // No scope installed: hooks are inert too.
        assert_eq!(next_append_crash(), None);
        assert!(next_rename_crash(std::path::Path::new("/nope")).is_ok());
    }

    #[test]
    fn schedules_address_operation_indices() {
        let plan = CrashPlan::new()
            .kill_before_fsync(0)
            .kill_mid_append(2)
            .torn_write(3, 7)
            .kill_rename(1);
        assert_eq!(plan.append_crash(0), Some(AppendCrash::BeforeFsync));
        assert_eq!(plan.append_crash(1), None);
        assert_eq!(plan.append_crash(2), Some(AppendCrash::MidAppend));
        assert_eq!(plan.append_crash(3), Some(AppendCrash::TornAt(7)));
        assert!(!plan.rename_crash(0));
        assert!(plan.rename_crash(1));
    }

    #[test]
    fn stacked_kinds_rank_most_destructive_first() {
        let plan = CrashPlan::new().torn_write(5, 3).kill_mid_append(5).kill_before_fsync(5);
        assert_eq!(plan.append_crash(5), Some(AppendCrash::BeforeFsync));
        let plan = CrashPlan::new().torn_write(5, 3).kill_mid_append(5);
        assert_eq!(plan.append_crash(5), Some(AppendCrash::MidAppend));
    }

    #[test]
    fn scope_counts_operations_and_records_fires() {
        let scope = CrashScope::install(CrashPlan::new().kill_before_fsync(1).kill_rename(0));
        assert_eq!(next_append_crash(), None); // append 0
        assert_eq!(next_append_crash(), Some(AppendCrash::BeforeFsync)); // append 1
        assert!(next_rename_crash(std::path::Path::new("x")).is_err()); // rename 0
        assert!(next_rename_crash(std::path::Path::new("x")).is_ok()); // rename 1
        let fired = scope.fired();
        assert_eq!(fired.len(), 2, "{fired:?}");
        assert!(fired[0].contains("append 1"), "{fired:?}");
        assert!(fired[1].contains("rename 0"), "{fired:?}");
    }

    #[test]
    fn scopes_do_not_nest() {
        let _outer = CrashScope::install(CrashPlan::new());
        let err = std::panic::catch_unwind(|| CrashScope::install(CrashPlan::new()));
        assert!(err.is_err(), "nested install must panic");
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = CrashPlan::parse("pre-fsync@2, mid-append@0,torn@1:17,rename@3").unwrap();
        assert_eq!(plan.append_crash(2), Some(AppendCrash::BeforeFsync));
        assert_eq!(plan.append_crash(0), Some(AppendCrash::MidAppend));
        assert_eq!(plan.append_crash(1), Some(AppendCrash::TornAt(17)));
        assert!(plan.rename_crash(3));
        assert!(CrashPlan::parse("").unwrap().is_empty());
        assert!(CrashPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["pre-fsync", "pre-fsync@x", "torn@1", "torn@1:", "torn@:3", "explode@1"] {
            assert!(CrashPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
