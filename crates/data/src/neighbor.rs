//! The neighbor record shared by every K-NNG representation in the workspace.

/// One directed K-NNG edge: a candidate neighbor and its distance.
///
/// Ordering is by `(dist, index)` ascending — the deterministic tie-break that
/// keeps every backend (native, simulated-GPU, baselines) bit-comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighboring point.
    pub index: u32,
    /// Distance from the owning point (metric-dependent; squared L2 by
    /// default).
    pub dist: f32,
}

impl Neighbor {
    /// Construct a neighbor record.
    pub fn new(index: u32, dist: f32) -> Self {
        Neighbor { index, dist }
    }

    /// The packed `(dist, index)` key used by the GPU kernels: distance bits
    /// in the high word so `u64` ordering equals `(dist, index)` ordering for
    /// non-negative finite distances.
    pub fn pack(&self) -> u64 {
        ((self.dist.to_bits() as u64) << 32) | self.index as u64
    }

    /// Inverse of [`Neighbor::pack`].
    pub fn unpack(bits: u64) -> Self {
        Neighbor { index: bits as u32, dist: f32::from_bits((bits >> 32) as u32) }
    }

    /// Total order by `(dist, index)`.
    pub fn key(&self) -> (f32, u32) {
        (self.dist, self.index)
    }
}

/// Sort a neighbor list by `(dist, index)` ascending.
pub fn sort_neighbors(list: &mut [Neighbor]) {
    list.sort_by(|a, b| a.key().partial_cmp(&b.key()).expect("finite distances"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_preserves_order_for_nonnegative_dists() {
        let a = Neighbor::new(7, 0.5);
        let b = Neighbor::new(3, 1.5);
        let c = Neighbor::new(9, 1.5);
        assert!(a.pack() < b.pack());
        assert!(b.pack() < c.pack()); // same dist, larger index
        assert_eq!(Neighbor::unpack(a.pack()), a);
        assert_eq!(Neighbor::unpack(c.pack()), c);
        // Zero distance packs below everything positive.
        assert!(Neighbor::new(0, 0.0).pack() < a.pack());
    }

    #[test]
    fn sort_orders_by_dist_then_index() {
        let mut v = vec![Neighbor::new(5, 2.0), Neighbor::new(1, 1.0), Neighbor::new(0, 2.0)];
        sort_neighbors(&mut v);
        assert_eq!(v, vec![Neighbor::new(1, 1.0), Neighbor::new(0, 2.0), Neighbor::new(5, 2.0)]);
    }

    #[test]
    fn pack_roundtrips_max_values() {
        let n = Neighbor::new(u32::MAX, f32::MAX);
        assert_eq!(Neighbor::unpack(n.pack()), n);
    }
}
