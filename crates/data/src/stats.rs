//! Dataset geometry statistics — the knobs that govern approximate-KNN
//! difficulty.

use rayon::prelude::*;

use crate::dist::sq_l2;
use crate::vecs::VectorSet;

/// Levina–Bickel maximum-likelihood estimate of the local intrinsic
/// dimensionality, averaged over `sample` points (deterministically strided
/// through the set). `k` is the neighborhood size of the estimator (≥ 3).
///
/// Low intrinsic dimension (regardless of ambient dimension) is what makes
/// RP-forest bucketing effective; the estimator quantifies the "difficulty"
/// column of the dataset-inventory experiment (E11).
pub fn intrinsic_dim_mle(vs: &VectorSet, k: usize, sample: usize) -> f64 {
    let n = vs.len();
    if n < 3 || sample == 0 {
        return 0.0;
    }
    let k = k.clamp(3, n - 1);
    let sample = sample.min(n);
    let stride = (n / sample).max(1);
    let estimates: Vec<f64> = (0..n)
        .step_by(stride)
        .take(sample)
        .collect::<Vec<_>>()
        .into_par_iter()
        .filter_map(|i| {
            let row = vs.row(i);
            // Distances to the k nearest (L2, not squared, for the MLE).
            let mut d: Vec<f64> =
                (0..n).filter(|&j| j != i).map(|j| (sq_l2(row, vs.row(j)) as f64).sqrt()).collect();
            d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            d.truncate(k);
            let tk = *d.last()?;
            if tk <= 0.0 {
                return None; // duplicate-heavy neighborhood: undefined
            }
            let s: f64 = d[..k - 1].iter().filter(|&&t| t > 0.0).map(|&t| (tk / t).ln()).sum();
            if s <= 0.0 {
                None
            } else {
                Some((k as f64 - 1.0) / s)
            }
        })
        .collect();
    if estimates.is_empty() {
        0.0
    } else {
        estimates.iter().sum::<f64>() / estimates.len() as f64
    }
}

/// Mean distance to the nearest neighbor over `sample` strided points —
/// the density scale of the set.
pub fn mean_nn_distance(vs: &VectorSet, sample: usize) -> f64 {
    let n = vs.len();
    if n < 2 || sample == 0 {
        return 0.0;
    }
    let sample = sample.min(n);
    let stride = (n / sample).max(1);
    let sum: f64 = (0..n)
        .step_by(stride)
        .take(sample)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|i| {
            let row = vs.row(i);
            (0..n)
                .filter(|&j| j != i)
                .map(|j| sq_l2(row, vs.row(j)) as f64)
                .fold(f64::INFINITY, f64::min)
                .sqrt()
        })
        .sum();
    sum / sample as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;
    use crate::vecs::VectorSet;

    #[test]
    fn manifold_intrinsic_dim_is_recovered_approximately() {
        // 4-d latent manifold in 64-d ambient space: the estimate must land
        // far below the ambient dimension and in the latent neighborhood.
        let vs =
            DatasetSpec::Manifold { n: 600, ambient_dim: 64, intrinsic_dim: 4 }.generate(1).vectors;
        let d = intrinsic_dim_mle(&vs, 12, 100);
        assert!(d > 1.5 && d < 12.0, "estimated intrinsic dim {d:.2}");
    }

    #[test]
    fn uniform_cube_estimate_tracks_ambient_dim() {
        let lo = intrinsic_dim_mle(
            &DatasetSpec::UniformCube { n: 500, dim: 3 }.generate(2).vectors,
            12,
            80,
        );
        let hi = intrinsic_dim_mle(
            &DatasetSpec::UniformCube { n: 500, dim: 12 }.generate(2).vectors,
            12,
            80,
        );
        assert!(lo < hi, "3-d ({lo:.2}) must estimate below 12-d ({hi:.2})");
        assert!(lo > 1.0 && lo < 6.0, "cube-3 estimate {lo:.2}");
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let one = VectorSet::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(intrinsic_dim_mle(&one, 5, 10), 0.0);
        assert_eq!(mean_nn_distance(&one, 10), 0.0);
        let dup = VectorSet::new(vec![0.5; 30], 3).unwrap();
        // All duplicates: estimator undefined everywhere -> 0.
        assert_eq!(intrinsic_dim_mle(&dup, 4, 5), 0.0);
        assert_eq!(mean_nn_distance(&dup, 5), 0.0);
    }

    #[test]
    fn nn_distance_scales_with_spread() {
        let tight = DatasetSpec::GaussianClusters { n: 200, dim: 8, clusters: 4, spread: 0.01 }
            .generate(3)
            .vectors;
        let loose = DatasetSpec::GaussianClusters { n: 200, dim: 8, clusters: 4, spread: 0.5 }
            .generate(3)
            .vectors;
        let (dt, dl) = (mean_nn_distance(&tight, 50), mean_nn_distance(&loose, 50));
        assert!(dt < dl, "tight {dt:.4} vs loose {dl:.4}");
        assert!(dt > 0.0);
    }
}
