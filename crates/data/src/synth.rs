//! Seeded synthetic dataset generators.
//!
//! The original evaluation uses real high-dimensional ML feature sets; none
//! are available offline, so these generators span the axes that govern
//! approximate-KNN difficulty instead: ambient dimensionality, cluster
//! structure, and intrinsic dimensionality (see `DESIGN.md`, substitution
//! table). Every generator is deterministic in its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::vecs::VectorSet;

/// A named point set produced by a [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (spec + shape), used in experiment tables.
    pub name: String,
    /// The points.
    pub vectors: VectorSet,
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetSpec {
    /// Isotropic Gaussian blobs around uniformly placed centers — the
    /// cluster structure typical of learned feature embeddings.
    GaussianClusters {
        /// Number of points.
        n: usize,
        /// Ambient dimensionality.
        dim: usize,
        /// Number of mixture components.
        clusters: usize,
        /// Standard deviation of each blob.
        spread: f32,
    },
    /// Uniform points in the unit hypercube — the hardest (structureless)
    /// case for approximate methods.
    UniformCube {
        /// Number of points.
        n: usize,
        /// Ambient dimensionality.
        dim: usize,
    },
    /// Points on the unit hypersphere shell (normalised Gaussians) — the
    /// geometry of cosine-normalised embeddings.
    HypersphereShell {
        /// Number of points.
        n: usize,
        /// Ambient dimensionality.
        dim: usize,
    },
    /// A smooth low-intrinsic-dimension manifold embedded in a high ambient
    /// dimension via random Fourier features — image-like data.
    Manifold {
        /// Number of points.
        n: usize,
        /// Ambient dimensionality.
        ambient_dim: usize,
        /// Latent (intrinsic) dimensionality.
        intrinsic_dim: usize,
    },
}

impl DatasetSpec {
    /// An MNIST-shaped stand-in: 784-d, 10 clusters.
    pub fn mnist_like(n: usize) -> Self {
        DatasetSpec::GaussianClusters { n, dim: 784, clusters: 10, spread: 0.18 }
    }

    /// A SIFT-shaped stand-in: 128-d, 64 clusters.
    pub fn sift_like(n: usize) -> Self {
        DatasetSpec::GaussianClusters { n, dim: 128, clusters: 64, spread: 0.2 }
    }

    /// Number of points this spec will generate.
    pub fn n(&self) -> usize {
        match *self {
            DatasetSpec::GaussianClusters { n, .. }
            | DatasetSpec::UniformCube { n, .. }
            | DatasetSpec::HypersphereShell { n, .. }
            | DatasetSpec::Manifold { n, .. } => n,
        }
    }

    /// Ambient dimensionality this spec will generate.
    pub fn dim(&self) -> usize {
        match *self {
            DatasetSpec::GaussianClusters { dim, .. }
            | DatasetSpec::UniformCube { dim, .. }
            | DatasetSpec::HypersphereShell { dim, .. } => dim,
            DatasetSpec::Manifold { ambient_dim, .. } => ambient_dim,
        }
    }

    /// Short name used in report tables.
    pub fn name(&self) -> String {
        match *self {
            DatasetSpec::GaussianClusters { n, dim, clusters, .. } => {
                format!("gauss{clusters}(n={n},d={dim})")
            }
            DatasetSpec::UniformCube { n, dim } => format!("uniform(n={n},d={dim})"),
            DatasetSpec::HypersphereShell { n, dim } => format!("sphere(n={n},d={dim})"),
            DatasetSpec::Manifold { n, ambient_dim, intrinsic_dim } => {
                format!("manifold{intrinsic_dim}(n={n},d={ambient_dim})")
            }
        }
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let data = match *self {
            DatasetSpec::GaussianClusters { n, dim, clusters, spread } => {
                gaussian_clusters(&mut rng, n, dim, clusters.max(1), spread)
            }
            DatasetSpec::UniformCube { n, dim } => {
                (0..n * dim).map(|_| rng.gen_range(0.0..1.0)).collect()
            }
            DatasetSpec::HypersphereShell { n, dim } => hypersphere(&mut rng, n, dim),
            DatasetSpec::Manifold { n, ambient_dim, intrinsic_dim } => {
                manifold(&mut rng, n, ambient_dim, intrinsic_dim.max(1))
            }
        };
        let vectors = VectorSet::new(data, self.dim()).expect("generators produce finite data");
        Dataset { name: self.name(), vectors }
    }
}

/// Standard-normal sample via the Box–Muller transform (avoids a `rand_distr`
/// dependency).
pub fn normal(rng: &mut SmallRng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let v = r * (2.0 * std::f32::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

fn gaussian_clusters(
    rng: &mut SmallRng,
    n: usize,
    dim: usize,
    clusters: usize,
    spread: f32,
) -> Vec<f32> {
    let centers: Vec<f32> = (0..clusters * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % clusters; // balanced assignment keeps bucket sizes comparable
        let center = &centers[c * dim..(c + 1) * dim];
        for &cv in center {
            data.push(cv + spread * normal(rng));
        }
    }
    data
}

fn hypersphere(rng: &mut SmallRng, n: usize, dim: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(n * dim);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        loop {
            let mut sq = 0.0f32;
            for v in row.iter_mut() {
                *v = normal(rng);
                sq += *v * *v;
            }
            if sq > 1e-12 {
                let inv = sq.sqrt().recip();
                data.extend(row.iter().map(|v| v * inv));
                break;
            }
        }
    }
    data
}

fn manifold(rng: &mut SmallRng, n: usize, ambient: usize, intrinsic: usize) -> Vec<f32> {
    // Random Fourier feature map: x_j = sin(w_j · z + b_j), z ~ N(0, I_m).
    let w: Vec<f32> = (0..ambient * intrinsic).map(|_| normal(rng)).collect();
    let b: Vec<f32> = (0..ambient).map(|_| rng.gen_range(0.0..std::f32::consts::TAU)).collect();
    let mut data = Vec::with_capacity(n * ambient);
    let mut z = vec![0.0f32; intrinsic];
    for _ in 0..n {
        for zi in z.iter_mut() {
            *zi = normal(rng);
        }
        for j in 0..ambient {
            let wj = &w[j * intrinsic..(j + 1) * intrinsic];
            let phase: f32 = wj.iter().zip(&z).map(|(a, b)| a * b).sum::<f32>() + b[j];
            data.push(phase.sin());
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for spec in [
            DatasetSpec::GaussianClusters { n: 50, dim: 8, clusters: 3, spread: 0.1 },
            DatasetSpec::UniformCube { n: 50, dim: 8 },
            DatasetSpec::HypersphereShell { n: 50, dim: 8 },
            DatasetSpec::Manifold { n: 50, ambient_dim: 16, intrinsic_dim: 3 },
        ] {
            let a = spec.generate(7);
            let b = spec.generate(7);
            assert_eq!(a.vectors, b.vectors, "{}", spec.name());
            let c = spec.generate(8);
            assert_ne!(a.vectors, c.vectors, "{}", spec.name());
        }
    }

    #[test]
    fn shapes_match_spec() {
        let spec = DatasetSpec::Manifold { n: 33, ambient_dim: 20, intrinsic_dim: 2 };
        let ds = spec.generate(1);
        assert_eq!(ds.vectors.len(), 33);
        assert_eq!(ds.vectors.dim(), 20);
        assert_eq!(spec.n(), 33);
        assert_eq!(spec.dim(), 20);
    }

    #[test]
    fn sphere_points_have_unit_norm() {
        let ds = DatasetSpec::HypersphereShell { n: 20, dim: 6 }.generate(3);
        for row in ds.vectors.rows() {
            let n2: f32 = row.iter().map(|v| v * v).sum();
            assert!((n2 - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn uniform_stays_in_cube() {
        let ds = DatasetSpec::UniformCube { n: 100, dim: 4 }.generate(5);
        for v in ds.vectors.as_flat() {
            assert!((0.0..1.0).contains(v));
        }
    }

    #[test]
    fn clusters_have_bounded_spread() {
        let spec = DatasetSpec::GaussianClusters { n: 300, dim: 4, clusters: 3, spread: 0.01 };
        let ds = spec.generate(11);
        // Points assigned to the same cluster (i % 3) must be mutually close.
        let a = ds.vectors.row(0);
        let b = ds.vectors.row(3);
        let d: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(d < 0.1, "same-cluster distance {d} too large");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<f32> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn presets_have_expected_shapes() {
        assert_eq!(DatasetSpec::mnist_like(10).dim(), 784);
        assert_eq!(DatasetSpec::sift_like(10).dim(), 128);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DatasetSpec::UniformCube { n: 5, dim: 2 }.name(), "uniform(n=5,d=2)");
    }
}
