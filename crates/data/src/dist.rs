//! Distance kernels.
//!
//! w-KNNG (like FAISS) works with **squared Euclidean distance**: monotone in
//! L2, cheaper (no square root), and exactly what the GPU kernels accumulate.
//! Inner-product and cosine variants are provided for the similarity-search
//! example.

/// Distance/similarity metric selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Squared Euclidean distance (the paper's metric).
    #[default]
    SquaredL2,
    /// Negative inner product (so that smaller = closer, like a distance).
    NegativeDot,
    /// Cosine distance, `1 − cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Evaluate the metric between two equal-length slices.
    #[inline]
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredL2 => sq_l2(a, b),
            Metric::NegativeDot => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// Accumulates in chunks of 8 so LLVM vectorises the loop.
#[inline]
pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    // A checked fault: with mismatched lengths the tail loop would index `b`
    // out of bounds or silently drop coordinates depending on which slice is
    // shorter, turning a caller bug into a wrong distance.
    assert_eq!(a.len(), b.len(), "sq_l2 over slices of different lengths");
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (pa, pb) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for i in 0..8 {
            let d = pa[i] - pb[i];
            acc[i] += d * d;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * 8..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot over slices of different lengths");
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (pa, pb) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for i in 0..8 {
            acc[i] += pa[i] * pb[i];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * 8..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 − cos(a, b)`; zero vectors are treated as orthogonal to
/// everything (distance 1).
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_l2_basics() {
        assert_eq!(sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_l2(&[1.0; 17], &[1.0; 17]), 0.0);
        // Length 17 exercises the remainder path.
        let a: Vec<f32> = (0..17).map(|i| i as f32).collect();
        let b = vec![0.0f32; 17];
        let want: f32 = (0..17).map(|i| (i * i) as f32).sum();
        assert_eq!(sq_l2(&a, &b), want);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        let a: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        assert_eq!(dot(&a, &a), (1..=16).map(|i| i * i).sum::<i32>() as f32);
    }

    #[test]
    fn cosine_identities() {
        assert!((cosine_distance(&[1.0, 0.0], &[2.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 5.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn metric_eval_dispatch() {
        let (a, b) = ([1.0, 1.0], [2.0, 3.0]);
        assert_eq!(Metric::SquaredL2.eval(&a, &b), 5.0);
        assert_eq!(Metric::NegativeDot.eval(&a, &b), -5.0);
        assert!(Metric::Cosine.eval(&a, &a).abs() < 1e-6);
        assert_eq!(Metric::default(), Metric::SquaredL2);
    }
}
