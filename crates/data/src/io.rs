//! Compact binary persistence for vector sets and neighbor lists.
//!
//! A tiny hand-rolled little-endian format — sufficient to cache ground
//! truth between benchmark runs without pulling a serialization framework
//! into the dependency tree (see `DESIGN.md`).
//!
//! Writers emit the **v2** layout: `magic, shape header, payload length
//! (u64), FNV-1a 64 checksum (u64), payload`. The length makes truncation a
//! typed [`DataError::Truncated`] instead of garbage, and the checksum makes
//! any other byte corruption a typed [`DataError::ChecksumMismatch`].
//! Readers still accept the legacy v1 headerless layout (`magic, shape,
//! payload`), so files written before the header existed keep loading.
//!
//! All writers go through [`atomic_write`]: the bytes land in `<path>.tmp`,
//! are fsynced, and only then renamed over the destination (with a parent
//! directory fsync so the rename itself is durable). A crash mid-write can
//! orphan a temp file but can never destroy the previous good file.

use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

use crate::error::DataError;
use crate::neighbor::Neighbor;
use crate::vecs::VectorSet;

const VEC_MAGIC_V1: u32 = 0x574B_5631; // "WKV1"
const KNN_MAGIC_V1: u32 = 0x574B_4B31; // "WKK1"
const VEC_MAGIC_V2: u32 = 0x574B_5632; // "WKV2"
const KNN_MAGIC_V2: u32 = 0x574B_4B32; // "WKK2"

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> Result<(), DataError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u32(r: &mut impl Read) -> Result<u32, DataError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> Result<(), DataError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64(r: &mut impl Read) -> Result<u64, DataError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_f32(w: &mut impl Write, v: f32) -> Result<(), DataError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f32(r: &mut impl Read) -> Result<f32, DataError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// FNV-1a 64 over a byte slice — small, allocation-free, and plenty to catch
/// file corruption (this is an integrity check, not a cryptographic one).
/// The same hash guards the v2 snapshot payloads, every WAL record, and the
/// checkpoint manifests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The sibling temp path used by [`atomic_write`] (`<path>.tmp`).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn sync_parent_dir(path: &Path) -> Result<(), DataError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Atomically replace `path` with `bytes`: write `<path>.tmp`, fsync it,
/// rename over the destination, then fsync the parent directory. The
/// destination either keeps its old contents or holds the new bytes in
/// full — never a torn mix. Consumes one rename crash point when a
/// [`crate::crash::CrashScope`] is installed (the injected death lands
/// between the temp-file fsync and the rename, orphaning the temp file).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), DataError> {
    let tmp = tmp_sibling(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    crate::crash::next_rename_crash(path)?;
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Read the `payload_len`/`checksum` pair, then the payload itself,
/// verifying both: short files are [`DataError::Truncated`], wrong bytes are
/// [`DataError::ChecksumMismatch`], trailing bytes are a format error.
fn read_checked_payload(r: &mut impl Read, path: &Path) -> Result<Vec<u8>, DataError> {
    let expected_len = read_u64(r)?;
    let expected_sum = read_u64(r)?;
    let mut payload = Vec::new();
    r.read_to_end(&mut payload)?;
    if (payload.len() as u64) < expected_len {
        return Err(DataError::Truncated { expected: expected_len, got: payload.len() as u64 });
    }
    if payload.len() as u64 > expected_len {
        return Err(DataError::Format(format!(
            "{} has {} trailing bytes after its payload",
            path.display(),
            payload.len() as u64 - expected_len
        )));
    }
    let actual_sum = fnv1a64(&payload);
    if actual_sum != expected_sum {
        return Err(DataError::ChecksumMismatch { expected: expected_sum, actual: actual_sum });
    }
    Ok(payload)
}

/// Save a [`VectorSet`] to `path` (v2 layout: length + checksum header),
/// atomically via [`atomic_write`].
pub fn save_vectors(vs: &VectorSet, path: &Path) -> Result<(), DataError> {
    let mut payload = Vec::with_capacity(vs.len() * vs.dim() * 4);
    for &v in vs.as_flat() {
        write_f32(&mut payload, v)?;
    }
    let mut file = Vec::with_capacity(28 + payload.len());
    write_u32(&mut file, VEC_MAGIC_V2)?;
    write_u32(&mut file, vs.len() as u32)?;
    write_u32(&mut file, vs.dim() as u32)?;
    write_u64(&mut file, payload.len() as u64)?;
    write_u64(&mut file, fnv1a64(&payload))?;
    file.extend_from_slice(&payload);
    atomic_write(path, &file)
}

/// Load a [`VectorSet`] from `path` (v2 with integrity checks, or legacy
/// v1 without them).
pub fn load_vectors(path: &Path) -> Result<VectorSet, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let magic = read_u32(&mut r)?;
    let n = read_u32(&mut r)? as usize;
    let dim = read_u32(&mut r)? as usize;
    match magic {
        VEC_MAGIC_V2 => {
            let payload = read_checked_payload(&mut r, path)?;
            if payload.len() != n * dim * 4 {
                return Err(DataError::Format(format!(
                    "{}: payload holds {} bytes, shape {n}x{dim} needs {}",
                    path.display(),
                    payload.len(),
                    n * dim * 4
                )));
            }
            let mut cur = payload.as_slice();
            let mut data = Vec::with_capacity(n * dim);
            for _ in 0..n * dim {
                data.push(read_f32(&mut cur)?);
            }
            VectorSet::new(data, dim)
        }
        VEC_MAGIC_V1 => {
            let mut data = Vec::with_capacity(n * dim);
            for _ in 0..n * dim {
                data.push(read_f32(&mut r)?);
            }
            VectorSet::new(data, dim)
        }
        _ => Err(DataError::Format(format!("{} is not a WKV vector file", path.display()))),
    }
}

/// Save per-point neighbor lists (e.g. ground truth) to `path` (v2 layout:
/// length + checksum header), atomically via [`atomic_write`].
pub fn save_knn(lists: &[Vec<Neighbor>], path: &Path) -> Result<(), DataError> {
    let mut payload = Vec::new();
    for list in lists {
        write_u32(&mut payload, list.len() as u32)?;
        for nb in list {
            write_u32(&mut payload, nb.index)?;
            write_f32(&mut payload, nb.dist)?;
        }
    }
    let mut file = Vec::with_capacity(24 + payload.len());
    write_u32(&mut file, KNN_MAGIC_V2)?;
    write_u32(&mut file, lists.len() as u32)?;
    write_u64(&mut file, payload.len() as u64)?;
    write_u64(&mut file, fnv1a64(&payload))?;
    file.extend_from_slice(&payload);
    atomic_write(path, &file)
}

fn read_knn_lists(r: &mut impl Read, n: usize) -> Result<Vec<Vec<Neighbor>>, DataError> {
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let k = read_u32(r)? as usize;
        let mut list = Vec::with_capacity(k);
        for _ in 0..k {
            let index = read_u32(r)?;
            let dist = read_f32(r)?;
            list.push(Neighbor::new(index, dist));
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Load per-point neighbor lists from `path` (v2 with integrity checks, or
/// legacy v1 without them).
pub fn load_knn(path: &Path) -> Result<Vec<Vec<Neighbor>>, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let magic = read_u32(&mut r)?;
    let n = read_u32(&mut r)? as usize;
    match magic {
        KNN_MAGIC_V2 => {
            let payload = read_checked_payload(&mut r, path)?;
            read_knn_lists(&mut payload.as_slice(), n)
        }
        KNN_MAGIC_V1 => read_knn_lists(&mut r, n),
        _ => Err(DataError::Format(format!("{} is not a WKK knn file", path.display()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-io-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn vectors_roundtrip() {
        let vs = DatasetSpec::UniformCube { n: 17, dim: 5 }.generate(1).vectors;
        let p = tmp("vec");
        save_vectors(&vs, &p).unwrap();
        let back = load_vectors(&p).unwrap();
        assert_eq!(back, vs);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn knn_roundtrip() {
        let lists = vec![
            vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)],
            vec![],
            vec![Neighbor::new(0, 0.25)],
        ];
        let p = tmp("knn");
        save_knn(&lists, &p).unwrap();
        let back = load_knn(&p).unwrap();
        assert_eq!(back, lists);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_magic_is_a_format_error() {
        let p = tmp("magic");
        std::fs::write(&p, [0u8; 32]).unwrap();
        assert!(matches!(load_vectors(&p), Err(DataError::Format(_))));
        assert!(matches!(load_knn(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let p = tmp("missing-never-created");
        assert!(matches!(load_vectors(&p), Err(DataError::Io(_))));
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let vs = DatasetSpec::UniformCube { n: 8, dim: 3 }.generate(2).vectors;
        let p = tmp("trunc");
        save_vectors(&vs, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        match load_vectors(&p) {
            Err(DataError::Truncated { expected, got }) => {
                assert_eq!(expected, 8 * 3 * 4);
                assert!(got < expected);
            }
            other => panic!("want Truncated, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let vs = DatasetSpec::UniformCube { n: 8, dim: 3 }.generate(2).vectors;
        let p = tmp("cksum");
        save_vectors(&vs, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // single-bit flip in the payload
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_vectors(&p), Err(DataError::ChecksumMismatch { .. })));
        std::fs::remove_file(&p).ok();

        let lists = vec![vec![Neighbor::new(1, 0.5)]];
        let p = tmp("cksum-knn");
        save_knn(&lists, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_knn(&p), Err(DataError::ChecksumMismatch { .. })));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn trailing_bytes_are_a_format_error() {
        let vs = DatasetSpec::UniformCube { n: 4, dim: 2 }.generate(3).vectors;
        let p = tmp("trailing");
        save_vectors(&vs, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.push(0xAA);
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load_vectors(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crash_before_rename_leaves_the_old_file_intact() {
        // A simulated partial write (process dies after the temp file is
        // written but before the atomic rename) must not touch the old file.
        let old = DatasetSpec::UniformCube { n: 9, dim: 4 }.generate(5).vectors;
        let new = DatasetSpec::UniformCube { n: 9, dim: 4 }.generate(6).vectors;
        assert_ne!(old, new);
        let p = tmp("atomic");
        save_vectors(&old, &p).unwrap();
        {
            let _scope =
                crate::crash::CrashScope::install(crate::crash::CrashPlan::new().kill_rename(0));
            match save_vectors(&new, &p) {
                Err(DataError::Crash(_)) => {}
                other => panic!("want injected crash, got {other:?}"),
            }
        }
        // Old contents survive; the orphaned temp file holds the new bytes.
        assert_eq!(load_vectors(&p).unwrap(), old);
        let orphan = tmp_sibling(&p);
        assert!(orphan.exists(), "temp file should be orphaned by the crash");
        assert_eq!(load_vectors(&orphan).unwrap(), new);
        // Without injection the replacement goes through.
        save_vectors(&new, &p).unwrap();
        assert_eq!(load_vectors(&p).unwrap(), new);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&orphan).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        // Hand-write v1 layouts (magic, shape, raw payload, no header).
        let p = tmp("legacy-vec");
        let mut w = Vec::new();
        write_u32(&mut w, VEC_MAGIC_V1).unwrap();
        write_u32(&mut w, 2).unwrap(); // n
        write_u32(&mut w, 3).unwrap(); // dim
        for v in [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0] {
            write_f32(&mut w, v).unwrap();
        }
        std::fs::write(&p, &w).unwrap();
        let vs = load_vectors(&p).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.row(1), &[4.0, 5.0, 6.0]);
        std::fs::remove_file(&p).ok();

        let p = tmp("legacy-knn");
        let mut w = Vec::new();
        write_u32(&mut w, KNN_MAGIC_V1).unwrap();
        write_u32(&mut w, 1).unwrap(); // n lists
        write_u32(&mut w, 2).unwrap(); // k of list 0
        for nb in [Neighbor::new(4, 0.5), Neighbor::new(7, 1.0)] {
            write_u32(&mut w, nb.index).unwrap();
            write_f32(&mut w, nb.dist).unwrap();
        }
        std::fs::write(&p, &w).unwrap();
        let lists = load_knn(&p).unwrap();
        assert_eq!(lists, vec![vec![Neighbor::new(4, 0.5), Neighbor::new(7, 1.0)]]);
        std::fs::remove_file(&p).ok();
    }
}
