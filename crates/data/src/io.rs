//! Compact binary persistence for vector sets and neighbor lists.
//!
//! A tiny hand-rolled little-endian format (magic + header + payload) —
//! sufficient to cache ground truth between benchmark runs without pulling a
//! serialization framework into the dependency tree (see `DESIGN.md`).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::DataError;
use crate::neighbor::Neighbor;
use crate::vecs::VectorSet;

const VEC_MAGIC: u32 = 0x574B_5631; // "WKV1"
const KNN_MAGIC: u32 = 0x574B_4B31; // "WKK1"

fn write_u32(w: &mut impl Write, v: u32) -> Result<(), DataError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, DataError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_f32(w: &mut impl Write, v: f32) -> Result<(), DataError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_f32(r: &mut impl Read) -> Result<f32, DataError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Save a [`VectorSet`] to `path`.
pub fn save_vectors(vs: &VectorSet, path: &Path) -> Result<(), DataError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_u32(&mut w, VEC_MAGIC)?;
    write_u32(&mut w, vs.len() as u32)?;
    write_u32(&mut w, vs.dim() as u32)?;
    for &v in vs.as_flat() {
        write_f32(&mut w, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Load a [`VectorSet`] from `path`.
pub fn load_vectors(path: &Path) -> Result<VectorSet, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    if read_u32(&mut r)? != VEC_MAGIC {
        return Err(DataError::Format(format!("{} is not a WKV1 vector file", path.display())));
    }
    let n = read_u32(&mut r)? as usize;
    let dim = read_u32(&mut r)? as usize;
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(read_f32(&mut r)?);
    }
    VectorSet::new(data, dim)
}

/// Save per-point neighbor lists (e.g. ground truth) to `path`.
pub fn save_knn(lists: &[Vec<Neighbor>], path: &Path) -> Result<(), DataError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_u32(&mut w, KNN_MAGIC)?;
    write_u32(&mut w, lists.len() as u32)?;
    for list in lists {
        write_u32(&mut w, list.len() as u32)?;
        for nb in list {
            write_u32(&mut w, nb.index)?;
            write_f32(&mut w, nb.dist)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Load per-point neighbor lists from `path`.
pub fn load_knn(path: &Path) -> Result<Vec<Vec<Neighbor>>, DataError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    if read_u32(&mut r)? != KNN_MAGIC {
        return Err(DataError::Format(format!("{} is not a WKK1 knn file", path.display())));
    }
    let n = read_u32(&mut r)? as usize;
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let k = read_u32(&mut r)? as usize;
        let mut list = Vec::with_capacity(k);
        for _ in 0..k {
            let index = read_u32(&mut r)?;
            let dist = read_f32(&mut r)?;
            list.push(Neighbor::new(index, dist));
        }
        lists.push(list);
    }
    Ok(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-io-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn vectors_roundtrip() {
        let vs = DatasetSpec::UniformCube { n: 17, dim: 5 }.generate(1).vectors;
        let p = tmp("vec");
        save_vectors(&vs, &p).unwrap();
        let back = load_vectors(&p).unwrap();
        assert_eq!(back, vs);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn knn_roundtrip() {
        let lists = vec![
            vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)],
            vec![],
            vec![Neighbor::new(0, 0.25)],
        ];
        let p = tmp("knn");
        save_knn(&lists, &p).unwrap();
        let back = load_knn(&p).unwrap();
        assert_eq!(back, lists);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_magic_is_a_format_error() {
        let p = tmp("magic");
        std::fs::write(&p, [0u8; 16]).unwrap();
        assert!(matches!(load_vectors(&p), Err(DataError::Format(_))));
        assert!(matches!(load_knn(&p), Err(DataError::Format(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let p = tmp("missing-never-created");
        assert!(matches!(load_vectors(&p), Err(DataError::Io(_))));
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let vs = DatasetSpec::UniformCube { n: 8, dim: 3 }.generate(2).vectors;
        let p = tmp("trunc");
        save_vectors(&vs, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_vectors(&p), Err(DataError::Io(_))));
        std::fs::remove_file(&p).ok();
    }
}
