//! # wknng-forest — random-projection tree/forest construction
//!
//! The bucketing substrate of w-KNNG: each RP tree recursively median-splits
//! the point set along random directions until buckets of at most
//! `leaf_size` points remain; a forest of `T` independent trees yields `T`
//! partitions whose buckets feed the all-pairs kernels in `wknng-core`.
//!
//! Projection passes (the compute-heavy part of construction) run either
//! natively (rayon) or as warp-centric kernels on the `wknng-simt` device,
//! so the forest phase contributes simulated cycles to the phase-breakdown
//! experiment.
//!
//! ```
//! use wknng_data::DatasetSpec;
//! use wknng_forest::{build_forest, ForestParams, TreeParams};
//!
//! let vs = DatasetSpec::sift_like(300).generate(1).vectors;
//! let params = ForestParams { num_trees: 4, tree: TreeParams { leaf_size: 32, ..TreeParams::default() } };
//! let forest = build_forest(&vs, params, 42).unwrap();
//! assert_eq!(forest.trees.len(), 4);
//! assert!(forest.trees.iter().all(|t| t.max_bucket() <= 32));
//! ```

pub mod device_partition;
pub mod device_project;
pub mod error;
pub mod forest;
pub mod native_project;
pub mod stats;
pub mod tree;

pub use error::ForestError;
pub use forest::{build_forest, build_forest_device, ForestParams, RpForest};
pub use stats::{pair_coverage, tree_stats, TreeStats};
pub use tree::{build_tree, ProjectionBackend, ProjectionKind, RpTree, TreeParams};
