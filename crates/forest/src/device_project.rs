//! Simulated-GPU implementation of the per-level projection pass.
//!
//! One warp per point: lanes stride across the dimensions computing the
//! partial dot product with the owning node's direction, then a warp
//! reduction produces the projection. This is the forest-phase kernel whose
//! simulated cycles feed the phase-breakdown experiment (E7).

use wknng_simt::primitives::reduce_sum_f32;
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchReport, Mask, WARP_LANES};

/// Warps per block used by the projection kernel.
const WARPS_PER_BLOCK: usize = 4;

/// Project every point of every active node onto its node's direction using
/// the simulated device; writes `proj[point_id]` and returns the launch
/// report.
///
/// `points` is the row-major `n × dim` coordinate buffer already resident on
/// the device; `ranges[i]` (over `order`) lists node `i`'s points and
/// `dirs[i]` its direction.
pub fn project_level(
    dev: &DeviceConfig,
    points: &DeviceBuffer<f32>,
    dim: usize,
    order: &[u32],
    ranges: &[(usize, usize)],
    dirs: &[Vec<f32>],
    proj: &mut [f32],
) -> LaunchReport {
    // Flatten the level: position -> (point id, node id).
    let mut pts: Vec<u32> = Vec::new();
    let mut node_of: Vec<u32> = Vec::new();
    for (node, &(s, e)) in ranges.iter().enumerate() {
        for &p in &order[s..e] {
            pts.push(p);
            node_of.push(node as u32);
        }
    }
    let m = pts.len();
    if m == 0 {
        return LaunchReport::default();
    }

    let dirs_flat: Vec<f32> = dirs.iter().flat_map(|d| d.iter().copied()).collect();
    let d_pts = DeviceBuffer::from_slice(&pts);
    let d_nodes = DeviceBuffer::from_slice(&node_of);
    let d_dirs = DeviceBuffer::from_slice(&dirs_flat);
    let d_proj = DeviceBuffer::<f32>::zeroed(m);

    let blocks = m.div_ceil(WARPS_PER_BLOCK);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let pos = w.global_warp;
            if pos >= m {
                return;
            }
            let one = Mask::first(1);
            // Leader lane fetches the point and node ids for the warp.
            let p = w.ld_global(&d_pts, &LaneVec::splat(pos), one).get(0) as usize;
            let node = w.ld_global(&d_nodes, &LaneVec::splat(pos), one).get(0) as usize;

            let mut acc = LaneVec::<f32>::zeroed();
            let mut c = 0usize;
            while c < dim {
                let width = (dim - c).min(WARP_LANES);
                let mask = Mask::first(width);
                let pidx = w.math_idx(mask, |l| p * dim + c + l);
                let x = w.ld_global(points, &pidx, mask);
                let didx = w.math_idx(mask, |l| node * dim + c + l);
                let dv = w.ld_global(&d_dirs, &didx, mask);
                acc = w.math_keep(mask, &acc, |l| acc.get(l) + x.get(l) * dv.get(l));
                c += WARP_LANES;
            }
            let total = reduce_sum_f32(w, &acc, Mask::FULL);
            w.st_global(&d_proj, &LaneVec::splat(pos), &LaneVec::splat(total), one);
        });
    });

    let out = d_proj.to_vec();
    for (pos, &p) in pts.iter().enumerate() {
        proj[p as usize] = out[pos];
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::{DatasetSpec, VectorSet};

    #[test]
    fn matches_native_projection() {
        let vs = DatasetSpec::UniformCube { n: 37, dim: 45 }.generate(2).vectors;
        let order: Vec<u32> = (0..37).rev().collect();
        let ranges = vec![(0usize, 20usize), (20, 37)];
        let dirs = vec![
            (0..45).map(|i| (i as f32 * 0.1).sin()).collect::<Vec<f32>>(),
            (0..45).map(|i| (i as f32 * 0.2).cos()).collect::<Vec<f32>>(),
        ];

        let mut native = vec![0.0f32; 37];
        crate::native_project::project_level(&vs, &order, &ranges, &dirs, &mut native);

        let dev = DeviceConfig::test_tiny();
        let d_points = DeviceBuffer::from_slice(vs.as_flat());
        let mut device = vec![0.0f32; 37];
        let report = project_level(&dev, &d_points, 45, &order, &ranges, &dirs, &mut device);

        for i in 0..37 {
            assert!(
                (native[i] - device[i]).abs() < 1e-4,
                "point {i}: {} vs {}",
                native[i],
                device[i]
            );
        }
        assert!(report.cycles > 0.0);
        assert!(report.stats.global_load_transactions > 0);
    }

    #[test]
    fn empty_level_is_free() {
        let dev = DeviceConfig::test_tiny();
        let vs = VectorSet::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let d_points = DeviceBuffer::from_slice(vs.as_flat());
        let mut proj = vec![0.0f32; 1];
        let report = project_level(&dev, &d_points, 2, &[0], &[], &[], &mut proj);
        assert_eq!(report, LaunchReport::default());
        assert_eq!(proj[0], 0.0);
    }

    #[test]
    fn dim_smaller_than_warp_works() {
        let vs = VectorSet::from_rows(&[vec![2.0, 3.0], vec![-1.0, 4.0]]).unwrap();
        let dev = DeviceConfig::test_tiny();
        let d_points = DeviceBuffer::from_slice(vs.as_flat());
        let order = vec![0u32, 1];
        let dirs = vec![vec![1.0f32, 1.0]];
        let mut proj = vec![0.0f32; 2];
        project_level(&dev, &d_points, 2, &order, &[(0, 2)], &dirs, &mut proj);
        assert_eq!(proj, vec![5.0, 3.0]);
    }
}
