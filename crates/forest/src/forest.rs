//! Random-projection forests: many independent trees.

use rayon::prelude::*;

use wknng_data::VectorSet;
use wknng_simt::{DeviceConfig, LaunchReport};

use crate::error::ForestError;
use crate::tree::{build_tree, ProjectionBackend, RpTree, TreeParams};

/// Parameters of an RP forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestParams {
    /// Number of trees; each tree contributes one partition of the points.
    pub num_trees: usize,
    /// Per-tree leaf bucket size.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { num_trees: 4, tree: TreeParams::default() }
    }
}

/// A built RP forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpForest {
    /// The independent trees.
    pub trees: Vec<RpTree>,
}

impl RpForest {
    /// Iterator over every bucket of every tree.
    pub fn buckets(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.trees.iter().flat_map(|t| t.buckets.iter().map(|b| b.as_slice()))
    }

    /// Total number of buckets across all trees.
    pub fn num_buckets(&self) -> usize {
        self.trees.iter().map(|t| t.buckets.len()).sum()
    }
}

/// Build a forest natively (rayon across trees). Deterministic in `seed`.
pub fn build_forest(
    vs: &VectorSet,
    params: ForestParams,
    seed: u64,
) -> Result<RpForest, ForestError> {
    if params.num_trees == 0 {
        return Err(ForestError::NoTrees);
    }
    let trees: Result<Vec<RpTree>, ForestError> = (0..params.num_trees)
        .into_par_iter()
        .map(|t| {
            build_tree(vs, params.tree, seed.wrapping_add(t as u64), ProjectionBackend::Native)
                .map(|(tree, _)| tree)
        })
        .collect();
    Ok(RpForest { trees: trees? })
}

/// Build a forest with the projection passes executed on the simulated
/// device; returns the forest and the summed launch report (forest-phase
/// cost for experiment E7). Trees are simulated sequentially so the report
/// composes deterministically.
pub fn build_forest_device(
    vs: &VectorSet,
    params: ForestParams,
    seed: u64,
    dev: &DeviceConfig,
) -> Result<(RpForest, LaunchReport), ForestError> {
    if params.num_trees == 0 {
        return Err(ForestError::NoTrees);
    }
    let mut trees = Vec::with_capacity(params.num_trees);
    let mut total = LaunchReport::default();
    for t in 0..params.num_trees {
        let (tree, rep) = build_tree(
            vs,
            params.tree,
            seed.wrapping_add(t as u64),
            ProjectionBackend::Device(dev),
        )?;
        if let Some(r) = rep {
            total += r;
        }
        trees.push(tree);
    }
    Ok((RpForest { trees }, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn forest_builds_independent_trees() {
        let vs = DatasetSpec::UniformCube { n: 120, dim: 8 }.generate(1).vectors;
        let params = ForestParams {
            num_trees: 3,
            tree: TreeParams { leaf_size: 16, ..TreeParams::default() },
        };
        let forest = build_forest(&vs, params, 77).unwrap();
        assert_eq!(forest.trees.len(), 3);
        // Trees drawn with different seeds should differ.
        assert_ne!(forest.trees[0], forest.trees[1]);
        for t in &forest.trees {
            assert_eq!(t.len(), 120);
        }
        assert_eq!(forest.num_buckets(), forest.buckets().count());
    }

    #[test]
    fn zero_trees_rejected() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 2 }.generate(1).vectors;
        let params = ForestParams { num_trees: 0, tree: TreeParams::default() };
        assert!(matches!(build_forest(&vs, params, 0), Err(ForestError::NoTrees)));
        let dev = DeviceConfig::test_tiny();
        assert!(matches!(build_forest_device(&vs, params, 0, &dev), Err(ForestError::NoTrees)));
    }

    #[test]
    fn device_forest_matches_shape_and_reports_cycles() {
        let vs = DatasetSpec::UniformCube { n: 90, dim: 12 }.generate(4).vectors;
        let params = ForestParams {
            num_trees: 2,
            tree: TreeParams { leaf_size: 12, ..TreeParams::default() },
        };
        let dev = DeviceConfig::test_tiny();
        let (forest, report) = build_forest_device(&vs, params, 5, &dev).unwrap();
        assert_eq!(forest.trees.len(), 2);
        for t in &forest.trees {
            assert_eq!(t.len(), 90);
            assert!(t.max_bucket() <= 12);
        }
        assert!(report.cycles > 0.0);
        assert!(report.stats.launches >= 2);
    }

    #[test]
    fn forest_determinism() {
        let vs = DatasetSpec::sift_like(64).generate(2).vectors;
        let params = ForestParams {
            num_trees: 2,
            tree: TreeParams { leaf_size: 8, ..TreeParams::default() },
        };
        let a = build_forest(&vs, params, 11).unwrap();
        let b = build_forest(&vs, params, 11).unwrap();
        assert_eq!(a, b);
    }
}
