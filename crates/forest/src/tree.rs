//! Random-projection tree construction.
//!
//! A tree recursively splits the point set: each node draws a random unit
//! direction, projects its points onto it and splits at the median, stopping
//! once a node holds at most `leaf_size` points. Each leaf ("bucket") is a
//! set of points likely to be mutual near neighbors — the candidate pool the
//! w-KNNG kernels do all-pairs work inside.
//!
//! The builder is **level-synchronous**: every node of one depth projects in
//! one pass, which is what makes the projection phase expressible as a single
//! device kernel per level (see [`crate::device_project`]).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use wknng_data::{normal, VectorSet};
use wknng_simt::LaunchReport;

use crate::error::ForestError;

/// How split directions are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProjectionKind {
    /// Dense Gaussian unit directions (classic RP trees).
    DenseGaussian,
    /// Achlioptas-style sparse sign directions: each coordinate is ±1 with
    /// probability `density` and 0 otherwise. Projections cost
    /// `O(density · d)` instead of `O(d)`, trading a little split quality
    /// for construction speed (ablated in experiment E12).
    SparseSign {
        /// Probability of a nonzero coordinate, clamped to `(0, 1]`.
        density: f32,
    },
}

impl Eq for ProjectionKind {}

/// Parameters of a random-projection tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum number of points in a leaf bucket (≥ 2).
    pub leaf_size: usize,
    /// Split-direction distribution.
    pub projection: ProjectionKind,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { leaf_size: 64, projection: ProjectionKind::DenseGaussian }
    }
}

/// A built random-projection tree: a partition of `0..n` into leaf buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpTree {
    /// Leaf buckets; together they contain every point exactly once.
    pub buckets: Vec<Vec<u32>>,
    /// Tree depth reached (number of split levels).
    pub depth: usize,
}

impl RpTree {
    /// Total number of points across buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Size of the largest bucket.
    pub fn max_bucket(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }
}

/// How to execute the projection passes.
pub enum ProjectionBackend<'a> {
    /// Host execution (rayon-parallel over points).
    Native,
    /// Simulated-GPU execution; cycle/counter reports accumulate into the
    /// returned [`LaunchReport`].
    Device(&'a wknng_simt::DeviceConfig),
}

/// A node being processed at the current level: a range of the global order
/// array.
#[derive(Debug, Clone, Copy)]
struct Node {
    start: usize,
    end: usize,
}

/// Draw a random direction of dimensionality `dim` for the given projection
/// kind. Directions are unit-normalised for the dense case; sparse sign
/// directions are left at ±1 (only the projection *order* matters for the
/// median split).
fn random_direction(rng: &mut SmallRng, dim: usize, kind: ProjectionKind) -> Vec<f32> {
    match kind {
        ProjectionKind::DenseGaussian => loop {
            let v: Vec<f32> = (0..dim).map(|_| normal(rng)).collect();
            let n2: f32 = v.iter().map(|x| x * x).sum();
            if n2 > 1e-12 {
                let inv = n2.sqrt().recip();
                return v.iter().map(|x| x * inv).collect();
            }
        },
        ProjectionKind::SparseSign { density } => {
            use rand::Rng;
            let density = if density.is_finite() { density.clamp(1e-3, 1.0) } else { 1.0 };
            loop {
                let v: Vec<f32> = (0..dim)
                    .map(|_| {
                        if rng.gen_range(0.0f32..1.0) < density {
                            if rng.gen_bool(0.5) {
                                1.0
                            } else {
                                -1.0
                            }
                        } else {
                            0.0
                        }
                    })
                    .collect();
                if v.iter().any(|&x| x != 0.0) {
                    return v;
                }
            }
        }
    }
}

/// Build one RP tree over `vs`.
///
/// Deterministic in `seed`. Returns the tree and, when the device backend is
/// used, the accumulated simulated launch report of the projection kernels.
pub fn build_tree(
    vs: &VectorSet,
    params: TreeParams,
    seed: u64,
    backend: ProjectionBackend<'_>,
) -> Result<(RpTree, Option<LaunchReport>), ForestError> {
    if params.leaf_size < 2 {
        return Err(ForestError::LeafTooSmall(params.leaf_size));
    }
    let n = vs.len();
    if n == 0 {
        return Err(ForestError::EmptyInput);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);

    if n <= params.leaf_size {
        return Ok((RpTree { buckets: vec![(0..n as u32).collect()], depth: 0 }, None));
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut active = vec![Node { start: 0, end: n }];
    let mut buckets = Vec::new();
    let mut proj = vec![0.0f32; n];
    let mut depth = 0usize;
    let mut report: Option<LaunchReport> = None;

    // Device-side copy of the points, uploaded once per tree.
    let dev_points = match &backend {
        ProjectionBackend::Device(_) => Some(wknng_simt::DeviceBuffer::from_slice(vs.as_flat())),
        ProjectionBackend::Native => None,
    };

    while !active.is_empty() {
        depth += 1;
        // One random direction per active node.
        let dirs: Vec<Vec<f32>> = active
            .iter()
            .map(|_| random_direction(&mut rng, vs.dim(), params.projection))
            .collect();

        match &backend {
            ProjectionBackend::Native => {
                crate::native_project::project_level(
                    vs,
                    &order,
                    &active_ranges(&active),
                    &dirs,
                    &mut proj,
                );
            }
            ProjectionBackend::Device(dev) => {
                let r = crate::device_project::project_level(
                    dev,
                    dev_points.as_ref().expect("uploaded"),
                    vs.dim(),
                    &order,
                    &active_ranges(&active),
                    &dirs,
                    &mut proj,
                );
                match report.as_mut() {
                    Some(acc) => *acc += r,
                    None => report = Some(r),
                }
            }
        }

        match &backend {
            ProjectionBackend::Native => {
                for node in &active {
                    let slice = &mut order[node.start..node.end];
                    let mid = slice.len() / 2;
                    slice.select_nth_unstable_by(mid, |&a, &b| {
                        let (pa, pb) = (proj[a as usize], proj[b as usize]);
                        pa.partial_cmp(&pb).expect("projections are finite").then(a.cmp(&b))
                    });
                }
            }
            ProjectionBackend::Device(dev) => {
                // Device path: the host only selects the pivots (GPU builds
                // use a radix-select; modelling it adds nothing to the
                // bucket-phase comparisons), the scatter runs as a kernel.
                let mut pivots = Vec::with_capacity(active.len());
                let mut lefts = Vec::with_capacity(active.len());
                let mut scratch = Vec::new();
                for node in &active {
                    scratch.clear();
                    scratch.extend_from_slice(&order[node.start..node.end]);
                    let mid = scratch.len() / 2;
                    scratch.select_nth_unstable_by(mid, |&a, &b| {
                        let (pa, pb) = (proj[a as usize], proj[b as usize]);
                        pa.partial_cmp(&pb).expect("projections are finite").then(a.cmp(&b))
                    });
                    pivots.push(proj[scratch[mid] as usize]);
                    lefts.push(mid);
                }
                let r = crate::device_partition::partition_level(
                    dev,
                    &mut order,
                    &active_ranges(&active),
                    &proj,
                    &pivots,
                    &lefts,
                );
                match report.as_mut() {
                    Some(acc) => *acc += r,
                    None => report = Some(r),
                }
            }
        }

        let mut next = Vec::new();
        for node in &active {
            let mid = (node.end - node.start) / 2;
            for (s, e) in [(node.start, node.start + mid), (node.start + mid, node.end)] {
                if e - s <= params.leaf_size {
                    buckets.push(order[s..e].to_vec());
                } else {
                    next.push(Node { start: s, end: e });
                }
            }
        }
        active = next;
    }

    Ok((RpTree { buckets, depth }, report))
}

fn active_ranges(active: &[Node]) -> Vec<(usize, usize)> {
    active.iter().map(|n| (n.start, n.end)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    fn small_set(n: usize, dim: usize) -> VectorSet {
        DatasetSpec::UniformCube { n, dim }.generate(9).vectors
    }

    #[test]
    fn rejects_bad_params() {
        let vs = small_set(10, 3);
        assert!(matches!(
            build_tree(
                &vs,
                TreeParams { leaf_size: 1, ..TreeParams::default() },
                0,
                ProjectionBackend::Native
            ),
            Err(ForestError::LeafTooSmall(1))
        ));
        let empty = VectorSet::new(vec![], 3).unwrap();
        assert!(matches!(
            build_tree(&empty, TreeParams::default(), 0, ProjectionBackend::Native),
            Err(ForestError::EmptyInput)
        ));
    }

    #[test]
    fn buckets_partition_the_points() {
        let vs = small_set(257, 6);
        let (tree, rep) = build_tree(
            &vs,
            TreeParams { leaf_size: 16, ..TreeParams::default() },
            5,
            ProjectionBackend::Native,
        )
        .unwrap();
        assert!(rep.is_none());
        assert_eq!(tree.len(), 257);
        let mut seen = vec![false; 257];
        for b in &tree.buckets {
            assert!(b.len() <= 16, "bucket of {} exceeds leaf size", b.len());
            assert!(!b.is_empty());
            for &p in b {
                assert!(!seen[p as usize], "point {p} appears twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(tree.depth >= 5); // 257 points / leaf 16 needs >= 5 splits
    }

    #[test]
    fn deterministic_in_seed() {
        let vs = small_set(100, 4);
        let p = TreeParams { leaf_size: 8, ..TreeParams::default() };
        let (a, _) = build_tree(&vs, p, 3, ProjectionBackend::Native).unwrap();
        let (b, _) = build_tree(&vs, p, 3, ProjectionBackend::Native).unwrap();
        assert_eq!(a, b);
        let (c, _) = build_tree(&vs, p, 4, ProjectionBackend::Native).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_input_is_one_bucket() {
        let vs = small_set(5, 3);
        let (tree, _) = build_tree(
            &vs,
            TreeParams { leaf_size: 8, ..TreeParams::default() },
            0,
            ProjectionBackend::Native,
        )
        .unwrap();
        assert_eq!(tree.buckets.len(), 1);
        assert_eq!(tree.depth, 0);
        assert_eq!(tree.max_bucket(), 5);
    }

    #[test]
    fn duplicate_points_still_terminate() {
        let vs = VectorSet::new(vec![1.0; 64 * 3], 3).unwrap();
        let (tree, _) = build_tree(
            &vs,
            TreeParams { leaf_size: 4, ..TreeParams::default() },
            1,
            ProjectionBackend::Native,
        )
        .unwrap();
        assert_eq!(tree.len(), 64);
        assert!(tree.max_bucket() <= 4);
    }

    #[test]
    fn clustered_data_lands_together() {
        // Two far-apart blobs: buckets should almost never mix them.
        let mut rows = Vec::new();
        for i in 0..64 {
            let off = if i % 2 == 0 { 0.0 } else { 100.0 };
            rows.push(vec![off + (i as f32) * 1e-3, off]);
        }
        let vs = VectorSet::from_rows(&rows).unwrap();
        let (tree, _) = build_tree(
            &vs,
            TreeParams { leaf_size: 8, ..TreeParams::default() },
            7,
            ProjectionBackend::Native,
        )
        .unwrap();
        let mut mixed = 0;
        for b in &tree.buckets {
            let evens = b.iter().filter(|&&p| p % 2 == 0).count();
            if evens != 0 && evens != b.len() {
                mixed += 1;
            }
        }
        assert_eq!(mixed, 0, "random projections should separate distant blobs");
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn sparse_trees_partition_and_terminate() {
        let vs = DatasetSpec::UniformCube { n: 200, dim: 32 }.generate(3).vectors;
        for density in [0.05f32, 0.3, 1.0] {
            let params =
                TreeParams { leaf_size: 16, projection: ProjectionKind::SparseSign { density } };
            let (tree, _) = build_tree(&vs, params, 8, ProjectionBackend::Native).unwrap();
            assert_eq!(tree.len(), 200, "density {density}");
            assert!(tree.max_bucket() <= 16);
        }
    }

    #[test]
    fn sparse_is_deterministic_and_differs_from_dense() {
        let vs = DatasetSpec::sift_like(100).generate(4).vectors;
        let sparse =
            TreeParams { leaf_size: 8, projection: ProjectionKind::SparseSign { density: 0.2 } };
        let (a, _) = build_tree(&vs, sparse, 9, ProjectionBackend::Native).unwrap();
        let (b, _) = build_tree(&vs, sparse, 9, ProjectionBackend::Native).unwrap();
        assert_eq!(a, b);
        let dense = TreeParams { leaf_size: 8, ..TreeParams::default() };
        let (c, _) = build_tree(&vs, dense, 9, ProjectionBackend::Native).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_density_is_clamped() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 8 }.generate(5).vectors;
        for density in [0.0f32, -1.0, f32::NAN, 2.0] {
            let params =
                TreeParams { leaf_size: 8, projection: ProjectionKind::SparseSign { density } };
            let (tree, _) = build_tree(&vs, params, 1, ProjectionBackend::Native).unwrap();
            assert_eq!(tree.len(), 50);
        }
    }
}
