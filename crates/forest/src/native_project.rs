//! Host (rayon) implementation of the per-level projection pass.

use rayon::prelude::*;

use wknng_data::{dot, VectorSet};

/// Project every point of every active node onto its node's direction,
/// writing `proj[point_id]`.
///
/// `ranges[i]` is the half-open slice of `order` owned by node `i`, whose
/// direction is `dirs[i]`.
pub fn project_level(
    vs: &VectorSet,
    order: &[u32],
    ranges: &[(usize, usize)],
    dirs: &[Vec<f32>],
    proj: &mut [f32],
) {
    // Compute (point, projection) pairs in parallel, then scatter serially —
    // `proj` is indexed by point id while work is grouped by node.
    let updates: Vec<(u32, f32)> = ranges
        .par_iter()
        .zip(dirs.par_iter())
        .flat_map_iter(|(&(s, e), dir)| {
            order[s..e].iter().map(move |&p| (p, dot(vs.row(p as usize), dir)))
        })
        .collect();
    for (p, v) in updates {
        proj[p as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::VectorSet;

    #[test]
    fn projects_each_node_with_its_own_direction() {
        let vs = VectorSet::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, -1.0],
        ])
        .unwrap();
        let order = vec![0u32, 1, 2, 3];
        let ranges = vec![(0, 2), (2, 4)];
        let dirs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut proj = vec![0.0; 4];
        project_level(&vs, &order, &ranges, &dirs, &mut proj);
        assert_eq!(proj, vec![1.0, 0.0, 2.0, -1.0]);
    }

    #[test]
    fn untouched_points_keep_their_value() {
        let vs = VectorSet::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let order = vec![0u32, 1];
        let mut proj = vec![9.0, 9.0];
        project_level(&vs, &order, &[(1, 2)], &[vec![1.0]], &mut proj);
        assert_eq!(proj, vec![9.0, 2.0]);
    }
}
