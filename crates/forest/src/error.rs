//! Typed errors for forest construction.

use std::fmt;

/// Errors produced while building RP trees/forests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestError {
    /// `leaf_size` must be at least 2 so a median split always makes
    /// progress.
    LeafTooSmall(usize),
    /// The point set was empty.
    EmptyInput,
    /// `num_trees` must be at least 1.
    NoTrees,
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::LeafTooSmall(s) => write!(f, "leaf_size {s} < 2 cannot terminate"),
            ForestError::EmptyInput => write!(f, "cannot build a forest over zero points"),
            ForestError::NoTrees => write!(f, "a forest needs at least one tree"),
        }
    }
}

impl std::error::Error for ForestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        assert!(ForestError::LeafTooSmall(1).to_string().contains("leaf_size 1"));
        assert!(ForestError::EmptyInput.to_string().contains("zero points"));
        assert!(ForestError::NoTrees.to_string().contains("one tree"));
    }
}
