//! Simulated-GPU partition pass: scatter each node's points to the left or
//! right of its median projection.
//!
//! Together with [`crate::device_project`] this makes the whole tree level
//! device-side: project → (host median select) → partition-scatter. The
//! kernel is the canonical ballot/prefix-sum stream compaction: every warp
//! classifies 32 points, computes left/right ranks with warp scans, and
//! reserves space in the output with two atomic counters per node.

use wknng_simt::primitives::compact_ranks;
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchReport, Mask, WARP_LANES};

/// Warps per block.
const WARPS_PER_BLOCK: usize = 4;

/// Partition one level of nodes on the device.
///
/// For node `i`, the points `order[ranges[i].0 .. ranges[i].1]` are written
/// back into the same range with those satisfying
/// `proj[p] < pivot[i] || (proj[p] == pivot[i] && tie-break)` on the left.
/// To match the host builder's `select_nth_unstable` semantics exactly, the
/// caller passes `left_count[i]` (how many go left) and the kernel assigns
/// equal-to-pivot points to the left until that quota is filled, by point-id
/// order — the same deterministic tie-break the host uses.
pub fn partition_level(
    dev: &DeviceConfig,
    order: &mut [u32],
    ranges: &[(usize, usize)],
    proj: &[f32],
    pivots: &[f32],
    left_counts: &[usize],
) -> LaunchReport {
    let n_points: usize = ranges.iter().map(|&(s, e)| e - s).sum();
    if n_points == 0 {
        return LaunchReport::default();
    }
    let d_order = DeviceBuffer::from_slice(order);
    let d_proj = DeviceBuffer::from_slice(proj);
    let d_out = DeviceBuffer::<u32>::zeroed(order.len());
    // Two cursors per node: next left slot, next right slot.
    let cursors = DeviceBuffer::<u32>::zeroed(ranges.len() * 2);
    for (i, &(s, _)) in ranges.iter().enumerate() {
        cursors.write(i * 2, s as u32);
        cursors.write(i * 2 + 1, (s + left_counts[i]) as u32);
    }
    // Points outside any active range copy through untouched.
    let mut in_range = vec![false; order.len()];
    for &(s, e) in ranges {
        for f in in_range.iter_mut().take(e).skip(s) {
            *f = true;
        }
    }
    for (pos, &p) in order.iter().enumerate() {
        if !in_range[pos] {
            d_out.write(pos, p);
        }
    }

    // The tie-break quota: points equal to the pivot go left in ascending
    // point-id order until the left half is full. Precompute the id
    // threshold per node (host-side metadata, O(node size)).
    let mut tie_threshold = vec![u32::MAX; ranges.len()];
    for (i, &(s, e)) in ranges.iter().enumerate() {
        let pivot = pivots[i];
        let below = order[s..e].iter().filter(|&&p| proj[p as usize] < pivot).count();
        let quota = left_counts[i].saturating_sub(below);
        let mut ties: Vec<u32> =
            order[s..e].iter().copied().filter(|&p| proj[p as usize] == pivot).collect();
        ties.sort_unstable();
        if quota == 0 {
            tie_threshold[i] = 0;
        } else if quota <= ties.len() {
            tie_threshold[i] = ties[quota - 1] + 1; // ids < threshold go left
        }
    }

    // One launch per level; blocks stride over the flattened active points.
    let mut flat: Vec<(u32, usize)> = Vec::with_capacity(n_points); // (node, pos)
    for (i, &(s, e)) in ranges.iter().enumerate() {
        for pos in s..e {
            flat.push((i as u32, pos));
        }
    }
    let blocks = n_points.div_ceil(WARPS_PER_BLOCK * WARP_LANES);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let base = w.global_warp * WARP_LANES;
            if base >= n_points {
                return;
            }
            let width = (n_points - base).min(WARP_LANES);
            let mask = Mask::first(width);
            let pos = w.math_idx(mask, |l| flat[base + l].1);
            let node = LaneVec::from_fn(|l| if l < width { flat[base + l].0 } else { 0 });
            let pts = w.ld_global(&d_order, &pos, mask);
            let pr = {
                let pidx = w.math_idx(mask, |l| pts.get(l) as usize);
                w.ld_global(&d_proj, &pidx, mask)
            };
            // Classify left/right (pivot + tie threshold are per-node
            // scalars; one compare instruction).
            let left = w.pred(mask, |l| {
                let nd = node.get(l) as usize;
                let v = pr.get(l);
                v < pivots[nd] || (v == pivots[nd] && pts.get(l) < tie_threshold[nd])
            });
            let right = mask.and_not(left);
            // Warps of one node dominate a batch in this flattened layout;
            // reserve output slots with per-node atomic adds, then compute
            // in-warp ranks for coalesced-ish scatters.
            for (side_mask, side) in [(left, 0usize), (right, 1usize)] {
                if side_mask.is_empty() {
                    continue;
                }
                let (ranks, _) = compact_ranks(w, side_mask, mask);
                // Group lanes by node for the atomic reservation.
                let cur_idx = w.math_idx(side_mask, |l| node.get(l) as usize * 2 + side);
                let ones = LaneVec::splat(1u32);
                let old = w.atomic_add_u32(&cursors, &cur_idx, &ones, side_mask);
                // `old` is each lane's reserved slot (lanes of the same node
                // serialize within the atomic, giving consecutive slots).
                let dst = w.math_idx(side_mask, |l| old.get(l) as usize);
                let _ = ranks; // ranks drive the shared-memory staging on HW
                w.st_global(&d_out, &dst, &pts, side_mask);
            }
        });
    });

    order.copy_from_slice(&d_out.to_vec());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_partition(
        order: &mut [u32],
        ranges: &[(usize, usize)],
        proj: &[f32],
    ) -> (Vec<f32>, Vec<usize>) {
        // Reference: the host builder's median split.
        let mut pivots = Vec::new();
        let mut lefts = Vec::new();
        for &(s, e) in ranges {
            let slice = &mut order[s..e];
            let mid = slice.len() / 2;
            slice.select_nth_unstable_by(mid, |&a, &b| {
                proj[a as usize].partial_cmp(&proj[b as usize]).unwrap().then(a.cmp(&b))
            });
            pivots.push(proj[slice[mid] as usize]);
            lefts.push(mid);
        }
        (pivots, lefts)
    }

    #[test]
    fn device_partition_matches_host_membership() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let n = 200;
        let proj: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let ranges = vec![(0usize, 120usize), (120, 200)];

        // Host reference.
        let mut host_order: Vec<u32> = (0..n as u32).collect();
        let (pivots, lefts) = host_partition(&mut host_order, &ranges, &proj);

        // Device run from the same starting order.
        let mut dev_order: Vec<u32> = (0..n as u32).collect();
        let dev = DeviceConfig::test_tiny();
        let report = partition_level(&dev, &mut dev_order, &ranges, &proj, &pivots, &lefts);
        assert!(report.cycles > 0.0);
        assert!(report.stats.atomic_ops > 0);

        // Same membership on each side of each split (order within a side is
        // unspecified on both paths).
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let mid = s + lefts[i];
            let mut h: Vec<u32> = host_order[s..mid].to_vec();
            let mut d: Vec<u32> = dev_order[s..mid].to_vec();
            h.sort_unstable();
            d.sort_unstable();
            assert_eq!(h, d, "left side of node {i}");
            let mut h: Vec<u32> = host_order[mid..e].to_vec();
            let mut d: Vec<u32> = dev_order[mid..e].to_vec();
            h.sort_unstable();
            d.sort_unstable();
            assert_eq!(h, d, "right side of node {i}");
        }
    }

    #[test]
    fn heavy_ties_respect_the_quota() {
        let n = 64;
        let proj = vec![0.5f32; n]; // all equal: pure tie-break territory
        let ranges = vec![(0usize, n)];
        let mut host_order: Vec<u32> = (0..n as u32).collect();
        let (pivots, lefts) = host_partition(&mut host_order, &ranges, &proj);
        let mut dev_order: Vec<u32> = (0..n as u32).collect();
        let dev = DeviceConfig::test_tiny();
        partition_level(&dev, &mut dev_order, &ranges, &proj, &pivots, &lefts);
        let mut left: Vec<u32> = dev_order[..lefts[0]].to_vec();
        left.sort_unstable();
        // Ascending-id tie-break: the left half is exactly ids 0..mid.
        assert_eq!(left, (0..lefts[0] as u32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_level_is_free() {
        let dev = DeviceConfig::test_tiny();
        let mut order: Vec<u32> = vec![3, 1];
        let report = partition_level(&dev, &mut order, &[], &[], &[], &[]);
        assert_eq!(report, LaunchReport::default());
        assert_eq!(order, vec![3, 1]);
    }
}
