//! Structural statistics of trees and forests — the knobs behind bucket
//! quality (experiments E2/E10).

use crate::forest::RpForest;
use crate::tree::RpTree;

/// Bucket-size distribution of one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of leaf buckets.
    pub buckets: usize,
    /// Smallest bucket.
    pub min_bucket: usize,
    /// Largest bucket.
    pub max_bucket: usize,
    /// Mean bucket size.
    pub mean_bucket: f64,
    /// Split levels.
    pub depth: usize,
    /// Number of candidate pairs the bucket phase will evaluate for this
    /// tree: `Σ m·(m−1)/2` over buckets.
    pub candidate_pairs: usize,
}

/// Compute [`TreeStats`].
pub fn tree_stats(tree: &RpTree) -> TreeStats {
    let sizes: Vec<usize> = tree.buckets.iter().map(|b| b.len()).collect();
    let buckets = sizes.len();
    let total: usize = sizes.iter().sum();
    TreeStats {
        buckets,
        min_bucket: sizes.iter().copied().min().unwrap_or(0),
        max_bucket: sizes.iter().copied().max().unwrap_or(0),
        mean_bucket: if buckets == 0 { 0.0 } else { total as f64 / buckets as f64 },
        depth: tree.depth,
        candidate_pairs: sizes.iter().map(|&m| m * (m - 1) / 2).sum(),
    }
}

/// Fraction of the `n·(n−1)/2` point pairs that co-occur in at least one
/// bucket of the forest — the forest's *pair coverage*, an upper bound on
/// the bucket-phase recall before exploration.
pub fn pair_coverage(forest: &RpForest, n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    // Bitset over the pair triangle.
    let total = n * (n - 1) / 2;
    let mut seen = vec![false; total];
    let idx = |a: usize, b: usize| -> usize {
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        i * (2 * n - i - 1) / 2 + (j - i - 1)
    };
    let mut covered = 0usize;
    for bucket in forest.buckets() {
        for (x, &a) in bucket.iter().enumerate() {
            for &b in &bucket[x + 1..] {
                let t = idx(a as usize, b as usize);
                if !seen[t] {
                    seen[t] = true;
                    covered += 1;
                }
            }
        }
    }
    covered as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{build_forest, ForestParams};
    use crate::tree::TreeParams;
    use wknng_data::DatasetSpec;

    #[test]
    fn tree_stats_report_shape() {
        let tree = RpTree { buckets: vec![vec![0, 1, 2], vec![3, 4]], depth: 1 };
        let s = tree_stats(&tree);
        assert_eq!(s.buckets, 2);
        assert_eq!((s.min_bucket, s.max_bucket), (2, 3));
        assert!((s.mean_bucket - 2.5).abs() < 1e-12);
        assert_eq!(s.candidate_pairs, 3 + 1);
    }

    #[test]
    fn coverage_grows_with_trees() {
        let vs = DatasetSpec::UniformCube { n: 128, dim: 8 }.generate(5).vectors;
        let mk = |t: usize| {
            build_forest(
                &vs,
                ForestParams {
                    num_trees: t,
                    tree: TreeParams { leaf_size: 16, ..TreeParams::default() },
                },
                3,
            )
            .unwrap()
        };
        let c1 = pair_coverage(&mk(1), 128);
        let c4 = pair_coverage(&mk(4), 128);
        let c8 = pair_coverage(&mk(8), 128);
        assert!(c1 < c4 && c4 < c8, "{c1:.3} {c4:.3} {c8:.3}");
        // Single 16-point buckets over 128 points cover ~ 15/127 of pairs.
        assert!((c1 - 15.0 / 127.0).abs() < 0.02, "c1 = {c1:.4}");
    }

    #[test]
    fn full_bucket_covers_everything() {
        let vs = DatasetSpec::UniformCube { n: 40, dim: 4 }.generate(1).vectors;
        let forest = build_forest(
            &vs,
            ForestParams {
                num_trees: 1,
                tree: TreeParams { leaf_size: 64, ..TreeParams::default() },
            },
            1,
        )
        .unwrap();
        assert_eq!(pair_coverage(&forest, 40), 1.0);
        assert_eq!(pair_coverage(&forest, 1), 1.0);
    }
}
