//! Property tests: RP-tree partitions and device/native projection parity.

use proptest::prelude::*;
use wknng_data::{DatasetSpec, VectorSet};
use wknng_forest::{build_forest, build_tree, ForestParams, ProjectionBackend, TreeParams};
use wknng_simt::DeviceConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_is_a_partition(n in 2usize..200, dim in 1usize..10, leaf in 2usize..32, seed in any::<u64>()) {
        let vs = DatasetSpec::UniformCube { n, dim }.generate(seed).vectors;
        let (tree, _) = build_tree(&vs, TreeParams { leaf_size: leaf, ..TreeParams::default() }, seed, ProjectionBackend::Native).unwrap();
        let mut seen = vec![false; n];
        for b in &tree.buckets {
            prop_assert!(b.len() <= leaf);
            prop_assert!(!b.is_empty());
            for &p in b {
                prop_assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn device_tree_equals_native_tree(n in 2usize..80, dim in 1usize..40, leaf in 2usize..16, seed in any::<u64>()) {
        // Same seed => same directions => identical partitions regardless of
        // which backend computed the projections (up to f32 summation order,
        // which both backends perform in ascending-dimension order).
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 3, spread: 0.3 }.generate(seed).vectors;
        let params = TreeParams { leaf_size: leaf, ..TreeParams::default() };
        let (native, _) = build_tree(&vs, params, seed, ProjectionBackend::Native).unwrap();
        let dev = DeviceConfig::test_tiny();
        let (device, _) = build_tree(&vs, params, seed, ProjectionBackend::Device(&dev)).unwrap();
        // The two backends sum f32 in different orders, so a projection that
        // lands exactly on the median boundary may flip sides; the structure
        // (a full partition with identical bucket-size profile) must match.
        prop_assert_eq!(native.depth, device.depth);
        let sizes = |t: &wknng_forest::RpTree| {
            let mut s: Vec<usize> = t.buckets.iter().map(|b| b.len()).collect();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(sizes(&native), sizes(&device));
        let mut seen = vec![false; n];
        for b in &device.buckets {
            for &p in b {
                prop_assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forest_covers_all_points_every_tree(n in 2usize..120, trees in 1usize..5, seed in any::<u64>()) {
        let vs = DatasetSpec::UniformCube { n, dim: 6 }.generate(seed).vectors;
        let params = ForestParams { num_trees: trees, tree: TreeParams { leaf_size: 8, ..TreeParams::default() } };
        let forest = build_forest(&vs, params, seed).unwrap();
        prop_assert_eq!(forest.trees.len(), trees);
        for t in &forest.trees {
            prop_assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn duplicates_never_hang(n in 2usize..100, leaf in 2usize..8, seed in any::<u64>()) {
        let vs = VectorSet::new(vec![0.5f32; n * 3], 3).unwrap();
        let (tree, _) = build_tree(&vs, TreeParams { leaf_size: leaf, ..TreeParams::default() }, seed, ProjectionBackend::Native).unwrap();
        prop_assert_eq!(tree.len(), n);
        prop_assert!(tree.max_bucket() <= leaf);
    }
}
