//! Property tests over the kernel building blocks: `heap::KnnList` ordering,
//! the device slot-sort against a host oracle, and the insertion protocols
//! never losing a closer-than-worst neighbor.
//!
//! With `--features sanitize` every device launch in this file additionally
//! runs under a [`wknng_simt::SanitizerScope`] and is asserted hazard-free;
//! without the feature the same properties run untracked (tier-1).

use proptest::prelude::*;
use wknng_core::kernels::atomic::unrank_pair;
use wknng_core::kernels::insert::{lane_insert_atomic, warp_insert_atomic, warp_insert_exclusive};
use wknng_core::kernels::{sort_slots_device, DeviceState};
use wknng_core::{slots_to_lists, KnnList, EMPTY_SLOT};
use wknng_data::Neighbor;
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, Mask};

/// Run `f` under a sanitizer scope and assert no hazards; a plain call
/// without the feature.
#[cfg(feature = "sanitize")]
fn sanitized<R>(f: impl FnOnce() -> R) -> R {
    let scope = wknng_simt::SanitizerScope::install();
    let out = f();
    let report = scope.report();
    assert!(report.is_clean(), "kernel building block raced:\n{}", report.summary());
    out
}

#[cfg(not(feature = "sanitize"))]
fn sanitized<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// Unique-by-index candidate stream (the builder never offers one index with
/// two distances inside a launch; the oracle comparison needs the same rule).
fn unique_cands(raw: Vec<(u32, f32)>) -> Vec<Neighbor> {
    let mut seen = std::collections::HashSet::new();
    raw.into_iter().filter(|(i, _)| seen.insert(*i)).map(|(i, d)| Neighbor::new(i, d)).collect()
}

/// Triangle offset of row `i` for bucket size `m` — the integer ground truth
/// `unrank_pair` must invert.
fn tri_off(i: usize, m: usize) -> usize {
    i * (2 * m - i - 1) / 2
}

/// Assert `unrank_pair` is the exact inverse of the triangle offset at `t`.
fn assert_unrank_exact(t: usize, m: usize) {
    let (i, j) = unrank_pair(t, m);
    assert!(i < j && j < m, "m={m} t={t} -> ({i},{j}) not an upper-triangle pair");
    assert_eq!(tri_off(i, m) + (j - i - 1), t, "m={m}: rank(unrank({t})) != {t}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `unrank_pair` inverts the triangle offset exactly at every row
    /// boundary (first/last pair of each row) and at the triangle's global
    /// boundaries, for bucket sizes up to 10^5 — the float closed-form
    /// estimate plus the two-sided fix-up never lands on a wrong row.
    #[test]
    fn unrank_pair_is_exact_inverse_at_boundaries(m in 2usize..100_000) {
        let npairs = m * (m - 1) / 2;
        // Global boundaries.
        for t in [0, 1, npairs / 2, npairs - 1] {
            if t < npairs {
                assert_unrank_exact(t, m);
            }
        }
        // Row boundaries: first and last pair of a spread of rows (all rows
        // for small m, a stride for huge m keeps the test fast).
        let step = (m / 64).max(1);
        for i in (0..m - 1).step_by(step) {
            assert_unrank_exact(tri_off(i, m), m);          // (i, i+1)
            assert_unrank_exact(tri_off(i + 1, m) - 1, m);  // (i, m-1)
        }
        // The last row explicitly (the downward-correction hot spot).
        assert_unrank_exact(tri_off(m - 2, m), m);
        assert_unrank_exact(npairs - 1, m);
    }

    /// Push/pop ordering: after every push the list is sorted ascending by
    /// `(dist, index)`, bounded by its capacity, and `worst()` is its last
    /// element; `insert` returns true exactly when the set changed.
    #[test]
    fn knn_list_stays_sorted_and_bounded_after_every_push(
        cap in 1usize..16,
        raw in prop::collection::vec((0u32..40, 0.0f32..100.0), 1..60),
    ) {
        let mut list = KnnList::new(cap);
        for nb in unique_cands(raw) {
            let before: Vec<Neighbor> = list.as_slice().to_vec();
            let accepted = list.insert(nb);
            let s = list.as_slice();
            prop_assert!(s.len() <= cap);
            for w in s.windows(2) {
                prop_assert!(w[0].key() < w[1].key(), "sorted, no duplicates");
            }
            prop_assert_eq!(list.worst(), s.last().copied());
            prop_assert_eq!(accepted, s != before.as_slice(), "insert reports change");
            if accepted {
                prop_assert!(s.iter().any(|x| x.index == nb.index));
            }
        }
    }

    /// The device bitonic slot sort agrees with a host sort of the packed
    /// keys — including EMPTY padding, which must sort to the tail.
    #[test]
    fn device_slot_sort_matches_host_oracle(
        n in 1usize..6,
        k in 1usize..9,
        raw in prop::collection::vec((0u32..900, 0.0f32..50.0), 0..48),
        empties in prop::collection::vec(any::<bool>(), 0..48),
    ) {
        let mut slots = vec![EMPTY_SLOT; n * k];
        for (s, (cand, keep_empty)) in
            slots.iter_mut().zip(raw.iter().zip(empties.iter().chain(std::iter::repeat(&false))))
        {
            if !keep_empty {
                *s = Neighbor::new(cand.0, cand.1).pack();
            }
        }
        let state = DeviceState {
            points: DeviceBuffer::zeroed(n),
            slots: DeviceBuffer::from_slice(&slots),
            n,
            dim: 1,
            k,
        };
        let dev = DeviceConfig::test_tiny();
        sanitized(|| sort_slots_device(&dev, &state)).expect("k <= 32");
        let got = state.slots.to_vec();
        let mut want = slots;
        for row in want.chunks_mut(k) {
            row.sort_unstable();
        }
        prop_assert_eq!(got, want);
    }

    /// Neither insertion protocol ever loses a candidate that is closer than
    /// the final worst slot: the device list is exactly the k best of the
    /// stream, matching the host `KnnList` oracle.
    #[test]
    fn insert_protocols_never_lose_a_closer_neighbor(
        k in 1usize..10,
        raw in prop::collection::vec((0u32..60, 0.0f32..100.0), 1..80),
        atomic in any::<bool>(),
    ) {
        let cands = unique_cands(raw);
        let slots = DeviceBuffer::filled(k, EMPTY_SLOT);
        let dev = DeviceConfig::test_tiny();
        sanitized(|| {
            launch(&dev, 1, 1, |blk| {
                blk.each_warp(|w| {
                    for nb in &cands {
                        if atomic {
                            warp_insert_atomic(w, &slots, 0, k, nb.pack());
                        } else {
                            warp_insert_exclusive(w, &slots, 0, k, nb.pack());
                        }
                    }
                });
            })
        });
        let got = slots_to_lists(&slots.to_vec(), 1, k).remove(0);
        let mut oracle = KnnList::new(k);
        for &nb in &cands {
            oracle.insert(nb);
        }
        let want = oracle.into_vec();
        prop_assert_eq!(&got, &want);
        // The named property, stated directly: any candidate closer than the
        // final worst must be present (or the list is not yet full).
        if got.len() == k {
            let worst = got.last().expect("full list").key();
            for nb in &cands {
                if nb.key() < worst {
                    prop_assert!(
                        got.iter().any(|x| x.index == nb.index),
                        "lost {:?} closer than worst {:?}", nb, worst
                    );
                }
            }
        }
    }

    /// The lane-parallel atomic protocol preserves the same guarantee under
    /// same-point contention inside single CAS instructions.
    #[test]
    fn lane_insert_atomic_never_loses_a_closer_neighbor(
        k in 1usize..6,
        n_points in 1usize..5,
        rounds in 1usize..4,
        seed in any::<u32>(),
    ) {
        let slots = DeviceBuffer::filled(n_points * k, EMPTY_SLOT);
        let dev = DeviceConfig::test_tiny();
        // Every lane l inserts candidate (seeded dist) into point l % n_points.
        let mut per_point: Vec<Vec<Neighbor>> = vec![Vec::new(); n_points];
        let mut streams = Vec::new();
        for r in 0..rounds {
            let pts = LaneVec::from_fn(|l| l % n_points);
            let cands = LaneVec::from_fn(|l| {
                let index = (r * 32 + l) as u32;
                let dist = ((seed as usize).wrapping_mul(2654435761).wrapping_add(index as usize * 97)
                    % 1000) as f32;
                Neighbor::new(index, dist).pack()
            });
            for l in 0..32 {
                per_point[l % n_points].push(Neighbor::unpack(cands.get(l)));
            }
            streams.push((pts, cands));
        }
        sanitized(|| {
            launch(&dev, 1, 1, |blk| {
                blk.each_warp(|w| {
                    for (pts, cands) in &streams {
                        lane_insert_atomic(w, &slots, pts, k, cands, Mask::FULL);
                    }
                });
            })
        });
        let lists = slots_to_lists(&slots.to_vec(), n_points, k);
        for (p, got) in lists.iter().enumerate() {
            let mut oracle = KnnList::new(k);
            for &nb in &per_point[p] {
                oracle.insert(nb);
            }
            prop_assert_eq!(got, &oracle.into_vec(), "point {}", p);
        }
    }
}
