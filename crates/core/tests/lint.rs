//! Acceptance suite for the symbolic kernel analyzer (`wknng lint`).
//!
//! Two halves:
//!
//! * **Golden report** — the rendered analysis of every shipped kernel is
//!   pinned byte-for-byte against `tests/golden/lint_report.txt`. Any change
//!   to a kernel's access pattern, to the models, or to the prover shows up
//!   as a diff here and must be reviewed. Regenerate intentionally with
//!   `BLESS_LINT=1 cargo test -p wknng-core --test lint`.
//! * **Mutation detection** — each of the four seeded violations (strided
//!   uncoalesced load, even-pitch bank conflict, off-by-one bound, divergent
//!   barrier) must be flagged with the right obligation class at the right
//!   site, and nothing else in its report may fail. This guards the
//!   *analyzer* the way the golden file guards the kernels.

use wknng_core::{lint_all_kernels, mutation_reports};
use wknng_simt::ObligationClass;

fn rendered_reports() -> String {
    lint_all_kernels().iter().map(|r| r.render()).collect()
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint_report.txt");

#[test]
fn golden_report_matches() {
    let got = rendered_reports();
    if std::env::var_os("BLESS_LINT").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — run with BLESS_LINT=1 to create tests/golden/lint_report.txt",
    );
    assert_eq!(
        got, want,
        "lint report drifted from the golden file; if the change is intentional, \
         re-bless with BLESS_LINT=1"
    );
}

#[test]
fn all_shipped_kernels_fully_proved() {
    for report in lint_all_kernels() {
        assert!(report.all_proved(), "unproven obligations:\n{}", report.render());
    }
}

#[test]
fn every_obligation_class_is_proved_somewhere() {
    // The acceptance bar: the suite demonstrates a *proof* (not just absence
    // of failure) for each of the four classes across basic/atomic/tiled/beam.
    for class in [
        ObligationClass::Coalescing,
        ObligationClass::BankConflict,
        ObligationClass::Bounds,
        ObligationClass::Barrier,
    ] {
        let total: usize = lint_all_kernels().iter().map(|r| r.count(class)).sum();
        assert!(total > 0, "no {class} obligations discharged anywhere");
    }
}

#[test]
fn mutations_are_each_flagged_once_with_the_right_class_and_site() {
    let expected = [
        ("mutant-strided-load", ObligationClass::Coalescing, "strided row load", Some("points")),
        ("mutant-bank-conflict", ObligationClass::BankConflict, "column read", Some("tile")),
        ("mutant-off-by-one", ObligationClass::Bounds, "slot scan overrun", Some("slots")),
        ("mutant-divergent-barrier", ObligationClass::Barrier, "divergent sync", None),
    ];
    let reports = mutation_reports();
    assert_eq!(reports.len(), expected.len());
    for (report, (kernel, class, site, buffer)) in reports.iter().zip(expected) {
        assert_eq!(report.kernel, kernel);
        let unproven = report.unproven();
        assert_eq!(
            unproven.len(),
            1,
            "`{kernel}` must fail exactly its seeded obligation:\n{}",
            report.render()
        );
        let o = unproven[0];
        assert_eq!(o.class, class, "`{kernel}` flagged the wrong class:\n{}", report.render());
        assert_eq!(o.site, site, "`{kernel}` flagged the wrong site:\n{}", report.render());
        assert_eq!(o.buffer, buffer, "`{kernel}` flagged the wrong buffer");
    }
}

#[test]
fn mutants_do_not_mask_unrelated_obligations() {
    // Every obligation in a mutant report other than the seeded one must
    // still be proved — the violations are surgical.
    for report in mutation_reports() {
        let proved = report.obligations.iter().filter(|o| o.proved()).count();
        assert_eq!(proved + 1, report.obligations.len(), "{}", report.render());
    }
}
