//! Property tests: insertion protocols, graph invariants and backend parity.

use proptest::prelude::*;
use wknng_core::{recall, slots_to_lists, KernelVariant, KnnList, WknngBuilder, EMPTY_SLOT};
use wknng_data::{exact_knn, DatasetSpec, Metric, Neighbor};
use wknng_simt::DeviceConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn knn_list_equals_sort_truncate_oracle(
        cap in 1usize..20,
        cands in prop::collection::vec((0u32..50, 0.0f32..100.0), 0..80),
    ) {
        // Unique-by-index stream (the algorithm never offers the same index
        // with two different distances inside one build).
        let mut seen = std::collections::HashSet::new();
        let cands: Vec<Neighbor> = cands
            .into_iter()
            .filter(|(i, _)| seen.insert(*i))
            .map(|(i, d)| Neighbor::new(i, d))
            .collect();
        let mut list = KnnList::new(cap);
        for &c in &cands {
            list.insert(c);
        }
        let mut oracle = cands.clone();
        oracle.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
        oracle.truncate(cap);
        prop_assert_eq!(list.into_vec(), oracle);
    }

    #[test]
    fn native_graph_invariants(
        n in 10usize..120,
        dim in 2usize..12,
        k in 1usize..8,
        trees in 1usize..4,
        explore in 0usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(k < n);
        let vs = DatasetSpec::UniformCube { n, dim }.generate(seed).vectors;
        let (g, _) = WknngBuilder::new(k)
            .trees(trees)
            .leaf_size(8)
            .exploration(explore)
            .seed(seed)
            .build_native(&vs)
            .unwrap();
        prop_assert_eq!(g.len(), n);
        for (p, list) in g.lists.iter().enumerate() {
            prop_assert!(list.len() <= k);
            prop_assert!(!list.is_empty(), "every point sees >= 1 bucket mate");
            for w in list.windows(2) {
                prop_assert!(w[0].key() < w[1].key(), "sorted, unique");
            }
            for nb in list {
                prop_assert!(nb.index as usize != p, "no self loops");
                prop_assert!((nb.index as usize) < n);
                prop_assert!(nb.dist >= 0.0);
            }
        }
    }

    #[test]
    fn device_variants_agree_with_native(
        n in 20usize..60,
        dim in 2usize..24,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 3, spread: 0.4 }
            .generate(seed)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let base = WknngBuilder::new(k).trees(2).leaf_size(8).exploration(1).seed(seed);
        let (native, _) = base.build_native(&vs).unwrap();
        let native_idx: Vec<Vec<u32>> = native
            .lists
            .iter()
            .map(|l| l.iter().map(|nb| nb.index).collect())
            .collect();
        for v in KernelVariant::ALL {
            let (device, _) = base.variant(v).build_device(&vs, &dev).unwrap();
            let device_idx: Vec<Vec<u32>> = device
                .lists
                .iter()
                .map(|l| l.iter().map(|nb| nb.index).collect())
                .collect();
            prop_assert_eq!(&device_idx, &native_idx, "variant {:?}", v);
        }
    }

    #[test]
    fn exact_when_single_bucket(n in 5usize..60, dim in 1usize..8, seed in any::<u64>()) {
        let k = (n / 3).max(1);
        let vs = DatasetSpec::UniformCube { n, dim }.generate(seed).vectors;
        let (g, _) = WknngBuilder::new(k)
            .trees(1)
            .leaf_size(n.max(2))
            .exploration(0)
            .seed(seed)
            .build_native(&vs)
            .unwrap();
        let truth = exact_knn(&vs, k, Metric::SquaredL2);
        prop_assert_eq!(recall(&g.lists, &truth), 1.0);
    }

    #[test]
    fn slots_decode_never_panics(raw in prop::collection::vec(any::<u64>(), 0..64), k in 1usize..8) {
        let n = raw.len() / k;
        let slots: Vec<u64> = raw.into_iter().take(n * k).collect();
        let lists = slots_to_lists(&slots, n, k);
        for list in lists {
            prop_assert!(list.len() <= k);
            for nb in &list {
                prop_assert!(nb.pack() != EMPTY_SLOT);
            }
        }
    }
}
