//! Cross-kernel equivalence: for a fixed seed, the basic, atomic and tiled
//! strategies are three schedules of the *same* logical algorithm, so they
//! must produce graphs with identical recall on a 2k-point fixture.
//!
//! With `--features sanitize` the whole sweep additionally runs under a
//! [`wknng_simt::SanitizerScope`] and every build is asserted hazard-free.

use wknng_core::{recall, KernelVariant, WknngBuilder};
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

#[test]
fn variants_produce_identical_recall_on_2k_fixture() {
    let n = 2000;
    let k = 8;
    let vs = DatasetSpec::GaussianClusters { n, dim: 12, clusters: 8, spread: 0.35 }
        .generate(0xF1D0)
        .vectors;
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    let dev = DeviceConfig::test_tiny();

    #[cfg(feature = "sanitize")]
    let scope = wknng_simt::SanitizerScope::install();

    let mut results = Vec::new();
    for v in KernelVariant::ALL {
        let (graph, _) = WknngBuilder::new(k)
            .trees(2)
            .leaf_size(48)
            .exploration(1)
            .seed(7)
            .variant(v)
            .build_device(&vs, &dev)
            .expect("build succeeds");
        let idx: Vec<Vec<u32>> =
            graph.lists.iter().map(|l| l.iter().map(|nb| nb.index).collect()).collect();
        results.push((v, recall(&graph.lists, &truth), idx));
    }

    #[cfg(feature = "sanitize")]
    {
        let report = scope.report();
        assert!(
            report.is_clean(),
            "a construction kernel raced on the 2k fixture:\n{}",
            report.summary()
        );
    }

    let (v0, r0, idx0) = &results[0];
    assert!(*r0 > 0.5, "fixture recall implausibly low for {v0:?}: {r0}");
    for (v, r, idx) in &results[1..] {
        assert_eq!(r, r0, "recall of {v:?} diverges from {v0:?}");
        assert_eq!(idx, idx0, "neighbor sets of {v:?} diverge from {v0:?}");
    }
}
