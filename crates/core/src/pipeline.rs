//! The simulated-device build pipeline: forest → bucket kernels → exploration.

use wknng_data::{Metric, Neighbor, VectorSet};
use wknng_forest::{build_forest_device, ForestParams, TreeParams};
use wknng_simt::{DeviceConfig, LaunchReport};

use crate::error::KnngError;
use crate::kernels::{
    max_tiled_bucket, run_atomic, run_basic, run_explore, run_explore_lane, run_tiled,
    snapshot_from_state, DeviceState, TreeLayout,
};
use crate::params::{KernelVariant, WknngParams};

/// Per-phase simulated launch reports of a device build.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceReports {
    /// RP-forest projection kernels.
    pub forest: LaunchReport,
    /// Bucket all-pairs kernels (one launch per tree).
    pub bucket: LaunchReport,
    /// Exploration kernels (one launch per iteration).
    pub explore: LaunchReport,
}

impl DeviceReports {
    /// Whole-pipeline report (sequential composition of the phases).
    pub fn total(&self) -> LaunchReport {
        let mut t = self.forest;
        t += self.bucket;
        t += self.explore;
        t
    }

    /// Whole-pipeline simulated milliseconds on `dev`.
    pub fn total_ms(&self, dev: &DeviceConfig) -> f64 {
        self.total().ms(dev)
    }
}

/// Build an approximate K-NNG on the simulated device using the configured
/// kernel variant. Deterministic in `params.seed`.
pub fn build_device(
    vs: &VectorSet,
    params: &WknngParams,
    dev: &DeviceConfig,
) -> Result<(Vec<Vec<Neighbor>>, DeviceReports), KnngError> {
    params.validate(vs.len())?;
    if params.metric != Metric::SquaredL2 {
        return Err(KnngError::UnsupportedDeviceMetric(params.metric));
    }
    if params.variant == KernelVariant::Tiled {
        let max = max_tiled_bucket(dev.shared_mem_bytes);
        if params.leaf_size > max {
            return Err(KnngError::LeafTooLargeForTiled { leaf: params.leaf_size, max });
        }
    }

    let mut reports = DeviceReports::default();

    let (forest, forest_report) = build_forest_device(
        vs,
        ForestParams {
            num_trees: params.num_trees,
            tree: TreeParams { leaf_size: params.leaf_size, projection: params.projection },
        },
        params.seed,
        dev,
    )?;
    reports.forest = forest_report;

    let state = DeviceState::upload(vs, params.k);
    for tree in &forest.trees {
        let layout = TreeLayout::upload(tree, vs.len());
        let rep = match params.variant {
            KernelVariant::Basic => run_basic(dev, &state, &layout),
            KernelVariant::Atomic => run_atomic(dev, &state, &layout),
            KernelVariant::Tiled => run_tiled(dev, &state, &layout),
        };
        reports.bucket += rep;
    }

    for _ in 0..params.exploration_iters {
        let snap = snapshot_from_state(&state);
        // The warp-centric strategy applies to the whole search-and-maintain
        // machinery: the atomic variant explores lane-parallel as well.
        reports.explore += match params.variant {
            KernelVariant::Atomic => run_explore_lane(dev, &state, &snap),
            _ => run_explore(dev, &state, &snap),
        };
    }

    Ok((state.download(), reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::build_native;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    fn params(variant: KernelVariant) -> WknngParams {
        WknngParams {
            k: 5,
            num_trees: 2,
            leaf_size: 16,
            exploration_iters: 1,
            variant,
            seed: 21,
            ..WknngParams::default()
        }
    }

    #[test]
    fn all_variants_produce_identical_graphs() {
        let vs = DatasetSpec::GaussianClusters { n: 90, dim: 10, clusters: 5, spread: 0.3 }
            .generate(10)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let (basic, _) = build_device(&vs, &params(KernelVariant::Basic), &dev).unwrap();
        let (atomic, _) = build_device(&vs, &params(KernelVariant::Atomic), &dev).unwrap();
        let (tiled, _) = build_device(&vs, &params(KernelVariant::Tiled), &dev).unwrap();
        let idx = |lists: &Vec<Vec<Neighbor>>| -> Vec<Vec<u32>> {
            lists.iter().map(|l| l.iter().map(|n| n.index).collect()).collect()
        };
        assert_eq!(idx(&basic), idx(&atomic));
        assert_eq!(idx(&basic), idx(&tiled));
    }

    #[test]
    fn device_matches_native_backend() {
        // Same seed => same forest => same candidate sets => same graph.
        let vs = DatasetSpec::sift_like(80).generate(11).vectors;
        let p = params(KernelVariant::Basic);
        let dev = DeviceConfig::test_tiny();
        let (device, reports) = build_device(&vs, &p, &dev).unwrap();
        let (native, _) = build_native(&vs, &p).unwrap();
        let idx = |lists: &Vec<Vec<Neighbor>>| -> Vec<Vec<u32>> {
            lists.iter().map(|l| l.iter().map(|n| n.index).collect()).collect()
        };
        assert_eq!(idx(&device), idx(&native));
        assert!(reports.forest.cycles > 0.0);
        assert!(reports.bucket.cycles > 0.0);
        assert!(reports.explore.cycles > 0.0);
        assert!(reports.total().cycles >= reports.bucket.cycles);
    }

    #[test]
    fn device_build_reaches_good_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 150, dim: 12, clusters: 6, spread: 0.25 }
            .generate(12)
            .vectors;
        let truth = exact_knn(&vs, 5, wknng_data::Metric::SquaredL2);
        let dev = DeviceConfig::test_tiny();
        let p = WknngParams { num_trees: 4, ..params(KernelVariant::Tiled) };
        let (lists, _) = build_device(&vs, &p, &dev).unwrap();
        let r = recall(&lists, &truth);
        assert!(r > 0.7, "device build recall too low: {r:.3}");
    }

    #[test]
    fn rejects_unsupported_configs() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(0).vectors;
        let dev = DeviceConfig::test_tiny();
        let p = WknngParams { metric: Metric::Cosine, ..params(KernelVariant::Basic) };
        assert!(matches!(
            build_device(&vs, &p, &dev),
            Err(KnngError::UnsupportedDeviceMetric(_))
        ));
        let p = WknngParams { leaf_size: 10_000, k: 5, ..params(KernelVariant::Tiled) };
        assert!(matches!(
            build_device(&vs, &p, &dev),
            Err(KnngError::LeafTooLargeForTiled { .. })
        ));
    }
}
