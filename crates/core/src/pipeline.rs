//! The simulated-device build pipeline: forest → bucket kernels → exploration,
//! executed under a degraded-execution policy with post-build auditing.

use std::collections::{BTreeMap, BTreeSet};

use wknng_data::{Metric, Neighbor, VectorSet};
use wknng_forest::{build_forest_device, ForestParams, RpForest, TreeParams};
use wknng_simt::{take_due_flips, DeviceConfig, LaunchFault, LaunchReport};

use crate::audit::{audit_slots, repair_list};
use crate::error::KnngError;
use crate::events::{BuildEvent, BuildEvents, BuildPhase};
use crate::graph::EMPTY_SLOT;
use crate::kernels::{
    max_tiled_bucket, run_atomic, run_basic, run_explore, run_explore_lane, run_tiled,
    snapshot_from_state, DeviceState, TreeLayout,
};
use crate::params::{AuditLevel, BuildPolicy, KernelVariant, WknngParams};

/// Per-phase simulated launch reports of a device build.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceReports {
    /// RP-forest projection kernels.
    pub forest: LaunchReport,
    /// Bucket all-pairs kernels (one launch per tree).
    pub bucket: LaunchReport,
    /// Exploration kernels (one launch per iteration).
    pub explore: LaunchReport,
}

impl DeviceReports {
    /// Whole-pipeline report (sequential composition of the phases).
    pub fn total(&self) -> LaunchReport {
        let mut t = self.forest;
        t += self.bucket;
        t += self.explore;
        t
    }

    /// Whole-pipeline simulated milliseconds on `dev`.
    pub fn total_ms(&self, dev: &DeviceConfig) -> f64 {
        self.total().ms(dev)
    }
}

/// Build an approximate K-NNG on the simulated device using the configured
/// kernel variant and the default [`BuildPolicy`] (retry, degrade, audit and
/// repair). Deterministic in `params.seed`.
pub fn build_device(
    vs: &VectorSet,
    params: &WknngParams,
    dev: &DeviceConfig,
) -> Result<(Vec<Vec<Neighbor>>, DeviceReports), KnngError> {
    let (lists, reports, _) = build_device_with_policy(vs, params, &BuildPolicy::default(), dev)?;
    Ok((lists, reports))
}

/// [`build_device`] under an explicit policy, additionally returning the
/// [`BuildEvents`] log of every recovery action taken.
///
/// Under the default policy, transient launch failures are retried with
/// exponential backoff (charged to the phase's simulated cycles),
/// launch-configuration failures degrade the kernel variant
/// tiled → atomic → basic, and the finished slot array is audited; corrupted
/// lists are re-derived by brute force over the point's forest buckets.
/// Under [`BuildPolicy::strict()`] every fault is a typed [`KnngError`].
pub fn build_device_with_policy(
    vs: &VectorSet,
    params: &WknngParams,
    policy: &BuildPolicy,
    dev: &DeviceConfig,
) -> Result<(Vec<Vec<Neighbor>>, DeviceReports, BuildEvents), KnngError> {
    params.validate(vs.len())?;
    if params.metric != Metric::SquaredL2 {
        return Err(KnngError::UnsupportedDeviceMetric(params.metric));
    }
    let mut events = BuildEvents::new();
    let mut variant = params.variant;
    if variant == KernelVariant::Tiled {
        let max = max_tiled_bucket(dev.shared_mem_bytes);
        if params.leaf_size > max {
            if !policy.degrade {
                return Err(KnngError::LeafTooLargeForTiled { leaf: params.leaf_size, max });
            }
            let to = variant.degraded().expect("tiled has a fallback");
            events.push(BuildEvent::VariantDegraded {
                phase: BuildPhase::Bucket,
                from: variant,
                to,
            });
            variant = to;
        }
    }

    let mut reports = DeviceReports::default();

    let (forest, forest_report) = build_forest_device(
        vs,
        ForestParams {
            num_trees: params.num_trees,
            tree: TreeParams { leaf_size: params.leaf_size, projection: params.projection },
        },
        params.seed,
        dev,
    )?;
    reports.forest = forest_report;

    let state = DeviceState::upload(vs, params.k);
    let mut bucket_attempts = 0u32;
    for tree in &forest.trees {
        let layout = TreeLayout::upload(tree, vs.len());
        reports.bucket += run_recovered(
            BuildPhase::Bucket,
            policy,
            &mut variant,
            &mut bucket_attempts,
            &mut events,
            |v| match v {
                KernelVariant::Basic => run_basic(dev, &state, &layout),
                KernelVariant::Atomic => run_atomic(dev, &state, &layout),
                KernelVariant::Tiled => run_tiled(dev, &state, &layout),
            },
        )?;
        apply_due_flips(&state, &mut events);
    }

    let mut explore_attempts = 0u32;
    for _ in 0..params.exploration_iters {
        let snap = snapshot_from_state(&state);
        // The warp-centric strategy applies to the whole search-and-maintain
        // machinery: the atomic variant explores lane-parallel as well.
        reports.explore += run_recovered(
            BuildPhase::Explore,
            policy,
            &mut variant,
            &mut explore_attempts,
            &mut events,
            |v| match v {
                KernelVariant::Atomic => run_explore_lane(dev, &state, &snap),
                _ => run_explore(dev, &state, &snap),
            },
        )?;
        apply_due_flips(&state, &mut events);
    }

    if policy.audit != AuditLevel::Off {
        audit_and_repair(vs, params, policy, &forest, &state, &mut events)?;
    }

    Ok((state.download(), reports, events))
}

/// Run one kernel under the policy's retry/degrade rules. `variant` is
/// shared across the build: once degraded, later launches stay degraded.
fn run_recovered(
    phase: BuildPhase,
    policy: &BuildPolicy,
    variant: &mut KernelVariant,
    phase_attempts: &mut u32,
    events: &mut BuildEvents,
    mut run: impl FnMut(KernelVariant) -> Result<LaunchReport, LaunchFault>,
) -> Result<LaunchReport, KnngError> {
    let mut retries = 0u32;
    let mut attempts = 0u32;
    let mut backoff_total = 0u64;
    loop {
        if *phase_attempts >= policy.launch_budget {
            return Err(KnngError::LaunchFailed { phase, attempts });
        }
        attempts += 1;
        *phase_attempts += 1;
        match run(*variant) {
            Ok(mut rep) => {
                // Backoff is simulated device idle time, charged to the phase.
                rep.cycles += backoff_total as f64;
                return Ok(rep);
            }
            Err(LaunchFault::Transient { .. }) => {
                if retries >= policy.max_retries {
                    return Err(KnngError::LaunchFailed { phase, attempts });
                }
                retries += 1;
                let backoff = policy.backoff_cycles << (retries - 1);
                backoff_total += backoff;
                events.push(BuildEvent::LaunchRetried {
                    phase,
                    attempt: retries,
                    backoff_cycles: backoff,
                });
            }
            Err(LaunchFault::SharedAllocFailed { .. }) => {
                // A launch-configuration failure: retrying the same shape
                // cannot help, fall down the kernel chain instead.
                let next = if policy.degrade { variant.degraded() } else { None };
                let Some(next) = next else {
                    return Err(KnngError::LaunchFailed { phase, attempts });
                };
                events.push(BuildEvent::VariantDegraded { phase, from: *variant, to: next });
                *variant = next;
            }
        }
    }
}

/// Deliver any injected bit flips that became due to the slot array — the
/// global-memory state the paper's kernels maintain, and the place where
/// silent corruption actually hurts.
fn apply_due_flips(state: &DeviceState, events: &mut BuildEvents) {
    for flip in take_due_flips() {
        let word = (flip.word_seed % state.slots.len() as u64) as usize;
        // The seeded position ranges over u8; fold it into the u64 slot
        // width — corrupt_bit rejects out-of-width bits outright.
        let bit = flip.bit % u64::BITS as u8;
        state.slots.corrupt_bit(word, bit as u32);
        events.push(BuildEvent::BitFlipApplied { word, bit });
    }
}

/// Audit the raw slot array; under [`AuditLevel::Repair`] re-derive every
/// corrupted list (bounded by the policy's repair limit), otherwise surface
/// corruption as [`KnngError::AuditFailed`].
fn audit_and_repair(
    vs: &VectorSet,
    params: &WknngParams,
    policy: &BuildPolicy,
    forest: &RpForest,
    state: &DeviceState,
    events: &mut BuildEvents,
) -> Result<(), KnngError> {
    let k = params.k;
    let slots = state.slots.to_vec();
    let report = audit_slots(&slots, vs, k, params.metric);
    let corrupted = report.corrupted_points();
    events.push(BuildEvent::AuditCompleted {
        violations: report.total(),
        corrupted: corrupted.len(),
    });
    if corrupted.is_empty() {
        return Ok(());
    }
    if policy.audit != AuditLevel::Repair || corrupted.len() > policy.repair_limit {
        return Err(KnngError::AuditFailed { violations: report.corruption_count(), repaired: 0 });
    }
    let buckets = bucket_candidates(forest, &corrupted);
    for &p in &corrupted {
        // Brute-force candidates: the union of p's forest buckets plus the
        // still-valid entries of its current row (exploration may have added
        // edges outside any shared bucket; keep them).
        let mut cands: Vec<u32> =
            buckets.get(&p).map(|s| s.iter().copied().collect()).unwrap_or_default();
        for &slot in &slots[p * k..(p + 1) * k] {
            if slot != EMPTY_SLOT {
                let nb = Neighbor::unpack(slot);
                if (nb.index as usize) < vs.len() && nb.dist.is_finite() {
                    cands.push(nb.index);
                }
            }
        }
        let list = repair_list(vs, p, k, &cands, params.metric);
        for i in 0..k {
            let v = list.get(i).map(|nb| nb.pack()).unwrap_or(EMPTY_SLOT);
            state.slots.write(p * k + i, v);
        }
        events.push(BuildEvent::ListRepaired { point: p });
    }
    Ok(())
}

/// For every corrupted point, the union of the members of every forest
/// bucket that contains it — the same candidate set the bucket kernels drew
/// from.
fn bucket_candidates(
    forest: &RpForest,
    corrupted: &BTreeSet<usize>,
) -> BTreeMap<usize, BTreeSet<u32>> {
    let mut out: BTreeMap<usize, BTreeSet<u32>> =
        corrupted.iter().map(|&p| (p, BTreeSet::new())).collect();
    for tree in &forest.trees {
        for bucket in &tree.buckets {
            for &m in bucket {
                if let Some(set) = out.get_mut(&(m as usize)) {
                    set.extend(bucket.iter().copied());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::build_native;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    fn params(variant: KernelVariant) -> WknngParams {
        WknngParams {
            k: 5,
            num_trees: 2,
            leaf_size: 16,
            exploration_iters: 1,
            variant,
            seed: 21,
            ..WknngParams::default()
        }
    }

    #[test]
    fn all_variants_produce_identical_graphs() {
        let vs = DatasetSpec::GaussianClusters { n: 90, dim: 10, clusters: 5, spread: 0.3 }
            .generate(10)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let (basic, _) = build_device(&vs, &params(KernelVariant::Basic), &dev).unwrap();
        let (atomic, _) = build_device(&vs, &params(KernelVariant::Atomic), &dev).unwrap();
        let (tiled, _) = build_device(&vs, &params(KernelVariant::Tiled), &dev).unwrap();
        let idx = |lists: &Vec<Vec<Neighbor>>| -> Vec<Vec<u32>> {
            lists.iter().map(|l| l.iter().map(|n| n.index).collect()).collect()
        };
        assert_eq!(idx(&basic), idx(&atomic));
        assert_eq!(idx(&basic), idx(&tiled));
    }

    #[test]
    fn device_matches_native_backend() {
        // Same seed => same forest => same candidate sets => same graph.
        let vs = DatasetSpec::sift_like(80).generate(11).vectors;
        let p = params(KernelVariant::Basic);
        let dev = DeviceConfig::test_tiny();
        let (device, reports) = build_device(&vs, &p, &dev).unwrap();
        let (native, _) = build_native(&vs, &p).unwrap();
        let idx = |lists: &Vec<Vec<Neighbor>>| -> Vec<Vec<u32>> {
            lists.iter().map(|l| l.iter().map(|n| n.index).collect()).collect()
        };
        assert_eq!(idx(&device), idx(&native));
        assert!(reports.forest.cycles > 0.0);
        assert!(reports.bucket.cycles > 0.0);
        assert!(reports.explore.cycles > 0.0);
        assert!(reports.total().cycles >= reports.bucket.cycles);
    }

    #[test]
    fn device_build_reaches_good_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 150, dim: 12, clusters: 6, spread: 0.25 }
            .generate(12)
            .vectors;
        let truth = exact_knn(&vs, 5, wknng_data::Metric::SquaredL2);
        let dev = DeviceConfig::test_tiny();
        let p = WknngParams { num_trees: 4, ..params(KernelVariant::Tiled) };
        let (lists, _) = build_device(&vs, &p, &dev).unwrap();
        let r = recall(&lists, &truth);
        assert!(r > 0.7, "device build recall too low: {r:.3}");
    }

    #[test]
    fn rejects_unsupported_configs() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(0).vectors;
        let dev = DeviceConfig::test_tiny();
        let p = WknngParams { metric: Metric::Cosine, ..params(KernelVariant::Basic) };
        assert!(matches!(build_device(&vs, &p, &dev), Err(KnngError::UnsupportedDeviceMetric(_))));
        // Oversized tiled leaves are a typed error only under strict();
        // the default policy degrades to the atomic kernel instead.
        let p = WknngParams { leaf_size: 10_000, k: 5, ..params(KernelVariant::Tiled) };
        assert!(matches!(
            build_device_with_policy(&vs, &p, &BuildPolicy::strict(), &dev),
            Err(KnngError::LeafTooLargeForTiled { .. })
        ));
    }

    #[test]
    fn oversized_tiled_leaf_degrades_to_atomic() {
        let vs = DatasetSpec::UniformCube { n: 60, dim: 4 }.generate(2).vectors;
        let dev = DeviceConfig::test_tiny();
        let p = WknngParams { leaf_size: 10_000, k: 5, ..params(KernelVariant::Tiled) };
        let (lists, _, events) =
            build_device_with_policy(&vs, &p, &BuildPolicy::default(), &dev).unwrap();
        assert_eq!(lists.len(), 60);
        assert_eq!(events.degradations(), 1);
        assert!(matches!(
            events.as_slice()[0],
            BuildEvent::VariantDegraded {
                phase: BuildPhase::Bucket,
                from: KernelVariant::Tiled,
                to: KernelVariant::Atomic,
            }
        ));
        // The degraded build matches a build configured atomic from the start.
        let pa = WknngParams { variant: KernelVariant::Atomic, ..p };
        let (atomic_lists, _) = build_device(&vs, &pa, &dev).unwrap();
        assert_eq!(lists, atomic_lists);
    }

    #[test]
    fn clean_builds_log_only_the_audit() {
        let vs = DatasetSpec::UniformCube { n: 60, dim: 6 }.generate(3).vectors;
        let dev = DeviceConfig::test_tiny();
        let (_, _, events) = build_device_with_policy(
            &vs,
            &params(KernelVariant::Tiled),
            &BuildPolicy::default(),
            &dev,
        )
        .unwrap();
        assert_eq!(events.retries() + events.degradations() + events.repairs(), 0);
        assert!(events
            .as_slice()
            .iter()
            .any(|e| matches!(e, BuildEvent::AuditCompleted { corrupted: 0, .. })));
    }
}
