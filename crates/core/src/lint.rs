//! Abstract models of the shipped kernels for the symbolic analyzer
//! (`wknng lint`).
//!
//! Each `lint_*` function replays the access pattern of one kernel over
//! [`wknng_simt::analyze`]'s abstract lanes. The index formulas are **not**
//! re-stated here: they are the same generic functions from
//! [`crate::kernels::access`] the concrete kernels execute, instantiated at
//! `V = AbsIdx` instead of `V = usize`, so the analyzed pattern cannot drift
//! from the executed one.
//!
//! Parameter ranges are declared once per model and every obligation is
//! discharged for *all* valuations in those ranges — `n` up to 2²⁰ points,
//! `dim` up to 4096, `k` up to 256, every bucket size `2 ≤ m ≤ n` — not the
//! 32 concrete configs the dynamic sanitizer sweeps.
//!
//! Data-dependent values enter as declared-range opaques: bucket members are
//! point ids `< n`, CSR starts satisfy `start + m ≤ n`, adjacency entries are
//! `< n`. Those invariants are established by the host upload code
//! ([`crate::kernels::layout::TreeLayout::upload`],
//! [`crate::kernels::beam::SearchIndex::upload`]) and *assumed* here; see
//! DESIGN.md § Static analysis for the soundness contract.
//!
//! [`mutation_reports`] seeds one deliberate violation of each obligation
//! class in self-check kernels; the mutation test suite (and the CLI's
//! `lint --self-check`) asserts the analyzer flags each one at the right
//! location, guarding the analyzer itself against silent regression.

use wknng_simt::{analyze, AbsCtx, AbsIdx, AbsMask, AnalysisReport, IdxExpr};

use crate::kernels::access::{coord_ix, csr_end, pair_ix, slot_ix, tile_ix, tile_len};

/// Largest point count the models certify (2²⁰ points).
const MAX_N: u64 = 1 << 20;
/// Largest dimensionality.
const MAX_DIM: u64 = 4096;
/// Largest neighbor count.
const MAX_K: u64 = 256;

/// One 32-wide element chunk of `width` starting at uniform offset `c`:
/// lanes `0..min(width - c, 32)` — the mask every chunked warp loop uses.
fn chunk_mask(width: &AbsIdx, c: &AbsIdx) -> AbsMask {
    AbsMask::first_min(&[width.sub(c), AbsIdx::konst(32)])
}

/// Model of [`crate::kernels::distance::warp_sq_l2`]: the warp strides the
/// dimensions of rows `p` and `q` with coalesced chunk loads, then reduces.
fn model_warp_sq_l2(
    cx: &mut AbsCtx,
    points: &wknng_simt::AbsBuf,
    dim: &AbsIdx,
    p: &AbsIdx,
    q: &AbsIdx,
) {
    let c = cx.range_var("c", &AbsIdx::zero(), dim);
    let mask = chunk_mask(dim, &c);
    let col = c.add(&cx.lane());
    cx.ld(points, &coord_ix(p, dim, &col), &mask, "sq_l2 row p chunk");
    cx.ld(points, &coord_ix(q, dim, &col), &mask, "sq_l2 row q chunk");
    // reduce_sum_f32: shfl exchange requires full-warp convergence.
    cx.sync_warp(&AbsMask::full(), "sq_l2 reduction");
}

/// Model of the warp slot scan + exclusive insert
/// ([`crate::kernels::insert::warp_insert_exclusive`]) into row `row` of an
/// `rows × width` slot matrix.
fn model_warp_insert_exclusive(
    cx: &mut AbsCtx,
    slots: &wknng_simt::AbsBuf,
    width: &AbsIdx,
    row: &AbsIdx,
) {
    let c = cx.range_var("cs", &AbsIdx::zero(), width);
    let mask = chunk_mask(width, &c);
    cx.ld(slots, &slot_ix(row, width, &c.add(&cx.lane())), &mask, "slot scan chunk");
    cx.sync_warp(&AbsMask::full(), "slot max reduction");
    let worst = cx.opaque("worst", &AbsIdx::zero(), width);
    cx.st(slots, &slot_ix(row, width, &worst), &AbsMask::single(), "worst-slot overwrite");
}

/// Model of [`crate::kernels::insert::lane_insert_atomic`]: every lane scans
/// its own point's `k` slots (gather loads) and commits with one CAS.
fn model_lane_insert_atomic(
    cx: &mut AbsCtx,
    slots: &wknng_simt::AbsBuf,
    k: &AbsIdx,
    pts: &AbsIdx,
    mask: &AbsMask,
) {
    let s = cx.range_var("s", &AbsIdx::zero(), k);
    cx.ld_gather(slots, &slot_ix(pts, k, &s), mask, "lane slot scan");
    let worst = cx.opaque_lanes("lane_worst", &AbsIdx::zero(), k);
    cx.st_gather(slots, &slot_ix(pts, k, &worst), mask, "lane CAS commit");
    // After the retry loop every lane has committed or bowed out; the warp
    // reconverges before the next pair iteration.
    cx.sync_warp(&AbsMask::full(), "insert reconvergence");
}

/// Declare the buffers shared by the construction kernels: `points`
/// (`n × dim` f32), `slots` (`n × k` u64) and the CSR tables.
struct BuildBufs {
    points: wknng_simt::AbsBuf,
    slots: wknng_simt::AbsBuf,
    offsets: wknng_simt::AbsBuf,
    members: wknng_simt::AbsBuf,
    bucket_of: wknng_simt::AbsBuf,
}

fn build_bufs(
    cx: &mut AbsCtx,
    n: &AbsIdx,
    dim: &AbsIdx,
    k: &AbsIdx,
    buckets: &AbsIdx,
) -> BuildBufs {
    BuildBufs {
        points: cx.global_buf("points", &n.mul(dim), 4),
        slots: cx.global_buf("slots", &n.mul(k), 8),
        offsets: cx.global_buf("offsets", &csr_end(buckets), 4),
        members: cx.global_buf("members", n, 4),
        bucket_of: cx.global_buf("bucket_of", n, 4),
    }
}

/// Abstract model of [`crate::kernels::basic::run_basic`].
pub fn lint_basic() -> AnalysisReport {
    analyze("basic", |cx| {
        let n = cx.param("n", 2, MAX_N);
        let dim = cx.param("dim", 1, MAX_DIM);
        let k = cx.param("k", 1, MAX_K);
        let buckets = cx.param("buckets", 1, MAX_N);
        let bufs = build_bufs(cx, &n, &dim, &k, &buckets);
        // Guard `if p >= n return`: warp-varying branch, p ∈ [0, n).
        cx.warp_varying("p < n guard", |cx| {
            let p = cx.range_var("p", &AbsIdx::zero(), &n);
            let one = AbsMask::single();
            cx.ld(&bufs.bucket_of, &p, &one, "bucket lookup");
            let b = cx.opaque("b", &AbsIdx::zero(), &buckets);
            cx.ld(&bufs.offsets, &b, &one, "csr start");
            cx.ld(&bufs.offsets, &csr_end(&b), &one, "csr end");
            // Member walk: pos ∈ [start, end) ⊂ [0, n) by the CSR invariant.
            let pos = cx.range_var("pos", &AbsIdx::zero(), &n);
            cx.ld(&bufs.members, &pos, &one, "member fetch");
            let q = cx.opaque("q", &AbsIdx::zero(), &n);
            model_warp_sq_l2(cx, &bufs.points, &dim, &p, &q);
            model_warp_insert_exclusive(cx, &bufs.slots, &k, &p);
        });
    })
}

/// Abstract model of [`crate::kernels::atomic::run_atomic`].
pub fn lint_atomic() -> AnalysisReport {
    analyze("atomic", |cx| {
        let n = cx.param("n", 2, MAX_N);
        let dim = cx.param("dim", 1, MAX_DIM);
        let k = cx.param("k", 1, MAX_K);
        let buckets = cx.param("buckets", 1, MAX_N);
        // Bucket size m ∈ [2, n]; the kernel skips m ≤ 1 buckets.
        let m = cx.derived_param("m", &AbsIdx::konst(2), &n);
        let bufs = build_bufs(cx, &n, &dim, &k, &buckets);
        // CSR invariant: start + m = end ≤ n.
        let start_hi = n.sub(&m).add(&AbsIdx::konst(1));
        let start = cx.opaque("start", &AbsIdx::zero(), &start_hi);
        // Pair-id tail mask `lane_t(l) < npairs` is an increasing prefix.
        let mask = AbsMask::prefix();
        // The pair id itself: (wid·32 + lane)·chunk + it — kept for the
        // value-generic type-check; unranking consumes it on the ALU side.
        let wslot = cx.range_var("wslot", &AbsIdx::zero(), &AbsIdx::konst(128));
        let chunk = cx.opaque("chunk", &AbsIdx::zero(), &start_hi);
        let it = cx.range_var("it", &AbsIdx::zero(), &csr_end(&chunk));
        let _t = pair_ix(&wslot.add(&cx.lane()), &chunk, &it);
        // Unranked endpoints i < j < m (exact inverse — see unrank_pair's
        // boundary property test).
        let i = cx.opaque_lanes("i", &AbsIdx::zero(), &m);
        let j = cx.opaque_lanes("j", &AbsIdx::zero(), &m);
        cx.ld_gather(&bufs.members, &start.add(&i), &mask, "pair endpoint p");
        cx.ld_gather(&bufs.members, &start.add(&j), &mask, "pair endpoint q");
        // Per-lane register distance loop: one gathered coordinate per lane.
        let p = cx.opaque_lanes("p", &AbsIdx::zero(), &n);
        let q = cx.opaque_lanes("q", &AbsIdx::zero(), &n);
        let c = cx.range_var("c", &AbsIdx::zero(), &dim);
        cx.ld_gather(&bufs.points, &coord_ix(&p, &dim, &c), &mask, "coord row p");
        cx.ld_gather(&bufs.points, &coord_ix(&q, &dim, &c), &mask, "coord row q");
        // Both insertion directions with the lane-parallel CAS protocol.
        model_lane_insert_atomic(cx, &bufs.slots, &k, &p, &mask);
        model_lane_insert_atomic(cx, &bufs.slots, &k, &q, &mask);
    })
}

/// Abstract model of [`crate::kernels::tiled::run_tiled`].
pub fn lint_tiled() -> AnalysisReport {
    analyze("tiled", |cx| {
        let n = cx.param("n", 2, MAX_N);
        let dim = cx.param("dim", 1, MAX_DIM);
        let k = cx.param("k", 1, MAX_K);
        let buckets = cx.param("buckets", 1, MAX_N);
        let m = cx.derived_param("m", &AbsIdx::konst(2), &n);
        // tile_stride(m): the smallest odd pitch ≥ m — value ≡ 1 (mod 2) is
        // exactly what makes the column reads provably conflict-free.
        let stride = cx.derived_param_mod("stride", &m, &m.add(&AbsIdx::konst(1)), 1, 2);
        let bufs = build_bufs(cx, &n, &dim, &k, &buckets);
        let tile = cx.shared_buf("tile", &tile_len(&stride), 4);
        let start_hi = n.sub(&m).add(&AbsIdx::konst(1));
        let start = cx.opaque("start", &AbsIdx::zero(), &start_hi);
        let one = AbsMask::single();

        // Leader warp charges the CSR metadata loads.
        cx.warp_varying("leader warp", |cx| {
            let b = cx.opaque("b", &AbsIdx::zero(), &buckets);
            cx.ld(&bufs.offsets, &b, &one, "csr start");
            cx.ld(&bufs.offsets, &csr_end(&b), &one, "csr end");
            let j0 = cx.range_var("j0m", &AbsIdx::zero(), &m);
            let mask = chunk_mask(&m, &j0);
            cx.ld(&bufs.members, &start.add(&j0).add(&cx.lane()), &mask, "member ids");
        });

        // Chunk loop over the dimensions (block-uniform trip count).
        cx.uniform("chunk loop", |cx| {
            let cbase = cx.range_var("cbase", &AbsIdx::zero(), &dim);
            let c = cx.range_var_min("c", &AbsIdx::zero(), &[dim.sub(&cbase), AbsIdx::konst(32)]);
            // Tile-load phase: gather one member row chunk, store unit-stride.
            let j0 = cx.range_var("j0", &AbsIdx::zero(), &m);
            let mask = chunk_mask(&m, &j0);
            let mem = cx.opaque_lanes("member", &AbsIdx::zero(), &n);
            cx.ld_gather(&bufs.points, &coord_ix(&mem, &dim, &cbase.add(&c)), &mask, "tile fill");
            cx.sh(&tile, &tile_ix(&c, &stride, &j0.add(&cx.lane())), &mask, "tile store");
            cx.block_sync("tile loaded");

            // Compute phase: column read (lane = dimension) + row reads.
            let i_local = cx.range_var("i_local", &AbsIdx::zero(), &m);
            let cmask = chunk_mask(&dim, &cbase);
            cx.sh(&tile, &tile_ix(&cx.lane(), &stride, &i_local), &cmask, "column read");
            cx.sh(&tile, &tile_ix(&c, &stride, &j0.add(&cx.lane())), &mask, "row read");
            cx.block_sync("tile consumed");
        });

        // Insertion phase: exclusive updates, one member row per warp turn.
        let p = cx.opaque("pm", &AbsIdx::zero(), &n);
        model_warp_insert_exclusive(cx, &bufs.slots, &k, &p);
    })
}

/// Abstract model of [`crate::kernels::beam::run_search_batch`].
pub fn lint_beam() -> AnalysisReport {
    analyze("beam", |cx| {
        let n = cx.param("n", 1, MAX_N);
        let dim = cx.param("dim", 1, MAX_DIM);
        let nq = cx.param("nq", 1, MAX_N);
        let deg = cx.param("deg", 1, MAX_K);
        let bw = cx.param("bw", 1, MAX_K);
        let points = cx.global_buf("points", &n.mul(&dim), 4);
        let queries = cx.global_buf("queries", &nq.mul(&dim), 4);
        let adj = cx.global_buf("adj", &n.mul(&deg), 4);
        let visited = cx.global_buf("visited", &nq.mul(&n), 1);
        let beams = cx.global_buf("beams", &nq.mul(&bw), 8);
        cx.warp_varying("q < nq guard", |cx| {
            let q = cx.range_var("q", &AbsIdx::zero(), &nq);
            let one = AbsMask::single();
            // Entry probing: scalar visited test-and-set per entry point.
            let e = cx.opaque("entry", &AbsIdx::zero(), &n);
            cx.ld(&visited, &slot_ix(&q, &n, &e), &one, "entry probe");
            cx.st(&visited, &slot_ix(&q, &n, &e), &one, "entry mark");
            // lane_query_dists: broadcast query column + gathered candidate
            // column per lane, under the data-dependent `fresh` mask.
            let fresh = AbsMask::prefix();
            let col = cx.range_var("col", &AbsIdx::zero(), &dim);
            cx.ld(&queries, &coord_ix(&q, &dim, &col), &fresh, "query column");
            let cand = cx.opaque_lanes("cand", &AbsIdx::zero(), &n);
            cx.ld_gather(&points, &coord_ix(&cand, &dim, &col), &fresh, "candidate column");
            // warp_worst beam scan + the insert protocol share the slot code.
            model_warp_insert_exclusive(cx, &beams, &bw, &q);
            // Frontier expansion: coalesced adjacency row, gathered visited.
            let cur = cx.opaque("cur", &AbsIdx::zero(), &n);
            let ac = cx.range_var("ac", &AbsIdx::zero(), &deg);
            let amask = chunk_mask(&deg, &ac);
            cx.ld(&adj, &slot_ix(&cur, &deg, &ac.add(&cx.lane())), &amask, "adjacency row");
            let nbr = cx.opaque_lanes("nbr", &AbsIdx::zero(), &n);
            cx.ld_gather(&visited, &slot_ix(&q, &n, &nbr), &amask, "visited probe");
            cx.st_gather(&visited, &slot_ix(&q, &n, &nbr), &amask, "visited mark");
        });
    })
}

/// Analyze every shipped kernel. `wknng lint` renders these and fails when
/// any obligation is unproven.
pub fn lint_all_kernels() -> Vec<AnalysisReport> {
    vec![lint_basic(), lint_atomic(), lint_tiled(), lint_beam()]
}

/// Self-check kernels: one deliberately seeded violation per obligation
/// class. Each report must contain **exactly one** unproven obligation, at
/// the named site — the mutation test suite (and `wknng lint --self-check`)
/// pins this, so a prover regression that starts accepting bad patterns is
/// caught the same way a kernel regression is.
pub fn mutation_reports() -> Vec<AnalysisReport> {
    let strided = analyze("mutant-strided-load", |cx| {
        let n = cx.param("n", 64, MAX_N);
        let dim = cx.param("dim", 64, MAX_DIM);
        let points = cx.global_buf("points", &n.mul(&dim), 4);
        let p = cx.range_var("p", &AbsIdx::zero(), &n);
        // Violation: lanes read every other element — 8 sectors, not 4.
        let idx = coord_ix(&p, &dim, &cx.lane().mul(&AbsIdx::konst(2)));
        cx.ld(&points, &idx, &AbsMask::full(), "strided row load");
    });
    let bank = analyze("mutant-bank-conflict", |cx| {
        let m = cx.param("m", 2, 512);
        // Violation: even tile pitch (the pre-fix `m + 1` bug for odd m).
        let stride = cx.derived_param_mod("stride", &m, &m.add(&AbsIdx::konst(2)), 0, 2);
        let tile = cx.shared_buf("tile", &tile_len(&stride), 4);
        let row = cx.range_var("row", &AbsIdx::zero(), &m);
        cx.sh(&tile, &tile_ix(&cx.lane(), &stride, &row), &AbsMask::full(), "column read");
    });
    let oob = analyze("mutant-off-by-one", |cx| {
        let n = cx.param("n", 2, MAX_N);
        let k = cx.param("k", 1, MAX_K);
        let slots = cx.global_buf("slots", &n.mul(&k), 8);
        let p = cx.range_var("p", &AbsIdx::zero(), &n);
        // Violation: scans entry `k` of a `k`-wide row (one past the end).
        let s = cx.range_var("s", &AbsIdx::zero(), &csr_end(&k));
        cx.ld(&slots, &slot_ix(&p, &k, &s), &AbsMask::single(), "slot scan overrun");
    });
    let divergent = analyze("mutant-divergent-barrier", |cx| {
        let n = cx.param("n", 2, MAX_N);
        let buf = cx.global_buf("flags", &n, 4);
        let p = cx.range_var("p", &AbsIdx::zero(), &n);
        cx.ld(&buf, &p, &AbsMask::single(), "flag read");
        // Violation: warp sync inside a lane-divergent branch.
        cx.lane_varying("flag set on this lane", |cx| {
            cx.sync_warp(&AbsMask::full(), "divergent sync");
        });
    });
    vec![strided, bank, oob, divergent]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_simt::ObligationClass;

    #[test]
    fn shipped_kernels_are_fully_proved() {
        for report in lint_all_kernels() {
            assert!(report.all_proved(), "{}", report.render());
        }
    }

    #[test]
    fn every_kernel_exercises_every_obligation_class() {
        for report in lint_all_kernels() {
            assert!(report.count(ObligationClass::Bounds) > 0, "{}", report.kernel);
            assert!(report.count(ObligationClass::Coalescing) > 0, "{}", report.kernel);
            assert!(report.count(ObligationClass::Barrier) > 0, "{}", report.kernel);
        }
        // Shared-memory obligations only exist in the tiled kernel.
        assert!(lint_tiled().count(ObligationClass::BankConflict) > 0);
    }
}
