//! Builder parameters for w-KNNG construction.

use wknng_data::Metric;
use wknng_forest::ProjectionKind;

use crate::error::KnngError;

/// The three warp-centric kernel strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelVariant {
    /// One warp per point; the warp computes its point's distance row and
    /// updates only its own k-NN slots (no atomics, full redundancy: every
    /// pair is computed twice).
    Basic,
    /// Pairs are computed once (upper triangle) and pushed into **both**
    /// endpoints' slot arrays with an atomic max-replacement CAS protocol.
    /// Halves distance work at the price of atomic contention — wins at
    /// small dimensionality.
    Atomic,
    /// Bucket coordinates are staged through shared-memory tiles so each
    /// coordinate is read from global memory once per bucket instead of once
    /// per pair — wins at higher dimensionality, the general workhorse.
    #[default]
    Tiled,
}

impl KernelVariant {
    /// All variants, in presentation order.
    pub const ALL: [KernelVariant; 3] =
        [KernelVariant::Basic, KernelVariant::Atomic, KernelVariant::Tiled];

    /// The paper's practical guidance, backed by experiment E4: the atomic
    /// kernel wins at small dimensionality, tiled everywhere else.
    pub fn auto_for_dim(dim: usize) -> KernelVariant {
        if dim <= 16 {
            KernelVariant::Atomic
        } else {
            KernelVariant::Tiled
        }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            KernelVariant::Basic => "w-knng-basic",
            KernelVariant::Atomic => "w-knng-atomic",
            KernelVariant::Tiled => "w-knng-tiled",
        }
    }

    /// The next variant down the degradation chain, ordered by resource
    /// appetite: tiled (needs a whole bucket in shared memory) → atomic
    /// (needs CAS throughput) → basic (needs nothing beyond global loads).
    /// `None` from basic — there is nothing simpler to fall back to.
    pub fn degraded(&self) -> Option<KernelVariant> {
        match self {
            KernelVariant::Tiled => Some(KernelVariant::Atomic),
            KernelVariant::Atomic => Some(KernelVariant::Basic),
            KernelVariant::Basic => None,
        }
    }
}

/// How the neighbors-of-neighbors exploration phase selects candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExplorationMode {
    /// Every round examines all k² neighbor-of-neighbor candidates of every
    /// point. Highest recall per round; what the device kernels implement.
    #[default]
    Full,
    /// NN-descent-style incremental join: a round only examines candidate
    /// paths that involve an edge inserted in the previous round. Much
    /// cheaper on later rounds at a small recall cost per round
    /// (ablated in experiment E13). Native backend only — device builds
    /// always run [`ExplorationMode::Full`].
    Incremental,
}

/// Coordinate representation the native build evaluates distances over.
///
/// Quantization trades per-point memory (and memory traffic — the dominant
/// cost the paper attributes to the distance loop) for bounded recall loss,
/// ablated in experiments E15 (SQ8) and E20 (PQ-ADC). Native backend only;
/// device builds always evaluate full-precision coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantMode {
    /// Full-precision f32 coordinates (4·dim bytes/point).
    #[default]
    None,
    /// SQ8 scalar quantization: distances are evaluated over decoded 8-bit
    /// coordinates (dim bytes/point). Any metric.
    Sq8,
    /// Product quantization with per-point ADC lookup tables (`m`
    /// bytes/point regardless of dim). Candidate generation and exploration
    /// run on asymmetric code distances; the finished lists are re-scored
    /// against exact coordinates. Requires [`Metric::SquaredL2`].
    Pq {
        /// Subquantizers (= bytes per encoded point); clamped to `dim`.
        m: usize,
    },
}

impl QuantMode {
    /// Short name used in experiment tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            QuantMode::None => "f32",
            QuantMode::Sq8 => "sq8",
            QuantMode::Pq { .. } => "pq",
        }
    }
}

/// How thoroughly a device build checks its own output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AuditLevel {
    /// No post-build validation.
    Off,
    /// Audit the slot arrays; corruption is a typed
    /// [`KnngError::AuditFailed`] error.
    Check,
    /// Audit, then re-derive corrupted lists by brute force (bounded by
    /// [`BuildPolicy::repair_limit`]) before returning.
    #[default]
    Repair,
}

/// Degraded-execution policy of a device build: how hard the pipeline tries
/// to finish when kernel launches fail or memory corrupts, instead of
/// aborting at the first fault.
///
/// The default policy retries transient launch failures with bounded
/// exponential backoff, falls back down the kernel chain
/// tiled → atomic → basic when a launch configuration cannot run (for
/// example, a bucket that does not fit shared memory), and audits-and-repairs
/// the finished graph. [`BuildPolicy::strict()`] disables all of that:
/// any fault or oversized configuration surfaces as a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildPolicy {
    /// Transient-failure retries allowed per kernel launch.
    pub max_retries: u32,
    /// Total launch attempts allowed per phase (retries included) — a
    /// circuit breaker against a permanently failing device.
    pub launch_budget: u32,
    /// Allow falling back down the kernel chain instead of hard-failing.
    pub degrade: bool,
    /// Simulated cycles charged for the first backoff; doubles per retry.
    pub backoff_cycles: u64,
    /// Post-build validation level.
    pub audit: AuditLevel,
    /// Most corrupted lists the repair pass will rebuild in one build.
    pub repair_limit: usize,
}

impl Default for BuildPolicy {
    fn default() -> Self {
        BuildPolicy {
            max_retries: 3,
            launch_budget: 64,
            degrade: true,
            backoff_cycles: 1 << 10,
            audit: AuditLevel::Repair,
            repair_limit: 64,
        }
    }
}

impl BuildPolicy {
    /// Fail-fast policy: no retries, no degradation, audit without repair.
    /// Any fault — including a leaf size too large for the tiled kernel —
    /// becomes a typed error instead of a fallback.
    pub fn strict() -> Self {
        BuildPolicy {
            max_retries: 0,
            launch_budget: 64,
            degrade: false,
            backoff_cycles: 0,
            audit: AuditLevel::Check,
            repair_limit: 0,
        }
    }
}

/// Full parameter set of a w-KNNG build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WknngParams {
    /// Neighbors per point.
    pub k: usize,
    /// Number of RP trees.
    pub num_trees: usize,
    /// RP-tree leaf bucket size.
    pub leaf_size: usize,
    /// Neighbors-of-neighbors refinement iterations.
    pub exploration_iters: usize,
    /// Candidate selection strategy for the exploration phase.
    pub exploration_mode: ExplorationMode,
    /// Split-direction distribution of the RP trees.
    pub projection: ProjectionKind,
    /// Kernel strategy (device builds; the native backend is
    /// variant-agnostic).
    pub variant: KernelVariant,
    /// Distance metric (device kernels require [`Metric::SquaredL2`]).
    pub metric: Metric,
    /// Build-time coordinate quantization (native backend only).
    pub quant: QuantMode,
    /// RNG seed for the forest.
    pub seed: u64,
}

impl Default for WknngParams {
    fn default() -> Self {
        WknngParams {
            k: 16,
            num_trees: 4,
            leaf_size: 64,
            exploration_iters: 1,
            exploration_mode: ExplorationMode::Full,
            projection: ProjectionKind::DenseGaussian,
            variant: KernelVariant::default(),
            metric: Metric::SquaredL2,
            quant: QuantMode::None,
            seed: 0xC0FFEE,
        }
    }
}

impl WknngParams {
    /// Validate against a point set of `n` points.
    pub fn validate(&self, n: usize) -> Result<(), KnngError> {
        if self.k == 0 {
            return Err(KnngError::ZeroK);
        }
        if n <= self.k {
            return Err(KnngError::KTooLarge { k: self.k, n });
        }
        if self.leaf_size < 2 {
            return Err(wknng_forest::ForestError::LeafTooSmall(self.leaf_size).into());
        }
        if self.num_trees == 0 {
            return Err(wknng_forest::ForestError::NoTrees.into());
        }
        if let QuantMode::Pq { m } = self.quant {
            if m == 0 {
                return Err(KnngError::ZeroSubquantizers);
            }
            if self.metric != Metric::SquaredL2 {
                return Err(KnngError::UnsupportedQuantMetric(self.metric));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let p = WknngParams::default();
        assert!(p.validate(1000).is_ok());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut p = WknngParams { k: 0, ..WknngParams::default() };
        assert_eq!(p.validate(100), Err(KnngError::ZeroK));
        p.k = 100;
        assert_eq!(p.validate(100), Err(KnngError::KTooLarge { k: 100, n: 100 }));
        p = WknngParams { leaf_size: 1, ..WknngParams::default() };
        assert!(matches!(p.validate(100), Err(KnngError::Forest(_))));
        p = WknngParams { num_trees: 0, ..WknngParams::default() };
        assert!(matches!(p.validate(100), Err(KnngError::Forest(_))));
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: Vec<_> = KernelVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.windows(2).all(|w| w[0] != w[1]));
        assert_eq!(KernelVariant::default(), KernelVariant::Tiled);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn auto_variant_follows_the_crossover() {
        assert_eq!(KernelVariant::auto_for_dim(4), KernelVariant::Atomic);
        assert_eq!(KernelVariant::auto_for_dim(16), KernelVariant::Atomic);
        assert_eq!(KernelVariant::auto_for_dim(17), KernelVariant::Tiled);
        assert_eq!(KernelVariant::auto_for_dim(784), KernelVariant::Tiled);
    }

    #[test]
    fn exploration_mode_defaults_to_full() {
        assert_eq!(ExplorationMode::default(), ExplorationMode::Full);
        assert_eq!(WknngParams::default().exploration_mode, ExplorationMode::Full);
    }

    #[test]
    fn degradation_chain_ends_at_basic() {
        assert_eq!(KernelVariant::Tiled.degraded(), Some(KernelVariant::Atomic));
        assert_eq!(KernelVariant::Atomic.degraded(), Some(KernelVariant::Basic));
        assert_eq!(KernelVariant::Basic.degraded(), None);
    }

    #[test]
    fn default_policy_recovers_strict_policy_fails_fast() {
        let d = BuildPolicy::default();
        assert!(d.max_retries > 0);
        assert!(d.degrade);
        assert_eq!(d.audit, AuditLevel::Repair);
        assert!(d.repair_limit > 0);
        assert!(d.launch_budget as usize > d.max_retries as usize);
        let s = BuildPolicy::strict();
        assert_eq!(s.max_retries, 0);
        assert!(!s.degrade);
        assert_eq!(s.audit, AuditLevel::Check);
        assert_eq!(s.repair_limit, 0);
    }
}
