//! # wknng-core — Warp-centric K-Nearest-Neighbor-Graph construction
//!
//! The primary contribution of the reproduced paper: an all-points
//! approximate K-NNG builder based on the Random Projection Forest method,
//! with **three warp-centric strategies** for searching and maintaining the
//! k-NN sets of high-dimensional points in GPU **global memory**:
//!
//! * **basic** ([`KernelVariant::Basic`]) — one warp per point, exclusive
//!   slot updates, fully redundant pair computation;
//! * **atomic** ([`KernelVariant::Atomic`]) — each pair computed once and
//!   pushed into both endpoints' slots via an atomic CAS max-replacement
//!   protocol (wins at small dimensionality);
//! * **tiled** ([`KernelVariant::Tiled`]) — bucket coordinates staged
//!   through shared-memory tiles (wins at higher dimensionality).
//!
//! Two execution backends share the identical logical algorithm:
//!
//! * [`WknngBuilder::build_native`] — rayon CPU execution with wall-clock
//!   phase timings;
//! * [`WknngBuilder::build_device`] — warp-accurate execution on the
//!   `wknng-simt` simulator with cycle estimates and profiler counters
//!   ([`DeviceReports`]).
//!
//! Quality is measured with [`recall()`](recall()) against `wknng_data::exact_knn`.
//!
//! ```
//! use wknng_core::{recall, WknngBuilder};
//! use wknng_data::{exact_knn, DatasetSpec, Metric};
//!
//! let vs = DatasetSpec::GaussianClusters { n: 250, dim: 16, clusters: 5, spread: 0.3 }
//!     .generate(3)
//!     .vectors;
//! let (graph, _) = WknngBuilder::new(8).trees(6).leaf_size(24).build_native(&vs).unwrap();
//! let truth = exact_knn(&vs, 8, Metric::SquaredL2);
//! assert!(recall(&graph.lists, &truth) > 0.8);
//! ```

pub mod audit;
pub mod builder;
pub mod error;
pub mod events;
pub mod graph;
pub mod heap;
pub mod kernels;
pub mod lint;
pub mod metrics;
pub mod native;
pub mod params;
pub mod pipeline;
pub mod recall;
pub mod search;
pub mod update;

pub use audit::{
    audit_graph, audit_slots, repair_list, AuditReport, AuditViolation, ViolationKind,
};
pub use builder::{Knng, WknngBuilder};
pub use error::KnngError;
pub use events::{BuildEvent, BuildEvents, BuildPhase};
pub use graph::{augment_reverse, lists_to_slots, slots_to_lists, KnnGraph, EMPTY_SLOT};
pub use heap::KnnList;
pub use kernels::beam::{run_search_batch, BatchResult, SearchIndex};
pub use lint::{lint_all_kernels, mutation_reports};
pub use metrics::{graph_stats, symmetrize, GraphStats};
pub use native::{build_native, PhaseTimings};
pub use params::{AuditLevel, BuildPolicy, ExplorationMode, KernelVariant, QuantMode, WknngParams};
pub use pipeline::{build_device, build_device_with_policy, DeviceReports};
pub use recall::{mean_distance_ratio, recall};
pub use search::{search, search_batch, search_checked, search_lists, SearchParams, SearchStats};
pub use update::{extend_graph, Extended, GraphExtender};
