//! The shared index-arithmetic of the warp-centric kernels, written **once**,
//! generically over [`IdxExpr`].
//!
//! Every buffer-addressing formula the kernels use lives here and nowhere
//! else: the concrete kernels call these functions with `V = usize` inside
//! their `math_idx` closures, and the abstract kernel models in
//! [`crate::lint`] call the *same* functions with `V =`
//! [`wknng_simt::AbsIdx`]. Because both instantiations go through one
//! definition, the access pattern the analyzer proves things about cannot
//! silently drift from the pattern the executable kernels actually issue —
//! a change here re-type-checks (and re-analyzes) both worlds.

use wknng_simt::{IdxExpr, WARP_LANES};

/// Row-major coordinate index: `row·dim + col`.
///
/// Used by every kernel that touches the `points` matrix — the warp-
/// cooperative distance (`col = chunk + lane`), the atomic kernel's per-lane
/// register loop (`col = c`), the tiled global tile load and the beam
/// kernel's query/candidate loads.
pub fn coord_ix<V: IdxExpr>(row: &V, dim: &V, col: &V) -> V {
    row.mul(dim).add(col)
}

/// Slot-row index into a packed `n × k` slot / beam / adjacency / visited
/// matrix: `row·width + entry`.
///
/// Same shape as [`coord_ix`] but kept separate because the *width* is a
/// different launch parameter (`k`, beam width, degree, or `n` for the
/// visited matrix) with its own declared range.
pub fn slot_ix<V: IdxExpr>(row: &V, width: &V, entry: &V) -> V {
    row.mul(width).add(entry)
}

/// Shared-tile index: `col·stride + point`, where `stride` is the padded
/// row pitch from [`tile_stride`] and `col` is the dimension within the
/// staged 32-dimension chunk.
pub fn tile_ix<V: IdxExpr>(col: &V, stride: &V, point: &V) -> V {
    col.mul(stride).add(point)
}

/// Block-cyclic pair id of the atomic kernel: lane slot `s = wid·32 + lane`
/// owns pair `s·chunk + it` at inner iteration `it`.
pub fn pair_ix<V: IdxExpr>(slot: &V, chunk: &V, it: &V) -> V {
    slot.mul(chunk).add(it)
}

/// CSR end-offset index: `bucket + 1`.
pub fn csr_end<V: IdxExpr>(bucket: &V) -> V {
    bucket.add(&V::constant(1))
}

/// Padded row pitch of the shared coordinate tile: the smallest **odd**
/// stride `≥ m`, so column reads (`lane·stride + point`) touch all 32 banks
/// (`gcd(stride, 32) = 1` — the classic padding trick). `m + 1` alone is
/// only odd for even `m`; odd `m` needs no padding at all.
pub fn tile_stride(m: usize) -> usize {
    if m.is_multiple_of(2) {
        m + 1
    } else {
        m
    }
}

/// Element count of the shared coordinate tile: 32 dimensions × `stride`.
pub fn tile_len<V: IdxExpr>(stride: &V) -> V {
    V::constant(WARP_LANES).mul(stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_instantiation_matches_hand_arithmetic() {
        assert_eq!(coord_ix(&7usize, &16, &3), 7 * 16 + 3);
        assert_eq!(slot_ix(&4usize, &10, &9), 49);
        assert_eq!(tile_ix(&2usize, &33, &5), 71);
        assert_eq!(pair_ix(&3usize, &100, &42), 342);
        assert_eq!(csr_end(&11usize), 12);
    }

    #[test]
    fn tile_stride_is_odd_and_at_least_m() {
        for m in 1usize..200 {
            let s = tile_stride(m);
            assert_eq!(s % 2, 1, "m={m}");
            assert!(s >= m && s <= m + 1, "m={m} stride={s}");
        }
    }
}
