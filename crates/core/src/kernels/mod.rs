//! The warp-centric device kernels of w-KNNG (executed on `wknng-simt`).
//!
//! * [`basic`] — one warp per point, exclusive updates, full redundancy;
//! * [`atomic`] — upper-triangle pairs, atomic updates to both endpoints;
//! * [`tiled`] — shared-memory coordinate tiles, one block per bucket;
//! * [`explore`] — neighbors-of-neighbors refinement;
//! * [`beam`] — batched graph search (one warp per query, the serving path);
//! * [`insert`] — the two global-memory slot-insertion protocols;
//! * [`distance`] — warp-cooperative squared L2;
//! * [`state`] / [`layout`] — device-resident graph state and bucket CSR.

pub mod access;
pub mod atomic;
pub mod basic;
pub mod beam;
pub mod distance;
pub mod explore;
pub mod insert;
pub mod layout;
pub mod sort;
pub mod state;
pub mod tiled;

pub use atomic::run_atomic;
pub use basic::run_basic;
pub use beam::{run_search_batch, BatchResult, SearchIndex};
pub use explore::{run_explore, run_explore_lane, snapshot_from_state};
pub use layout::TreeLayout;
pub use sort::sort_slots_device;
pub use state::DeviceState;
pub use tiled::{max_tiled_bucket, run_tiled};
