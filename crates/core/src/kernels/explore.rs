//! The neighbors-of-neighbors exploration kernel.
//!
//! One warp per point `p`: for every current neighbor `q` of `p` and every
//! neighbor `r` of `q`, compute `d(p, r)` and offer it to `p`'s slots. The
//! pass reads a frozen index snapshot (uploaded by the pipeline) so it is
//! order-independent; updates target only the owning warp's point, so the
//! exclusive insertion protocol applies for every kernel variant.

use wknng_data::Neighbor;
use wknng_simt::{
    try_launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchFault, LaunchReport, Mask,
};

use crate::kernels::basic::WARPS_PER_BLOCK;
use crate::kernels::distance::warp_sq_l2;
use crate::kernels::insert::warp_insert_exclusive;
use crate::kernels::state::DeviceState;

/// Padding value for absent snapshot entries.
pub const NO_NEIGHBOR: u32 = u32::MAX;

/// Run one exploration pass against the `n × k` snapshot buffer.
///
/// Fault-aware: consults the thread's installed
/// [`wknng_simt::FaultScope`] (if any) and surfaces injected launch
/// failures; without one, it never fails.
pub fn run_explore(
    dev: &DeviceConfig,
    state: &DeviceState,
    snapshot: &DeviceBuffer<u32>,
) -> Result<LaunchReport, LaunchFault> {
    let n = state.n;
    let (dim, k) = (state.dim, state.k);
    assert_eq!(snapshot.len(), n * k, "snapshot shape mismatch");
    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    try_launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            let one = Mask::first(1);
            for t in 0..k {
                let q = w.ld_global(snapshot, &LaneVec::splat(p * k + t), one).get(0);
                if q == NO_NEIGHBOR {
                    continue;
                }
                for s in 0..k {
                    let r = w.ld_global(snapshot, &LaneVec::splat(q as usize * k + s), one).get(0);
                    if r == NO_NEIGHBOR || r as usize == p {
                        continue;
                    }
                    let d = warp_sq_l2(w, &state.points, dim, p, r as usize);
                    warp_insert_exclusive(w, &state.slots, p, k, Neighbor::new(r, d).pack());
                }
            }
        });
    })
}

/// Lane-parallel exploration (used by the **atomic** variant): one *lane*
/// per point; each lane walks its own k² candidate paths with gather loads
/// and commits through the lane-parallel CAS protocol. Mirrors the atomic
/// bucket kernel's trade: far fewer instructions per candidate at small
/// dimensionality, gather-heavy at large.
pub fn run_explore_lane(
    dev: &DeviceConfig,
    state: &DeviceState,
    snapshot: &DeviceBuffer<u32>,
) -> Result<LaunchReport, LaunchFault> {
    use crate::kernels::insert::lane_insert_atomic;
    use wknng_simt::WARP_LANES;

    let n = state.n;
    let (dim, k) = (state.dim, state.k);
    assert_eq!(snapshot.len(), n * k, "snapshot shape mismatch");
    let lanes_per_block = WARPS_PER_BLOCK * WARP_LANES;
    let blocks = n.div_ceil(lanes_per_block);
    try_launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let base = w.global_warp * WARP_LANES;
            if base >= n {
                return;
            }
            let width = (n - base).min(WARP_LANES);
            let mask = Mask::first(width);
            let p = w.math_idx(mask, |l| base + l);
            for t in 0..k {
                let qi = w.math_idx(mask, |l| p.get(l) * k + t);
                let q = w.ld_global(snapshot, &qi, mask);
                let mq = w.pred(mask, |l| q.get(l) != NO_NEIGHBOR);
                if mq.is_empty() {
                    continue;
                }
                for s in 0..k {
                    let ri = w.math_idx(mq, |l| q.get(l) as usize * k + s);
                    let r = w.ld_global(snapshot, &ri, mq);
                    let mr =
                        w.pred(mq, |l| r.get(l) != NO_NEIGHBOR && r.get(l) as usize != p.get(l));
                    if mr.is_empty() {
                        continue;
                    }
                    // Per-lane distance p_l <-> r_l (gather register loop).
                    let mut acc = LaneVec::<f32>::zeroed();
                    for c in 0..dim {
                        let ai = w.math_idx(mr, |l| p.get(l) * dim + c);
                        let a = w.ld_global(&state.points, &ai, mr);
                        let bi = w.math_idx(mr, |l| r.get(l) as usize * dim + c);
                        let b = w.ld_global(&state.points, &bi, mr);
                        acc = w.math_keep(mr, &acc, |l| {
                            let d = a.get(l) - b.get(l);
                            acc.get(l) + d * d
                        });
                    }
                    let cands = w.math(mr, |l| Neighbor::new(r.get(l), acc.get(l)).pack());
                    lane_insert_atomic(w, &state.slots, &p, k, &cands, mr);
                }
            }
        });
    })
}

/// Build the snapshot buffer from the current slots: for every point, its
/// current neighbor indices (EMPTY slots → [`NO_NEIGHBOR`]).
pub fn snapshot_from_state(state: &DeviceState) -> DeviceBuffer<u32> {
    let lists = state.download();
    let mut snap = vec![NO_NEIGHBOR; state.n * state.k];
    for (p, list) in lists.iter().enumerate() {
        for (i, nb) in list.iter().take(state.k).enumerate() {
            snap[p * state.k + i] = nb.index;
        }
    }
    DeviceBuffer::from_slice(&snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::basic::run_basic;
    use crate::kernels::layout::TreeLayout;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};
    use wknng_forest::{build_forest, ForestParams, TreeParams};

    #[test]
    fn exploration_improves_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 120, dim: 8, clusters: 4, spread: 0.3 }
            .generate(8)
            .vectors;
        let truth = exact_knn(&vs, 5, Metric::SquaredL2);
        let dev = DeviceConfig::test_tiny();
        // Two trees: exploration can now bridge across partitions (with a
        // single tree, neighbors-of-neighbors are all bucket mates and
        // exploration is a no-op by construction).
        let forest = build_forest(
            &vs,
            ForestParams {
                num_trees: 2,
                tree: TreeParams { leaf_size: 12, ..TreeParams::default() },
            },
            3,
        )
        .unwrap();
        let state = DeviceState::upload(&vs, 5);
        for tree in &forest.trees {
            run_basic(&dev, &state, &TreeLayout::upload(tree, 120)).unwrap();
        }
        let r0 = recall(&state.download(), &truth);

        let snap = snapshot_from_state(&state);
        let report = run_explore(&dev, &state, &snap).unwrap();
        let r1 = recall(&state.download(), &truth);
        assert!(r1 > r0, "exploration must help: {r0:.3} -> {r1:.3}");
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn snapshot_pads_with_no_neighbor() {
        let vs = DatasetSpec::UniformCube { n: 6, dim: 2 }.generate(1).vectors;
        let state = DeviceState::upload(&vs, 3);
        let snap = snapshot_from_state(&state);
        assert!(snap.to_vec().iter().all(|&v| v == NO_NEIGHBOR));
    }
}

#[cfg(test)]
mod lane_tests {
    use super::*;
    use crate::kernels::basic::run_basic;
    use crate::kernels::layout::TreeLayout;
    use wknng_data::DatasetSpec;
    use wknng_forest::{build_forest, ForestParams, TreeParams};

    #[test]
    fn lane_exploration_equals_warp_exploration() {
        let n = 130;
        let vs = DatasetSpec::GaussianClusters { n, dim: 7, clusters: 5, spread: 0.3 }
            .generate(9)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let forest = build_forest(
            &vs,
            ForestParams {
                num_trees: 2,
                tree: TreeParams { leaf_size: 12, ..TreeParams::default() },
            },
            4,
        )
        .unwrap();

        let mk_state = || {
            let state = DeviceState::upload(&vs, 5);
            for tree in &forest.trees {
                run_basic(&dev, &state, &TreeLayout::upload(tree, n)).unwrap();
            }
            state
        };

        let sa = mk_state();
        let snap_a = snapshot_from_state(&sa);
        run_explore(&dev, &sa, &snap_a).unwrap();

        let sb = mk_state();
        let snap_b = snapshot_from_state(&sb);
        let report = run_explore_lane(&dev, &sb, &snap_b).unwrap();

        assert_eq!(sa.download(), sb.download());
        assert!(report.stats.atomic_ops > 0, "lane exploration commits via CAS");
    }

    #[test]
    fn lane_exploration_handles_ragged_last_warp() {
        // n not a multiple of 32 exercises the masked tail.
        let n = 37;
        let vs = DatasetSpec::UniformCube { n, dim: 4 }.generate(10).vectors;
        let dev = DeviceConfig::test_tiny();
        let forest = build_forest(
            &vs,
            ForestParams {
                num_trees: 2,
                tree: TreeParams { leaf_size: 8, ..TreeParams::default() },
            },
            5,
        )
        .unwrap();
        let state = DeviceState::upload(&vs, 4);
        for tree in &forest.trees {
            run_basic(&dev, &state, &TreeLayout::upload(tree, n)).unwrap();
        }
        let before = state.download();
        let snap = snapshot_from_state(&state);
        run_explore_lane(&dev, &state, &snap).unwrap();
        let after = state.download();
        // Exploration can only improve (or keep) each list.
        for (b, a) in before.iter().zip(&after) {
            assert!(a.len() >= b.len());
        }
    }
}
