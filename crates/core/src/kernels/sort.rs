//! Device-side ordering of the k-NN slot arrays.
//!
//! The construction kernels keep slots unordered (max-replacement does not
//! need order). Pipelines that consume the graph on the device — e.g. a
//! t-SNE affinity kernel or graph-search — want each list sorted by
//! distance; this kernel does it in place with a warp bitonic network, one
//! warp per point.

use wknng_simt::primitives::bitonic_sort_u64;
use wknng_simt::{launch, DeviceConfig, LaunchReport, Mask, WARP_LANES};

use crate::kernels::basic::WARPS_PER_BLOCK;
use crate::kernels::state::DeviceState;

/// Sort every point's slots ascending by packed `(dist, index)` key, in
/// place. Supports `k ≤ 32` (one warp-sort per point — the regime of the
/// paper's graphs); larger `k` is left to host-side decoding.
///
/// Returns `None` without launching when `k > 32`.
pub fn sort_slots_device(dev: &DeviceConfig, state: &DeviceState) -> Option<LaunchReport> {
    let (n, k) = (state.n, state.k);
    if k > WARP_LANES {
        return None;
    }
    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    Some(launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            let mask = Mask::first(k);
            let idx = w.math_idx(mask, |l| p * k + l);
            let vals = w.ld_global(&state.slots, &idx, mask);
            let sorted = bitonic_sort_u64(w, &vals, mask);
            w.st_global(&state.slots, &idx, &sorted, mask);
        });
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EMPTY_SLOT;
    use wknng_data::Neighbor;
    use wknng_simt::DeviceBuffer;

    fn state_with_slots(n: usize, k: usize, slots: Vec<u64>) -> DeviceState {
        DeviceState {
            points: DeviceBuffer::zeroed(n),
            slots: DeviceBuffer::from_slice(&slots),
            n,
            dim: 1,
            k,
        }
    }

    #[test]
    fn sorts_each_point_independently() {
        let k = 4;
        let slots = vec![
            // point 0: shuffled
            Neighbor::new(9, 3.0).pack(),
            Neighbor::new(1, 1.0).pack(),
            Neighbor::new(5, 2.0).pack(),
            EMPTY_SLOT,
            // point 1: already sorted
            Neighbor::new(2, 0.5).pack(),
            Neighbor::new(3, 0.75).pack(),
            EMPTY_SLOT,
            EMPTY_SLOT,
        ];
        let state = state_with_slots(2, k, slots);
        let dev = DeviceConfig::test_tiny();
        let report = sort_slots_device(&dev, &state).expect("k <= 32");
        assert!(report.cycles > 0.0);
        let out = state.slots.to_vec();
        let p0: Vec<u32> = out[..3].iter().map(|&s| Neighbor::unpack(s).index).collect();
        assert_eq!(p0, vec![1, 5, 9]);
        assert_eq!(out[3], EMPTY_SLOT, "EMPTY sorts to the top");
        assert_eq!(Neighbor::unpack(out[4]).index, 2);
    }

    #[test]
    fn sorted_slots_decode_identically() {
        use crate::graph::slots_to_lists;
        let k = 8;
        let raw: Vec<u64> = (0..2 * k)
            .map(|i| Neighbor::new((97 * i % 16) as u32, ((31 * i) % 7) as f32).pack())
            .collect();
        let state = state_with_slots(2, k, raw.clone());
        let before = slots_to_lists(&raw, 2, k);
        let dev = DeviceConfig::test_tiny();
        sort_slots_device(&dev, &state).unwrap();
        let after = slots_to_lists(&state.slots.to_vec(), 2, k);
        assert_eq!(before, after);
    }

    #[test]
    fn large_k_is_declined() {
        let state = state_with_slots(1, 40, vec![EMPTY_SLOT; 40]);
        let dev = DeviceConfig::test_tiny();
        assert!(sort_slots_device(&dev, &state).is_none());
    }
}
