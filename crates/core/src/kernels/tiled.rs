//! The **tiled w-KNNG** kernel: bucket coordinates staged through shared
//! memory.
//!
//! One thread block per bucket. The block streams the bucket's coordinate
//! matrix through a shared-memory tile of 32 dimensions × `m` points, so
//! every coordinate is read from global memory **once per bucket** instead of
//! once per pair (the basic kernel) or once per pair-half (atomic). Each warp
//! owns a strided subset of the bucket's points and accumulates, per lane,
//! the partial squared distances to a group of 32 bucket mates; after the
//! last tile the warp inserts its rows with exclusive (non-atomic) updates.
//!
//! The tile is padded to an odd row stride so that the column reads of a
//! point's own coordinates are bank-conflict-free — the standard shared-
//! memory padding trick.

use wknng_data::Neighbor;
use wknng_simt::{try_launch, DeviceConfig, LaneVec, LaunchFault, LaunchReport, Mask, WARP_LANES};

use crate::kernels::access::{coord_ix, csr_end, tile_ix, tile_len, tile_stride};
use crate::kernels::insert::warp_insert_exclusive;
use crate::kernels::layout::TreeLayout;
use crate::kernels::state::DeviceState;

/// Warps per block for the tiled kernel (each block owns one bucket).
const TILED_WARPS: usize = 4;

/// Largest bucket the tiled kernel can stage given a shared-memory capacity
/// in bytes: `32 dims × tile_stride(m) floats` must fit, and
/// `tile_stride(m) ≤ m + 1`.
pub fn max_tiled_bucket(shared_mem_bytes: u32) -> usize {
    (shared_mem_bytes as usize / (WARP_LANES * 4)).saturating_sub(1)
}

/// Run the tiled kernel for one tree: one block per bucket.
///
/// Fault-aware: consults the thread's installed
/// [`wknng_simt::FaultScope`] (if any) and surfaces injected launch
/// failures; without one, it never fails.
pub fn run_tiled(
    dev: &DeviceConfig,
    state: &DeviceState,
    tree: &TreeLayout,
) -> Result<LaunchReport, LaunchFault> {
    let (dim, k) = (state.dim, state.k);
    // Host copies of the CSR metadata drive the block structure (a CUDA
    // kernel reads the same values from its blockIdx; the loads are charged
    // below by the leader warp).
    let offsets = tree.offsets.to_vec();
    let members_host = tree.members.to_vec();

    try_launch(dev, tree.num_buckets, TILED_WARPS, |blk| {
        let b = blk.block_idx;
        let start = offsets[b] as usize;
        let end = offsets[b + 1] as usize;
        let m = end - start;
        if m <= 1 {
            return;
        }
        let members = &members_host[start..end];
        // Odd row pitch => gcd(stride, 32) = 1 => conflict-free column reads.
        let stride = tile_stride(m);
        let tile = blk.shared_alloc::<f32>(tile_len(&stride));
        let jgroups = m.div_ceil(WARP_LANES);
        // Per-point partial distance rows, lane j of group jg = dist to
        // bucket-mate jg*32 + j. These live in registers on hardware.
        let mut partial: Vec<Vec<LaneVec<f32>>> = vec![vec![LaneVec::zeroed(); jgroups]; m];

        // Leader warp charges the metadata loads (offsets + member ids).
        blk.warp(0, |w| {
            let one = Mask::first(1);
            let _ = w.ld_global(&tree.offsets, &LaneVec::splat(b), one);
            let _ = w.ld_global(&tree.offsets, &LaneVec::splat(csr_end(&b)), one);
            let mut j0 = 0usize;
            while j0 < m {
                let width = (m - j0).min(WARP_LANES);
                let mask = Mask::first(width);
                let idx = w.math_idx(mask, |l| start + j0 + l);
                let _ = w.ld_global(&tree.members, &idx, mask);
                j0 += WARP_LANES;
            }
        });

        let nchunks = dim.div_ceil(WARP_LANES);
        for ch in 0..nchunks {
            let cbase = ch * WARP_LANES;
            let cwidth = (dim - cbase).min(WARP_LANES);

            // Cooperative tile load: warps split the point groups.
            blk.each_warp(|w| {
                let wid = w.warp_in_block;
                for jg in (wid..jgroups).step_by(TILED_WARPS) {
                    let j0 = jg * WARP_LANES;
                    let width = (m - j0).min(WARP_LANES);
                    let mask = Mask::first(width);
                    for c in 0..cwidth {
                        let gidx = w.math_idx(mask, |l| {
                            coord_ix(&(members[j0 + l] as usize), &dim, &(cbase + c))
                        });
                        let vals = w.ld_global(&state.points, &gidx, mask);
                        let sidx = w.math_idx(mask, |l| tile_ix(&c, &stride, &(j0 + l)));
                        w.sh_store(&tile, &sidx, &vals, mask);
                    }
                }
            });
            blk.sync();

            // Compute phase: each warp accumulates its points' rows.
            blk.each_warp(|w| {
                let wid = w.warp_in_block;
                let cmask = Mask::first(cwidth);
                let mut i_local = wid;
                while i_local < m {
                    // Column read of point i's chunk (lane = dimension).
                    let ci = w.math_idx(cmask, |c| tile_ix(&c, &stride, &i_local));
                    let xi = w.sh_load(&tile, &ci, cmask);
                    for (jg, row) in partial[i_local].iter_mut().enumerate() {
                        let j0 = jg * WARP_LANES;
                        let width = (m - j0).min(WARP_LANES);
                        let jmask = Mask::first(width);
                        let mut acc = *row;
                        for c in 0..cwidth {
                            let xic = xi.get(c);
                            let sj = w.math_idx(jmask, |l| tile_ix(&c, &stride, &(j0 + l)));
                            let xj = w.sh_load(&tile, &sj, jmask);
                            acc = w.math_keep(jmask, &acc, |l| {
                                let d = xj.get(l) - xic;
                                acc.get(l) + d * d
                            });
                        }
                        *row = acc;
                    }
                    i_local += TILED_WARPS;
                }
            });
            blk.sync();
        }

        // Insertion phase: exclusive updates, each warp owns its points.
        blk.each_warp(|w| {
            let wid = w.warp_in_block;
            let mut i_local = wid;
            while i_local < m {
                let p = members[i_local] as usize;
                for (jg, row) in partial[i_local].iter().enumerate() {
                    let j0 = jg * WARP_LANES;
                    let width = (m - j0).min(WARP_LANES);
                    for l in 0..width {
                        let j_local = j0 + l;
                        if j_local == i_local {
                            continue;
                        }
                        let q = members[j_local];
                        let cand = Neighbor::new(q, row.get(l)).pack();
                        warp_insert_exclusive(w, &state.slots, p, k, cand);
                    }
                }
                i_local += TILED_WARPS;
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::basic::run_basic;
    use wknng_data::DatasetSpec;
    use wknng_forest::RpTree;

    #[test]
    fn tiled_graph_equals_basic_graph() {
        for (n, dim) in [(24usize, 5usize), (40, 33), (70, 64)] {
            let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 4, spread: 0.3 }
                .generate(n as u64)
                .vectors;
            let dev = DeviceConfig::test_tiny();
            let half = (n / 2) as u32;
            let tree =
                RpTree { buckets: vec![(0..half).collect(), (half..n as u32).collect()], depth: 1 };

            let sa = DeviceState::upload(&vs, 6);
            run_basic(&dev, &sa, &TreeLayout::upload(&tree, n)).unwrap();
            let sb = DeviceState::upload(&vs, 6);
            run_tiled(&dev, &sb, &TreeLayout::upload(&tree, n)).unwrap();

            let (a, b) = (sa.download(), sb.download());
            for (p, (la, lb)) in a.iter().zip(&b).enumerate() {
                let ia: Vec<u32> = la.iter().map(|x| x.index).collect();
                let ib: Vec<u32> = lb.iter().map(|x| x.index).collect();
                assert_eq!(ia, ib, "n={n} dim={dim} point {p}");
            }
        }
    }

    #[test]
    fn tiled_reads_each_coordinate_once_per_bucket() {
        // Coordinate traffic: tiled ~ m*dim loads per bucket; basic ~ 2*m^2*dim.
        let n = 64usize;
        let dim = 96usize;
        let vs = DatasetSpec::UniformCube { n, dim }.generate(5).vectors;
        let dev = DeviceConfig::test_tiny();
        let tree = RpTree { buckets: vec![(0..n as u32).collect()], depth: 0 };

        let sa = DeviceState::upload(&vs, 4);
        let rb = run_basic(&dev, &sa, &TreeLayout::upload(&tree, n)).unwrap();
        let sb = DeviceState::upload(&vs, 4);
        let rt = run_tiled(&dev, &sb, &TreeLayout::upload(&tree, n)).unwrap();

        assert!(
            (rt.stats.dram_bytes as f64) < 0.25 * rb.stats.dram_bytes as f64,
            "tiled {} vs basic {} dram bytes",
            rt.stats.dram_bytes,
            rb.stats.dram_bytes
        );
        assert!(rt.stats.shared_accesses > 0);
        assert!(rt.stats.barriers > 0);
    }

    #[test]
    fn max_tiled_bucket_matches_capacity() {
        // 16 KiB: 16384 / 128 - 1 = 127 points.
        assert_eq!(max_tiled_bucket(16 * 1024), 127);
        assert_eq!(max_tiled_bucket(48 * 1024), 383);
        assert_eq!(max_tiled_bucket(0), 0);
    }

    #[test]
    fn trivial_buckets_are_skipped() {
        let vs = DatasetSpec::UniformCube { n: 3, dim: 4 }.generate(6).vectors;
        let dev = DeviceConfig::test_tiny();
        let tree = RpTree { buckets: vec![vec![0], vec![1], vec![2]], depth: 2 };
        let state = DeviceState::upload(&vs, 2);
        let report = run_tiled(&dev, &state, &TreeLayout::upload(&tree, 3)).unwrap();
        assert!(state.download().iter().all(|l| l.is_empty()));
        assert_eq!(report.stats.shared_accesses, 0);
    }
}
