//! Device layout of one RP tree's bucket partition (CSR form).

use wknng_forest::RpTree;
use wknng_simt::DeviceBuffer;

/// One tree's buckets in CSR form plus per-point lookup tables, as the
/// kernels consume them.
pub struct TreeLayout {
    /// Concatenated bucket members.
    pub members: DeviceBuffer<u32>,
    /// CSR offsets into `members` (len = buckets + 1).
    pub offsets: DeviceBuffer<u32>,
    /// For each point: which bucket it belongs to.
    pub bucket_of: DeviceBuffer<u32>,
    /// For each point: its position within `members` (used by the atomic
    /// variant's upper-triangle pair split).
    pub pos_of: DeviceBuffer<u32>,
    /// Number of buckets.
    pub num_buckets: usize,
    /// Size of the largest bucket.
    pub max_bucket: usize,
}

impl TreeLayout {
    /// Upload `tree` (which must partition exactly `n` points).
    pub fn upload(tree: &RpTree, n: usize) -> Self {
        let mut members = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(tree.buckets.len() + 1);
        let mut bucket_of = vec![u32::MAX; n];
        let mut pos_of = vec![u32::MAX; n];
        offsets.push(0u32);
        for (b, bucket) in tree.buckets.iter().enumerate() {
            for &p in bucket {
                bucket_of[p as usize] = b as u32;
                pos_of[p as usize] = members.len() as u32;
                members.push(p);
            }
            offsets.push(members.len() as u32);
        }
        assert_eq!(members.len(), n, "tree must partition all points");
        assert!(bucket_of.iter().all(|&b| b != u32::MAX));
        TreeLayout {
            members: DeviceBuffer::from_slice(&members).set_label("members"),
            offsets: DeviceBuffer::from_slice(&offsets).set_label("offsets"),
            bucket_of: DeviceBuffer::from_slice(&bucket_of).set_label("bucket_of"),
            pos_of: DeviceBuffer::from_slice(&pos_of).set_label("pos_of"),
            num_buckets: tree.buckets.len(),
            max_bucket: tree.max_bucket(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_layout_roundtrips() {
        let tree = RpTree { buckets: vec![vec![2, 0], vec![1, 3, 4]], depth: 1 };
        let layout = TreeLayout::upload(&tree, 5);
        assert_eq!(layout.members.to_vec(), vec![2, 0, 1, 3, 4]);
        assert_eq!(layout.offsets.to_vec(), vec![0, 2, 5]);
        assert_eq!(layout.bucket_of.to_vec(), vec![0, 1, 0, 1, 1]);
        assert_eq!(layout.pos_of.to_vec(), vec![1, 2, 0, 3, 4]);
        assert_eq!(layout.num_buckets, 2);
        assert_eq!(layout.max_bucket, 3);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn incomplete_partition_is_rejected() {
        let tree = RpTree { buckets: vec![vec![0, 1]], depth: 0 };
        let _ = TreeLayout::upload(&tree, 3);
    }
}
