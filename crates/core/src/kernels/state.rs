//! Device-resident state shared by every w-KNNG kernel.

use wknng_data::{Neighbor, VectorSet};
use wknng_simt::DeviceBuffer;

use crate::graph::{slots_to_lists, EMPTY_SLOT};

/// The global-memory footprint of a w-KNNG build: the point coordinates and
/// the `n × k` packed k-NN slot arrays the paper's kernels maintain there
/// (high-dimensional k-NN sets do not fit in shared memory — the core
/// observation of the paper).
pub struct DeviceState {
    /// Row-major `n × dim` coordinates.
    pub points: DeviceBuffer<f32>,
    /// `n × k` packed `(dist, index)` slots, unordered, EMPTY-initialised.
    pub slots: DeviceBuffer<u64>,
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Neighbors per point.
    pub k: usize,
}

impl DeviceState {
    /// Upload `vs` and allocate empty slot arrays for `k` neighbors.
    pub fn upload(vs: &VectorSet, k: usize) -> Self {
        DeviceState {
            points: DeviceBuffer::from_slice(vs.as_flat()).set_label("points"),
            slots: DeviceBuffer::filled(vs.len() * k, EMPTY_SLOT).set_label("slots"),
            n: vs.len(),
            dim: vs.dim(),
            k,
        }
    }

    /// Download and decode the current graph.
    pub fn download(&self) -> Vec<Vec<Neighbor>> {
        slots_to_lists(&self.slots.to_vec(), self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn upload_shapes_and_empty_download() {
        let vs = DatasetSpec::UniformCube { n: 9, dim: 3 }.generate(0).vectors;
        let st = DeviceState::upload(&vs, 4);
        assert_eq!(st.points.len(), 27);
        assert_eq!(st.slots.len(), 36);
        assert_eq!(st.n, 9);
        assert_eq!(st.dim, 3);
        assert_eq!(st.k, 4);
        let lists = st.download();
        assert_eq!(lists.len(), 9);
        assert!(lists.iter().all(|l| l.is_empty()));
    }
}
