//! The **w-KNNG basic** kernel: one warp per point, exclusive slot updates.
//!
//! Each warp walks its point's bucket, computes the full distance row
//! cooperatively and inserts candidates into *its own* k-NN slots only —
//! no atomics needed, but every pairwise distance is computed twice (once by
//! each endpoint's warp) and every coordinate row is re-read from global
//! memory once per pair.

use wknng_data::Neighbor;
use wknng_simt::{try_launch, DeviceConfig, LaneVec, LaunchFault, LaunchReport, Mask};

use crate::kernels::access::csr_end;
use crate::kernels::distance::warp_sq_l2;
use crate::kernels::insert::warp_insert_exclusive;
use crate::kernels::layout::TreeLayout;
use crate::kernels::state::DeviceState;

/// Warps per block for the point-parallel kernels.
pub(crate) const WARPS_PER_BLOCK: usize = 4;

/// Run the basic kernel for one tree: every point scans its bucket.
///
/// Fault-aware: consults the thread's installed
/// [`wknng_simt::FaultScope`] (if any) and surfaces injected launch
/// failures; without one, it never fails.
pub fn run_basic(
    dev: &DeviceConfig,
    state: &DeviceState,
    tree: &TreeLayout,
) -> Result<LaunchReport, LaunchFault> {
    let n = state.n;
    let (dim, k) = (state.dim, state.k);
    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    try_launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            let one = Mask::first(1);
            let b = w.ld_global(&tree.bucket_of, &LaneVec::splat(p), one).get(0) as usize;
            let start = w.ld_global(&tree.offsets, &LaneVec::splat(b), one).get(0) as usize;
            let end = w.ld_global(&tree.offsets, &LaneVec::splat(csr_end(&b)), one).get(0) as usize;
            for pos in start..end {
                let q = w.ld_global(&tree.members, &LaneVec::splat(pos), one).get(0) as usize;
                if q == p {
                    continue;
                }
                let d = warp_sq_l2(w, &state.points, dim, p, q);
                warp_insert_exclusive(w, &state.slots, p, k, Neighbor::new(q as u32, d).pack());
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::{exact_knn, DatasetSpec, Metric};
    use wknng_forest::RpTree;

    #[test]
    fn single_bucket_equals_exact_knn() {
        let vs = DatasetSpec::UniformCube { n: 20, dim: 7 }.generate(1).vectors;
        let state = DeviceState::upload(&vs, 4);
        let tree = RpTree { buckets: vec![(0..20).collect()], depth: 0 };
        let layout = TreeLayout::upload(&tree, 20);
        let dev = DeviceConfig::test_tiny();
        let report = run_basic(&dev, &state, &layout).unwrap();
        let got = state.download();
        let want = exact_knn(&vs, 4, Metric::SquaredL2);
        for (g, t) in got.iter().zip(&want) {
            let gi: Vec<u32> = g.iter().map(|nb| nb.index).collect();
            let ti: Vec<u32> = t.iter().map(|nb| nb.index).collect();
            assert_eq!(gi, ti);
        }
        assert!(report.cycles > 0.0);
        assert_eq!(report.stats.atomic_ops, 0, "basic never issues atomics");
    }

    #[test]
    fn split_buckets_only_see_bucket_mates() {
        let vs = DatasetSpec::UniformCube { n: 8, dim: 3 }.generate(2).vectors;
        let state = DeviceState::upload(&vs, 7);
        let tree = RpTree { buckets: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], depth: 1 };
        let layout = TreeLayout::upload(&tree, 8);
        let dev = DeviceConfig::test_tiny();
        run_basic(&dev, &state, &layout).unwrap();
        let got = state.download();
        for row in &got[..4] {
            assert_eq!(row.len(), 3);
            assert!(row.iter().all(|nb| nb.index < 4));
        }
        for row in &got[4..8] {
            assert!(row.iter().all(|nb| nb.index >= 4));
        }
    }
}
