//! The **w-KNNG atomic** kernel: one *lane* per pair, atomic updates to both
//! endpoints' slots.
//!
//! Atomics remove the need for warp-exclusive ownership of a point's k-NN
//! slots, which unlocks a much finer work decomposition: every lane owns a
//! whole pair — it computes the distance itself (register loop over the
//! dimensions) and commits both insertions with the lane-parallel CAS
//! protocol. Each unordered pair is computed exactly once (upper triangle).
//!
//! The trade against the tiled kernel (experiment E4):
//!
//! * **small dimensionality** — distances are a few instructions, insertion
//!   throughput dominates, and the lane-parallel protocol retires up to 32
//!   candidates per instruction sequence → atomic wins;
//! * **large dimensionality** — each lane streams its own pair of coordinate
//!   rows through uncoalesced gather loads (32 sectors per instruction, L2
//!   pressure grows with `m·d`), while the tiled kernel reads every
//!   coordinate once per bucket through shared memory → tiled wins.

use wknng_data::Neighbor;
use wknng_simt::{try_launch, DeviceConfig, LaneVec, LaunchFault, LaunchReport, Mask, WARP_LANES};

use crate::kernels::access::{coord_ix, pair_ix};
use crate::kernels::insert::lane_insert_atomic;
use crate::kernels::layout::TreeLayout;
use crate::kernels::state::DeviceState;

/// Warps per block (one block per bucket).
const ATOMIC_WARPS: usize = 4;

/// Map a flat upper-triangle pair index `t ∈ [0, m(m-1)/2)` to `(i, j)` with
/// `i < j < m`.
///
/// The closed-form row estimate is computed in `f64`; above ~2^26 pairs the
/// discriminant loses the integer grid, so the estimate is clamped into
/// `[0, m)` and corrected in **both** directions against the exact integer
/// triangle offsets. The inverse is exact for every representable `(t, m)` —
/// pinned by the boundary property test in `tests/kernel_properties.rs`.
pub fn unrank_pair(t: usize, m: usize) -> (usize, usize) {
    assert!(m >= 2 && t < m * (m - 1) / 2, "pair rank {t} out of range for m={m}");
    // Row i owns pairs [off_i, off_i + (m-1-i)); solve with the closed form
    // and fix up float error.
    let tm = (2 * m - 1) as f64;
    let disc = (tm * tm - 8.0 * t as f64).max(0.0);
    let mut i = (((tm - disc.sqrt()) / 2.0).max(0.0) as usize).min(m - 1);
    let off = |i: usize| i * (2 * m - i - 1) / 2;
    while i + 1 < m && off(i + 1) <= t {
        i += 1;
    }
    while off(i) > t {
        i -= 1;
    }
    let j = t - off(i) + i + 1;
    (i, j)
}

/// Run the atomic kernel for one tree: one block per bucket, one lane per
/// candidate pair.
///
/// Fault-aware: consults the thread's installed
/// [`wknng_simt::FaultScope`] (if any) and surfaces injected launch
/// failures; without one, it never fails.
pub fn run_atomic(
    dev: &DeviceConfig,
    state: &DeviceState,
    tree: &TreeLayout,
) -> Result<LaunchReport, LaunchFault> {
    let (dim, k) = (state.dim, state.k);
    let offsets = tree.offsets.to_vec();
    let members_host = tree.members.to_vec();

    try_launch(dev, tree.num_buckets, ATOMIC_WARPS, |blk| {
        let b = blk.block_idx;
        let start = offsets[b] as usize;
        let end = offsets[b + 1] as usize;
        let m = end - start;
        if m <= 1 {
            return;
        }
        let members = &members_host[start..end];
        let npairs = m * (m - 1) / 2;

        blk.each_warp(|w| {
            let wid = w.warp_in_block;
            // Block-cyclic pair distribution: each lane owns a contiguous
            // run of the upper triangle, so the 32 lanes of a warp work on
            // 32 *different* rows and their CAS targets rarely collide.
            // (Row-major assignment would have every lane of a warp insert
            // into the same point — pure serialization.)
            let lanes_total = ATOMIC_WARPS * WARP_LANES;
            let chunk = npairs.div_ceil(lanes_total);
            let mut it = 0usize;
            while it < chunk {
                let lane_t = |l: usize| pair_ix(&(wid * WARP_LANES + l), &chunk, &it);
                let mask = Mask::from_fn(|l| lane_t(l) < npairs);
                if mask.is_empty() {
                    break;
                }
                // Unrank the pair and fetch the member ids (gather loads).
                w.charge_alu(mask, 4); // index arithmetic of the unranking
                let ij: Vec<(usize, usize)> =
                    (0..WARP_LANES).map(|l| unrank_pair(lane_t(l).min(npairs - 1), m)).collect();
                let pi = w.math_idx(mask, |l| start + ij[l].0);
                let p = w.ld_global(&tree.members, &pi, mask);
                let qi = w.math_idx(mask, |l| start + ij[l].1);
                let q = w.ld_global(&tree.members, &qi, mask);

                // Per-lane distance: register loop over the dimensions with
                // gather loads.
                let mut acc = LaneVec::<f32>::zeroed();
                for c in 0..dim {
                    let ai = w.math_idx(mask, |l| coord_ix(&(p.get(l) as usize), &dim, &c));
                    let a = w.ld_global(&state.points, &ai, mask);
                    let bi = w.math_idx(mask, |l| coord_ix(&(q.get(l) as usize), &dim, &c));
                    let bv = w.ld_global(&state.points, &bi, mask);
                    acc = w.math_keep(mask, &acc, |l| {
                        let d = a.get(l) - bv.get(l);
                        acc.get(l) + d * d
                    });
                }

                // Commit both directions with the lane-parallel protocol.
                let p_idx = w.math_idx(mask, |l| p.get(l) as usize);
                let q_idx = w.math_idx(mask, |l| q.get(l) as usize);
                let cand_q = w.math(mask, |l| Neighbor::new(q.get(l), acc.get(l)).pack());
                let cand_p = w.math(mask, |l| Neighbor::new(p.get(l), acc.get(l)).pack());
                lane_insert_atomic(w, &state.slots, &p_idx, k, &cand_q, mask);
                lane_insert_atomic(w, &state.slots, &q_idx, k, &cand_p, mask);

                it += 1;
            }
        });
        let _ = members;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::basic::run_basic;
    use wknng_data::DatasetSpec;
    use wknng_forest::RpTree;

    #[test]
    fn unrank_covers_the_triangle_exactly() {
        for m in [2usize, 3, 5, 17, 32, 100] {
            let npairs = m * (m - 1) / 2;
            let mut seen = std::collections::HashSet::new();
            for t in 0..npairs {
                let (i, j) = unrank_pair(t, m);
                assert!(i < j && j < m, "m={m} t={t} -> ({i},{j})");
                assert!(seen.insert((i, j)), "duplicate pair ({i},{j}) at t={t}");
            }
            assert_eq!(seen.len(), npairs);
        }
    }

    fn two_bucket_tree(n: usize) -> RpTree {
        let half = n / 2;
        RpTree {
            buckets: vec![(0..half as u32).collect(), (half as u32..n as u32).collect()],
            depth: 1,
        }
    }

    #[test]
    fn atomic_graph_equals_basic_graph() {
        let vs = DatasetSpec::GaussianClusters { n: 30, dim: 9, clusters: 3, spread: 0.4 }
            .generate(3)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let tree = two_bucket_tree(30);

        let sa = DeviceState::upload(&vs, 5);
        run_basic(&dev, &sa, &TreeLayout::upload(&tree, 30)).unwrap();
        let sb = DeviceState::upload(&vs, 5);
        run_atomic(&dev, &sb, &TreeLayout::upload(&tree, 30)).unwrap();

        let (a, b) = (sa.download(), sb.download());
        for (p, (la, lb)) in a.iter().zip(&b).enumerate() {
            let ia: Vec<u32> = la.iter().map(|x| x.index).collect();
            let ib: Vec<u32> = lb.iter().map(|x| x.index).collect();
            assert_eq!(ia, ib, "point {p}");
        }
    }

    #[test]
    fn atomic_issues_atomics_and_is_issue_lean_at_low_dim() {
        let vs = DatasetSpec::UniformCube { n: 64, dim: 4 }.generate(4).vectors;
        let dev = DeviceConfig::test_tiny();
        let tree = RpTree { buckets: vec![(0..64).collect()], depth: 0 };

        let sa = DeviceState::upload(&vs, 4);
        let rb = run_basic(&dev, &sa, &TreeLayout::upload(&tree, 64)).unwrap();
        let sb = DeviceState::upload(&vs, 4);
        let ra = run_atomic(&dev, &sb, &TreeLayout::upload(&tree, 64)).unwrap();

        assert_eq!(rb.stats.atomic_ops, 0);
        assert!(ra.stats.atomic_ops > 0);
        assert!(ra.atomic_hot_sector > 0);
        // At dim 4 the lane-parallel kernel issues far fewer instructions.
        assert!(
            ra.stats.instructions * 3 < rb.stats.instructions,
            "atomic {} vs basic {} instructions",
            ra.stats.instructions,
            rb.stats.instructions
        );
    }
}
