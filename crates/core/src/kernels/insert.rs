//! Warp-cooperative insertion into the global-memory k-NN slot arrays.
//!
//! This is the heart of the paper: three strategies for *maintaining* k-NN
//! sets that live in global memory (they are too large for shared memory at
//! high dimensionality / realistic k).
//!
//! Both protocols implement **max-replacement**: the k slots hold the best
//! candidates seen so far (unordered); inserting means locating the worst
//! slot and overwriting it if the candidate is better. Packed
//! `(dist, index)` `u64` keys make "better" a plain integer comparison and
//! empty slots ([`EMPTY_SLOT`]) compare worse than everything.

use wknng_simt::primitives::reduce_max_u64;
use wknng_simt::{DeviceBuffer, LaneVec, Mask, WarpCtx, WARP_LANES};

use crate::graph::EMPTY_SLOT;
use crate::kernels::access::slot_ix;

/// Result of a warp scan over one point's k slots.
struct SlotScan {
    /// A slot already holds this candidate's index.
    present: bool,
    /// Worst (max) packed value across the slots.
    max_val: u64,
    /// Flat buffer index of that worst slot.
    max_slot: usize,
}

/// Warp-parallel scan of `point`'s `k` slots: finds the worst slot and
/// checks whether `cand_index` is already present.
fn warp_scan(
    w: &mut WarpCtx,
    slots: &DeviceBuffer<u64>,
    point: usize,
    k: usize,
    cand_index: u32,
) -> SlotScan {
    let base = point * k;
    let mut best: (u64, usize) = (0, base);
    let mut present = false;
    let mut c = 0usize;
    while c < k {
        let width = (k - c).min(WARP_LANES);
        let mask = Mask::first(width);
        let idx = w.math_idx(mask, |l| slot_ix(&point, &k, &(c + l)));
        let vals = w.ld_global(slots, &idx, mask);
        let dup = w.pred(mask, |l| {
            let v = vals.get(l);
            v != EMPTY_SLOT && v as u32 == cand_index
        });
        if !dup.is_empty() {
            present = true;
        }
        if let Some((v, lane)) = reduce_max_u64(w, &vals, mask) {
            if v >= best.0 {
                best = (v, base + c + lane);
            }
        }
        c += WARP_LANES;
    }
    SlotScan { present, max_val: best.0, max_slot: best.1 }
}

/// Non-atomic insertion, valid when this warp is the **only** writer of
/// `point`'s slots during the launch (basic/tiled kernels, exploration).
/// Returns `true` if a slot was overwritten.
pub fn warp_insert_exclusive(
    w: &mut WarpCtx,
    slots: &DeviceBuffer<u64>,
    point: usize,
    k: usize,
    cand: u64,
) -> bool {
    let scan = warp_scan(w, slots, point, k, cand as u32);
    if scan.present || cand >= scan.max_val {
        return false;
    }
    let one = Mask::first(1);
    w.st_global(slots, &LaneVec::splat(scan.max_slot), &LaneVec::splat(cand), one);
    true
}

/// Atomic insertion (the *w-KNNG atomic* protocol): locate the worst slot,
/// then `atomicCAS` it from the observed value to the candidate; on a lost
/// race, rescan and retry. Safe under concurrent insertion from any number
/// of warps. Returns `true` if a slot was overwritten.
pub fn warp_insert_atomic(
    w: &mut WarpCtx,
    slots: &DeviceBuffer<u64>,
    point: usize,
    k: usize,
    cand: u64,
) -> bool {
    loop {
        let scan = warp_scan(w, slots, point, k, cand as u32);
        if scan.present || cand >= scan.max_val {
            return false;
        }
        let one = Mask::first(1);
        let old = w
            .atomic_cas_u64(
                slots,
                &LaneVec::splat(scan.max_slot),
                &LaneVec::splat(scan.max_val),
                &LaneVec::splat(cand),
                one,
            )
            .get(0);
        if old == scan.max_val {
            return true;
        }
        // Another warp replaced the slot between scan and CAS; retry.
        w.note_atomic_retries(1);
    }
}

/// Lane-parallel atomic insertion — the key capability atomics buy.
///
/// Every **lane** independently inserts its own candidate `cands[lane]` into
/// its own point `pts[lane]`'s slots: the warp issues `k` gather loads to
/// scan all 32 slot arrays simultaneously, then a single `atomicCAS`
/// instruction commits all 32 replacements. Lanes that lose a same-point
/// race rescan and retry (counted in `atomic_retries`).
///
/// Compared to the warp-cooperative protocols this is up to 32× more
/// issue-efficient per candidate, which is why the atomic kernel wins when
/// distances are cheap (small dimensionality) and insertion throughput is
/// the bottleneck.
pub fn lane_insert_atomic(
    w: &mut WarpCtx,
    slots: &DeviceBuffer<u64>,
    pts: &LaneVec<usize>,
    k: usize,
    cands: &LaneVec<u64>,
    mask: Mask,
) {
    let mut active = mask;
    while !active.is_empty() {
        // Per-lane scan of the k slots (gather loads).
        let mut best_val = LaneVec::<u64>::zeroed();
        let mut best_slot = w.math_idx(active, |l| slot_ix(&pts.get(l), &k, &0));
        let mut dup = Mask::NONE;
        for s in 0..k {
            let idx = w.math_idx(active, |l| slot_ix(&pts.get(l), &k, &s));
            let vals = w.ld_global(slots, &idx, active);
            let d = w.pred(active, |l| {
                let v = vals.get(l);
                v != EMPTY_SLOT && v as u32 == cands.get(l) as u32
            });
            dup = Mask(dup.0 | d.0);
            let upd = w.pred(active, |l| vals.get(l) >= best_val.get(l));
            best_val = w.math_keep(upd, &best_val, |l| vals.get(l));
            best_slot = {
                let prev = best_slot;
                w.charge_alu(upd, 1);
                LaneVec::from_fn(|l| if upd.active(l) { idx.get(l) } else { prev.get(l) })
            };
        }
        let want = w.pred(active.and_not(dup), |l| cands.get(l) < best_val.get(l));
        if want.is_empty() {
            return;
        }
        let old = w.atomic_cas_u64(slots, &best_slot, &best_val, cands, want);
        let failed = w.pred(want, |l| old.get(l) != best_val.get(l));
        w.note_atomic_retries(failed.count() as u64);
        active = failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::slots_to_lists;
    use crate::heap::KnnList;
    use rand::{Rng, SeedableRng};
    use wknng_data::Neighbor;
    use wknng_simt::{launch, DeviceConfig};

    fn run_inserts(k: usize, cands: &[Neighbor], atomic: bool) -> Vec<Neighbor> {
        let slots = DeviceBuffer::filled(k, EMPTY_SLOT);
        let dev = DeviceConfig::test_tiny();
        launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                for nb in cands {
                    if atomic {
                        warp_insert_atomic(w, &slots, 0, k, nb.pack());
                    } else {
                        warp_insert_exclusive(w, &slots, 0, k, nb.pack());
                    }
                }
            });
        });
        slots_to_lists(&slots.to_vec(), 1, k).remove(0)
    }

    fn oracle(k: usize, cands: &[Neighbor]) -> Vec<Neighbor> {
        let mut l = KnnList::new(k);
        for &nb in cands {
            l.insert(nb);
        }
        l.into_vec()
    }

    #[test]
    fn insert_matches_host_oracle() {
        let cands: Vec<Neighbor> =
            [(3u32, 5.0f32), (1, 2.0), (9, 7.0), (4, 1.0), (6, 3.0), (2, 0.5), (8, 6.0)]
                .iter()
                .map(|&(i, d)| Neighbor::new(i, d))
                .collect();
        for k in [1usize, 2, 3, 5, 7, 16] {
            let want = oracle(k, &cands);
            assert_eq!(run_inserts(k, &cands, false), want, "exclusive k={k}");
            assert_eq!(run_inserts(k, &cands, true), want, "atomic k={k}");
        }
    }

    #[test]
    fn duplicates_are_rejected_on_device() {
        let cands = vec![Neighbor::new(5, 1.0), Neighbor::new(5, 1.0), Neighbor::new(5, 1.0)];
        let got = run_inserts(4, &cands, false);
        assert_eq!(got.len(), 1);
        let got = run_inserts(4, &cands, true);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn random_streams_match_oracle() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for trial in 0..20 {
            let k = rng.gen_range(1..40);
            let cands: Vec<Neighbor> = (0..rng.gen_range(1..120))
                .map(|_| Neighbor::new(rng.gen_range(0..60), rng.gen_range(0.0..100.0f32)))
                .collect();
            // The oracle dedups by index keeping the *first* distance seen;
            // with random distances per index the device keeps the *best*.
            // Feed unique-by-index streams to compare exactly.
            let mut seen = std::collections::HashSet::new();
            let cands: Vec<Neighbor> =
                cands.into_iter().filter(|nb| seen.insert(nb.index)).collect();
            let want = oracle(k, &cands);
            assert_eq!(run_inserts(k, &cands, false), want, "trial {trial} k {k}");
            assert_eq!(run_inserts(k, &cands, true), want, "trial {trial} k {k}");
        }
    }

    #[test]
    fn lane_insert_matches_oracle_per_point() {
        // 32 lanes insert into 4 points (8 candidates each, same instruction
        // stream) — heavy same-point contention inside single instructions.
        let k = 3;
        let n_points = 4;
        let slots = DeviceBuffer::filled(n_points * k, EMPTY_SLOT);
        let dev = DeviceConfig::test_tiny();
        let pts = LaneVec::from_fn(|l| l % n_points);
        let cands =
            LaneVec::from_fn(|l| Neighbor::new(100 + l as u32, (l / n_points) as f32).pack());
        let report = launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                lane_insert_atomic(w, &slots, &pts, k, &cands, Mask::FULL);
            });
        });
        let lists = slots_to_lists(&slots.to_vec(), n_points, k);
        for (p, list) in lists.iter().enumerate() {
            // Point p received candidates with dists 0..8 (one per "round"
            // index); the k best are dists 0, 1, 2.
            let mut want = KnnList::new(k);
            for round in 0..8u32 {
                want.insert(Neighbor::new(100 + round * 4 + p as u32, round as f32));
            }
            assert_eq!(list, &want.into_vec(), "point {p}");
        }
        // Same-point lanes inside one CAS instruction must have raced.
        assert!(report.stats.atomic_retries > 0);
    }

    #[test]
    fn lane_insert_respects_duplicates_and_mask() {
        let k = 4;
        let slots = DeviceBuffer::filled(k, EMPTY_SLOT);
        let dev = DeviceConfig::test_tiny();
        launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                let pts = LaneVec::splat(0usize);
                let cands = LaneVec::from_fn(|l| Neighbor::new(7, l as f32).pack());
                // All 32 lanes offer index 7 with different distances; after
                // the first wins, the rest are duplicates.
                lane_insert_atomic(w, &slots, &pts, k, &cands, Mask::FULL);
                // Masked-off lanes must do nothing.
                let cands2 = LaneVec::splat(Neighbor::new(9, 0.0).pack());
                lane_insert_atomic(w, &slots, &pts, k, &cands2, Mask::NONE);
            });
        });
        let list = slots_to_lists(&slots.to_vec(), 1, k).remove(0);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].index, 7);
    }

    #[test]
    fn k_larger_than_warp_scans_all_chunks() {
        // 40 slots: worst candidate must be found in the second chunk too.
        let mut cands: Vec<Neighbor> = (0..40).map(|i| Neighbor::new(i, i as f32)).collect();
        cands.push(Neighbor::new(100, 0.5)); // must evict (39, 39.0)
        let got = run_inserts(40, &cands, false);
        assert_eq!(got.len(), 40);
        assert!(got.iter().any(|nb| nb.index == 100));
        assert!(!got.iter().any(|nb| nb.index == 39));
    }
}
