//! Warp-cooperative squared-L2 distance.

use wknng_simt::primitives::reduce_sum_f32;
use wknng_simt::{DeviceBuffer, LaneVec, Mask, WarpCtx, WARP_LANES};

use crate::kernels::access::coord_ix;

/// Squared Euclidean distance between points `p` and `q`, computed by the
/// whole warp: lanes stride across the dimensions (coalesced row loads),
/// accumulate per-lane partial sums, then a warp reduction combines them.
///
/// This is the distance subroutine of the *basic* and *atomic* kernels (the
/// tiled kernel computes distances from shared-memory tiles instead).
pub fn warp_sq_l2(
    w: &mut WarpCtx,
    points: &DeviceBuffer<f32>,
    dim: usize,
    p: usize,
    q: usize,
) -> f32 {
    let mut acc = LaneVec::<f32>::zeroed();
    let mut c = 0usize;
    while c < dim {
        let width = (dim - c).min(WARP_LANES);
        let mask = Mask::first(width);
        let pi = w.math_idx(mask, |l| coord_ix(&p, &dim, &(c + l)));
        let a = w.ld_global(points, &pi, mask);
        let qi = w.math_idx(mask, |l| coord_ix(&q, &dim, &(c + l)));
        let b = w.ld_global(points, &qi, mask);
        acc = w.math_keep(mask, &acc, |l| {
            let d = a.get(l) - b.get(l);
            acc.get(l) + d * d
        });
        c += WARP_LANES;
    }
    reduce_sum_f32(w, &acc, Mask::FULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::{sq_l2, DatasetSpec};
    use wknng_simt::{launch, DeviceConfig};

    #[test]
    fn matches_host_distance() {
        for dim in [1usize, 5, 31, 32, 33, 64, 100] {
            let vs = DatasetSpec::UniformCube { n: 4, dim }.generate(dim as u64).vectors;
            let points = DeviceBuffer::from_slice(vs.as_flat());
            let dev = DeviceConfig::test_tiny();
            let mut got = 0.0f32;
            launch(&dev, 1, 1, |blk| {
                blk.each_warp(|w| {
                    got = warp_sq_l2(w, &points, dim, 1, 3);
                });
            });
            let want = sq_l2(vs.row(1), vs.row(3));
            assert!((got - want).abs() <= 1e-4 * (1.0 + want), "dim {dim}: {got} vs {want}");
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let vs = DatasetSpec::UniformCube { n: 2, dim: 40 }.generate(7).vectors;
        let points = DeviceBuffer::from_slice(vs.as_flat());
        let dev = DeviceConfig::test_tiny();
        let mut got = f32::NAN;
        launch(&dev, 1, 1, |blk| {
            blk.each_warp(|w| {
                got = warp_sq_l2(w, &points, 40, 0, 0);
            });
        });
        assert_eq!(got, 0.0);
    }
}
