//! Batched beam search: the query-serving kernel.
//!
//! One warp per **query** (where construction kernels run one warp per
//! *point*): each warp descends the built graph from the scrambled entry
//! points, keeps its beam in a packed `u64` slot row (the same
//! max-replacement protocol as construction, via
//! [`warp_insert_exclusive`]), and expands frontier nodes by loading
//! adjacency rows warp-wide and evaluating candidate distances one lane per
//! candidate.
//!
//! The kernel is a *bit-exact* mirror of the host reference
//! [`crate::search::search_lists`]: the entry scramble-and-probe sequence,
//! the frontier pop order, the insertion order (adjacency-list order), the
//! greedy termination test, and — crucially — the distance values
//! (`lane_query_dists` reduces through the same runtime-dispatched host
//! kernel, scalar or AVX2+FMA) are all identical. Batching therefore cannot
//! change any individual result, which is the invariant the serving
//! engine's tests pin down.

use wknng_data::{Metric, Neighbor, VectorSet};
use wknng_simt::{
    try_launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchFault, LaunchReport, Mask, WarpCtx,
    WARP_LANES,
};

use crate::graph::{slots_to_lists, EMPTY_SLOT};
use crate::kernels::access::{coord_ix, slot_ix};
use crate::kernels::basic::WARPS_PER_BLOCK;
use crate::kernels::explore::NO_NEIGHBOR;
use crate::kernels::insert::warp_insert_exclusive;
use crate::search::{entry_point, SearchParams, SearchStats};
use wknng_simt::primitives::reduce_max_u64;

/// A device-resident searchable index: the point coordinates plus the
/// adjacency rows of a *finished* graph (row-major `n × deg`,
/// [`NO_NEIGHBOR`]-padded, list order preserved).
#[derive(Debug)]
pub struct SearchIndex {
    /// Point coordinates, row-major `n × dim`.
    pub points: DeviceBuffer<f32>,
    /// Adjacency rows, `n × deg`.
    pub adj: DeviceBuffer<u32>,
    /// Number of indexed points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Padded neighbor-row width (max list length).
    pub deg: usize,
}

impl SearchIndex {
    /// Upload a vector set and its neighbor lists.
    ///
    /// The adjacency width is the longest list (so augmented graphs — see
    /// [`crate::graph::augment_reverse`] — upload without truncation).
    pub fn upload(vs: &VectorSet, lists: &[Vec<Neighbor>]) -> SearchIndex {
        assert_eq!(lists.len(), vs.len(), "graph/vector count mismatch");
        let n = vs.len();
        let deg = lists.iter().map(|l| l.len()).max().unwrap_or(0).max(1);
        let mut adj = vec![NO_NEIGHBOR; n * deg];
        for (p, list) in lists.iter().enumerate() {
            for (i, nb) in list.iter().enumerate() {
                adj[p * deg + i] = nb.index;
            }
        }
        SearchIndex {
            points: DeviceBuffer::from_slice(vs.as_flat()).set_label("points"),
            adj: DeviceBuffer::from_slice(&adj).set_label("adj"),
            n,
            dim: vs.dim(),
            deg,
        }
    }
}

/// Result of one batched search launch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-query ranked results (ascending `(dist, index)`, length ≤ `k`).
    pub results: Vec<Vec<Neighbor>>,
    /// Per-query work counters.
    pub stats: Vec<SearchStats>,
    /// Simulated launch report (cycles, memory traffic).
    pub report: LaunchReport,
}

/// Per-lane query↔point squared-L2 distances, bit-exact with the host
/// [`wknng_data::sq_l2`]: the loads gather one coordinate per candidate per
/// instruction (the query row is a broadcast load) into per-lane registers,
/// and the final reduction runs each lane's coordinates through the *same*
/// dispatched host kernel — so whatever implementation the host picked at
/// runtime (scalar blocked, AVX2+FMA), the device answer is the identical
/// bit pattern. Emulating the accumulation order by hand is a trap: the FMA
/// path rounds `d*d + acc` once where a hand-rolled loop rounds twice.
fn lane_query_dists(
    w: &mut WarpCtx,
    points: &DeviceBuffer<f32>,
    queries: &DeviceBuffer<f32>,
    dim: usize,
    q: usize,
    pts: &LaneVec<usize>,
    mask: Mask,
) -> LaneVec<f32> {
    let mut qrows: Vec<Vec<f32>> = (0..WARP_LANES).map(|_| Vec::with_capacity(dim)).collect();
    let mut prows: Vec<Vec<f32>> = (0..WARP_LANES).map(|_| Vec::with_capacity(dim)).collect();
    for col in 0..dim {
        let qi = w.math_idx(mask, |_| coord_ix(&q, &dim, &col));
        let a = w.ld_global(queries, &qi, mask);
        let pi = w.math_idx(mask, |l| coord_ix(&pts.get(l), &dim, &col));
        let b = w.ld_global(points, &pi, mask);
        for l in mask.iter() {
            qrows[l].push(a.get(l));
            prows[l].push(b.get(l));
        }
    }
    let zero = LaneVec::<f32>::zeroed();
    let kern = wknng_data::kernel();
    w.math_keep(mask, &zero, |l| kern.sq_l2(&qrows[l], &prows[l]))
}

/// Warp-parallel max over query `q`'s beam row — the current worst beam
/// entry (only meaningful once the beam is full; empty slots pack as
/// [`EMPTY_SLOT`] = `u64::MAX` and would dominate).
fn warp_worst(w: &mut WarpCtx, beams: &DeviceBuffer<u64>, q: usize, bw: usize) -> u64 {
    let mut worst = 0u64;
    let mut c = 0usize;
    while c < bw {
        let width = (bw - c).min(WARP_LANES);
        let mask = Mask::first(width);
        let idx = w.math_idx(mask, |l| slot_ix(&q, &bw, &(c + l)));
        let vals = w.ld_global(beams, &idx, mask);
        if let Some((v, _)) = reduce_max_u64(w, &vals, mask) {
            worst = worst.max(v);
        }
        c += WARP_LANES;
    }
    worst
}

/// Run one batch of queries through the graph, one query per warp.
///
/// `params` follows the same normalization as [`crate::search::search_lists`]
/// (beam clamped up to `k`, entries clamped to `1..=n`); pass
/// pre-[`SearchParams::validated`] parameters to get typed errors instead.
/// Squared L2 only — the serving layer rejects other metrics with
/// [`crate::error::KnngError::UnsupportedDeviceMetric`] before reaching the
/// kernel.
///
/// Fault-aware like the construction kernels: an injected launch fault
/// surfaces as `Err` and leaves no partial results (buffers are private to
/// the call).
pub fn run_search_batch(
    dev: &DeviceConfig,
    ix: &SearchIndex,
    queries: &VectorSet,
    params: &SearchParams,
) -> Result<BatchResult, LaunchFault> {
    assert_eq!(params.metric, Metric::SquaredL2, "device beam search supports SquaredL2 only");
    assert_eq!(queries.dim(), ix.dim, "query dimensionality mismatch");
    let (n, deg) = (ix.n, ix.deg);
    let nq = queries.len();
    let bw = params.beam.max(params.k).max(1);
    if nq == 0 || n == 0 {
        return Ok(BatchResult {
            results: vec![Vec::new(); nq],
            stats: vec![SearchStats { distance_evals: 0, expansions: 0 }; nq],
            report: LaunchReport::default(),
        });
    }
    let entries = params.entries.clamp(1, n);

    let qbuf = DeviceBuffer::from_slice(queries.as_flat()).set_label("queries");
    let beams = DeviceBuffer::filled(nq * bw, EMPTY_SLOT).set_label("beams");
    // One byte per (query, point) visited flag: the kernel only ever tests
    // zero/non-zero, so u8 keeps the per-launch footprint at nq*n bytes
    // (batch 128 over a 1M-point index: 128 MB, not the 512 MB a u32 flag
    // array would pin).
    let visited = DeviceBuffer::filled(nq * n, 0u8).set_label("visited");
    let mut stats = vec![SearchStats { distance_evals: 0, expansions: 0 }; nq];

    let blocks = nq.div_ceil(WARPS_PER_BLOCK);
    let report = try_launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let q = w.global_warp;
            if q >= nq {
                return;
            }
            let one = Mask::first(1);
            let mut st = SearchStats { distance_evals: 0, expansions: 0 };
            let mut beam_len = 0usize;
            let mut frontier: Vec<Neighbor> = Vec::new();

            // Entry phase: the probe sequence depends only on the visited
            // flags (not on distances), so seed all entry points first, then
            // evaluate their distances lane-parallel.
            let mut seeds = Vec::with_capacity(entries);
            for e in 0..entries {
                let mut p = entry_point(e, n);
                while w.ld_global(&visited, &LaneVec::splat(slot_ix(&q, &n, &p)), one).get(0) != 0 {
                    p = (p + 1) % n;
                }
                w.st_global(
                    &visited,
                    &LaneVec::splat(slot_ix(&q, &n, &p)),
                    &LaneVec::splat(1u8),
                    one,
                );
                seeds.push(p);
            }
            for chunk in seeds.chunks(WARP_LANES) {
                let mask = Mask::first(chunk.len());
                let pts = w.math_idx(mask, |l| chunk[l]);
                let d = lane_query_dists(w, &ix.points, &qbuf, ix.dim, q, &pts, mask);
                for (l, &pt) in chunk.iter().enumerate() {
                    st.distance_evals += 1;
                    let nb = Neighbor::new(pt as u32, d.get(l));
                    if warp_insert_exclusive(w, &beams, q, bw, nb.pack()) && beam_len < bw {
                        beam_len += 1;
                    }
                    // The host reference pushes entry points unconditionally.
                    frontier.push(nb);
                }
            }

            // Greedy descent, best-first.
            while let Some(pos) = frontier
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.key().partial_cmp(&b.key()).expect("finite"))
                .map(|(i, _)| i)
            {
                let cur = frontier.swap_remove(pos);
                if beam_len == bw && cur.pack() > warp_worst(w, &beams, q, bw) {
                    break;
                }
                st.expansions += 1;
                let cur_pt = cur.index as usize;
                let mut c = 0usize;
                while c < deg {
                    let width = (deg - c).min(WARP_LANES);
                    let mask = Mask::first(width);
                    let ai = w.math_idx(mask, |l| slot_ix(&cur_pt, &deg, &(c + l)));
                    let nbr = w.ld_global(&ix.adj, &ai, mask);
                    let real = w.pred(mask, |l| nbr.get(l) != NO_NEIGHBOR);
                    if real.is_empty() {
                        break; // rows are padded at the tail only
                    }
                    let vi = w.math_idx(real, |l| slot_ix(&q, &n, &(nbr.get(l) as usize)));
                    let seen = w.ld_global(&visited, &vi, real);
                    let fresh = w.pred(real, |l| seen.get(l) == 0);
                    if !fresh.is_empty() {
                        w.st_global(&visited, &vi, &LaneVec::splat(1u8), fresh);
                        let pts = w.math_idx(fresh, |l| nbr.get(l) as usize);
                        let d = lane_query_dists(w, &ix.points, &qbuf, ix.dim, q, &pts, fresh);
                        // Offer in adjacency-list (lane) order, exactly like
                        // the host walks the list.
                        for l in 0..width {
                            if !fresh.active(l) {
                                continue;
                            }
                            st.distance_evals += 1;
                            let cand = Neighbor::new(nbr.get(l), d.get(l));
                            if warp_insert_exclusive(w, &beams, q, bw, cand.pack()) {
                                if beam_len < bw {
                                    beam_len += 1;
                                }
                                frontier.push(cand);
                            }
                        }
                    }
                    c += WARP_LANES;
                }
            }
            stats[q] = st;
        });
    })?;

    let mut results = slots_to_lists(&beams.to_vec(), nq, bw);
    for r in &mut results {
        r.truncate(params.k);
    }
    Ok(BatchResult { results, stats, report })
}

/// Convenience upload for tests and the serving loader: encode + decode
/// round-trip sanity (`lists_to_slots`/`slots_to_lists`) lives in
/// [`crate::graph`]; this module only reads indices.
pub fn adjacency_row(ix: &SearchIndex, p: usize) -> Vec<u32> {
    let row = ix.adj.to_vec();
    row[p * ix.deg..(p + 1) * ix.deg].iter().copied().filter(|&r| r != NO_NEIGHBOR).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Knng, WknngBuilder};
    use crate::graph::lists_to_slots;
    use crate::search::search_lists;
    use wknng_data::DatasetSpec;

    /// The device kernel computes lane distances through the same
    /// runtime-dispatched host kernel as [`search_lists`], so the oracle is
    /// the plain dispatched search — bit-exact whichever implementation
    /// (scalar or AVX2+FMA) this machine resolves to.
    fn scalar_search(
        vs: &VectorSet,
        lists: &[Vec<Neighbor>],
        query: &[f32],
        params: &SearchParams,
    ) -> (Vec<Neighbor>, crate::search::SearchStats) {
        search_lists(vs, lists, query, params)
    }

    fn indexed(n: usize, dim: usize, seed: u64) -> (VectorSet, Knng) {
        let vs =
            DatasetSpec::Manifold { n, ambient_dim: dim, intrinsic_dim: 3 }.generate(seed).vectors;
        let (g, _) = WknngBuilder::new(8)
            .trees(4)
            .leaf_size(24)
            .exploration(2)
            .seed(seed + 1)
            .build_native(&vs)
            .expect("valid");
        (vs, g)
    }

    #[test]
    fn device_batch_matches_host_reference_exactly() {
        let (vs, g) = indexed(220, 24, 31);
        let queries =
            DatasetSpec::Manifold { n: 20, ambient_dim: 24, intrinsic_dim: 3 }.generate(32).vectors;
        let params = SearchParams { k: 8, beam: 24, entries: 3, metric: Metric::SquaredL2 };
        let dev = DeviceConfig::test_tiny();
        let ix = SearchIndex::upload(&vs, &g.lists);
        let got = run_search_batch(&dev, &ix, &queries, &params).unwrap();
        let want: Vec<_> = (0..queries.len())
            .map(|qi| scalar_search(&vs, &g.lists, queries.row(qi), &params))
            .collect();
        assert_eq!(got.results.len(), 20);
        for (qi, (res, st)) in want.iter().enumerate() {
            assert_eq!(&got.results[qi], res, "query {qi} results");
            assert_eq!(&got.stats[qi], st, "query {qi} stats");
        }
        assert!(got.report.cycles > 0.0);
    }

    #[test]
    fn ragged_batch_and_odd_dim_still_agree() {
        // 7 queries (ragged last warp group), dim 13 (tail path of the
        // blocked distance), beam == k (tightest termination).
        let (vs, g) = indexed(150, 13, 77);
        let queries =
            DatasetSpec::Manifold { n: 7, ambient_dim: 13, intrinsic_dim: 3 }.generate(78).vectors;
        let params = SearchParams { k: 6, beam: 6, entries: 2, metric: Metric::SquaredL2 };
        let dev = DeviceConfig::test_tiny();
        let ix = SearchIndex::upload(&vs, &g.lists);
        let got = run_search_batch(&dev, &ix, &queries, &params).unwrap();
        for qi in 0..queries.len() {
            let (res, st) = scalar_search(&vs, &g.lists, queries.row(qi), &params);
            assert_eq!(got.results[qi], res, "query {qi}");
            assert_eq!(got.stats[qi], st, "query {qi}");
        }
    }

    #[test]
    fn indexed_queries_come_back_at_distance_zero() {
        // Greedy descent can miss a few self-queries (beam-bounded), but it
        // must miss them *identically* to the host; and the overwhelming
        // majority must come back first at distance zero.
        let (vs, g) = indexed(120, 16, 5);
        let queries = vs.clone();
        let params = SearchParams { k: 4, beam: 16, entries: 2, metric: Metric::SquaredL2 };
        let dev = DeviceConfig::test_tiny();
        let ix = SearchIndex::upload(&vs, &g.lists);
        let got = run_search_batch(&dev, &ix, &queries, &params).unwrap();
        let mut exact = 0;
        for (qi, res) in got.results.iter().enumerate() {
            let (host, _) = scalar_search(&vs, &g.lists, vs.row(qi), &params);
            assert_eq!(res, &host, "query {qi}");
            if res[0].index as usize == qi && res[0].dist == 0.0 {
                exact += 1;
            }
        }
        assert!(exact >= 110, "only {exact}/120 self-queries hit exactly");
    }

    #[test]
    fn empty_batch_and_empty_index_are_total() {
        let (vs, g) = indexed(60, 8, 9);
        let dev = DeviceConfig::test_tiny();
        let ix = SearchIndex::upload(&vs, &g.lists);
        let none = VectorSet::new(Vec::new(), 8).unwrap();
        let r = run_search_batch(&dev, &ix, &none, &SearchParams::default()).unwrap();
        assert!(r.results.is_empty());
    }

    #[test]
    fn upload_preserves_list_order_and_pads() {
        let vs = DatasetSpec::UniformCube { n: 4, dim: 2 }.generate(3).vectors;
        let lists = vec![
            vec![Neighbor::new(2, 0.5), Neighbor::new(1, 1.0)],
            vec![Neighbor::new(0, 1.0)],
            vec![],
            vec![Neighbor::new(0, 2.0), Neighbor::new(1, 2.5)],
        ];
        let ix = SearchIndex::upload(&vs, &lists);
        assert_eq!(ix.deg, 2);
        assert_eq!(adjacency_row(&ix, 0), vec![2, 1]);
        assert_eq!(adjacency_row(&ix, 1), vec![0]);
        assert!(adjacency_row(&ix, 2).is_empty());
        let _ = lists_to_slots(&lists, 2); // graph encode stays usable on the same lists
    }
}
