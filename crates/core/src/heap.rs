//! The bounded k-NN candidate list used by the native backend.

use wknng_data::Neighbor;

/// A capacity-bounded set of the best (smallest-distance) candidates seen so
/// far, kept sorted ascending by `(dist, index)` and deduplicated by index.
///
/// For the k ≤ 64 regime of K-NNG construction a sorted array beats a binary
/// heap: insertion is a `memmove` of a few dozen 8-byte records and the list
/// doubles as the final sorted output. This is the host mirror of the packed
/// `u64` slot arrays the device kernels maintain in global memory.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnList {
    cap: usize,
    entries: Vec<Neighbor>,
}

impl KnnList {
    /// An empty list with room for `cap` neighbors.
    pub fn new(cap: usize) -> Self {
        KnnList { cap, entries: Vec::with_capacity(cap) }
    }

    /// Capacity (the `k` of the graph).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of neighbors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no neighbor has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current worst (largest) entry, if any.
    pub fn worst(&self) -> Option<Neighbor> {
        self.entries.last().copied()
    }

    /// Offer a candidate. Returns `true` if the list changed.
    ///
    /// Rejects candidates already present (by index) and, when full,
    /// candidates not strictly better than the current worst under the
    /// `(dist, index)` order.
    pub fn insert(&mut self, cand: Neighbor) -> bool {
        if self.cap == 0 {
            return false;
        }
        if self.entries.iter().any(|e| e.index == cand.index) {
            return false;
        }
        let full = self.entries.len() == self.cap;
        if full && cand.key() >= self.entries[self.cap - 1].key() {
            return false;
        }
        let pos = self.entries.partition_point(|e| e.key() < cand.key());
        if full {
            self.entries.pop();
        }
        self.entries.insert(pos, cand);
        true
    }

    /// The sorted neighbor slice.
    pub fn as_slice(&self) -> &[Neighbor] {
        &self.entries
    }

    /// Consume into the sorted neighbor vector.
    pub fn into_vec(self) -> Vec<Neighbor> {
        self.entries
    }

    /// Neighbor indices, ascending by `(dist, index)`.
    pub fn indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|e| e.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_sorted() {
        let mut l = KnnList::new(3);
        assert!(l.insert(Neighbor::new(1, 5.0)));
        assert!(l.insert(Neighbor::new(2, 1.0)));
        assert!(l.insert(Neighbor::new(3, 3.0)));
        assert_eq!(l.len(), 3);
        // 4 with dist 2.0 evicts (1, 5.0).
        assert!(l.insert(Neighbor::new(4, 2.0)));
        let idx: Vec<u32> = l.indices().collect();
        assert_eq!(idx, vec![2, 4, 3]);
        assert_eq!(l.worst(), Some(Neighbor::new(3, 3.0)));
        // Worse than current worst: rejected.
        assert!(!l.insert(Neighbor::new(9, 10.0)));
    }

    #[test]
    fn rejects_duplicates_by_index() {
        let mut l = KnnList::new(4);
        assert!(l.insert(Neighbor::new(7, 2.0)));
        assert!(!l.insert(Neighbor::new(7, 2.0)));
        assert!(!l.insert(Neighbor::new(7, 1.0))); // same point, same metric => same dist in practice
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn tie_break_is_by_index() {
        let mut l = KnnList::new(2);
        l.insert(Neighbor::new(5, 1.0));
        l.insert(Neighbor::new(3, 1.0));
        let idx: Vec<u32> = l.indices().collect();
        assert_eq!(idx, vec![3, 5]);
        // Equal (dist, but larger index) than worst: rejected when full.
        assert!(!l.insert(Neighbor::new(9, 1.0)));
        // Smaller index at the same dist is strictly better: accepted.
        assert!(l.insert(Neighbor::new(1, 1.0)));
        let idx: Vec<u32> = l.indices().collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn zero_capacity_swallows_everything() {
        let mut l = KnnList::new(0);
        assert!(!l.insert(Neighbor::new(1, 0.0)));
        assert!(l.is_empty());
        assert_eq!(l.worst(), None);
    }

    #[test]
    fn into_vec_is_sorted() {
        let mut l = KnnList::new(8);
        for (i, d) in [(4u32, 4.0f32), (1, 1.0), (3, 3.0), (2, 2.0)] {
            l.insert(Neighbor::new(i, d));
        }
        let v = l.into_vec();
        let dists: Vec<f32> = v.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
